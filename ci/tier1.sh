#!/usr/bin/env bash
# Tier-1 gate: the workspace must build, lint and test fully offline.
# Every dependency is a workspace path dependency; the registry deps
# (proptest, criterion, rand) are commented out in the manifests and
# only needed for the opt-in `proptest` / `bench-deps` features.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
cargo build --release --offline
cargo test -q --offline

# Daemon smoke test: a bistd on a Unix socket must serve a campaign,
# answer the identical resubmission from its result cache, and drain
# cleanly on shutdown.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
sock="$smoke_dir/bistd.sock"
./target/release/bistd --unix "$sock" --workers 1 > "$smoke_dir/bistd.log" &
bistd_pid=$!
for _ in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
done
[ -S "$sock" ] || { echo "bistd never created its socket"; cat "$smoke_dir/bistd.log"; exit 1; }
smoke_run() {
    ./target/release/bistctl --server "unix:$sock" run \
        --design LP-MINI --gen LFSR-D --vectors 64
}
cold="$(smoke_run)"
warm="$(smoke_run)"
echo "$cold" | grep -q '"cached":false' || { echo "cold run unexpectedly cached: $cold"; exit 1; }
echo "$warm" | grep -q '"cached":true' || { echo "warm run missed the cache: $warm"; exit 1; }
./target/release/bistctl --server "unix:$sock" shutdown > /dev/null
wait "$bistd_pid"
echo "bistd smoke test: cache hit + graceful shutdown OK"
