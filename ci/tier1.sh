#!/usr/bin/env bash
# Tier-1 gate: the workspace must build, lint and test fully offline.
# Every dependency is a workspace path dependency; the registry deps
# (proptest, criterion, rand) are commented out in the manifests and
# only needed for the opt-in `proptest` / `bench-deps` features.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings \
    -D clippy::needless_pass_by_value -D clippy::redundant_clone
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline
cargo build --release --offline
cargo test -q --offline

# Static-analysis gate: the three paper designs must be free of
# error-severity lint findings under their recommended generators,
# and the paper's known-bad pairing must be flagged (exit 1).
for design in LP BP HP; do
    ./target/release/bistlint --design "$design" --gen LFSR-D > /dev/null \
        || { echo "bistlint found errors on $design x LFSR-D"; exit 1; }
done
if ./target/release/bistlint --design LP --gen LFSR-1 > /dev/null 2>&1; then
    echo "bistlint failed to flag the incompatible LP x LFSR-1 pairing"
    exit 1
fi
echo "bistlint gate: roster clean, incompatible pairing flagged OK"

# Signature-mode smoke cell: every roster generator on LP-MINI must
# produce bit-identical verdicts in trace and signature mode with zero
# aliased faults on the default 16-bit MISR (exits non-zero otherwise).
./target/release/experiments smoke
echo "experiments smoke cell: signature mode bit-identical, zero aliasing OK"

# ATPG smoke cell: the LP-MINI campaign residue must be fully resolved
# by the deterministic top-off — every residual fault detected by the
# verified seed plan or proven untestable, none unresolved (exits
# non-zero otherwise).
./target/release/experiments atpg
echo "experiments atpg cell: top-off covers 100% of testable faults OK"

# SAT smoke cell: LP-MINI must get a machine-checked equivalence
# certificate and a sample of the symmetric design's screen candidates
# must prove redundant (exits non-zero on any refutation). Sub-second.
./target/release/experiments sat
echo "experiments sat cell: equivalence proved, sampled candidates UNSAT OK"

# Structure smoke cell: the LP-MINI collapse run must be bit-identical
# to the plain run, shrink the simulated universe, and carry the L701
# collapse census at admission (exits non-zero otherwise). Sub-second.
./target/release/experiments structure
echo "experiments structure cell: collapse bit-identical, census attached OK"

# Kernel differential cell: the flat SoA tape kernel (the default
# engine) and the retained graph walker must produce bit-identical
# verdicts, signatures and coverage on LP-MINI in both response-check
# modes (exits non-zero on any divergence). A few seconds.
./target/release/experiments kernel
echo "experiments kernel cell: walker/kernel bit-identical in both modes OK"

# Daemon smoke test: a bistd on a Unix socket must serve a campaign,
# answer the identical resubmission from its result cache, and drain
# cleanly on shutdown.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
sock="$smoke_dir/bistd.sock"
./target/release/bistd --unix "$sock" --workers 1 > "$smoke_dir/bistd.log" &
bistd_pid=$!
for _ in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
done
[ -S "$sock" ] || { echo "bistd never created its socket"; cat "$smoke_dir/bistd.log"; exit 1; }
smoke_run() {
    ./target/release/bistctl --server "unix:$sock" run \
        --design LP-MINI --gen LFSR-D --vectors 64
}
cold="$(smoke_run)"
warm="$(smoke_run)"
echo "$cold" | grep -q '"cached":false' || { echo "cold run unexpectedly cached: $cold"; exit 1; }
echo "$warm" | grep -q '"cached":true' || { echo "warm run missed the cache: $warm"; exit 1; }
./target/release/bistctl --server "unix:$sock" shutdown > /dev/null
wait "$bistd_pid"
echo "bistd smoke test: cache hit + graceful shutdown OK"
