#!/usr/bin/env bash
# Tier-1 gate: the workspace must build, lint and test fully offline.
# Every dependency is a workspace path dependency; the registry deps
# (proptest, criterion, rand) are commented out in the manifests and
# only needed for the opt-in `proptest` / `bench-deps` features.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --offline --all-targets -- -D warnings
cargo build --release --offline
cargo test -q --offline
