//! Golden-file snapshot of the LP-MINI structural-analysis report.
//!
//! The report JSON is a machine interface — the run artifact's
//! `collapse` object and the `L7xx` lints both derive from it — so its
//! bytes are pinned here: any intentional change to the collapse
//! rules, the dominance census, the dominator tree or the SCOAP
//! definitions must re-bless the snapshot (the diff then documents
//! exactly which class counts and measures moved).
//!
//! Regenerate with `BLESS=1 cargo test -p bist-structure --test golden`.

use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/LP-MINI.json")
}

/// The LP-MINI report, built exactly the way the session layer builds
/// it: reachability-pruned universe over the design's claimed ranges.
fn lp_mini_report_json() -> String {
    let design = filters::designs::lowpass_mini().expect("LP-MINI elaborates");
    let netlist = design.netlist().clone();
    let reach = rtl::reachability::Reachability::analyze(&netlist, design.spec().input_bits);
    let universe =
        faultsim::FaultUniverse::enumerate_pruned(&netlist, design.claimed_ranges(), &reach);
    let analysis = bist_structure::analyze(&netlist, &universe);
    let mut out = analysis.report.to_json().to_json();
    out.push('\n');
    out
}

#[test]
fn lp_mini_structure_report_is_byte_stable() {
    let actual = lp_mini_report_json();
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {}: {e} (run with BLESS=1)", path.display())
    });
    assert_eq!(
        actual,
        expected,
        "the LP-MINI structure report drifted from {}; re-bless with \
         BLESS=1 if the change is intentional",
        path.display()
    );
}

#[test]
fn snapshot_parses_and_carries_the_census() {
    let report = obs::JsonValue::parse(&lp_mini_report_json()).expect("valid JSON");
    let classes = report.get("classes_after").and_then(obs::JsonValue::as_u64).expect("classes");
    let sites = report.get("sites_before").and_then(obs::JsonValue::as_u64).expect("sites");
    assert!(classes < sites, "collapsing must shrink the universe ({classes} vs {sites})");
    let merges = report.get("merges").expect("per-rule class counts");
    assert!(merges.get("wire").and_then(obs::JsonValue::as_u64).expect("wire rule") > 0);
    assert!(report.get("dominator_depth").and_then(obs::JsonValue::as_u64).expect("depth") > 0);
    let scoap = report.get("scoap").expect("scoap summary");
    assert!(matches!(scoap.get("co_histogram"), Some(obs::JsonValue::Array(b)) if !b.is_empty()));
}
