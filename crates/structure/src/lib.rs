//! Static structural analysis over the RTL netlist.
//!
//! The paper's flow spends its effort *before* simulation: ranges,
//! reachability and spectra shrink and predict the fault universe
//! statically. This crate adds the classical structural half of that
//! argument — the techniques every gate-level ATPG system applies
//! before the first vector:
//!
//! * **gate-graph expansion** ([`graph`]): the word-level netlist
//!   unrolled into primitive gates, bit-faithful to the bit-sliced
//!   simulator, with levelization, fanout and fanout-free-region
//!   decomposition computed once and shared;
//! * **post-dominator tree** ([`dominator`]): mandatory propagation
//!   paths toward the observation points;
//! * **structural fault collapsing** ([`collapse`]): exact equivalence
//!   rules (wire/buffer/inverter/AND/OR) chained transitively through
//!   fanout-free regions, projected onto the cell-level fault universe
//!   as a [`CollapsedUniverse`] that the simulator can expand back to
//!   full-universe verdicts byte-identically;
//! * **SCOAP measures** ([`scoap`]): exact controllability /
//!   observability dataflow, the principled cross-check for the lint
//!   crate's `L1xx` heuristic hard-fault predictors.
//!
//! [`analyze`] runs everything and assembles a [`StructureReport`].

#![forbid(unsafe_code)]

pub mod collapse;
pub mod dominator;
pub mod graph;
pub mod report;
pub mod scoap;

pub use collapse::{CollapsedUniverse, MergeCounts};
pub use dominator::PostDominators;
pub use graph::{CellGates, Gate, GateGraph, GateKind};
pub use report::{ScoapSummary, StructureReport};
pub use scoap::{Scoap, SCOAP_INF};

use faultsim::FaultUniverse;
use rtl::{Netlist, NodeId};

/// Everything one structural pass produces: the shared graph
/// artifacts, the collapsed universe and the aggregated report.
#[derive(Debug)]
pub struct StructureAnalysis {
    /// The expanded gate graph (levelization, fanout, FFRs).
    pub graph: GateGraph,
    /// The post-dominator tree.
    pub dominators: PostDominators,
    /// Per-gate SCOAP measures.
    pub scoap: Scoap,
    /// The collapsed fault universe over the analyzed universe.
    pub collapsed: CollapsedUniverse,
    /// The aggregated report.
    pub report: StructureReport,
}

/// Runs the full structural analysis of a netlist against a fault
/// universe (typically the session's screened universe, so the
/// collapse map composes positionally with it).
pub fn analyze(netlist: &Netlist, universe: &FaultUniverse) -> StructureAnalysis {
    let graph = GateGraph::expand(netlist);
    let dominators = PostDominators::compute(&graph);
    let scoap = Scoap::compute(&graph);
    let (collapsed, merges) = collapse::collapse(netlist, &graph, universe);

    // SCOAP aggregates over the fault-bearing cells' sum gates (the
    // cell's canonical output line).
    let mut max_cc0 = 0;
    let mut max_cc1 = 0;
    let mut max_co = 0;
    let mut unobservable = 0usize;
    let mut histogram: Vec<usize> = Vec::new();
    for (_, _, cg) in graph.cells() {
        let s = cg.sum as usize;
        if scoap.cc0[s] < SCOAP_INF {
            max_cc0 = max_cc0.max(scoap.cc0[s]);
        }
        if scoap.cc1[s] < SCOAP_INF {
            max_cc1 = max_cc1.max(scoap.cc1[s]);
        }
        let co = scoap.co[s];
        if co >= SCOAP_INF {
            unobservable += 1;
            continue;
        }
        max_co = max_co.max(co);
        let bucket = (64 - u64::from(co).leading_zeros()).saturating_sub(1) as usize;
        if histogram.len() <= bucket {
            histogram.resize(bucket + 1, 0);
        }
        histogram[bucket] += 1;
    }

    let report = StructureReport {
        gates: graph.gates().len(),
        max_level: graph.max_level(),
        ffr_count: graph.ffr_count(),
        dominator_depth: dominators.max_depth(),
        raw_lines: collapse::raw_line_count(netlist, universe),
        screened_faults: universe.uncollapsed_len(),
        sites_before: universe.len(),
        classes_after: collapsed.representatives.len(),
        prime_classes: collapsed.prime_count(),
        merges,
        scoap: ScoapSummary {
            max_cc0,
            max_cc1,
            max_co,
            unobservable_cells: unobservable,
            co_histogram: histogram,
        },
    };

    StructureAnalysis { graph, dominators, scoap, collapsed, report }
}

impl StructureAnalysis {
    /// Worst (largest) observability over each arithmetic node's cell
    /// sum gates — the static counterpart of lint's per-node hard-fault
    /// predictions. Unobservable cells report [`SCOAP_INF`]. Sorted by
    /// node id.
    pub fn worst_node_observability(&self, netlist: &Netlist) -> Vec<(NodeId, u32)> {
        let mut worst: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (node, _, cg) in self.graph.cells() {
            let co = self.scoap.co[cg.sum as usize];
            let e = worst.entry(node).or_insert(0);
            *e = (*e).max(co);
        }
        netlist
            .arithmetic_ids()
            .into_iter()
            .filter_map(|id| worst.get(&(id.index() as u32)).map(|&co| (id, co)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::NetlistBuilder;

    fn chained(width: u32) -> Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 1);
        let a1 = b.add_labeled(x, s, "a1");
        let a2 = b.add_labeled(a1, d, "a2");
        b.output(a2, "y");
        b.finish().unwrap()
    }

    #[test]
    fn analyze_assembles_a_consistent_report() {
        let n = chained(10);
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(10, 10));
        let u = FaultUniverse::enumerate(&n, &ranges);
        let a = analyze(&n, &u);
        assert_eq!(a.report.sites_before, u.len());
        assert_eq!(a.report.screened_faults, u.uncollapsed_len());
        assert!(a.report.raw_lines > a.report.screened_faults);
        assert_eq!(a.report.classes_after, a.collapsed.representatives.len());
        assert_eq!(a.report.prime_classes, a.collapsed.prime_count());
        assert!(a.report.prime_classes < a.report.classes_after, "no dominated class");
        assert!(a.report.classes_after < a.report.sites_before, "no structural merge happened");
        assert!(a.report.gates > 0);
        assert!(a.report.ffr_count > 0);
        assert!(a.report.dominator_depth > 0);
        assert!(a.report.scoap.max_co > 0);
        let histogram_total: usize = a.report.scoap.co_histogram.iter().sum();
        assert_eq!(histogram_total + a.report.scoap.unobservable_cells, a.graph.cells().count());
    }

    #[test]
    fn raw_reduction_clears_the_classical_bar_on_a_builtin_filter() {
        // The classical claim: structural collapsing removes 40-60% of
        // the raw per-line stuck-at universe. Screening, equivalence
        // and the dominance census together must clear the low end on
        // the paper's low-pass filter.
        let design = filters::designs::lowpass().expect("design LP");
        let netlist = design.netlist().clone();
        let reach = rtl::reachability::Reachability::analyze(&netlist, design.spec().input_bits);
        let u = FaultUniverse::enumerate_pruned(&netlist, design.claimed_ranges(), &reach);
        let a = analyze(&netlist, &u);
        assert!(
            a.report.reduction_vs_raw() >= 0.40,
            "reduction {:.3} below the classical 40% bar",
            a.report.reduction_vs_raw()
        );
    }

    #[test]
    fn node_observability_covers_every_arithmetic_node() {
        let n = chained(10);
        let ranges = RangeAnalysis::analyze(&n, aligned_input_range(10, 10));
        let u = FaultUniverse::enumerate(&n, &ranges);
        let a = analyze(&n, &u);
        let worst = a.worst_node_observability(&n);
        assert_eq!(worst.len(), n.arithmetic_ids().len());
        for (id, co) in worst {
            assert!(n.node(id).kind.is_arithmetic());
            // Every cell drains to an observation point in this design
            // (an output-feeding sum gate legitimately scores 0).
            assert!(co < SCOAP_INF);
        }
    }
}
