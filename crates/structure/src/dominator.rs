//! Post-dominator tree over the gate graph.
//!
//! A gate `d` *post-dominates* gate `g` when every combinational path
//! from `g`'s output to an observation point passes through `d` — the
//! classical prerequisite for dominance-based fault collapsing and a
//! direct structural proxy for observability (the deeper a gate sits in
//! the tree, the longer its mandatory propagation chain).
//!
//! The flow graph is the *combinational frame* of the circuit: edges
//! follow gate outputs to consumer pins, and both primary outputs and
//! register inputs count as observation points (a fault effect captured
//! into state is observable by the sequential machine). Register
//! outputs start new frames, so the graph is acyclic and a single
//! reverse-topological pass of the Cooper–Harvey–Kennedy intersection
//! computes the whole tree.

use crate::graph::{GateGraph, GateKind};

/// The post-dominator tree: immediate post-dominators toward a virtual
/// sink representing "observed".
#[derive(Debug)]
pub struct PostDominators {
    ipdom: Vec<u32>,
    depth: Vec<u32>,
    sink: u32,
}

impl PostDominators {
    /// Computes the tree for a gate graph.
    pub fn compute(graph: &GateGraph) -> PostDominators {
        let g_count = graph.gates().len();
        let sink = g_count as u32;

        // Flow successors: consumers for interior gates; observation
        // points (Output gates, Dff gates — next-state capture) and
        // dead gates flow straight to the sink.
        let succs = |g: usize| -> Vec<u32> {
            match graph.gates()[g].kind {
                GateKind::Output | GateKind::Dff => vec![sink],
                _ => {
                    let c = graph.consumers(g as u32);
                    if c.is_empty() {
                        vec![sink]
                    } else {
                        c.to_vec()
                    }
                }
            }
        };

        // Topological order of the flow graph (Kahn). Combinational
        // edges are id-increasing but edges into a Dff's pin are not,
        // so an explicit order is computed.
        let mut indeg = vec![0u32; g_count + 1];
        for g in 0..g_count {
            for &s in &succs(g) {
                indeg[s as usize] += 1;
            }
        }
        let mut ready: Vec<u32> =
            (0..g_count as u32 + 1).filter(|&g| indeg[g as usize] == 0).collect();
        let mut order: Vec<u32> = Vec::with_capacity(g_count + 1);
        let mut rank = vec![0u32; g_count + 1];
        while let Some(g) = ready.pop() {
            rank[g as usize] = order.len() as u32;
            order.push(g);
            if (g as usize) < g_count {
                for &s in &succs(g as usize) {
                    indeg[s as usize] -= 1;
                    if indeg[s as usize] == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), g_count + 1, "flow graph has a cycle");

        // Cooper–Harvey–Kennedy, one pass: process gates sink-first
        // (decreasing distance from the sink in topological terms), so
        // every flow successor's immediate post-dominator is final.
        let mut ipdom = vec![sink; g_count + 1];
        let mut depth = vec![0u32; g_count + 1];
        let intersect = |mut a: u32, mut b: u32, ipdom: &[u32]| -> u32 {
            while a != b {
                while rank[a as usize] < rank[b as usize] {
                    a = ipdom[a as usize];
                }
                while rank[b as usize] < rank[a as usize] {
                    b = ipdom[b as usize];
                }
            }
            a
        };
        for &g in order.iter().rev() {
            if g == sink {
                continue;
            }
            let ss = succs(g as usize);
            let mut new = ss[0];
            for &s in &ss[1..] {
                new = intersect(new, s, &ipdom);
            }
            ipdom[g as usize] = new;
            depth[g as usize] = depth[new as usize] + 1;
        }

        PostDominators { ipdom, depth, sink }
    }

    /// The immediate post-dominator of gate `g` (the virtual sink when
    /// `g` flows directly to an observation point).
    pub fn ipdom(&self, g: u32) -> u32 {
        self.ipdom[g as usize]
    }

    /// `true` when the returned id is the virtual sink, not a gate.
    pub fn is_sink(&self, id: u32) -> bool {
        id == self.sink
    }

    /// Depth of gate `g` in the tree (1 = immediately observed).
    pub fn depth(&self, g: u32) -> u32 {
        self.depth[g as usize]
    }

    /// The deepest gate in the tree — the longest mandatory
    /// propagation chain in the circuit.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GateGraph;
    use rtl::NetlistBuilder;

    fn accumulator(width: u32) -> rtl::Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.add_labeled(x, d, "acc");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn chains_of_ipdoms_terminate_at_the_sink() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let pd = PostDominators::compute(&g);
        for gid in 0..g.gates().len() as u32 {
            let mut cur = gid;
            let mut steps = 0u32;
            while !pd.is_sink(cur) {
                cur = pd.ipdom(cur);
                steps += 1;
                assert!(steps as usize <= g.gates().len(), "ipdom chain does not terminate");
            }
            assert_eq!(steps, pd.depth(gid));
        }
        assert!(pd.max_depth() > 1);
    }

    #[test]
    fn single_consumer_chains_are_dominated_by_their_consumer() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let pd = PostDominators::compute(&g);
        let acc = n.find_label("acc").unwrap();
        // and1 feeds only the carry OR: the OR post-dominates it.
        let cg = g.cell_gates(acc, 0).unwrap();
        assert_eq!(pd.ipdom(cg.and1), cg.cout);
        assert_eq!(pd.ipdom(cg.and2), cg.cout);
    }

    #[test]
    fn observation_points_sit_at_depth_one() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let pd = PostDominators::compute(&g);
        for (gid, gate) in g.gates().iter().enumerate() {
            if matches!(gate.kind, crate::graph::GateKind::Output | crate::graph::GateKind::Dff) {
                assert_eq!(pd.depth(gid as u32), 1);
            }
        }
    }
}
