//! Exact SCOAP testability measures over the gate graph.
//!
//! Classic SCOAP (Goldstein 1979): combinational 0/1-controllabilities
//! `CC0`/`CC1` flow *forward* (how many gate decisions are needed to
//! set a line), observability `CO` flows *backward* (how many gate
//! decisions are needed to propagate a line to an observation point).
//! Both are computed to a fixed point so register feedback loops — the
//! rule for a D flip-flop adds one time frame per traversal — settle at
//! their cheapest multi-frame value.
//!
//! Conventions (documented in `DESIGN.md` §13):
//!
//! * inputs cost 1 to set either way; constants cost 1 for their value
//!   and are uncontrollable to the other;
//! * wiring buffers are free, real gates (NOT/AND/OR/XOR) cost 1;
//! * a register output is free to zero (global reset) and one frame
//!   dearer than its next-state input otherwise; observing a register
//!   input costs one frame;
//! * unobservable / uncontrollable lines saturate at [`SCOAP_INF`].

use crate::graph::{GateGraph, GateKind};

/// Saturation value for unreachable controllabilities/observabilities.
pub const SCOAP_INF: u32 = u32::MAX / 4;

/// Per-gate SCOAP measures, indexed by gate id.
#[derive(Debug)]
pub struct Scoap {
    /// 0-controllability of each gate's output.
    pub cc0: Vec<u32>,
    /// 1-controllability of each gate's output.
    pub cc1: Vec<u32>,
    /// Observability of each gate's output.
    pub co: Vec<u32>,
}

fn sat(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(SCOAP_INF)
}

impl Scoap {
    /// Computes controllabilities (forward fixed point) then
    /// observabilities (backward fixed point).
    pub fn compute(graph: &GateGraph) -> Scoap {
        let g_count = graph.gates().len();
        let mut cc0 = vec![SCOAP_INF; g_count];
        let mut cc1 = vec![SCOAP_INF; g_count];

        // Forward: gate ids are topological for combinational edges, so
        // each pass fully propagates one more register frame; iterate
        // until the loops settle.
        for _ in 0..64 {
            let mut changed = false;
            for (g, gate) in graph.gates().iter().enumerate() {
                let p = |j: usize| gate.pins[j] as usize;
                let (n0, n1) = match gate.kind {
                    GateKind::Input => (1, 1),
                    GateKind::Const(false) => (1, SCOAP_INF),
                    GateKind::Const(true) => (SCOAP_INF, 1),
                    GateKind::Dff => (sat(cc0[p(0)], 1).min(1), sat(cc1[p(0)], 1)),
                    GateKind::Buf | GateKind::Output => (cc0[p(0)], cc1[p(0)]),
                    GateKind::Not => (sat(cc1[p(0)], 1), sat(cc0[p(0)], 1)),
                    GateKind::And => {
                        (sat(cc0[p(0)].min(cc0[p(1)]), 1), sat(sat(cc1[p(0)], cc1[p(1)]), 1))
                    }
                    GateKind::Or => {
                        (sat(sat(cc0[p(0)], cc0[p(1)]), 1), sat(cc1[p(0)].min(cc1[p(1)]), 1))
                    }
                    GateKind::Xor => (
                        sat(sat(cc0[p(0)], cc0[p(1)]).min(sat(cc1[p(0)], cc1[p(1)])), 1),
                        sat(sat(cc0[p(0)], cc1[p(1)]).min(sat(cc1[p(0)], cc0[p(1)])), 1),
                    ),
                };
                if n0 != cc0[g] || n1 != cc1[g] {
                    cc0[g] = n0;
                    cc1[g] = n1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Backward: observation points are free; each gate adds the
        // side-input controllability cost of propagating through it.
        let mut co = vec![SCOAP_INF; g_count];
        for (g, gate) in graph.gates().iter().enumerate() {
            if gate.kind == GateKind::Output {
                co[g] = 0;
            }
        }
        for _ in 0..64 {
            let mut changed = false;
            for (g, gate) in graph.gates().iter().enumerate().rev() {
                let base = co[g];
                if base >= SCOAP_INF {
                    continue;
                }
                for (j, &pin) in gate.pins.iter().enumerate() {
                    let other = |k: usize| gate.pins[k] as usize;
                    let cost = match gate.kind {
                        GateKind::Output | GateKind::Buf => 0,
                        // Observing a register's next-state input means
                        // observing its output one frame later.
                        GateKind::Not | GateKind::Dff => 1,
                        GateKind::And => sat(cc1[other(1 - j)], 1),
                        GateKind::Or => sat(cc0[other(1 - j)], 1),
                        GateKind::Xor => sat(cc0[other(1 - j)].min(cc1[other(1 - j)]), 1),
                        GateKind::Input | GateKind::Const(_) => unreachable!("sources have pins"),
                    };
                    let cand = sat(base, cost);
                    if cand < co[pin as usize] {
                        co[pin as usize] = cand;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        Scoap { cc0, cc1, co }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GateGraph;
    use rtl::NetlistBuilder;

    fn accumulator(width: u32) -> rtl::Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.add_labeled(x, d, "acc");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn inputs_are_cheap_and_measures_are_finite_on_live_logic() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let s = Scoap::compute(&g);
        for (gid, gate) in g.gates().iter().enumerate() {
            if gate.kind == GateKind::Input {
                assert_eq!((s.cc0[gid], s.cc1[gid]), (1, 1));
            }
        }
        // Every output-node gate is trivially observable.
        for (gid, gate) in g.gates().iter().enumerate() {
            if gate.kind == GateKind::Output {
                assert_eq!(s.co[gid], 0);
            }
        }
        // Sum gates of the adder are controllable and observable.
        let acc = n.find_label("acc").unwrap();
        for cell in 0..=n.msb_trim(acc) {
            let cg = g.cell_gates(acc, cell).unwrap();
            assert!(s.cc0[cg.sum as usize] < SCOAP_INF, "cell {cell}");
            assert!(s.cc1[cg.sum as usize] < SCOAP_INF, "cell {cell}");
            assert!(s.co[cg.sum as usize] < SCOAP_INF, "cell {cell}");
        }
    }

    #[test]
    fn upper_carry_cells_are_harder_to_control_than_the_lsb() {
        let n = accumulator(12);
        let g = GateGraph::expand(&n);
        let s = Scoap::compute(&g);
        let acc = n.find_label("acc").unwrap();
        let lsb = g.cell_gates(acc, 0).unwrap();
        let top_full = g.cell_gates(acc, n.msb_trim(acc) - 1).unwrap();
        // Zeroing a deep carry means zeroing a carry-in that the global
        // register reset no longer hands out for free; the 1-side stays
        // flat in this design because a single generate suffices at any
        // depth, so CC0 carries the depth signal.
        assert!(
            s.cc0[top_full.cout as usize] > s.cc0[lsb.cout as usize],
            "{} <= {}",
            s.cc0[top_full.cout as usize],
            s.cc0[lsb.cout as usize]
        );
        assert!(s.cc1[top_full.cout as usize] >= s.cc1[lsb.cout as usize]);
    }

    #[test]
    fn constants_are_uncontrollable_to_the_opposite_value() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let s = Scoap::compute(&g);
        for (gid, gate) in g.gates().iter().enumerate() {
            match gate.kind {
                GateKind::Const(false) => assert_eq!((s.cc0[gid], s.cc1[gid]), (1, SCOAP_INF)),
                GateKind::Const(true) => assert_eq!((s.cc0[gid], s.cc1[gid]), (SCOAP_INF, 1)),
                _ => {}
            }
        }
    }
}
