//! The structural-analysis report: collapse census, graph shape and
//! SCOAP summary, with deterministic JSON serialization (the golden
//! snapshot and the run artifact both build on it).

use crate::collapse::MergeCounts;
use obs::JsonValue;

/// Aggregated SCOAP measures over the fault-bearing cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoapSummary {
    /// Worst finite 0-controllability over cell sum gates.
    pub max_cc0: u32,
    /// Worst finite 1-controllability over cell sum gates.
    pub max_cc1: u32,
    /// Worst finite observability over cell sum gates.
    pub max_co: u32,
    /// Cells whose sum gate is structurally unobservable.
    pub unobservable_cells: usize,
    /// Histogram of cell observabilities: bucket `k` counts cells with
    /// `CO` in `[2^k, 2^(k+1))`.
    pub co_histogram: Vec<usize>,
}

/// The full report of one structural analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureReport {
    /// Gates in the expanded graph.
    pub gates: usize,
    /// Deepest combinational level.
    pub max_level: u32,
    /// Fanout-free regions.
    pub ffr_count: usize,
    /// Depth of the post-dominator tree.
    pub dominator_depth: u32,
    /// The raw per-line stuck-at universe of the active cells, before
    /// any screening — the classical collapse-ratio denominator.
    pub raw_lines: usize,
    /// Member faults of the analyzed (mask-screened) universe.
    pub screened_faults: usize,
    /// Fault classes before structural collapsing (the seed model's
    /// per-cell classes).
    pub sites_before: usize,
    /// Fault classes after structural collapsing.
    pub classes_after: usize,
    /// Classes that survive the dominance census (prime classes).
    pub prime_classes: usize,
    /// Union counts per collapsing rule, plus counted dominance pairs
    /// and dominated classes.
    pub merges: MergeCounts,
    /// SCOAP aggregates over the fault-bearing cells.
    pub scoap: ScoapSummary,
}

impl StructureReport {
    /// Fraction of the raw per-line universe removed by screening,
    /// equivalence collapsing and the dominance census combined
    /// (`1 - prime_classes / raw_lines`) — the figure classical
    /// collapsing literature quotes.
    pub fn reduction_vs_raw(&self) -> f64 {
        if self.raw_lines == 0 {
            return 0.0;
        }
        1.0 - self.prime_classes as f64 / self.raw_lines as f64
    }

    /// Fraction of the seed model's classes removed by the structural
    /// pass alone (`1 - classes_after / sites_before`).
    pub fn reduction_vs_sites(&self) -> f64 {
        if self.sites_before == 0 {
            return 0.0;
        }
        1.0 - self.classes_after as f64 / self.sites_before as f64
    }

    /// Deterministic machine-readable form (fixed field order).
    pub fn to_json(&self) -> JsonValue {
        let histogram =
            JsonValue::Array(self.scoap.co_histogram.iter().map(|&c| (c as u64).into()).collect());
        JsonValue::object()
            .push("gates", self.gates as u64)
            .push("max_level", self.max_level)
            .push("ffr_count", self.ffr_count as u64)
            .push("dominator_depth", self.dominator_depth)
            .push("raw_lines", self.raw_lines as u64)
            .push("screened_faults", self.screened_faults as u64)
            .push("sites_before", self.sites_before as u64)
            .push("classes_after", self.classes_after as u64)
            .push("prime_classes", self.prime_classes as u64)
            .push("reduction_vs_raw", self.reduction_vs_raw())
            .push("reduction_vs_sites", self.reduction_vs_sites())
            .push(
                "merges",
                JsonValue::object()
                    .push("wire", self.merges.wire as u64)
                    .push("buffer", self.merges.buffer as u64)
                    .push("inverter", self.merges.inverter as u64)
                    .push("and_inputs", self.merges.and_inputs as u64)
                    .push("or_inputs", self.merges.or_inputs as u64)
                    .push("dominance_pairs", self.merges.dominance_pairs as u64)
                    .push("dominated_classes", self.merges.dominated_classes as u64),
            )
            .push(
                "scoap",
                JsonValue::object()
                    .push("max_cc0", self.scoap.max_cc0)
                    .push("max_cc1", self.scoap.max_cc1)
                    .push("max_co", self.scoap.max_co)
                    .push("unobservable_cells", self.scoap.unobservable_cells as u64)
                    .push("co_histogram", histogram),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StructureReport {
        StructureReport {
            gates: 100,
            max_level: 9,
            ffr_count: 20,
            dominator_depth: 11,
            raw_lines: 200,
            screened_faults: 160,
            sites_before: 80,
            classes_after: 60,
            prime_classes: 50,
            merges: MergeCounts {
                wire: 30,
                buffer: 25,
                inverter: 5,
                and_inputs: 12,
                or_inputs: 6,
                dominance_pairs: 36,
                dominated_classes: 10,
            },
            scoap: ScoapSummary {
                max_cc0: 7,
                max_cc1: 19,
                max_co: 23,
                unobservable_cells: 0,
                co_histogram: vec![0, 2, 5, 9],
            },
        }
    }

    #[test]
    fn reductions_are_fractions() {
        let r = sample();
        assert!((r.reduction_vs_raw() - 0.75).abs() < 1e-12);
        assert!((r.reduction_vs_sites() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let r = sample();
        let a = r.to_json().to_json();
        assert_eq!(a, r.to_json().to_json());
        for key in [
            "gates",
            "max_level",
            "ffr_count",
            "dominator_depth",
            "raw_lines",
            "screened_faults",
            "sites_before",
            "classes_after",
            "prime_classes",
            "reduction_vs_raw",
            "reduction_vs_sites",
            "merges",
            "wire",
            "dominance_pairs",
            "dominated_classes",
            "scoap",
            "co_histogram",
        ] {
            assert!(a.contains(&format!("\"{key}\"")), "{key} missing from {a}");
        }
    }

    #[test]
    fn empty_universe_reductions_are_zero() {
        let mut r = sample();
        r.raw_lines = 0;
        r.sites_before = 0;
        assert_eq!(r.reduction_vs_raw(), 0.0);
        assert_eq!(r.reduction_vs_sites(), 0.0);
    }
}
