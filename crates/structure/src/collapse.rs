//! Structural fault collapsing over the gate graph.
//!
//! Fault points are gate outputs and gate input pins, each with two
//! stuck-at polarities. A polarity-aware union-find merges points that
//! are *exactly* functionally equivalent — the modified Boolean
//! networks are identical functions, so the faulty machines agree
//! cycle-for-cycle on every input sequence:
//!
//! * **wire** — a pin fault equals its driver's output fault when the
//!   driver has fanout 1 (the pin *is* the net); this is what chains
//!   equivalences transitively through fanout-free regions and across
//!   cell and node boundaries (carry-out into next cell's carry stem,
//!   producer sum into a consumer operand stem);
//! * **buffer** — a buffer's output s-a-v equals its input pin s-a-v;
//! * **inverter** — an inverter's output s-a-v equals its input pin
//!   s-a-¬v;
//! * **AND** — output s-a-0 equals every input pin s-a-0;
//! * **OR** — output s-a-1 equals every input pin s-a-1.
//!
//! XOR gates admit no input/output equivalence. Fault *dominance* is
//! handled on a strictly separate track: per-gate pairs (AND output
//! s-a-1 ⊃ input s-a-1, OR output s-a-0 ⊃ input s-a-0) are counted,
//! and a cell-level dominance relation — class `D` is *dominated* by
//! class `G` when `G`'s faulty cell outputs agree with `D`'s on every
//! input combination where `G` differs from the fault-free cell, so
//! any vector detecting `G` detects `D` identically — marks classes as
//! non-[`prime`](CollapsedUniverse::prime). Dominated classes are
//! **never merged**: dominance preserves detect/miss verdicts (per
//! vector) yet not detection *cycles* or MISR signatures, so merging
//! would break byte-identity; the prime flags feed the collapse census
//! and test-generation prioritization only (see `DESIGN.md` §13).
//!
//! The site projection then lifts gate-level classes back onto the
//! [`faultsim::FaultUniverse`]: two sites merge when a member fault of
//! one is structurally equivalent to a member fault of the other,
//! restricted to members whose *unmasked* cell truth table matches
//! their site representative's. That restriction keeps the whole chain
//! exact — masked-only members (equivalent to their representative only
//! on reachable input combinations) stay collapsed within their cell
//! exactly as the seed fault model defines, but are never used to
//! equate two representative machines.

use crate::graph::GateGraph;
use crate::graph::GateKind;
use faultsim::{FaultId, FaultUniverse};
use rtl::fulladder::{eval_word, eval_word_sum_only, FaFault};
use rtl::{Netlist, NodeKind};
use std::collections::HashMap;

/// The collapsed fault universe: which sites to simulate, and how to
/// expand their verdicts back over every site.
#[derive(Debug, Clone)]
pub struct CollapsedUniverse {
    /// Class representatives, in ascending [`FaultId`] order. The
    /// representative of a class is its lowest member id.
    pub representatives: Vec<FaultId>,
    /// For every site of the analyzed universe, the index of its
    /// class representative within `representatives`.
    pub class_map: Vec<u32>,
    /// Per class: `true` when the class is *prime* (not dominated by
    /// any other class). Non-prime classes are still simulated — the
    /// flag feeds the collapse census and test-generation ranking, not
    /// verdict reconstruction.
    pub prime: Vec<bool>,
}

impl CollapsedUniverse {
    /// Sites removed by structural collapsing.
    pub fn merged_sites(&self) -> usize {
        self.class_map.len() - self.representatives.len()
    }

    /// Number of prime (non-dominated) classes — the classical
    /// collapsed-universe size quoted against the raw line count.
    pub fn prime_count(&self) -> usize {
        self.prime.iter().filter(|&&p| p).count()
    }
}

/// Union counts per collapsing rule, plus the counted (never merged)
/// dominance pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeCounts {
    /// Fanout-1 pin/driver unions (the transitive chaining rule).
    pub wire: usize,
    /// Buffer input/output unions.
    pub buffer: usize,
    /// Inverter input/output unions (polarity-flipping).
    pub inverter: usize,
    /// AND-gate s-a-0 input/output unions.
    pub and_inputs: usize,
    /// OR-gate s-a-1 input/output unions.
    pub or_inputs: usize,
    /// Gate-level dominance pairs observed (reported, never merged).
    pub dominance_pairs: usize,
    /// Classes marked non-prime by cell-level dominance analysis.
    pub dominated_classes: usize,
}

/// Polarity-aware union-find over fault points.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions two keys; `true` when they were in different classes.
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Deterministic: the smaller root wins.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        true
    }
}

/// Key of a (point, stuck-at polarity) pair in the union-find.
fn key(point: u32, stuck_one: bool) -> u32 {
    point * 2 + u32::from(stuck_one)
}

/// Runs the gate-level rules and returns the union-find plus per-rule
/// counts.
fn gate_level_classes(graph: &GateGraph) -> (UnionFind, MergeCounts) {
    let mut uf = UnionFind::new(graph.fault_points() * 2);
    let mut counts = MergeCounts::default();
    for (g, gate) in graph.gates().iter().enumerate() {
        let g = g as u32;
        match gate.kind {
            GateKind::Buf | GateKind::Output | GateKind::Dff => {
                // Output taps and register inputs are wiring for fault
                // purposes: the pin is the same net as the stem below
                // (Dff *outputs* are separate fault points — the rule
                // never crosses the state boundary).
                if gate.kind == GateKind::Buf {
                    for v in [false, true] {
                        counts.buffer += usize::from(
                            uf.union(key(graph.out_point(g), v), key(graph.pin_point(g, 0), v)),
                        );
                    }
                }
            }
            GateKind::Not => {
                for v in [false, true] {
                    counts.inverter += usize::from(
                        uf.union(key(graph.out_point(g), v), key(graph.pin_point(g, 0), !v)),
                    );
                }
            }
            GateKind::And => {
                for j in 0..gate.pins.len() {
                    counts.and_inputs += usize::from(
                        uf.union(key(graph.out_point(g), false), key(graph.pin_point(g, j), false)),
                    );
                }
                counts.dominance_pairs += gate.pins.len();
            }
            GateKind::Or => {
                for j in 0..gate.pins.len() {
                    counts.or_inputs += usize::from(
                        uf.union(key(graph.out_point(g), true), key(graph.pin_point(g, j), true)),
                    );
                }
                counts.dominance_pairs += gate.pins.len();
            }
            GateKind::Input | GateKind::Const(_) | GateKind::Xor => {}
        }
        // Wire rule: a fanout-1 driver's output is the same net as the
        // one pin it feeds.
        for (j, &p) in gate.pins.iter().enumerate() {
            if graph.fanout(p) == 1 {
                for v in [false, true] {
                    counts.wire += usize::from(
                        uf.union(key(graph.pin_point(g, j), v), key(graph.out_point(p), v)),
                    );
                }
            }
        }
    }
    (uf, counts)
}

/// How a site's cell is evaluated by the simulator, which fixes the
/// truth table its member faults are compared on.
#[derive(Clone, Copy, PartialEq)]
enum CellMode {
    /// Full five-gate cell: sum and carry both compared.
    Full,
    /// Trimmed adder/subtractor top cell
    /// ([`rtl::fulladder::eval_word_sum_only`]).
    SumOnlyTop,
    /// Carry-save top cell: evaluated as a full cell but the carry is
    /// discarded, so only the sum is compared.
    CsaTop,
}

fn cell_mode(netlist: &Netlist, site: &faultsim::FaultSite) -> CellMode {
    match netlist.node(site.node).kind {
        NodeKind::CsaSum { .. } => {
            if site.cell == netlist.width() - 1 {
                CellMode::CsaTop
            } else {
                CellMode::Full
            }
        }
        _ => {
            if site.cell >= netlist.msb_trim(site.node) {
                CellMode::SumOnlyTop
            } else {
                CellMode::Full
            }
        }
    }
}

/// The *unmasked* truth table of a faulty cell: outputs on all eight
/// `(a, b-line, ci)` combinations, packed into one word.
fn truth_table(fault: FaFault, mode: CellMode) -> u32 {
    let mut tt = 0u32;
    let faults = [(fault, !0u64)];
    for combo in 0..8u32 {
        let a = if combo & 4 != 0 { !0u64 } else { 0 };
        let b = if combo & 2 != 0 { !0u64 } else { 0 };
        let ci = if combo & 1 != 0 { !0u64 } else { 0 };
        match mode {
            CellMode::Full => {
                let (s, c) = eval_word(a, b, ci, &faults);
                tt |= ((s & 1) as u32) << (2 * combo);
                tt |= ((c & 1) as u32) << (2 * combo + 1);
            }
            CellMode::SumOnlyTop => {
                tt |= ((eval_word_sum_only(a, b, ci, &faults) & 1) as u32) << combo;
            }
            CellMode::CsaTop => {
                let (s, _) = eval_word(a, b, ci, &faults);
                tt |= ((s & 1) as u32) << combo;
            }
        }
    }
    tt
}

/// The fault-free cell truth table for a mode, packed like
/// [`truth_table`].
fn good_table(mode: CellMode) -> u32 {
    let mut tt = 0u32;
    for combo in 0..8u32 {
        let a = if combo & 4 != 0 { !0u64 } else { 0 };
        let b = if combo & 2 != 0 { !0u64 } else { 0 };
        let ci = if combo & 1 != 0 { !0u64 } else { 0 };
        match mode {
            CellMode::Full => {
                let (s, c) = eval_word(a, b, ci, &[]);
                tt |= ((s & 1) as u32) << (2 * combo);
                tt |= ((c & 1) as u32) << (2 * combo + 1);
            }
            CellMode::SumOnlyTop => {
                tt |= ((eval_word_sum_only(a, b, ci, &[]) & 1) as u32) << combo;
            }
            CellMode::CsaTop => {
                let (s, _) = eval_word(a, b, ci, &[]);
                tt |= ((s & 1) as u32) << combo;
            }
        }
    }
    tt
}

/// The packed output field of one input combination in a truth table.
fn field(tt: u32, combo: u32, mode: CellMode) -> u32 {
    match mode {
        CellMode::Full => (tt >> (2 * combo)) & 3,
        CellMode::SumOnlyTop | CellMode::CsaTop => (tt >> combo) & 1,
    }
}

/// The raw per-line stuck-at universe of the active cells: both
/// polarities of every fault line of every `(node, cell)` that owns at
/// least one site, *before* any masked-equivalence screening. Full
/// cells carry 16 lines; trimmed and carry-save top cells carry only
/// the 5 sum-cone lines. This is the classical denominator collapse
/// ratios are quoted against.
pub fn raw_line_count(netlist: &Netlist, universe: &FaultUniverse) -> usize {
    let mut seen: std::collections::HashSet<(usize, u32)> = std::collections::HashSet::new();
    let mut total = 0;
    for site in universe.sites() {
        if seen.insert((site.node.index(), site.cell)) {
            total += match cell_mode(netlist, site) {
                CellMode::Full => 32,
                CellMode::SumOnlyTop | CellMode::CsaTop => 10,
            };
        }
    }
    total
}

/// Collapses a fault universe over a netlist's gate graph.
///
/// The returned [`CollapsedUniverse`] is positional over `universe`:
/// `class_map[i]` maps site `i` to its representative's index within
/// `representatives`.
pub fn collapse(
    netlist: &Netlist,
    graph: &GateGraph,
    universe: &FaultUniverse,
) -> (CollapsedUniverse, MergeCounts) {
    let (mut uf, mut counts) = gate_level_classes(graph);

    // Project gate-level classes onto sites: two sites are equivalent
    // when they own structurally-merged member faults (exact members
    // only — their unmasked truth table must match their site
    // representative's).
    let n_sites = universe.len();
    let mut site_uf = UnionFind::new(n_sites);
    let mut owner: HashMap<u32, u32> = HashMap::new();
    let mut site_tt = Vec::with_capacity(n_sites);
    let mut site_mode = Vec::with_capacity(n_sites);
    for (s, site) in universe.sites().iter().enumerate() {
        let mode = cell_mode(netlist, site);
        let rep_tt = truth_table(site.representative, mode);
        site_tt.push(rep_tt);
        site_mode.push(mode);
        for member in std::iter::once(site.representative).chain(site.member_faults.iter().copied())
        {
            if truth_table(member, mode) != rep_tt {
                continue;
            }
            let root =
                uf.find(key(graph.fault_point(site.node, site.cell, member), member.stuck_one));
            match owner.get(&root) {
                Some(&t) => {
                    site_uf.union(s as u32, t);
                }
                None => {
                    owner.insert(root, s as u32);
                }
            }
        }
    }

    // Classes in ascending order: a class's representative is its
    // lowest site id, so one ascending sweep assigns class indices.
    let mut class_index: HashMap<u32, u32> = HashMap::new();
    let mut representatives = Vec::new();
    let mut class_map = vec![0u32; n_sites];
    for s in 0..n_sites as u32 {
        let root = site_uf.find(s);
        let idx = *class_index.entry(root).or_insert_with(|| {
            representatives.push(FaultId(s));
            (representatives.len() - 1) as u32
        });
        class_map[s as usize] = idx;
    }

    // Cell-level dominance census. Sites are grouped by (node, cell);
    // within a group, class G dominates class D when G's faulty cell
    // table agrees with D's on every input combination where G differs
    // from the fault-free cell — any vector detecting G then detects D
    // with the identical corruption on that vector. Diff sets grow
    // strictly along edges (distinct classes have distinct tables), so
    // the relation is acyclic; a class is marked non-prime only when a
    // *root* class (no incoming edges anywhere) dominates it, keeping
    // every dropped class certified by a kept witness.
    let mut groups: HashMap<(usize, u32), Vec<u32>> = HashMap::new();
    for (s, site) in universe.sites().iter().enumerate() {
        groups.entry((site.node.index(), site.cell)).or_default().push(s as u32);
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for sites in groups.values() {
        let mode = site_mode[sites[0] as usize];
        let good = good_table(mode);
        let diffs: Vec<Vec<u32>> = sites
            .iter()
            .map(|&s| {
                (0..8)
                    .filter(|&t| field(site_tt[s as usize], t, mode) != field(good, t, mode))
                    .collect()
            })
            .collect();
        for (i, &g) in sites.iter().enumerate() {
            if diffs[i].is_empty() {
                continue;
            }
            for &d in sites.iter() {
                let (gc, dc) = (class_map[g as usize], class_map[d as usize]);
                if gc == dc {
                    continue;
                }
                if diffs[i].iter().all(|&t| {
                    field(site_tt[d as usize], t, mode) == field(site_tt[g as usize], t, mode)
                }) {
                    edges.push((gc, dc));
                }
            }
        }
    }
    let mut has_incoming = vec![false; representatives.len()];
    for &(_, d) in &edges {
        has_incoming[d as usize] = true;
    }
    let mut prime = vec![true; representatives.len()];
    for &(g, d) in &edges {
        if !has_incoming[g as usize] {
            prime[d as usize] = false;
        }
    }
    counts.dominated_classes = prime.iter().filter(|&&p| !p).count();

    (CollapsedUniverse { representatives, class_map, prime }, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GateGraph;
    use rtl::fulladder::Line;
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::NetlistBuilder;

    fn chained(width: u32) -> rtl::Netlist {
        // Two adders in series: a1's sum word feeds only a2, so the
        // wire rule chains classes across the node boundary.
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 1);
        let a1 = b.add_labeled(x, s, "a1");
        let d2 = b.register(x);
        let a2 = b.add_labeled(a1, d2, "a2");
        b.output(a2, "y");
        b.finish().unwrap()
    }

    fn universe_of(n: &rtl::Netlist) -> FaultUniverse {
        let ranges = RangeAnalysis::analyze(n, aligned_input_range(n.width(), n.width()));
        FaultUniverse::enumerate(n, &ranges)
    }

    #[test]
    fn collapse_is_a_partition_with_lowest_id_representatives() {
        let n = chained(8);
        let g = GateGraph::expand(&n);
        let u = universe_of(&n);
        let (c, _) = collapse(&n, &g, &u);
        assert_eq!(c.class_map.len(), u.len());
        assert!(!c.representatives.is_empty());
        assert!(c.representatives.len() <= u.len());
        // Ascending, unique representatives.
        assert!(c.representatives.windows(2).all(|w| w[0] < w[1]));
        // Every site maps to a valid class whose representative id is
        // no larger than the site's own id.
        for (s, &cls) in c.class_map.iter().enumerate() {
            let rep = c.representatives[cls as usize];
            assert!(rep.index() <= s);
            // The representative maps to itself.
            assert_eq!(c.class_map[rep.index()], cls);
        }
    }

    #[test]
    fn ripple_carry_merges_adjacent_cells() {
        let n = chained(8);
        let g = GateGraph::expand(&n);
        let u = universe_of(&n);
        let (c, counts) = collapse(&n, &g, &u);
        assert!(counts.wire > 0);
        assert!(counts.and_inputs > 0);
        assert!(counts.or_inputs > 0);
        assert!(counts.dominance_pairs > 0);
        // A Cout class and the next cell's CiStem class must share a
        // structural class somewhere in the adder.
        let a1 = n.find_label("a1").unwrap();
        let mut merged_across_cells = false;
        for (s, site) in u.sites().iter().enumerate() {
            if site.node != a1 {
                continue;
            }
            for (t, other) in u.sites().iter().enumerate().skip(s + 1) {
                if other.node == a1 && other.cell != site.cell && c.class_map[s] == c.class_map[t] {
                    merged_across_cells = true;
                }
            }
        }
        assert!(merged_across_cells, "no cross-cell merge in a ripple adder");
    }

    #[test]
    fn carry_or_output_sa0_is_dominated_and_never_merged() {
        let n = chained(8);
        let g = GateGraph::expand(&n);
        let u = universe_of(&n);
        let (c, counts) = collapse(&n, &g, &u);
        assert_eq!(c.prime.len(), c.representatives.len());
        assert_eq!(counts.dominated_classes, c.representatives.len() - c.prime_count());
        assert!(counts.dominated_classes > 0, "no dominated classes in a ripple adder");
        // Cout s-a-0 in an interior full cell is classically dominated:
        // And1 s-a-0 is detected by the same vectors with the same
        // corruption. The class stays in the representative set — prime
        // flags never shrink the simulated universe.
        let a1 = n.find_label("a1").unwrap();
        let mut found = false;
        for (s, site) in u.sites().iter().enumerate() {
            if site.node != a1 || site.cell != 2 {
                continue;
            }
            let members =
                std::iter::once(site.representative).chain(site.member_faults.iter().copied());
            for f in members {
                if f.line == Line::Cout && !f.stuck_one {
                    found = true;
                    assert!(!c.prime[c.class_map[s] as usize], "Cout s-a-0 class not dominated");
                }
            }
        }
        assert!(found, "no Cout s-a-0 site in cell 2");
        // The raw-line denominator covers every active cell at full
        // per-line granularity, so it exceeds the site count.
        assert!(raw_line_count(&n, &u) > u.len());
    }

    #[test]
    fn merged_sites_are_machine_equivalent_under_direct_simulation() {
        // The decisive soundness check: pick merged pairs and co-simulate
        // both faults in separate lanes — every cycle must agree.
        let n = chained(8);
        let g = GateGraph::expand(&n);
        let u = universe_of(&n);
        let (c, _) = collapse(&n, &g, &u);
        let mut checked = 0;
        for (s, site) in u.sites().iter().enumerate() {
            let rep = c.representatives[c.class_map[s] as usize];
            if rep.index() == s || checked >= 24 {
                continue;
            }
            let rep_site = &u.sites()[rep.index()];
            let mut sim = rtl::sim::BitSlicedSim::new(&n);
            sim.set_faults(
                rep_site.node,
                vec![rtl::sim::CellFault {
                    cell: rep_site.cell,
                    fault: rep_site.representative,
                    lanes: 1 << 1,
                }],
            );
            let member_fault =
                rtl::sim::CellFault { cell: site.cell, fault: site.representative, lanes: 1 << 2 };
            if site.node == rep_site.node {
                let mut faults = sim_faults(rep_site, 1 << 1);
                faults.push(member_fault);
                sim.set_faults(site.node, faults);
            } else {
                sim.set_faults(site.node, vec![member_fault]);
            }
            let mut state = 0x1234_5678u64;
            for _ in 0..256 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let raw = (state >> 40) & ((1u64 << n.width()) - 1);
                sim.step(n.format().sign_extend(raw));
                for out in n.output_ids() {
                    assert_eq!(
                        sim.lane_value(out, 1),
                        sim.lane_value(out, 2),
                        "sites {s} and {} diverged",
                        rep.index()
                    );
                }
            }
            checked += 1;
        }
        assert!(checked > 0, "no merged pairs to check");
    }

    fn sim_faults(site: &faultsim::FaultSite, lanes: u64) -> Vec<rtl::sim::CellFault> {
        vec![rtl::sim::CellFault { cell: site.cell, fault: site.representative, lanes }]
    }

    #[test]
    fn xor_paths_do_not_merge_sum_classes_with_operands() {
        // The Sum line of a cell whose output fans out (accumulator
        // feeding register + output) must stay its own class.
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.add_labeled(x, d, "acc");
        let d2 = b.register(y);
        let z = b.add_labeled(y, d2, "acc2");
        b.output(z, "y");
        let n = b.finish().unwrap();
        let g = GateGraph::expand(&n);
        let u = universe_of(&n);
        let (c, _) = collapse(&n, &g, &u);
        let acc = n.find_label("acc").unwrap();
        // acc's sum word fans out to d2 and acc2: no Sum-line class of
        // acc may merge with any class on acc2.
        for (s, site) in u.sites().iter().enumerate() {
            if site.node != acc || site.representative.line != Line::Sum {
                continue;
            }
            for (t, other) in u.sites().iter().enumerate() {
                if other.node != acc {
                    assert_ne!(c.class_map[s], c.class_map[t], "fanned-out sum merged");
                }
            }
        }
    }
}
