//! Gate-level expansion of the RTL netlist.
//!
//! The word-level netlist ([`rtl::Netlist`]) evaluates adders cell by
//! cell through the five-gate full-adder model and treats everything
//! else (shifts, sign extension, output taps) as wiring. This module
//! expands that evaluation into an explicit gate graph — one graph node
//! per primitive gate, one pin per gate input — that is *bit-faithful*
//! to [`rtl::sim::BitSlicedSim`]: every gate computes exactly the value
//! the simulator computes for the corresponding bit, and every fault
//! line of [`rtl::fulladder::Line`] maps onto exactly one gate output
//! or gate input pin (see [`GateGraph::fault_point`]).
//!
//! On top of the expansion the module computes the three shared static
//! artifacts reused by the collapsing, SCOAP and dominator passes:
//!
//! * **levelization** — topological depth of every gate, with inputs,
//!   constants and register outputs at level 0;
//! * **fanout / consumer lists** — how many pins each gate output
//!   drives, and which;
//! * **fanout-free regions (FFR)** — the head gate of the maximal
//!   single-path region each gate feeds into, the unit of transitive
//!   structural collapsing.

use rtl::fulladder::{FaFault, Line};
use rtl::{Netlist, NodeId, NodeKind};
use std::collections::HashMap;

/// Sentinel gate id for "no gate" (absent cell members, top-cell
/// carries).
pub const NO_GATE: u32 = u32::MAX;

/// Primitive gate kinds of the expanded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Primary-input bit (one per datapath bit of an input node).
    Input,
    /// Constant bit (from `Const` nodes, hardwired carries, `SetLsb`).
    Const(bool),
    /// Register bit: level-0 source whose input pin is the next-state
    /// driver (patched after all nodes are expanded).
    Dff,
    /// Wiring buffer: models a fanout stem inside a full-adder cell.
    Buf,
    /// Inverter (subtractor B-operand conditioning, word-level `Not`).
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR.
    Xor,
    /// Primary-output bit: the observation point fed by one bit of an
    /// `Output` node's source.
    Output,
}

/// One gate of the expanded graph.
#[derive(Debug, Clone)]
pub struct Gate {
    /// The gate's primitive kind.
    pub kind: GateKind,
    /// Driver gate ids, one per input pin (empty for sources).
    pub pins: Vec<u32>,
    /// Index of the owning netlist node.
    pub node: u32,
    /// Bit (cell) position within the owning node's word.
    pub cell: u32,
}

/// Gate ids of one expanded full-adder cell, mirroring the 16-line
/// fault model of [`rtl::fulladder`]. Absent gates are [`NO_GATE`]
/// (sum-only top cells have no stems and no carry logic).
#[derive(Debug, Clone, Copy)]
pub struct CellGates {
    /// A-operand stem buffer (`Line::AStem`).
    pub buf_a: u32,
    /// B-operand stem buffer, an inverter in subtractor cells
    /// (`Line::BStem` — the *post-inversion* line).
    pub buf_b: u32,
    /// Carry-in stem buffer (`Line::CiStem`).
    pub buf_ci: u32,
    /// First-stage XOR (`Line::X1Stem` at its output).
    pub x1: u32,
    /// A·B carry AND (`Line::And1`).
    pub and1: u32,
    /// X1·Ci carry AND (`Line::And2`).
    pub and2: u32,
    /// Sum XOR (`Line::Sum`).
    pub sum: u32,
    /// Carry-out OR (`Line::Cout`).
    pub cout: u32,
    /// `true` for the trimmed carry-less top cell of an adder or
    /// subtractor (XOR path only).
    pub sum_only: bool,
}

/// The expanded gate graph plus its shared static artifacts
/// (levelization, fanout/consumer lists, fanout-free regions), computed
/// once by [`GateGraph::expand`] and reused by every downstream pass.
///
/// Gate ids are dense `0..gate_count()` in creation order, which is
/// itself topological: a gate is always created after every gate it
/// reads, so a single forward sweep over ids is a valid evaluation
/// order (the collapse, dominator and SCOAP passes all rely on this).
#[derive(Debug)]
pub struct GateGraph {
    gates: Vec<Gate>,
    consumers: Vec<Vec<u32>>,
    fanout: Vec<u32>,
    levels: Vec<u32>,
    ffr_head: Vec<u32>,
    ffr_count: usize,
    cells: HashMap<(u32, u32), CellGates>,
    pin_base: Vec<u32>,
    total_pins: usize,
}

/// Internal gate-list builder.
struct Builder {
    gates: Vec<Gate>,
}

impl Builder {
    fn gate(&mut self, kind: GateKind, pins: Vec<u32>, node: usize, cell: usize) -> u32 {
        let id = self.gates.len() as u32;
        self.gates.push(Gate { kind, pins, node: node as u32, cell: cell as u32 });
        id
    }

    /// A full five-gate adder cell: stems for all three inputs, the
    /// two-XOR sum path and the AND/AND/OR carry path — exactly the
    /// dataflow of [`rtl::fulladder::eval_word`].
    fn full_cell(
        &mut self,
        node: usize,
        cell: usize,
        a: u32,
        b: u32,
        ci: u32,
        invert_b: bool,
    ) -> CellGates {
        let buf_a = self.gate(GateKind::Buf, vec![a], node, cell);
        let b_kind = if invert_b { GateKind::Not } else { GateKind::Buf };
        let buf_b = self.gate(b_kind, vec![b], node, cell);
        let buf_ci = self.gate(GateKind::Buf, vec![ci], node, cell);
        let x1 = self.gate(GateKind::Xor, vec![buf_a, buf_b], node, cell);
        let and1 = self.gate(GateKind::And, vec![buf_a, buf_b], node, cell);
        let and2 = self.gate(GateKind::And, vec![x1, buf_ci], node, cell);
        let sum = self.gate(GateKind::Xor, vec![x1, buf_ci], node, cell);
        let cout = self.gate(GateKind::Or, vec![and1, and2], node, cell);
        CellGates { buf_a, buf_b, buf_ci, x1, and1, and2, sum, cout, sum_only: false }
    }

    /// The trimmed top cell: two XORs, no stems, no carry logic —
    /// exactly [`rtl::fulladder::eval_word_sum_only`].
    fn sum_only_cell(
        &mut self,
        node: usize,
        cell: usize,
        a: u32,
        b: u32,
        ci: u32,
        invert_b: bool,
    ) -> CellGates {
        let b_in = if invert_b { self.gate(GateKind::Not, vec![b], node, cell) } else { b };
        let x1 = self.gate(GateKind::Xor, vec![a, b_in], node, cell);
        let sum = self.gate(GateKind::Xor, vec![x1, ci], node, cell);
        CellGates {
            buf_a: NO_GATE,
            buf_b: if invert_b { b_in } else { NO_GATE },
            buf_ci: NO_GATE,
            x1,
            and1: NO_GATE,
            and2: NO_GATE,
            sum,
            cout: NO_GATE,
            sum_only: true,
        }
    }
}

impl GateGraph {
    /// Expands a netlist into its gate graph and computes levelization,
    /// fanout and FFR decomposition in one pass each.
    ///
    /// # Panics
    ///
    /// Panics on a netlist node kind this engine does not model (the
    /// netlist IR is `#[non_exhaustive]`; every kind the simulator
    /// evaluates today is covered).
    pub fn expand(netlist: &Netlist) -> GateGraph {
        let w = netlist.width() as usize;
        let n = netlist.nodes().len();
        let mut b = Builder { gates: Vec::new() };
        // Per-node word signals: the gate whose output is each bit.
        let mut signals: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut cells: HashMap<(u32, u32), CellGates> = HashMap::new();

        // Shared carry-save cell expansion: both the sum and the carry
        // node of a CSA pair read the same physical cells, so whichever
        // of the two is reached first builds them.
        fn ensure_csa(
            b: &mut Builder,
            cells: &mut HashMap<(u32, u32), CellGates>,
            signals: &[Vec<u32>],
            netlist: &Netlist,
            sum_idx: usize,
        ) {
            if cells.contains_key(&(sum_idx as u32, 0)) {
                return;
            }
            let NodeKind::CsaSum { a, b: bb, c } = netlist.nodes()[sum_idx].kind else {
                panic!("CSA carry paired with a non-CsaSum node");
            };
            let (sa, sb, sc) = (&signals[a.index()], &signals[bb.index()], &signals[c.index()]);
            for (cell, (&a_bit, (&b_bit, &c_bit))) in sa.iter().zip(sb.iter().zip(sc)).enumerate() {
                let cg = b.full_cell(sum_idx, cell, a_bit, b_bit, c_bit, false);
                cells.insert((sum_idx as u32, cell as u32), cg);
            }
        }

        for &idx in netlist.eval_order() {
            let i = idx as usize;
            let id = netlist.node_id(i);
            let mut sig: Vec<u32> = Vec::with_capacity(w);
            match netlist.nodes()[i].kind {
                NodeKind::Input => {
                    for bit in 0..w {
                        sig.push(b.gate(GateKind::Input, vec![], i, bit));
                    }
                }
                NodeKind::Const { raw } => {
                    for bit in 0..w {
                        let v = (raw as u64 >> bit) & 1 == 1;
                        sig.push(b.gate(GateKind::Const(v), vec![], i, bit));
                    }
                }
                NodeKind::Register { .. } => {
                    // Next-state pins are patched once every node has
                    // its signals (the source may sit later in the
                    // evaluation order).
                    for bit in 0..w {
                        sig.push(b.gate(GateKind::Dff, vec![], i, bit));
                    }
                }
                NodeKind::Output { src } => {
                    for (bit, &src_bit) in signals[src.index()].iter().enumerate() {
                        sig.push(b.gate(GateKind::Output, vec![src_bit], i, bit));
                    }
                }
                NodeKind::ShiftRight { src, amount } => {
                    // Pure wiring: bit b reads source bit b+amount,
                    // clamped to the sign bit — aliases, not gates.
                    for bit in 0..w {
                        let from = (bit + amount as usize).min(w - 1);
                        sig.push(signals[src.index()][from]);
                    }
                }
                NodeKind::Not { src } => {
                    for (bit, &src_bit) in signals[src.index()].iter().enumerate() {
                        sig.push(b.gate(GateKind::Not, vec![src_bit], i, bit));
                    }
                }
                NodeKind::SetLsb { src } => {
                    sig.push(b.gate(GateKind::Const(true), vec![], i, 0));
                    sig.extend_from_slice(&signals[src.index()][1..]);
                }
                NodeKind::Add { a, b: bb } | NodeKind::Sub { a, b: bb } => {
                    let sub = matches!(netlist.nodes()[i].kind, NodeKind::Sub { .. });
                    let top = netlist.msb_trim(id) as usize;
                    // The carry into the lowest cell is hardwired: 0
                    // for an adder, 1 for a subtractor (the +1 of the
                    // two's-complement negation).
                    let mut carry = b.gate(GateKind::Const(sub), vec![], i, 0);
                    sig.resize(w, NO_GATE);
                    for cell in 0..=top {
                        let a_bit = signals[a.index()][cell];
                        let b_bit = signals[bb.index()][cell];
                        let cg = if cell < top {
                            b.full_cell(i, cell, a_bit, b_bit, carry, sub)
                        } else {
                            b.sum_only_cell(i, cell, a_bit, b_bit, carry, sub)
                        };
                        sig[cell] = cg.sum;
                        carry = cg.cout;
                        cells.insert((i as u32, cell as u32), cg);
                    }
                    // Sign extension above the trimmed top cell is
                    // wiring: upper bits alias the top sum gate.
                    for cell in top + 1..w {
                        sig[cell] = sig[top];
                    }
                }
                NodeKind::CsaSum { .. } => {
                    ensure_csa(&mut b, &mut cells, &signals, netlist, i);
                    for cell in 0..w {
                        sig.push(cells[&(i as u32, cell as u32)].sum);
                    }
                }
                NodeKind::CsaCarry { sum, .. } => {
                    ensure_csa(&mut b, &mut cells, &signals, netlist, sum.index());
                    // Carry word: bit 0 hardwired zero, bit k+1 is the
                    // carry-out of shared cell k; the top cell's carry
                    // is discarded.
                    sig.push(b.gate(GateKind::Const(false), vec![], i, 0));
                    for cell in 0..w - 1 {
                        sig.push(cells[&(sum.index() as u32, cell as u32)].cout);
                    }
                }
                ref other => panic!("structure: unmodeled node kind {other:?}"),
            }
            signals[i] = sig;
        }

        // Patch register next-state pins now that every source word has
        // its gates.
        for (i, node) in netlist.nodes().iter().enumerate() {
            if let NodeKind::Register { src } = node.kind {
                for (&dff, &src_bit) in signals[i].iter().zip(&signals[src.index()]) {
                    let dff = dff as usize;
                    debug_assert!(matches!(b.gates[dff].kind, GateKind::Dff));
                    b.gates[dff].pins = vec![src_bit];
                }
            }
        }

        let gates = b.gates;
        let g_count = gates.len();

        // Fanout and consumer lists.
        let mut fanout = vec![0u32; g_count];
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); g_count];
        for (g, gate) in gates.iter().enumerate() {
            for &p in &gate.pins {
                fanout[p as usize] += 1;
                consumers[p as usize].push(g as u32);
            }
        }

        // Levelization: sources at 0, combinational gates one past
        // their deepest driver. Gate ids are already topological for
        // combinational edges, so a single forward pass suffices.
        let mut levels = vec![0u32; g_count];
        for (g, gate) in gates.iter().enumerate() {
            levels[g] = match gate.kind {
                GateKind::Input | GateKind::Const(_) | GateKind::Dff => 0,
                _ => {
                    1 + gate
                        .pins
                        .iter()
                        .map(|&p| {
                            debug_assert!((p as usize) < g, "combinational pin from later gate");
                            levels[p as usize]
                        })
                        .max()
                        .unwrap_or(0)
                }
            };
        }

        // FFR decomposition: a gate belongs to the region of its unique
        // consumer unless it fans out, or crosses into a register or an
        // observation point. One reverse pass (consumers of
        // combinational gates always have larger ids).
        let mut ffr_head: Vec<u32> = (0..g_count as u32).collect();
        for g in (0..g_count).rev() {
            if fanout[g] == 1 {
                let c = consumers[g][0] as usize;
                match gates[c].kind {
                    GateKind::Dff | GateKind::Output => {}
                    _ => ffr_head[g] = ffr_head[c],
                }
            }
        }
        let ffr_count = ffr_head.iter().enumerate().filter(|&(g, &h)| g as u32 == h).count();

        // Pin fault-point layout: outputs first (point == gate id),
        // then pins, prefix-summed per gate.
        let mut pin_base = vec![0u32; g_count];
        let mut next = g_count as u32;
        for (g, gate) in gates.iter().enumerate() {
            pin_base[g] = next;
            next += gate.pins.len() as u32;
        }
        let total_pins = (next as usize) - g_count;

        GateGraph {
            gates,
            consumers,
            fanout,
            levels,
            ffr_head,
            ffr_count,
            cells,
            pin_base,
            total_pins,
        }
    }

    /// The gates, indexable by gate id.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gate ids consuming gate `g`'s output (one entry per pin driven).
    pub fn consumers(&self, g: u32) -> &[u32] {
        &self.consumers[g as usize]
    }

    /// Number of pins driven by gate `g`'s output.
    pub fn fanout(&self, g: u32) -> u32 {
        self.fanout[g as usize]
    }

    /// Topological level of gate `g`.
    ///
    /// Levelization invariants: sources (primary inputs, constants and
    /// register outputs) sit at level 0, and every other gate's level
    /// is `1 + max(level(input))` over its input pins — so
    /// `level(g) > level(p)` strictly for every combinational input
    /// `p` of `g`, and evaluating gates in nondecreasing level order
    /// (ties in any order) is always sound. Register *next-state*
    /// pins close the only cycles in the design and are excluded:
    /// levels measure pure combinational depth within one clock cycle.
    pub fn level(&self, g: u32) -> u32 {
        self.levels[g as usize]
    }

    /// The deepest combinational level in the graph.
    pub fn max_level(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// Head gate of `g`'s fanout-free region (a fixed point of itself).
    pub fn ffr_head(&self, g: u32) -> u32 {
        self.ffr_head[g as usize]
    }

    /// Number of distinct fanout-free regions.
    pub fn ffr_count(&self) -> usize {
        self.ffr_count
    }

    /// The expanded cell of an arithmetic node at a bit position, when
    /// that cell exists (adder/subtractor cells above the trimmed top
    /// are wiring, not cells).
    pub fn cell_gates(&self, node: NodeId, cell: u32) -> Option<&CellGates> {
        self.cells.get(&(node.index() as u32, cell))
    }

    /// Iterates every expanded cell as `(node index, cell, gates)`.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32, &CellGates)> + '_ {
        self.cells.iter().map(|(&(n, c), cg)| (n, c, cg))
    }

    /// Total number of fault points: one per gate output plus one per
    /// gate input pin.
    pub fn fault_points(&self) -> usize {
        self.gates.len() + self.total_pins
    }

    /// The fault point of gate `g`'s output.
    pub fn out_point(&self, g: u32) -> u32 {
        g
    }

    /// The fault point of gate `g`'s input pin `j`.
    pub fn pin_point(&self, g: u32, j: usize) -> u32 {
        debug_assert!(j < self.gates[g as usize].pins.len());
        self.pin_base[g as usize] + j as u32
    }

    /// Maps a cell-level fault line onto its gate-graph fault point.
    /// The stuck polarity is unchanged by the mapping (`Line::BStem` is
    /// already the post-inversion line in subtractor cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell was not expanded or the line does not exist
    /// in a sum-only cell.
    pub fn fault_point(&self, node: NodeId, cell: u32, fault: FaFault) -> u32 {
        let cg = self
            .cells
            .get(&(node.index() as u32, cell))
            .unwrap_or_else(|| panic!("no expanded cell for {node} cell {cell}"));
        if cg.sum_only {
            match fault.line {
                Line::AXor => self.pin_point(cg.x1, 0),
                Line::BXor => self.pin_point(cg.x1, 1),
                Line::X1Xor => self.pin_point(cg.sum, 0),
                Line::CiXor => self.pin_point(cg.sum, 1),
                Line::Sum => self.out_point(cg.sum),
                other => panic!("line {other:?} cannot occur in a sum-only cell"),
            }
        } else {
            match fault.line {
                Line::AStem => self.out_point(cg.buf_a),
                Line::AXor => self.pin_point(cg.x1, 0),
                Line::AAnd => self.pin_point(cg.and1, 0),
                Line::BStem => self.out_point(cg.buf_b),
                Line::BXor => self.pin_point(cg.x1, 1),
                Line::BAnd => self.pin_point(cg.and1, 1),
                Line::CiStem => self.out_point(cg.buf_ci),
                Line::CiXor => self.pin_point(cg.sum, 1),
                Line::CiAnd => self.pin_point(cg.and2, 1),
                Line::X1Stem => self.out_point(cg.x1),
                Line::X1Xor => self.pin_point(cg.sum, 0),
                Line::X1And => self.pin_point(cg.and2, 0),
                Line::And1 => self.out_point(cg.and1),
                Line::And2 => self.out_point(cg.and2),
                Line::Sum => self.out_point(cg.sum),
                Line::Cout => self.out_point(cg.cout),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::NetlistBuilder;

    fn accumulator(width: u32) -> Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.add_labeled(x, d, "acc");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn expansion_is_bit_faithful_to_the_simulator() {
        // Evaluate the gate graph combinationally for one cycle and
        // compare every output bit against BitSlicedSim.
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        for &input in &[5i64, -3, 127, -128, 0, 77] {
            // Gate-graph evaluation: registers read zero (fresh sim per
            // input keeps the frame purely combinational).
            let mut sim1 = rtl::sim::BitSlicedSim::new(&n);
            sim1.step(input);
            let mut vals = vec![false; g.gates().len()];
            for (idx, gate) in g.gates().iter().enumerate() {
                vals[idx] = match gate.kind {
                    GateKind::Input => (input as u64 >> gate.cell) & 1 == 1,
                    GateKind::Const(v) => v,
                    GateKind::Dff => false,
                    GateKind::Buf => vals[gate.pins[0] as usize],
                    GateKind::Not => !vals[gate.pins[0] as usize],
                    GateKind::And => vals[gate.pins[0] as usize] && vals[gate.pins[1] as usize],
                    GateKind::Or => vals[gate.pins[0] as usize] || vals[gate.pins[1] as usize],
                    GateKind::Xor => vals[gate.pins[0] as usize] ^ vals[gate.pins[1] as usize],
                    GateKind::Output => vals[gate.pins[0] as usize],
                };
            }
            let out = n.output_ids()[0];
            let got: i64 = n.format().sign_extend(
                g.gates()
                    .iter()
                    .enumerate()
                    .filter(|(_, gate)| {
                        gate.kind == GateKind::Output && gate.node == out.index() as u32
                    })
                    .map(|(idx, gate)| u64::from(vals[idx]) << gate.cell)
                    .sum::<u64>(),
            );
            assert_eq!(got, sim1.lane_value(out, 0), "input {input}");
        }
    }

    #[test]
    fn every_fault_line_maps_to_a_distinct_point() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let acc = n.find_label("acc").unwrap();
        let top = n.msb_trim(acc);
        // Full cell: all 16 lines map, pairwise distinct.
        let mut points = std::collections::HashSet::new();
        for line in [
            Line::AStem,
            Line::AXor,
            Line::AAnd,
            Line::BStem,
            Line::BXor,
            Line::BAnd,
            Line::CiStem,
            Line::CiXor,
            Line::CiAnd,
            Line::X1Stem,
            Line::X1Xor,
            Line::X1And,
            Line::And1,
            Line::And2,
            Line::Sum,
            Line::Cout,
        ] {
            assert!(points.insert(g.fault_point(acc, 0, FaFault { line, stuck_one: false })));
        }
        assert_eq!(points.len(), 16);
        // Sum-only top cell: the five XOR-path lines map.
        for line in rtl::fulladder::SUM_ONLY_LINES {
            g.fault_point(acc, top, FaFault { line, stuck_one: true });
        }
    }

    #[test]
    fn ripple_carry_chains_cells_and_sign_extends() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let acc = n.find_label("acc").unwrap();
        let top = n.msb_trim(acc);
        for cell in 0..top {
            let cg = g.cell_gates(acc, cell).unwrap();
            assert!(!cg.sum_only);
            // The carry-out feeds exactly the next cell's carry stem.
            let next = g.cell_gates(acc, cell + 1).unwrap();
            let expect = if next.sum_only { next.sum } else { next.buf_ci };
            assert_eq!(g.consumers(cg.cout), &[expect]);
        }
        assert!(g.cell_gates(acc, top).unwrap().sum_only);
        assert!(g.cell_gates(acc, top + 1).is_none());
    }

    #[test]
    fn levels_increase_along_the_carry_chain() {
        let n = accumulator(8);
        let g = GateGraph::expand(&n);
        let acc = n.find_label("acc").unwrap();
        let mut prev = 0;
        for cell in 0..n.msb_trim(acc) {
            let cg = g.cell_gates(acc, cell).unwrap();
            let lvl = g.level(cg.cout);
            assert!(lvl > prev, "cell {cell}: {lvl} <= {prev}");
            prev = lvl;
        }
        // The top sum gate sits at least as deep as the last carry.
        let top = g.cell_gates(acc, n.msb_trim(acc)).unwrap();
        assert!(g.max_level() >= g.level(top.sum));
        assert!(g.level(top.sum) > prev);
    }

    #[test]
    fn ffr_heads_are_fixed_points_and_bounded_by_fanout() {
        let n = accumulator(10);
        let g = GateGraph::expand(&n);
        for gid in 0..g.gates().len() as u32 {
            let h = g.ffr_head(gid);
            assert_eq!(g.ffr_head(h), h, "head of {gid} is not a fixed point");
        }
        assert!(g.ffr_count() > 0);
        assert!(g.ffr_count() <= g.gates().len());
    }

    #[test]
    fn subtractor_b_stem_is_an_inverter() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.sub_labeled(x, d, "diff");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let g = GateGraph::expand(&n);
        let diff = n.find_label("diff").unwrap();
        let cg = g.cell_gates(diff, 0).unwrap();
        assert_eq!(g.gates()[cg.buf_b as usize].kind, GateKind::Not);
        // And the hardwired carry-in of cell 0 is constant one.
        let ci_driver = g.gates()[cg.buf_ci as usize].pins[0];
        assert_eq!(g.gates()[ci_driver as usize].kind, GateKind::Const(true));
    }
}
