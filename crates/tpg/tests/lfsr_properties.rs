//! Hand-rolled property tests for the LFSR state machines, over every
//! tabulated primitive polynomial (widths 4..=24).
//!
//! The load-bearing contract is seed-load → run → state-extract
//! round-tripping: a state captured mid-run, loaded as a fresh seed,
//! must continue the sequence exactly. The `atpg` reseeding plan
//! stores such captured states as its compressed seeds, so any
//! divergence here silently corrupts every expanded top-off block.
//!
//! No property-testing dependency: cases are drawn from a fixed-seed
//! splitmix64 stream, so failures replay byte-identically.

use bist_tpg::{polynomials, Lfsr1, Lfsr2, ShiftDirection};

/// Deterministic case generator (splitmix64, fixed seed).
struct Cases(u64);

impl Cases {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A nonzero `width`-bit seed.
    fn seed(&mut self, width: u32) -> u64 {
        let mask = (1u64 << width) - 1;
        loop {
            let s = self.next() & mask;
            if s != 0 {
                return s;
            }
        }
    }
}

const DIRECTIONS: [ShiftDirection; 2] = [ShiftDirection::LsbToMsb, ShiftDirection::MsbToLsb];

#[test]
fn extracted_state_reloaded_as_seed_continues_the_sequence() {
    let mut cases = Cases(0x5EED);
    for width in 4..=24 {
        let poly = polynomials::primitive(width).expect("tabulated width");
        for direction in DIRECTIONS {
            for _ in 0..8 {
                let seed = cases.seed(width);
                let run = (cases.next() % 5000) as usize;
                let mut a = Lfsr1::with_polynomial(width, poly, seed, direction).unwrap();
                for _ in 0..run {
                    a.step();
                }
                let captured = a.state();
                let mut b = Lfsr1::with_polynomial(width, poly, captured, direction).unwrap();
                assert_eq!(b.state(), captured, "loading a seed must not perturb it");
                for k in 0..64 {
                    assert_eq!(
                        a.step(),
                        b.step(),
                        "width {width} {direction:?} seed {seed:#x} run {run}: \
                         reloaded sequence diverged at step {k}"
                    );
                }
            }
        }
    }
}

#[test]
fn state_stays_nonzero_and_within_width_for_every_polynomial() {
    let mut cases = Cases(0xF00D);
    for width in 4..=24 {
        let poly = polynomials::primitive(width).expect("tabulated width");
        let mask = (1u64 << width) - 1;
        for direction in DIRECTIONS {
            let seed = cases.seed(width);
            let mut g = Lfsr1::with_polynomial(width, poly, seed, direction).unwrap();
            for step in 0..2000 {
                let s = g.step();
                assert_eq!(s & !mask, 0, "width {width}: state {s:#x} overflows at {step}");
                assert_ne!(s, 0, "width {width} {direction:?}: locked up at step {step}");
            }
        }
    }
}

#[test]
fn small_widths_reach_the_full_maximal_period_from_any_seed() {
    // Exhaustive period walk is O(2^width); gate it to the widths
    // where that stays milliseconds even unoptimized.
    let mut cases = Cases(0xCAFE);
    for width in 4..=14 {
        let poly = polynomials::primitive(width).expect("tabulated width");
        let maximal = (1u64 << width) - 1;
        for direction in DIRECTIONS {
            let g = Lfsr1::with_polynomial(width, poly, cases.seed(width), direction).unwrap();
            assert_eq!(
                g.period(),
                maximal,
                "width {width} {direction:?}: tabulated polynomial is not primitive"
            );
        }
    }
}

#[test]
fn type2_round_trips_and_reaches_the_maximal_period() {
    let mut cases = Cases(0xB157);
    let poly = polynomials::PAPER_TYPE2_POLY;
    for _ in 0..8 {
        let seed = cases.seed(12);
        let run = (cases.next() % 3000) as usize;
        let mut a = Lfsr2::with_seed(12, poly, seed).unwrap();
        for _ in 0..run {
            a.step();
        }
        let mut b = Lfsr2::with_seed(12, poly, a.state()).unwrap();
        for k in 0..64 {
            assert_eq!(a.step(), b.step(), "Type 2 seed {seed:#x}: diverged at step {k}");
        }
    }
    assert_eq!(Lfsr2::with_seed(12, poly, 1).unwrap().period(), (1 << 12) - 1);
}

#[test]
fn reciprocal_polynomials_validate_and_round_trip_too() {
    let mut cases = Cases(0x1DEA);
    for width in 4..=24 {
        let poly = polynomials::primitive(width).expect("tabulated width");
        let recip = polynomials::reciprocal(poly, width);
        polynomials::validate(recip, width).expect("reciprocal of a valid polynomial is valid");
        assert_eq!(polynomials::reciprocal(recip, width), poly, "reciprocal is an involution");
        let seed = cases.seed(width);
        let mut a = Lfsr1::with_polynomial(width, recip, seed, ShiftDirection::LsbToMsb).unwrap();
        for _ in 0..100 {
            a.step();
        }
        let mut b =
            Lfsr1::with_polynomial(width, recip, a.state(), ShiftDirection::LsbToMsb).unwrap();
        for _ in 0..64 {
            assert_eq!(a.step(), b.step());
        }
    }
}
