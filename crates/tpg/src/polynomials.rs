//! Primitive feedback polynomials for maximal-length LFSRs.
//!
//! A polynomial of degree `n` is encoded as a bit mask with bit `i` set
//! for the `x^i` term; bit `n` (the leading term) and bit 0 (the
//! constant term) are always set. A primitive polynomial gives an LFSR
//! period of `2^n - 1` (the maximal-length sequences the paper relies on
//! for "reasonable properties": balanced, decorrelated bit streams).

use crate::TpgError;

/// Tabulated primitive polynomial of degree `width` (4..=24).
///
/// # Errors
///
/// Returns [`TpgError::UnsupportedWidth`] for widths outside the table.
///
/// # Example
///
/// ```
/// let p = bist_tpg::polynomials::primitive(12)?;
/// assert_eq!(p, 0x1053); // x^12 + x^6 + x^4 + x + 1
/// # Ok::<(), bist_tpg::TpgError>(())
/// ```
pub fn primitive(width: u32) -> Result<u64, TpgError> {
    // Standard primitive polynomials (Bardell/McAnney/Savir tables).
    let p: u64 = match width {
        4 => 0x13,       // x4+x+1
        5 => 0x25,       // x5+x2+1
        6 => 0x43,       // x6+x+1
        7 => 0x89,       // x7+x3+1
        8 => 0x11D,      // x8+x4+x3+x2+1
        9 => 0x211,      // x9+x4+1
        10 => 0x409,     // x10+x3+1
        11 => 0x805,     // x11+x2+1
        12 => 0x1053,    // x12+x6+x4+x+1
        13 => 0x201B,    // x13+x4+x3+x+1
        14 => 0x4443,    // x14+x10+x6+x+1
        15 => 0x8003,    // x15+x+1
        16 => 0x1100B,   // x16+x12+x3+x+1
        17 => 0x20009,   // x17+x3+1
        18 => 0x40081,   // x18+x7+1
        19 => 0x80027,   // x19+x5+x2+x+1
        20 => 0x100009,  // x20+x3+1
        21 => 0x200005,  // x21+x2+1
        22 => 0x400003,  // x22+x+1
        23 => 0x800021,  // x23+x5+1
        24 => 0x1000087, // x24+x7+x2+x+1
        _ => return Err(TpgError::UnsupportedWidth { width }),
    };
    Ok(p)
}

/// The paper's Type 2 LFSR polynomial: `0x12B9`,
/// `x^12 + x^9 + x^7 + x^5 + x^4 + x^3 + 1`.
pub const PAPER_TYPE2_POLY: u64 = 0x12B9;

/// Validates that `poly` is a plausible degree-`width` feedback
/// polynomial: leading and constant terms present, no higher bits set.
///
/// # Errors
///
/// Returns [`TpgError::InvalidPolynomial`] if the shape is wrong
/// (primitivity itself is not checked; use [`crate::Lfsr1::period`] in
/// tests for that).
pub fn validate(poly: u64, width: u32) -> Result<(), TpgError> {
    let ok = (2..=63).contains(&width) && poly & 1 == 1 && (poly >> width) == 1;
    if ok {
        Ok(())
    } else {
        Err(TpgError::InvalidPolynomial { poly, width })
    }
}

/// The reciprocal (bit-reversed) polynomial of the same degree — the
/// paper notes it can move an embedded XOR closer to the MSB and flatten
/// a Type 2 LFSR's spectrum.
///
/// # Example
///
/// ```
/// use bist_tpg::polynomials::reciprocal;
/// // x^4+x+1  <->  x^4+x^3+1
/// assert_eq!(reciprocal(0x13, 4), 0x19);
/// ```
pub fn reciprocal(poly: u64, width: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..=width {
        if (poly >> i) & 1 == 1 {
            out |= 1 << (width - i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_entries_validate() {
        for w in 4..=24 {
            let p = primitive(w).unwrap();
            validate(p, w).unwrap();
        }
        assert!(primitive(3).is_err());
        assert!(primitive(25).is_err());
    }

    #[test]
    fn paper_poly_validates_at_degree_12() {
        validate(PAPER_TYPE2_POLY, 12).unwrap();
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate(0x12, 4).is_err()); // no constant term
        assert!(validate(0x13, 5).is_err()); // degree mismatch
        assert!(validate(0x113, 4).is_err()); // high bits set
    }

    #[test]
    fn reciprocal_is_involutive() {
        for w in [4u32, 8, 12, 16] {
            let p = primitive(w).unwrap();
            assert_eq!(reciprocal(reciprocal(p, w), w), p);
            validate(reciprocal(p, w), w).unwrap();
        }
    }
}
