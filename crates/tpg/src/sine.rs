use crate::generator::TestGenerator;
use crate::TpgError;
use fixedpoint::QFormat;
use std::f64::consts::PI;

/// Quantized sine-wave source.
///
/// Not a BIST generator per se, but the stimulus of the paper's Section
/// 5 fault-injection experiment (its Fig. 2): a sine within the filter's
/// normal operating parameters that excites an upper-bit fault missed by
/// the LFSR test.
#[derive(Debug, Clone)]
pub struct Sine {
    width: u32,
    amplitude: f64,
    frequency: f64,
    phase: f64,
    t: u64,
    name: String,
}

impl Sine {
    /// A sine of the given `amplitude` (fraction of full scale, in
    /// `(0, 1]`) and normalized `frequency` (cycles per sample,
    /// in `(0, 0.5]`).
    ///
    /// # Errors
    ///
    /// [`TpgError::UnsupportedWidth`] or [`TpgError::InvalidParameter`]
    /// for out-of-range arguments.
    pub fn new(width: u32, amplitude: f64, frequency: f64) -> Result<Self, TpgError> {
        if !(2..=63).contains(&width) {
            return Err(TpgError::UnsupportedWidth { width });
        }
        if !(amplitude > 0.0 && amplitude <= 1.0) {
            return Err(TpgError::InvalidParameter {
                reason: format!("amplitude {amplitude} must be in (0, 1]"),
            });
        }
        if !(frequency > 0.0 && frequency <= 0.5) {
            return Err(TpgError::InvalidParameter {
                reason: format!("frequency {frequency} must be in (0, 0.5]"),
            });
        }
        Ok(Sine { width, amplitude, frequency, phase: 0.0, t: 0, name: "Sine".into() })
    }

    /// Sets the starting phase in radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }
}

impl TestGenerator for Sine {
    fn next_word(&mut self) -> i64 {
        let q = QFormat::new(self.width, self.width - 1).expect("valid width");
        let v = self.amplitude * (2.0 * PI * self.frequency * self.t as f64 + self.phase).sin();
        self.t += 1;
        let raw = (v / q.lsb()).round() as i64;
        raw.clamp(q.min_raw(), q.max_raw())
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.t = 0;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::collect_values;
    use dsp::stats::Summary;

    #[test]
    fn amplitude_is_respected() {
        let mut s = Sine::new(12, 0.5, 0.01).unwrap();
        let x = collect_values(&mut s, 1000);
        let max = x.iter().cloned().fold(0.0f64, |a, b| a.max(b.abs()));
        assert!(max <= 0.5 + 1e-3);
        assert!(max > 0.45);
    }

    #[test]
    fn sine_rms_matches_theory() {
        let mut s = Sine::new(12, 0.8, 0.05).unwrap();
        let x = collect_values(&mut s, 2000);
        let st = Summary::of(&x).unwrap();
        assert!((st.rms() - 0.8 / 2f64.sqrt()).abs() < 0.01);
    }

    #[test]
    fn full_scale_clamps_at_word_limits() {
        let mut s = Sine::new(8, 1.0, 0.25).unwrap().with_phase(-PI / 2.0);
        let words: Vec<i64> = (0..8).map(|_| s.next_word()).collect();
        assert!(words.iter().all(|&w| (-128..=127).contains(&w)));
        assert!(words.contains(&-128));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Sine::new(12, 0.0, 0.1).is_err());
        assert!(Sine::new(12, 1.5, 0.1).is_err());
        assert!(Sine::new(12, 0.5, 0.0).is_err());
        assert!(Sine::new(12, 0.5, 0.7).is_err());
        assert!(Sine::new(1, 0.5, 0.1).is_err());
    }

    #[test]
    fn reset_restarts_waveform() {
        let mut s = Sine::new(12, 0.9, 0.03).unwrap();
        let a: Vec<i64> = (0..10).map(|_| s.next_word()).collect();
        s.reset();
        let b: Vec<i64> = (0..10).map(|_| s.next_word()).collect();
        assert_eq!(a, b);
    }
}
