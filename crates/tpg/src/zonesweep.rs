use crate::generator::TestGenerator;
use crate::lfsr::{Lfsr1, ShiftDirection};
use crate::TpgError;
use fixedpoint::QFormat;
use std::f64::consts::PI;

/// Deterministic tuned test phase: an amplitude-stepped sine at a
/// chosen (passband) frequency, with a small pseudorandom dither.
///
/// The paper's conclusion proposes "more specialized test controllers
/// to produce tests tailored to the specific filter (deterministic
/// BIST)". The hardest remaining faults live in narrow activation zones
/// at specific amplitudes of each adder's primary input (the T1/T6
/// zones near half the cell weight — see `bist-core`'s zone model).
/// A sine in the filter's passband propagates to every tap at a
/// predictable gain; stepping its amplitude through many levels sweeps
/// each internal partial sum across its zones, while the dither breaks
/// bit-level correlation so lower cells keep toggling.
///
/// # Example
///
/// ```
/// use bist_tpg::{TestGenerator, ZoneSweep};
///
/// let mut gen = ZoneSweep::new(12, 0.02, 24, 96)?;
/// let words: Vec<i64> = (0..256).map(|_| gen.next_word()).collect();
/// assert!(words.iter().all(|w| (-2048..=2047).contains(w)));
/// # Ok::<(), bist_tpg::TpgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZoneSweep {
    width: u32,
    frequency: f64,
    levels: u32,
    dwell: u32,
    dither: Lfsr1,
    t: u64,
    name: String,
}

impl ZoneSweep {
    /// A sweep at normalized `frequency` with `levels` amplitude steps,
    /// dwelling `dwell` cycles per step (then wrapping to the first
    /// step).
    ///
    /// # Errors
    ///
    /// [`TpgError::UnsupportedWidth`] for widths without a tabulated
    /// dither polynomial, [`TpgError::InvalidParameter`] for a frequency
    /// outside `(0, 0.5]` or zero `levels`/`dwell`.
    pub fn new(width: u32, frequency: f64, levels: u32, dwell: u32) -> Result<Self, TpgError> {
        if !(frequency > 0.0 && frequency <= 0.5) {
            return Err(TpgError::InvalidParameter {
                reason: format!("frequency {frequency} must be in (0, 0.5]"),
            });
        }
        if levels == 0 || dwell == 0 {
            return Err(TpgError::InvalidParameter {
                reason: "levels and dwell must be nonzero".into(),
            });
        }
        let dither = Lfsr1::new(width, ShiftDirection::LsbToMsb)?;
        Ok(ZoneSweep { width, frequency, levels, dwell, dither, t: 0, name: "ZoneSweep".into() })
    }
}

impl TestGenerator for ZoneSweep {
    fn next_word(&mut self) -> i64 {
        let q = QFormat::new(self.width, self.width - 1).expect("valid width");
        let step = (self.t / self.dwell as u64) % self.levels as u64;
        // Amplitudes from near full scale down: later taps see scaled
        // copies, so a dense descending ladder crosses every zone.
        let amplitude = 0.98 * (1.0 - step as f64 / self.levels as f64);
        let carrier = amplitude * (2.0 * PI * self.frequency * self.t as f64).sin();
        // Small dither (about 1/64 full scale) from the LFSR stream.
        let d = self.dither.step() as i64 & 0x1F;
        let dither = (d - 16) as f64 * q.lsb();
        self.t += 1;
        let raw = ((carrier + dither) / q.lsb()).round() as i64;
        raw.clamp(q.min_raw(), q.max_raw())
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.t = 0;
        self.dither.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::collect_values;

    #[test]
    fn sweep_visits_many_amplitude_levels() {
        let mut gen = ZoneSweep::new(12, 0.05, 16, 40).unwrap();
        let x = collect_values(&mut gen, 16 * 40);
        // Envelope of each dwell block decreases over the sweep.
        let block_peak = |k: usize| -> f64 {
            x[k * 40..(k + 1) * 40].iter().fold(0.0f64, |m, &v| m.max(v.abs()))
        };
        assert!(block_peak(0) > 0.9);
        assert!(block_peak(15) < 0.15);
        let mut decreasing = 0;
        for k in 0..15 {
            if block_peak(k + 1) < block_peak(k) {
                decreasing += 1;
            }
        }
        assert!(decreasing >= 13, "envelope not descending: {decreasing}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ZoneSweep::new(12, 0.0, 8, 8).is_err());
        assert!(ZoneSweep::new(12, 0.6, 8, 8).is_err());
        assert!(ZoneSweep::new(12, 0.1, 0, 8).is_err());
        assert!(ZoneSweep::new(12, 0.1, 8, 0).is_err());
    }

    #[test]
    fn deterministic_and_resettable() {
        let mut gen = ZoneSweep::new(12, 0.03, 12, 32).unwrap();
        let a: Vec<i64> = (0..100).map(|_| gen.next_word()).collect();
        gen.reset();
        let b: Vec<i64> = (0..100).map(|_| gen.next_word()).collect();
        assert_eq!(a, b);
    }
}
