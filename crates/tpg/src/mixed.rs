use crate::generator::TestGenerator;
use crate::lfsr::{Lfsr1, MaxVariance, ShiftDirection};
use crate::TpgError;

/// Mode-switching generator: plays `first` for `switch_after` vectors,
/// then `second` — the paper's Section 9 mixed test-generation scheme
/// (a Type 1 LFSR switched into maximum-variance mode partway through
/// the test).
///
/// # Example
///
/// ```
/// use bist_tpg::{Mixed, TestGenerator};
///
/// let mut gen = Mixed::lfsr1_then_maxvar(12, 4)?;
/// let w: Vec<i64> = (0..8).map(|_| gen.next_word()).collect();
/// // After the switch, only the two extreme words appear.
/// assert!(w[4..].iter().all(|&x| x == 2047 || x == -2048));
/// # Ok::<(), bist_tpg::TpgError>(())
/// ```
pub struct Mixed {
    first: Box<dyn TestGenerator>,
    second: Box<dyn TestGenerator>,
    switch_after: u64,
    t: u64,
    name: String,
}

impl std::fmt::Debug for Mixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixed")
            .field("first", &self.first.name())
            .field("second", &self.second.name())
            .field("switch_after", &self.switch_after)
            .field("t", &self.t)
            .finish()
    }
}

impl Mixed {
    /// Combines two generators with a switch point.
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::InvalidParameter`] if the widths differ.
    pub fn new(
        first: Box<dyn TestGenerator>,
        second: Box<dyn TestGenerator>,
        switch_after: u64,
    ) -> Result<Self, TpgError> {
        if first.width() != second.width() {
            return Err(TpgError::InvalidParameter {
                reason: format!("generator widths differ: {} vs {}", first.width(), second.width()),
            });
        }
        let name = format!("{}/{}", first.name(), second.name());
        Ok(Mixed { first, second, switch_after, t: 0, name })
    }

    /// The paper's scheme: a Type 1 LFSR in normal mode for
    /// `switch_after` vectors, then maximum-variance mode. (The silicon
    /// version reuses one LFSR with a mode input; behaviourally the two
    /// are a normal sequence followed by a max-variance sequence.)
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] if no polynomial is
    /// tabulated for `width`.
    pub fn lfsr1_then_maxvar(width: u32, switch_after: u64) -> Result<Self, TpgError> {
        let normal = Lfsr1::new(width, ShiftDirection::LsbToMsb)?;
        let maxvar = MaxVariance::new(Lfsr1::new(width, ShiftDirection::LsbToMsb)?);
        Mixed::new(Box::new(normal), Box::new(maxvar), switch_after)
    }
}

impl TestGenerator for Mixed {
    fn next_word(&mut self) -> i64 {
        let w = if self.t < self.switch_after {
            self.first.next_word()
        } else {
            self.second.next_word()
        };
        self.t += 1;
        w
    }

    fn width(&self) -> u32 {
        self.first.width()
    }

    fn reset(&mut self) {
        self.first.reset();
        self.second.reset();
        self.t = 0;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ramp;

    #[test]
    fn switches_at_the_right_vector() {
        let a = Box::new(Ramp::with_increment(8, 1, 0).unwrap());
        let b = Box::new(Ramp::with_increment(8, -1, 100).unwrap());
        let mut m = Mixed::new(a, b, 3).unwrap();
        let w: Vec<i64> = (0..6).map(|_| m.next_word()).collect();
        assert_eq!(w, vec![0, 1, 2, 100, 99, 98]);
    }

    #[test]
    fn reset_rewinds_both_phases() {
        let mut m = Mixed::lfsr1_then_maxvar(12, 5).unwrap();
        let a: Vec<i64> = (0..10).map(|_| m.next_word()).collect();
        m.reset();
        let b: Vec<i64> = (0..10).map(|_| m.next_word()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_width_mismatch() {
        let a = Box::new(Ramp::new(8).unwrap());
        let b = Box::new(Ramp::new(12).unwrap());
        assert!(matches!(Mixed::new(a, b, 4), Err(TpgError::InvalidParameter { .. })));
    }

    #[test]
    fn name_reflects_both_modes() {
        let m = Mixed::lfsr1_then_maxvar(12, 4).unwrap();
        assert_eq!(m.name(), "LFSR-1/LFSR-M");
    }
}
