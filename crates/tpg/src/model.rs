//! Linear models of LFSR word sequences.
//!
//! Every bit of an LFSR register carries the *same* maximal-length bit
//! sequence at a different delay. Interpreting the register as a word is
//! therefore an FIR filter acting on one 0/1 white-noise-like bit
//! stream: the word sequence is `w(t) = sum_j c_j a(t + d_j)` where
//! `c_j` is bit `j`'s two's-complement weight and `d_j` its delay.
//!
//! For a Type 1 LFSR the delays are consecutive, giving the paper's
//! closed-form model `g[0] = -1, g[n] = 2^-n` (MSB-to-LSB shifting).
//! For a Type 2 (Galois) LFSR the delays scatter over the whole period;
//! [`bit_delays2`] recovers them by exploiting the window property of
//! m-sequences (every nonzero `width`-bit window occurs exactly once
//! per period).

use crate::generator::TestGenerator;
use crate::lfsr::{Lfsr1, Lfsr2, ShiftDirection};

/// The paper's linear model of an `width`-bit Type 1 LFSR
/// (`g[0] = -1`, `g[n] = 2^-n` for MSB-to-LSB shifting; the
/// time-reversed sequence for LSB-to-MSB — same magnitude spectrum).
///
/// Convolved with a subfilter's impulse response and driven by a 0/1
/// white source of variance 1/4, this model predicts internal test
/// signal variances (paper Section 7.1).
///
/// # Example
///
/// ```
/// let g = bist_tpg::model::lfsr1_model(4, bist_tpg::ShiftDirection::MsbToLsb);
/// assert_eq!(g, vec![-1.0, 0.5, 0.25, 0.125]);
/// // The model's DC gain is (almost) zero: the Type 1 low-frequency null.
/// assert!((g.iter().sum::<f64>()).abs() < 0.2);
/// ```
pub fn lfsr1_model(width: u32, direction: ShiftDirection) -> Vec<f64> {
    let mut g: Vec<f64> = Vec::with_capacity(width as usize);
    g.push(-1.0);
    for n in 1..width {
        g.push(2f64.powi(-(n as i32)));
    }
    if direction == ShiftDirection::LsbToMsb {
        g.reverse();
    }
    g
}

/// Two's-complement weight of bit `j` (LSB = 0) in a `width`-bit word
/// interpreted as a fraction in `[-1, 1)`.
pub fn bit_weight(j: u32, width: u32) -> f64 {
    if j == width - 1 {
        -1.0
    } else {
        2f64.powi(j as i32 - (width as i32 - 1))
    }
}

/// Delay `d_j` of each state bit of a Type 2 LFSR relative to bit 0's
/// sequence: `bit_j(t) = bit_0(t + d_j)`. Also returns the period.
///
/// # Panics
///
/// Panics if the LFSR's sequence is shorter than twice its width (a
/// degenerate, non-maximal polynomial).
pub fn bit_delays2(lfsr: &Lfsr2) -> (Vec<u64>, u64) {
    let mut probe = lfsr.clone();
    probe.reset();
    let width = probe.width();
    let period = probe.period();
    assert!(period >= 2 * width as u64, "sequence too short for window matching");
    let mut states = Vec::with_capacity(period as usize);
    for _ in 0..period {
        states.push(probe.step());
    }
    delays_from_states(&states, width)
}

/// Delay of each state bit of a Type 1 LFSR (for cross-checking the
/// closed-form model). Same contract as [`bit_delays2`].
///
/// # Panics
///
/// Panics if the sequence is shorter than twice the width.
pub fn bit_delays1(lfsr: &Lfsr1) -> (Vec<u64>, u64) {
    let mut probe = lfsr.clone();
    probe.reset();
    let width = probe.width();
    let period = probe.period();
    assert!(period >= 2 * width as u64, "sequence too short for window matching");
    let mut states = Vec::with_capacity(period as usize);
    for _ in 0..period {
        states.push(probe.step());
    }
    delays_from_states(&states, width)
}

fn delays_from_states(states: &[u64], width: u32) -> (Vec<u64>, u64) {
    let period = states.len() as u64;
    let bit_seq = |j: u32, t: u64| -> u64 { (states[(t % period) as usize] >> j) & 1 };
    // Window property: every nonzero `width`-bit window of the reference
    // (bit 0) sequence occurs exactly once per period.
    let window = |j: u32, start: u64| -> u64 {
        let mut key = 0u64;
        for i in 0..width as u64 {
            key |= bit_seq(j, start + i) << i;
        }
        key
    };
    let mut positions = std::collections::HashMap::new();
    for t in 0..period {
        positions.insert(window(0, t), t);
    }
    let delays: Vec<u64> = (0..width)
        .map(|j| *positions.get(&window(j, 0)).expect("m-sequence window must occur"))
        .collect();
    (delays, period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomials;

    #[test]
    fn model_matches_paper_definition() {
        let g = lfsr1_model(12, ShiftDirection::MsbToLsb);
        assert_eq!(g.len(), 12);
        assert_eq!(g[0], -1.0);
        assert_eq!(g[1], 0.5);
        assert_eq!(g[11], 2f64.powi(-11));
        // White 0/1 noise (variance 1/4) through g: variance 1/3 — the
        // paper's 0.3333 word variance.
        let var: f64 = 0.25 * g.iter().map(|x| x * x).sum::<f64>();
        assert!((var - 1.0 / 3.0).abs() < 1e-3, "variance {var}");
    }

    #[test]
    fn lsb_to_msb_model_is_reversed() {
        let a = lfsr1_model(8, ShiftDirection::MsbToLsb);
        let mut b = lfsr1_model(8, ShiftDirection::LsbToMsb);
        b.reverse();
        assert_eq!(a, b);
    }

    #[test]
    fn bit_weights_sum_like_twos_complement() {
        // A word of all ones = -2^-(w-1).
        let w = 8;
        let total: f64 = (0..w).map(|j| bit_weight(j, w)).sum();
        assert!((total + 2f64.powi(-(w as i32 - 1))).abs() < 1e-12);
    }

    #[test]
    fn type1_lsb_to_msb_delays_are_consecutive_descending() {
        // LSB-to-MSB: bit j entered j cycles ago -> bit_j(t) = a(t - j),
        // i.e. delays d_j = period - j (mod period) except bit 0.
        let lfsr = Lfsr1::new(10, ShiftDirection::LsbToMsb).unwrap();
        let (delays, period) = bit_delays1(&lfsr);
        assert_eq!(delays[0], 0);
        for (j, &d) in delays.iter().enumerate().skip(1) {
            assert_eq!(d % period, period - j as u64, "bit {j}");
        }
    }

    #[test]
    fn type2_delays_reconstruct_the_word_sequence() {
        let lfsr = Lfsr2::new(10, polynomials::primitive(10).unwrap()).unwrap();
        let (delays, period) = bit_delays2(&lfsr);
        // Re-simulate and verify bit_j(t) == bit_0(t + d_j) everywhere.
        let mut probe = lfsr;
        probe.reset();
        let mut states = Vec::new();
        for _ in 0..period {
            states.push(probe.step());
        }
        for j in 0..10usize {
            for t in 0..period {
                let expect = (states[((t + delays[j]) % period) as usize]) & 1;
                let got = (states[t as usize] >> j) & 1;
                assert_eq!(got, expect, "bit {j} at t {t}");
            }
        }
    }

    #[test]
    fn type2_delays_are_scattered() {
        // Unlike Type 1, Galois bit delays are not consecutive — that is
        // why the Type 2 spectrum is polynomial-dependent.
        let lfsr = Lfsr2::new(12, polynomials::PAPER_TYPE2_POLY).unwrap();
        let (delays, period) = bit_delays2(&lfsr);
        assert_eq!(period, 4095);
        let consecutive = (0..12).all(|j| delays[j] % period == (period - j as u64) % period);
        assert!(!consecutive, "Galois delays unexpectedly consecutive: {delays:?}");
    }
}
