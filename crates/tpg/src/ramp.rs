use crate::generator::TestGenerator;
use crate::TpgError;
use fixedpoint::QFormat;

/// Counter-based test generator ("Ramp"): counts by a fixed increment,
/// wrapping through the two's-complement range — a sawtooth whose power
/// is concentrated at very low frequencies (the paper's Fig. 4 "Ramp"
/// curve). Counters are attractive because they are often already on
/// chip.
#[derive(Debug, Clone)]
pub struct Ramp {
    width: u32,
    increment: i64,
    start: i64,
    value: i64,
    name: String,
}

impl Ramp {
    /// A count-by-one ramp starting at zero.
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] for widths outside `2..=63`.
    pub fn new(width: u32) -> Result<Self, TpgError> {
        Self::with_increment(width, 1, 0)
    }

    /// A ramp with an explicit increment and start value.
    ///
    /// # Errors
    ///
    /// [`TpgError::UnsupportedWidth`] for bad widths;
    /// [`TpgError::InvalidParameter`] for a zero increment.
    pub fn with_increment(width: u32, increment: i64, start: i64) -> Result<Self, TpgError> {
        if !(2..=63).contains(&width) {
            return Err(TpgError::UnsupportedWidth { width });
        }
        if increment == 0 {
            return Err(TpgError::InvalidParameter { reason: "increment must be nonzero".into() });
        }
        let q = QFormat::new(width, width - 1).expect("validated width");
        Ok(Ramp {
            width,
            increment,
            start: q.wrap(start),
            value: q.wrap(start),
            name: "Ramp".into(),
        })
    }
}

impl TestGenerator for Ramp {
    fn next_word(&mut self) -> i64 {
        let q = QFormat::new(self.width, self.width - 1).expect("valid width");
        let out = self.value;
        self.value = q.wrap(self.value + self.increment);
        out
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.value = self.start;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::collect_values;
    use dsp::stats::Summary;

    #[test]
    fn counts_and_wraps() {
        let mut r = Ramp::with_increment(4, 1, 6).unwrap();
        let seq: Vec<i64> = (0..5).map(|_| r.next_word()).collect();
        assert_eq!(seq, vec![6, 7, -8, -7, -6]);
    }

    #[test]
    fn full_period_visits_every_word() {
        let mut r = Ramp::new(6).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(r.next_word()));
        }
        assert_eq!(r.next_word(), 0); // wrapped around
    }

    #[test]
    fn sawtooth_variance_is_one_third() {
        let mut r = Ramp::new(12).unwrap();
        let x = collect_values(&mut r, 4096);
        let s = Summary::of(&x).unwrap();
        assert!((s.variance - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn power_concentrates_at_low_frequency() {
        let mut r = Ramp::new(12).unwrap();
        let x = collect_values(&mut r, 8192);
        let spec = dsp::spectrum::welch(&x, 1024, dsp::window::Window::Hann).unwrap();
        assert!(spec.power_fraction_below(0.05) > 0.9, "{}", spec.power_fraction_below(0.05));
    }

    #[test]
    fn rejects_zero_increment() {
        assert!(Ramp::with_increment(8, 0, 0).is_err());
    }

    #[test]
    fn reset_restores_start() {
        let mut r = Ramp::with_increment(8, 3, -5).unwrap();
        let a = r.next_word();
        r.next_word();
        r.reset();
        assert_eq!(r.next_word(), a);
    }
}
