use crate::generator::TestGenerator;
use crate::polynomials;
use crate::TpgError;
use fixedpoint::QFormat;

/// Shift direction of an LFSR whose whole state is read as the test
/// word. Both give maximal-length sequences; the paper notes the Type 1
/// spectrum is insensitive to the direction while Type 2 is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftDirection {
    /// New bit enters at the LSB; bits move toward the MSB (the
    /// configuration of the paper's Section 7.2 experiment).
    LsbToMsb,
    /// New bit enters at the MSB; bits move toward the LSB (the
    /// configuration of the paper's `g[n]` linear model).
    MsbToLsb,
}

fn reverse_low_bits(x: u64, n: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..n {
        if (x >> i) & 1 == 1 {
            out |= 1 << (n - 1 - i);
        }
    }
    out
}

/// Type 1 (external-XOR, Fibonacci) LFSR. The entire `width`-bit state
/// is the test word, interpreted as a two's-complement fraction.
///
/// # Example
///
/// ```
/// use bist_tpg::{Lfsr1, ShiftDirection, TestGenerator};
///
/// let mut gen = Lfsr1::new(8, ShiftDirection::MsbToLsb)?;
/// assert_eq!(gen.period(), 255); // maximal length
/// # Ok::<(), bist_tpg::TpgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lfsr1 {
    width: u32,
    fb_mask: u64,
    state_mask: u64,
    seed: u64,
    state: u64,
    direction: ShiftDirection,
    name: String,
}

impl Lfsr1 {
    /// Creates a maximal-length Type 1 LFSR from the tabulated primitive
    /// polynomial for `width`, seeded with all ones.
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] if no polynomial is
    /// tabulated for `width`.
    pub fn new(width: u32, direction: ShiftDirection) -> Result<Self, TpgError> {
        let poly = polynomials::primitive(width)?;
        Self::with_polynomial(width, poly, (1u64 << width) - 1, direction)
    }

    /// Creates a Type 1 LFSR with an explicit polynomial and seed.
    ///
    /// # Errors
    ///
    /// [`TpgError::InvalidPolynomial`] for a malformed polynomial,
    /// [`TpgError::ZeroSeed`] for the all-zero lock-up seed.
    pub fn with_polynomial(
        width: u32,
        poly: u64,
        seed: u64,
        direction: ShiftDirection,
    ) -> Result<Self, TpgError> {
        polynomials::validate(poly, width)?;
        let state_mask = (1u64 << width) - 1;
        if seed & state_mask == 0 {
            return Err(TpgError::ZeroSeed);
        }
        let low = poly & state_mask;
        let fb_mask = match direction {
            ShiftDirection::LsbToMsb => reverse_low_bits(low, width),
            ShiftDirection::MsbToLsb => low,
        };
        Ok(Lfsr1 {
            width,
            fb_mask,
            state_mask,
            seed: seed & state_mask,
            state: seed & state_mask,
            direction,
            name: "LFSR-1".to_string(),
        })
    }

    /// Current raw state bits.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the raw state one step and returns the new state.
    pub fn step(&mut self) -> u64 {
        let fb = ((self.state & self.fb_mask).count_ones() & 1) as u64;
        self.state = match self.direction {
            ShiftDirection::LsbToMsb => ((self.state << 1) | fb) & self.state_mask,
            ShiftDirection::MsbToLsb => (self.state >> 1) | (fb << (self.width - 1)),
        };
        self.state
    }

    /// Sequence period from the current seed (steps until the state
    /// recurs; `2^width - 1` for a primitive polynomial).
    pub fn period(&self) -> u64 {
        let mut probe = self.clone();
        probe.state = probe.seed;
        let mut count = 0u64;
        loop {
            probe.step();
            count += 1;
            if probe.state == probe.seed || count > probe.state_mask + 1 {
                return count;
            }
        }
    }

    /// The shift direction.
    pub fn direction(&self) -> ShiftDirection {
        self.direction
    }
}

impl TestGenerator for Lfsr1 {
    fn next_word(&mut self) -> i64 {
        let s = self.step();
        QFormat::new(self.width, self.width - 1).expect("valid width").sign_extend(s)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Type 2 (embedded-XOR, Galois) LFSR, shifting LSB-to-MSB. The entire
/// state is the test word. The paper's instance uses polynomial
/// [`polynomials::PAPER_TYPE2_POLY`] (`0x12B9`).
#[derive(Debug, Clone)]
pub struct Lfsr2 {
    width: u32,
    poly_low: u64,
    state_mask: u64,
    seed: u64,
    state: u64,
    name: String,
}

impl Lfsr2 {
    /// Creates a Type 2 LFSR with the given polynomial, seeded with all
    /// ones.
    ///
    /// # Errors
    ///
    /// [`TpgError::InvalidPolynomial`] for a malformed polynomial.
    pub fn new(width: u32, poly: u64) -> Result<Self, TpgError> {
        Self::with_seed(width, poly, (1u64 << width) - 1)
    }

    /// Creates a Type 2 LFSR with an explicit seed.
    ///
    /// # Errors
    ///
    /// [`TpgError::InvalidPolynomial`] or [`TpgError::ZeroSeed`].
    pub fn with_seed(width: u32, poly: u64, seed: u64) -> Result<Self, TpgError> {
        polynomials::validate(poly, width)?;
        let state_mask = (1u64 << width) - 1;
        if seed & state_mask == 0 {
            return Err(TpgError::ZeroSeed);
        }
        Ok(Lfsr2 {
            width,
            poly_low: poly & state_mask,
            state_mask,
            seed: seed & state_mask,
            state: seed & state_mask,
            name: "LFSR-2".to_string(),
        })
    }

    /// Current raw state bits.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances the raw state one step and returns the new state.
    pub fn step(&mut self) -> u64 {
        let out = (self.state >> (self.width - 1)) & 1;
        self.state =
            ((self.state << 1) & self.state_mask) ^ if out == 1 { self.poly_low } else { 0 };
        self.state
    }

    /// Sequence period from the seed.
    pub fn period(&self) -> u64 {
        let mut probe = self.clone();
        probe.state = probe.seed;
        let mut count = 0u64;
        loop {
            probe.step();
            count += 1;
            if probe.state == probe.seed || count > probe.state_mask + 1 {
                return count;
            }
        }
    }
}

impl TestGenerator for Lfsr2 {
    fn next_word(&mut self) -> i64 {
        let s = self.step();
        QFormat::new(self.width, self.width - 1).expect("valid width").sign_extend(s)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The paper's decorrelator attached to a Type 1 LFSR ("LFSR-D"):
/// whenever the LSB of the LFSR word is 1, all other bits are inverted.
/// This flattens the Type 1 spectrum while preserving maximal-sequence
/// properties (no repeated vectors, near-zero mean, variance ≈ 1/3).
#[derive(Debug, Clone)]
pub struct Decorrelated {
    inner: Lfsr1,
    name: String,
}

impl Decorrelated {
    /// Wraps a Type 1 LFSR with the decorrelator network.
    pub fn new(inner: Lfsr1) -> Self {
        Decorrelated { inner, name: "LFSR-D".to_string() }
    }

    /// Convenience: decorrelated maximal LFSR of `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] if no polynomial is
    /// tabulated for `width`.
    pub fn maximal(width: u32, direction: ShiftDirection) -> Result<Self, TpgError> {
        Ok(Self::new(Lfsr1::new(width, direction)?))
    }
}

impl TestGenerator for Decorrelated {
    fn next_word(&mut self) -> i64 {
        let s = self.inner.step();
        let mask = (1u64 << self.inner.width) - 1;
        let out = if s & 1 == 1 { s ^ (mask & !1) } else { s };
        QFormat::new(self.inner.width, self.inner.width - 1).expect("valid width").sign_extend(out)
    }

    fn width(&self) -> u32 {
        self.inner.width
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Maximum-variance mode ("LFSR-M"): one LFSR bit per cycle selects
/// between the most positive and the most negative word, giving a flat
/// spectrum with variance 1 — good at exercising upper datapath bits,
/// poor at lower bits (all bits of the word are fully correlated).
#[derive(Debug, Clone)]
pub struct MaxVariance {
    inner: Lfsr1,
    name: String,
}

impl MaxVariance {
    /// Drives max-variance words from the given LFSR's bit stream.
    pub fn new(inner: Lfsr1) -> Self {
        MaxVariance { inner, name: "LFSR-M".to_string() }
    }

    /// Convenience: max-variance generator over a maximal `width`-bit
    /// LFSR.
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] if no polynomial is
    /// tabulated for `width`.
    pub fn maximal(width: u32) -> Result<Self, TpgError> {
        Ok(Self::new(Lfsr1::new(width, ShiftDirection::LsbToMsb)?))
    }
}

impl TestGenerator for MaxVariance {
    fn next_word(&mut self) -> i64 {
        let s = self.inner.step();
        let q = QFormat::new(self.inner.width, self.inner.width - 1).expect("valid width");
        if s & 1 == 1 {
            q.max_raw()
        } else {
            q.min_raw()
        }
    }

    fn width(&self) -> u32 {
        self.inner.width
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::collect_values;
    use dsp::stats::Summary;

    #[test]
    fn lfsr1_is_maximal_both_directions() {
        for w in 4..=14 {
            for dir in [ShiftDirection::LsbToMsb, ShiftDirection::MsbToLsb] {
                let gen = Lfsr1::new(w, dir).unwrap();
                assert_eq!(gen.period(), (1 << w) - 1, "width {w} {dir:?}");
            }
        }
    }

    #[test]
    fn lfsr2_is_maximal_with_table_poly() {
        for w in 4..=14 {
            let gen = Lfsr2::new(w, polynomials::primitive(w).unwrap()).unwrap();
            assert_eq!(gen.period(), (1 << w) - 1, "width {w}");
        }
    }

    #[test]
    fn paper_type2_polynomial_is_maximal() {
        let gen = Lfsr2::new(12, polynomials::PAPER_TYPE2_POLY).unwrap();
        assert_eq!(gen.period(), 4095);
    }

    #[test]
    fn lfsr1_visits_every_nonzero_word() {
        let mut gen = Lfsr1::new(10, ShiftDirection::LsbToMsb).unwrap();
        let mut seen = vec![false; 1024];
        for _ in 0..1023 {
            gen.next_word();
            let s = gen.state() as usize;
            assert!(!seen[s], "state repeated early");
            seen[s] = true;
        }
        assert!(!seen[0], "zero state must never occur");
    }

    #[test]
    fn lfsr1_statistics_match_paper() {
        // Variance 1/3 (paper: "the signal variance is 0.3333",
        // std 0.577), near-zero mean.
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let x = collect_values(&mut gen, 4095);
        let s = Summary::of(&x).unwrap();
        assert!(s.mean.abs() < 0.01, "mean {}", s.mean);
        assert!((s.variance - 1.0 / 3.0).abs() < 0.01, "variance {}", s.variance);
        assert!((s.std_dev() - 0.577).abs() < 0.01);
    }

    #[test]
    fn decorrelated_preserves_first_order_statistics() {
        let mut gen = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).unwrap();
        let x = collect_values(&mut gen, 4095);
        let s = Summary::of(&x).unwrap();
        assert!(s.mean.abs() < 0.01);
        assert!((s.variance - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn decorrelated_has_no_repeated_vectors_over_period() {
        let mut gen = Decorrelated::maximal(10, ShiftDirection::LsbToMsb).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1023 {
            assert!(seen.insert(gen.next_word()), "repeated vector");
        }
    }

    #[test]
    fn decorrelator_reduces_successive_correlation() {
        // Lag-1 autocorrelation: strong for LFSR-1, weak for LFSR-D.
        let mut plain = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let mut deco = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).unwrap();
        let xp = collect_values(&mut plain, 4095);
        let xd = collect_values(&mut deco, 4095);
        let r = |x: &[f64]| {
            let c = dsp::conv::sample_autocorrelation(x, 2);
            c[1] / c[0]
        };
        assert!(r(&xp).abs() > 0.15, "plain lag-1 {}", r(&xp));
        assert!(r(&xd).abs() < 0.05, "decorrelated lag-1 {}", r(&xd));
    }

    #[test]
    fn max_variance_words_are_extremes() {
        let mut gen = MaxVariance::maximal(12).unwrap();
        let x: Vec<i64> = (0..100).map(|_| gen.next_word()).collect();
        assert!(x.iter().all(|&w| w == 2047 || w == -2048));
        assert!(x.contains(&2047));
        assert!(x.contains(&-2048));
    }

    #[test]
    fn max_variance_variance_is_one() {
        let mut gen = MaxVariance::maximal(12).unwrap();
        let x = collect_values(&mut gen, 4095);
        let s = Summary::of(&x).unwrap();
        assert!((s.variance - 1.0).abs() < 0.01, "variance {}", s.variance);
    }

    #[test]
    fn reset_restores_sequence() {
        let mut gen = Lfsr1::new(12, ShiftDirection::MsbToLsb).unwrap();
        let a: Vec<i64> = (0..16).map(|_| gen.next_word()).collect();
        gen.reset();
        let b: Vec<i64> = (0..16).map(|_| gen.next_word()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_seed_is_rejected() {
        assert!(matches!(
            Lfsr1::with_polynomial(8, 0x11D, 0, ShiftDirection::LsbToMsb),
            Err(TpgError::ZeroSeed)
        ));
        assert!(matches!(Lfsr2::with_seed(8, 0x11D, 0), Err(TpgError::ZeroSeed)));
    }

    #[test]
    fn lsb_to_msb_words_double_between_steps() {
        // The doubling (exponential-segment) structure of the paper's
        // Fig. 5: the next word is 2*w + {0,1} modulo the word width.
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let q = QFormat::new(12, 11).unwrap();
        let mut prev = gen.next_word();
        for _ in 0..100 {
            let next = gen.next_word();
            let doubled0 = q.wrap(prev * 2);
            let doubled1 = q.wrap(prev * 2 + 1);
            assert!(next == doubled0 || next == doubled1);
            prev = next;
        }
    }
}
