use std::error::Error;
use std::fmt;

/// Errors produced when constructing test generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TpgError {
    /// Requested word width has no table entry / is unsupported.
    UnsupportedWidth {
        /// The offending width.
        width: u32,
    },
    /// A feedback polynomial was rejected (degree mismatch, or the
    /// constant term is missing).
    InvalidPolynomial {
        /// The offending polynomial mask.
        poly: u64,
        /// Required degree.
        width: u32,
    },
    /// An all-zero LFSR seed (the lock-up state).
    ZeroSeed,
    /// A generator parameter was out of range; the message says which.
    InvalidParameter {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for TpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpgError::UnsupportedWidth { width } => {
                write!(f, "no primitive polynomial tabulated for width {width}")
            }
            TpgError::InvalidPolynomial { poly, width } => {
                write!(
                    f,
                    "polynomial {poly:#x} is not a degree-{width} polynomial with constant term"
                )
            }
            TpgError::ZeroSeed => write!(f, "LFSR seed must be nonzero"),
            TpgError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl Error for TpgError {}
