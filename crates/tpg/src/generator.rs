use fixedpoint::QFormat;

/// A clocked test-pattern generator producing one word per cycle.
///
/// Words are `width()`-bit two's-complement rawvalues; interpreted as the
/// paper interprets all signals, they are fractions in `[-1, 1)`
/// (`raw * 2^-(width-1)`).
pub trait TestGenerator {
    /// Produces the next test word (sign-extended raw value).
    fn next_word(&mut self) -> i64;

    /// Word width in bits.
    fn width(&self) -> u32;

    /// Restores the generator to its initial state.
    fn reset(&mut self);

    /// Short display name ("LFSR-1", "Ramp", ...).
    fn name(&self) -> &str;

    /// The word format.
    fn format(&self) -> QFormat {
        QFormat::new(self.width(), self.width() - 1).expect("generator widths are valid")
    }
}

impl<G: TestGenerator + ?Sized> TestGenerator for Box<G> {
    fn next_word(&mut self) -> i64 {
        (**self).next_word()
    }
    fn width(&self) -> u32 {
        (**self).width()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Collects `n` raw words from a generator.
pub fn collect_words(gen: &mut dyn TestGenerator, n: usize) -> Vec<i64> {
    (0..n).map(|_| gen.next_word()).collect()
}

/// Collects `n` words as fractional values in `[-1, 1)`.
pub fn collect_values(gen: &mut dyn TestGenerator, n: usize) -> Vec<f64> {
    let lsb = gen.format().lsb();
    (0..n).map(|_| gen.next_word() as f64 * lsb).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ramp, TestGenerator};

    #[test]
    fn collect_helpers_work_through_trait_objects() {
        let mut gen: Box<dyn TestGenerator> = Box::new(Ramp::new(8).unwrap());
        let words = collect_words(&mut *gen, 3);
        assert_eq!(words.len(), 3);
        gen.reset();
        let values = collect_values(&mut *gen, 3);
        assert_eq!(values.len(), 3);
        assert!((values[1] - words[1] as f64 / 128.0).abs() < 1e-12);
        assert_eq!(gen.format().width(), 8);
    }
}
