use crate::generator::TestGenerator;
use crate::TpgError;

/// Width adapter: emits the top `width` bits of a wider generator's
/// words.
///
/// The paper's conclusion lists "use of longer test sequences (with
/// larger LFSRs to avoid input cycling)" among the coverage boosters: a
/// 12-bit maximal LFSR repeats after 4095 vectors, so an 8k or 16k test
/// replays patterns; driving the 12-bit filter input from the top bits
/// of a 16- or 20-bit LFSR keeps the sequence fresh for the whole test.
///
/// # Example
///
/// ```
/// use bist_tpg::{Lfsr1, Resized, ShiftDirection, TestGenerator};
///
/// let wide = Lfsr1::new(20, ShiftDirection::LsbToMsb)?;
/// let mut gen = Resized::new(Box::new(wide), 12)?;
/// assert_eq!(gen.width(), 12);
/// assert!((-2048..=2047).contains(&gen.next_word()));
/// # Ok::<(), bist_tpg::TpgError>(())
/// ```
pub struct Resized {
    inner: Box<dyn TestGenerator>,
    width: u32,
    name: String,
}

impl std::fmt::Debug for Resized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resized")
            .field("inner", &self.inner.name())
            .field("width", &self.width)
            .finish()
    }
}

impl Resized {
    /// Wraps `inner`, keeping the top `width` bits of each word.
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::InvalidParameter`] if `width` exceeds the
    /// inner generator's width or is zero.
    pub fn new(inner: Box<dyn TestGenerator>, width: u32) -> Result<Self, TpgError> {
        if width == 0 || width > inner.width() {
            return Err(TpgError::InvalidParameter {
                reason: format!("target width {width} must be in 1..={}", inner.width()),
            });
        }
        let name = format!("{}/{}b", inner.name(), width);
        Ok(Resized { inner, width, name })
    }
}

impl TestGenerator for Resized {
    fn next_word(&mut self) -> i64 {
        // Arithmetic shift keeps the sign: top bits of the wide word.
        self.inner.next_word() >> (self.inner.width() - self.width)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::collect_values;
    use crate::{Decorrelated, Lfsr1, ShiftDirection};
    use dsp::stats::Summary;

    #[test]
    fn words_fit_target_width_with_uniform_statistics() {
        let inner = Decorrelated::maximal(16, ShiftDirection::LsbToMsb).unwrap();
        let mut gen = Resized::new(Box::new(inner), 12).unwrap();
        let x = collect_values(&mut gen, 8192);
        assert!(x.iter().all(|&v| (-1.0..1.0).contains(&v)));
        let s = Summary::of(&x).unwrap();
        assert!((s.variance - 1.0 / 3.0).abs() < 0.02, "variance {}", s.variance);
    }

    #[test]
    fn avoids_input_cycling_beyond_the_narrow_period() {
        // A 12-bit LFSR repeats after 4095 words; a resized 16-bit LFSR
        // does not.
        let narrow = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let mut narrow: Box<dyn TestGenerator> = Box::new(narrow);
        let head: Vec<i64> = (0..64).map(|_| narrow.next_word()).collect();
        for _ in 64..4095 {
            narrow.next_word();
        }
        let repeat: Vec<i64> = (0..64).map(|_| narrow.next_word()).collect();
        assert_eq!(head, repeat, "12-bit LFSR must cycle at 4095");

        let wide = Lfsr1::new(16, ShiftDirection::LsbToMsb).unwrap();
        let mut gen = Resized::new(Box::new(wide), 12).unwrap();
        let head: Vec<i64> = (0..64).map(|_| gen.next_word()).collect();
        for _ in 64..4095 {
            gen.next_word();
        }
        let after: Vec<i64> = (0..64).map(|_| gen.next_word()).collect();
        assert_ne!(head, after, "resized 16-bit LFSR must not cycle at 4095");
    }

    #[test]
    fn rejects_bad_widths() {
        let inner = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        assert!(Resized::new(Box::new(inner.clone()), 13).is_err());
        assert!(Resized::new(Box::new(inner), 0).is_err());
    }

    #[test]
    fn reset_restores_sequence() {
        let inner = Lfsr1::new(14, ShiftDirection::MsbToLsb).unwrap();
        let mut gen = Resized::new(Box::new(inner), 10).unwrap();
        let a: Vec<i64> = (0..32).map(|_| gen.next_word()).collect();
        gen.reset();
        let b: Vec<i64> = (0..32).map(|_| gen.next_word()).collect();
        assert_eq!(a, b);
    }
}
