//! On-chip test-pattern generators for digital-filter BIST, with their
//! frequency-domain characterizations.
//!
//! The paper's Section 6 studies five generator families; all are
//! implemented here behind the [`TestGenerator`] trait:
//!
//! * [`Lfsr1`] — Type 1 (external-XOR / Fibonacci) LFSR whose entire
//!   state register is the test word. Its successive-word correlation
//!   produces a *low-frequency power null* — the root cause of the
//!   paper's missed-fault case study on the narrowband lowpass filter.
//! * [`Lfsr2`] — Type 2 (embedded-XOR / Galois) LFSR; flatter spectrum,
//!   polynomial-dependent (the paper uses polynomial `0x12B9`).
//! * [`Decorrelated`] — a Type 1 LFSR with the paper's decorrelator
//!   (invert all bits but the LSB whenever the LSB is 1); essentially
//!   white with variance 1/3 ("LFSR-D").
//! * [`MaxVariance`] — one LFSR bit selects between the most positive
//!   and most negative word; flat spectrum, variance 1 ("LFSR-M").
//! * [`Ramp`] — a counter; nearly all power at very low frequencies.
//! * [`Mixed`] — mode switching (e.g. Type 1 for 4k vectors, then
//!   max-variance for 4k — the paper's Section 9 scheme).
//! * [`Sine`] and [`IdealWhite`] — auxiliary sources for the paper's
//!   fault-injection experiment and for idealized-generator baselines.
//!
//! [`model`] provides the linear (FIR-of-white-bits) models of the
//! LFSR-based generators and [`spectra`] their analytic power spectra
//! (the paper's Fig. 4 curves), cross-validated against Welch estimates
//! of the actual sequences.
//!
//! # Example
//!
//! ```
//! use bist_tpg::{Lfsr1, ShiftDirection, TestGenerator};
//!
//! let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb)?;
//! let words: Vec<i64> = (0..8).map(|_| gen.next_word()).collect();
//! assert!(words.iter().all(|w| (-2048..=2047).contains(w)));
//! # Ok::<(), bist_tpg::TpgError>(())
//! ```

#![forbid(unsafe_code)]

mod error;
mod generator;
mod lfsr;
mod mixed;
mod ramp;
mod resize;
mod sine;
mod white;
mod zonesweep;

pub mod model;
pub mod polynomials;
pub mod spectra;

pub use error::TpgError;
pub use generator::{collect_values, collect_words, TestGenerator};
pub use lfsr::{Decorrelated, Lfsr1, Lfsr2, MaxVariance, ShiftDirection};
pub use mixed::Mixed;
pub use ramp::Ramp;
pub use resize::Resized;
pub use sine::Sine;
pub use white::IdealWhite;
pub use zonesweep::ZoneSweep;
