use crate::generator::TestGenerator;
use crate::TpgError;

/// Idealized test generator: statistically independent words, uniform
/// over the full two's-complement range. Deterministic (xorshift64*),
/// so experiments are reproducible without external RNG crates.
///
/// The paper uses this idealization as the reference when judging how
/// well the decorrelated LFSR approaches independent vectors (its
/// Fig. 9 "theory" curve).
#[derive(Debug, Clone)]
pub struct IdealWhite {
    width: u32,
    seed: u64,
    state: u64,
    name: String,
}

impl IdealWhite {
    /// Creates an ideal white source with the default seed.
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] for widths outside `2..=63`.
    pub fn new(width: u32) -> Result<Self, TpgError> {
        Self::with_seed(width, 0x9E3779B97F4A7C15)
    }

    /// Creates an ideal white source with an explicit nonzero seed.
    ///
    /// # Errors
    ///
    /// [`TpgError::UnsupportedWidth`] or [`TpgError::ZeroSeed`].
    pub fn with_seed(width: u32, seed: u64) -> Result<Self, TpgError> {
        if !(2..=63).contains(&width) {
            return Err(TpgError::UnsupportedWidth { width });
        }
        if seed == 0 {
            return Err(TpgError::ZeroSeed);
        }
        Ok(IdealWhite { width, seed, state: seed, name: "Ideal".into() })
    }
}

impl TestGenerator for IdealWhite {
    fn next_word(&mut self) -> i64 {
        // xorshift64* — full 64-bit state, top bits used.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        let r = self.state.wrapping_mul(0x2545F4914F6CDD1D);
        let bits = r >> (64 - self.width);
        fixedpoint::QFormat::new(self.width, self.width - 1).expect("valid width").sign_extend(bits)
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::collect_values;
    use dsp::stats::Summary;

    #[test]
    fn statistics_are_uniform() {
        let mut gen = IdealWhite::new(12).unwrap();
        let x = collect_values(&mut gen, 16384);
        let s = Summary::of(&x).unwrap();
        assert!(s.mean.abs() < 0.02);
        assert!((s.variance - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn lag_one_correlation_is_negligible() {
        let mut gen = IdealWhite::new(12).unwrap();
        let x = collect_values(&mut gen, 16384);
        let r = dsp::conv::sample_autocorrelation(&x, 2);
        assert!((r[1] / r[0]).abs() < 0.03);
    }

    #[test]
    fn deterministic_and_resettable() {
        let mut a = IdealWhite::new(12).unwrap();
        let mut b = IdealWhite::new(12).unwrap();
        let wa: Vec<i64> = (0..32).map(|_| a.next_word()).collect();
        let wb: Vec<i64> = (0..32).map(|_| b.next_word()).collect();
        assert_eq!(wa, wb);
        a.reset();
        let wa2: Vec<i64> = (0..32).map(|_| a.next_word()).collect();
        assert_eq!(wa, wa2);
    }

    #[test]
    fn rejects_zero_seed() {
        assert!(matches!(IdealWhite::with_seed(12, 0), Err(TpgError::ZeroSeed)));
    }
}
