//! Analytic power spectra of the test generators (the paper's Fig. 4),
//! plus a Welch-estimate helper for cross-validation.
//!
//! All spectra are one-sided on `bins` frequencies `k / (2*bins)` and
//! normalized so the mean power equals the generator's word variance
//! (1/3 for the LFSR words, 1 for max-variance mode).

use crate::generator::TestGenerator;
use crate::model;
use crate::{Lfsr1, Lfsr2, ShiftDirection};
use dsp::spectrum::PowerSpectrum;
use dsp::Complex;
use std::f64::consts::PI;

/// Analytic spectrum of a Type 1 LFSR of the given width: the
/// squared-magnitude response of the paper's `g[n]` model driven by 0/1
/// white noise of variance 1/4. Shows the characteristic low-frequency
/// null (the "LFSR-1" curve of Fig. 4).
pub fn lfsr1(width: u32, bins: usize) -> PowerSpectrum {
    let g = model::lfsr1_model(width, ShiftDirection::MsbToLsb);
    let psd = (0..bins)
        .map(|k| {
            let f = k as f64 / (2.0 * bins as f64);
            let mut acc = Complex::zero();
            for (n, &c) in g.iter().enumerate() {
                acc += Complex::cis(-2.0 * PI * f * n as f64).scale(c);
            }
            0.25 * acc.norm_sqr()
        })
        .collect();
    PowerSpectrum::from_values(psd)
}

/// Exact spectrum of a Type 2 LFSR word sequence, from the measured bit
/// delays (see [`model::bit_delays2`]): line powers at the sequence's
/// `period` harmonics, averaged into `bins` display bins.
pub fn lfsr2(lfsr: &Lfsr2, bins: usize) -> PowerSpectrum {
    let width = lfsr.width();
    let (delays, period) = model::bit_delays2(lfsr);
    let weights: Vec<f64> = (0..width).map(|j| model::bit_weight(j, width)).collect();
    line_spectrum_from_delays(&delays, &weights, period, bins)
}

/// Flat (white) spectrum with the given variance — the decorrelated
/// LFSR ("LFSR-D", variance 1/3) and max-variance ("LFSR-M",
/// variance 1) curves of Fig. 4.
pub fn flat(variance: f64, bins: usize) -> PowerSpectrum {
    PowerSpectrum::from_values(vec![variance; bins])
}

/// Exact spectrum of the count-by-one ramp: the DFT line powers of one
/// sawtooth period (`2^width` samples), averaged into display bins.
/// Nearly all power sits at the lowest frequencies.
pub fn ramp(width: u32, bins: usize) -> PowerSpectrum {
    let n = 1usize << width;
    let scale = 2f64.powi(-(width as i32 - 1));
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let raw = if i < n / 2 { i as i64 } else { i as i64 - n as i64 };
            raw as f64 * scale
        })
        .collect();
    let spec = dsp::fft::fft_real(&x).expect("power-of-two length");
    // Line power of harmonic k (one-sided, excluding DC).
    let mut psd = vec![0.0; bins];
    let mut counts = vec![0usize; bins];
    for (k, z) in spec.iter().enumerate().take(n / 2).skip(1) {
        let f = k as f64 / n as f64;
        let bin = ((f * 2.0 * bins as f64) as usize).min(bins - 1);
        // Two-sided line power |X/N|^2 doubled for one-sided display,
        // then scaled by the bin count so that the *mean* over bins
        // equals the variance.
        psd[bin] += 2.0 * z.norm_sqr() / (n as f64 * n as f64);
        counts[bin] += 1;
    }
    // Convert binned total power into a density-like value: each display
    // bin spans (0.5/bins) of frequency; mean over bins must equal the
    // total variance. total power currently sums to variance, so
    // multiply by bins to make the mean equal variance.
    for p in psd.iter_mut() {
        *p *= bins as f64;
    }
    let _ = counts;
    PowerSpectrum::from_values(psd)
}

/// Welch estimate of an actual generated sequence (cross-validation of
/// the analytic curves).
///
/// # Errors
///
/// Propagates [`dsp::DspError`] from the Welch estimator (bad segment
/// length).
pub fn measured(
    gen: &mut dyn TestGenerator,
    samples: usize,
    segment: usize,
) -> Result<PowerSpectrum, dsp::DspError> {
    let x = crate::generator::collect_values(gen, samples);
    dsp::spectrum::welch(&x, segment, dsp::window::Window::Hann)
}

/// Spectrum of a Type 1 LFSR computed through the *generic* delay-tap
/// machinery instead of the closed-form model (used for validation).
pub fn lfsr1_from_delays(lfsr: &Lfsr1, bins: usize) -> PowerSpectrum {
    let width = lfsr.width();
    let (delays, period) = model::bit_delays1(lfsr);
    let weights: Vec<f64> = (0..width).map(|j| model::bit_weight(j, width)).collect();
    line_spectrum_from_delays(&delays, &weights, period, bins)
}

fn line_spectrum_from_delays(
    delays: &[u64],
    weights: &[f64],
    period: u64,
    bins: usize,
) -> PowerSpectrum {
    // At harmonic k/period the word spectrum is
    // |sum_j c_j e^{+j 2 pi k d_j / L}|^2 * S_a(k), with the m-sequence
    // bit spectrum S_a(k) ~ (L+1)/(4 L^2) * L flat over nonzero bins.
    let l = period as f64;
    let bit_power = (l + 1.0) / (4.0 * l);
    let mut psd = vec![0.0; bins];
    let mut counts = vec![0usize; bins];
    let half = period / 2;
    for k in 1..=half {
        let f = k as f64 / l;
        let mut acc = Complex::zero();
        for (&d, &c) in delays.iter().zip(weights) {
            acc += Complex::cis(2.0 * PI * f * d as f64).scale(c);
        }
        let bin = ((f * 2.0 * bins as f64) as usize).min(bins - 1);
        psd[bin] += acc.norm_sqr() * bit_power;
        counts[bin] += 1;
    }
    for (p, &c) in psd.iter_mut().zip(&counts) {
        if c > 0 {
            *p /= c as f64;
        }
    }
    PowerSpectrum::from_values(psd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomials::PAPER_TYPE2_POLY;
    use crate::{Decorrelated, MaxVariance, Ramp};

    const BINS: usize = 64;

    #[test]
    fn lfsr1_has_low_frequency_null() {
        let s = lfsr1(12, BINS);
        // Power at DC-ish bins far below the average (paper: reduced
        // power at low frequencies due to negative correlation).
        assert!(s.values()[0] < 0.05 * s.mean_power(), "{}", s.values()[0]);
        // Mean power equals the word variance 1/3.
        assert!((s.mean_power() - 1.0 / 3.0).abs() < 0.02, "{}", s.mean_power());
        // High-frequency power is above average (spectrum tilts up).
        assert!(s.values()[BINS - 1] > s.mean_power());
    }

    #[test]
    fn lfsr1_analytic_matches_measurement() {
        let s_model = lfsr1(12, 128);
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let s_meas = measured(&mut gen, 1 << 14, 256).unwrap();
        // Compare in dB on a coarse grid, away from the DC bin where the
        // Welch estimate is noisy.
        for k in (8..120).step_by(8) {
            let a = 10.0 * s_model.values()[k].log10();
            let b = 10.0 * s_meas.values()[k].log10();
            assert!((a - b).abs() < 2.0, "bin {k}: model {a:.2} dB vs measured {b:.2} dB");
        }
    }

    #[test]
    fn lfsr1_delay_machinery_agrees_with_closed_form() {
        let lfsr = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let via_delays = lfsr1_from_delays(&lfsr, 64);
        let closed = lfsr1(12, 64);
        let mean = closed.mean_power();
        for k in 2..64 {
            let a = via_delays.values()[k];
            let b = closed.values()[k];
            // Near the low-frequency null the relative error of the
            // aperiodic closed form blows up; compare absolutely
            // against the mean power.
            assert!((a - b).abs() < 0.05 * mean, "bin {k}: {a} vs {b}");
        }
    }

    #[test]
    fn lfsr2_spectrum_is_flatter_than_lfsr1() {
        let l2 = Lfsr2::new(12, PAPER_TYPE2_POLY).unwrap();
        let s2 = lfsr2(&l2, BINS);
        let s1 = lfsr1(12, BINS);
        // Low-frequency power: Type 2 should not collapse the way
        // Type 1 does.
        let low2: f64 = s2.values()[..4].iter().sum();
        let low1: f64 = s1.values()[..4].iter().sum();
        assert!(low2 > 2.0 * low1, "low2 {low2} vs low1 {low1}");
        assert!((s2.mean_power() - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn lfsr2_analytic_matches_measurement() {
        let l2 = Lfsr2::new(12, PAPER_TYPE2_POLY).unwrap();
        let s_model = lfsr2(&l2, 64);
        let mut gen = l2;
        let s_meas = measured(&mut gen, 1 << 14, 128).unwrap();
        for k in (4..60).step_by(4) {
            let a = 10.0 * s_model.values()[k].log10();
            let b = 10.0 * s_meas.values()[k].log10();
            assert!((a - b).abs() < 2.5, "bin {k}: model {a:.2} dB vs measured {b:.2} dB");
        }
    }

    #[test]
    fn decorrelated_measures_flat() {
        let mut gen = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).unwrap();
        let s = measured(&mut gen, 1 << 14, 256).unwrap();
        let model = flat(1.0 / 3.0, s.len());
        // Bands within ~2.5 dB of flat (a small residual low-frequency
        // dip survives the decorrelator; the paper calls the result
        // "essentially equal power to all frequency bands").
        for k in (8..s.len() - 2).step_by(16) {
            let a = 10.0 * s.values()[k].log10();
            let b = 10.0 * model.values()[k].log10();
            assert!((a - b).abs() < 2.5, "bin {k}: {a:.2} vs {b:.2} dB");
        }
    }

    #[test]
    fn maxvar_measures_flat_at_variance_one() {
        let mut gen = MaxVariance::maximal(12).unwrap();
        let s = measured(&mut gen, 1 << 14, 256).unwrap();
        assert!((s.mean_power() - 1.0).abs() < 0.05, "{}", s.mean_power());
        let n = s.len();
        let lo: f64 = s.values()[..n / 4].iter().sum::<f64>() / (n / 4) as f64;
        let hi: f64 = s.values()[3 * n / 4..].iter().sum::<f64>() / (n - 3 * n / 4) as f64;
        assert!((lo / hi - 1.0).abs() < 0.25, "lo {lo} hi {hi}");
    }

    #[test]
    fn ramp_spectrum_concentrates_low() {
        let s = ramp(12, 256);
        assert!(s.power_fraction_below(0.05) > 0.9);
        assert!((s.mean_power() - 1.0 / 3.0).abs() < 0.02, "{}", s.mean_power());
    }

    #[test]
    fn ramp_analytic_matches_measurement() {
        let s_model = ramp(12, 64);
        let mut gen = Ramp::new(12).unwrap();
        let s_meas = measured(&mut gen, 1 << 14, 128).unwrap();
        // Compare the fraction of power below a few cut points (the
        // line spectrum vs Welch leakage makes per-bin dB comparison
        // unfair).
        for f in [0.02, 0.1, 0.3] {
            let a = s_model.power_fraction_below(f);
            let b = s_meas.power_fraction_below(f);
            assert!((a - b).abs() < 0.05, "f={f}: {a} vs {b}");
        }
    }
}
