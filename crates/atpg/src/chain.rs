//! Chain-decomposition justification for accumulator-window faults.
//!
//! The residues the stimulus sweeps cannot crack live on accumulator
//! adders: their cells demand a *joint* condition on both operands
//! (for example "both operand bits zero at the sign cell while the
//! low bits generate a carry") that neither constant streams nor
//! two-phase probes reach. But in every filter form this workspace
//! builds, an accumulator operand is structurally a **signed sum of
//! independently-controllable terms**:
//!
//! - transposed form: the partial-sum register unrolls into one CSD
//!   product per earlier tap, each a pure function of its own delayed
//!   sample;
//! - folded symmetric form: the combinational chain unrolls into one
//!   product per coefficient pair, each a function of its own
//!   pair-adder pre-sum, realizable through two dedicated delay-line
//!   slots.
//!
//! Because the terms draw on **pairwise-disjoint** input samples, the
//! joint condition decomposes exactly. The key reduction: the
//! full-adder combination at cell `c` depends only on the operand
//! values **mod `2^(c+1)`** (the cell bits and the carry out of the
//! low bits). Each operand's reachable residue set is a subset-sum
//! closure over its terms' value menus, computed exactly by a bitset
//! convolution over `Z_{2^(c+1)}`. The solver therefore returns one
//! of:
//!
//! - a constructive witness — residues realizing a detecting
//!   combination, walked back through the closure stages into
//!   concrete term entries and an input pattern (still confirmed on
//!   the fault oracle by the caller);
//! - a **sound untestability proof** — the menus are exhaustive, the
//!   slots disjoint, and (checked) the fault site is outside the
//!   operand cones, so an empty intersection over every detecting
//!   combination means no input stream ever activates the fault;
//! - unknown — the structure did not decompose, and other strategies
//!   must decide.

use crate::cone::{combo_from_values, ConeAnalysis, ConeEval, Purity};
use faultsim::FaultSite;
use rtl::{Netlist, NodeId, NodeKind};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// One row of a term's value menu: the term's word and the sample(s)
/// realizing it.
#[derive(Debug, Clone, Copy)]
struct Entry {
    value: i64,
    /// Sample for the term's first slot.
    u: i64,
    /// Sample for the second slot (pair terms only).
    v: i64,
}

/// The delay-line slot(s) a term's samples occupy.
#[derive(Debug, Clone, Copy)]
enum Slots {
    /// A pure term: one sample, `delay` cycles before the probe.
    Sample { delay: u32 },
    /// A pair term: `u` lands `du` cycles before the probe, `v` lands
    /// `dv` cycles before it.
    Pair { du: u32, dv: u32 },
}

impl Slots {
    fn delays(self) -> [Option<u32>; 2] {
        match self {
            Slots::Sample { delay } => [Some(delay), None],
            Slots::Pair { du, dv } => [Some(du), Some(dv)],
        }
    }
}

/// One independently-controllable summand of an operand.
#[derive(Debug, Clone)]
struct Term {
    sign: i64,
    slots: Slots,
    entries: Rc<Vec<Entry>>,
}

/// An operand decomposed as `constant + Σ sign·term`.
#[derive(Debug, Clone, Default)]
struct Decomposition {
    constant: i64,
    terms: Vec<Term>,
    /// Indices of every node visited while unrolling (the operand's
    /// combined cone) — used to rule out the fault site feeding its
    /// own operands.
    support: HashSet<usize>,
}

/// What the solver established for one fault.
#[derive(Debug)]
pub enum ChainOutcome {
    /// Input patterns realizing a detecting combination, one per
    /// feasible combination. Each still needs the fault oracle's
    /// confirmation (activation is proven; observability is not).
    Patterns(Vec<Vec<i64>>),
    /// Sound proof that no input stream activates any detecting
    /// combination: the fault is untestable.
    Unactivatable,
    /// The operands did not decompose; nothing was established.
    Unknown,
}

/// A fixed-size bit set over `Z_m` residues supporting the cyclic
/// shift-or that implements subset-sum convolution.
#[derive(Clone)]
struct ResidueSet {
    words: Vec<u64>,
    bits: usize,
}

impl ResidueSet {
    fn new(bits: usize) -> Self {
        assert!(bits.is_power_of_two());
        ResidueSet { words: vec![0; bits.div_ceil(64)], bits }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    fn is_full(&self) -> bool {
        if self.bits < 64 {
            self.words[0] == (1u64 << self.bits) - 1
        } else {
            self.words.iter().all(|&w| w == u64::MAX)
        }
    }

    fn fill(&mut self) {
        if self.bits < 64 {
            self.words[0] = (1u64 << self.bits) - 1;
        } else {
            self.words.fill(u64::MAX);
        }
    }

    /// `self |= rotate_left(src, sh)` over the `bits`-residue ring.
    fn or_rotated(&mut self, src: &ResidueSet, sh: usize) {
        debug_assert_eq!(self.bits, src.bits);
        let sh = sh % self.bits;
        if self.bits < 64 {
            let mask = (1u64 << self.bits) - 1;
            let x = src.words[0];
            let rot = if sh == 0 { x } else { ((x << sh) | (x >> (self.bits - sh))) & mask };
            self.words[0] |= rot;
            return;
        }
        let n = self.words.len();
        let (word_sh, bit_sh) = (sh / 64, sh % 64);
        for i in 0..n {
            let w = src.words[i];
            if w == 0 {
                continue;
            }
            let j = (i + word_sh) % n;
            if bit_sh == 0 {
                self.words[j] |= w;
            } else {
                self.words[j] |= w << bit_sh;
                self.words[(j + 1) % n] |= w >> (64 - bit_sh);
            }
        }
    }
}

/// Distinct reachable pre-sums, each with the first realizing
/// `(u, v)` sample pair, ascending.
type PreMenu = Vec<(i64, i64, i64)>;

/// Subset-sum stages: entry `k` holds the residues reachable by the
/// constant plus the first `k` terms.
type StageTable = Vec<ResidueSet>;

/// The chain-decomposition engine for one netlist.
pub struct ChainJustifier<'n> {
    netlist: &'n Netlist,
    purity: ConeAnalysis,
    input_bits: u32,
    align: u32,
    /// Value menus for pure nodes, keyed by node index (one entry per
    /// input sample, in sample order; exhaustive by construction).
    sample_tables: RefCell<HashMap<usize, Rc<Vec<Entry>>>>,
    /// Value menus for pair-factored subgraphs, keyed by the factored
    /// node's index (one entry per distinct reachable value;
    /// exhaustive by construction).
    pair_tables: RefCell<HashMap<usize, Rc<Vec<Entry>>>>,
    /// Distinct reachable pre-sums per pair base — exhaustive by
    /// construction.
    pre_menus: RefCell<HashMap<usize, Rc<PreMenu>>>,
    /// Subset-sum stages per (operand node, modulus bits).
    stage_cache: RefCell<HashMap<(usize, u32), Rc<StageTable>>>,
    /// Node values under the all-zero sample (constants included).
    const_values: Vec<i64>,
}

impl<'n> ChainJustifier<'n> {
    /// An engine for `input_bits`-wide samples left-aligned into the
    /// datapath.
    pub fn new(netlist: &'n Netlist, input_bits: u32) -> Self {
        let mut ev = ConeEval::new(netlist, input_bits);
        ev.eval(0);
        let const_values = netlist.node_ids().map(|id| ev.value(id)).collect();
        ChainJustifier {
            netlist,
            purity: ConeAnalysis::analyze(netlist),
            input_bits,
            align: netlist.width() - input_bits,
            sample_tables: RefCell::new(HashMap::new()),
            pair_tables: RefCell::new(HashMap::new()),
            pre_menus: RefCell::new(HashMap::new()),
            stage_cache: RefCell::new(HashMap::new()),
            const_values,
        }
    }

    fn lo(&self) -> i64 {
        -(1i64 << (self.input_bits - 1))
    }

    fn hi(&self) -> i64 {
        1i64 << (self.input_bits - 1)
    }

    /// Decides a fault on an adder or subtractor cell: a witness
    /// pattern per feasible detecting combination, a sound
    /// untestability proof, or `Unknown`.
    pub fn solve(&self, site: &FaultSite, flush: usize) -> ChainOutcome {
        let (a_op, b_op) = match self.netlist.node(site.node).kind {
            NodeKind::Add { a, b } | NodeKind::Sub { a, b } => (a, b),
            _ => return ChainOutcome::Unknown,
        };
        // Faults inside one CSD product: both operands are functions
        // of the same pair pre-sum — a single-variable problem the
        // shared-base path decides exhaustively.
        if let Some(outcome) = self.shared_base_solve(site, a_op, b_op, flush) {
            return outcome;
        }
        let (Some(da), Some(db)) = (self.decompose(a_op), self.decompose(b_op)) else {
            return ChainOutcome::Unknown;
        };
        // Terms must draw on pairwise-disjoint delay slots, or the
        // sides are not independently assignable.
        let mut slots = HashSet::new();
        for term in da.terms.iter().chain(&db.terms) {
            for d in term.slots.delays().into_iter().flatten() {
                if !slots.insert(d) {
                    return ChainOutcome::Unknown;
                }
            }
        }
        let max_delay = slots.iter().copied().max().unwrap_or(0);
        if max_delay > 120 {
            return ChainOutcome::Unknown;
        }
        // An untestability verdict additionally needs the operand
        // cones free of the fault site itself (else the menus,
        // computed fault-free, do not bound the faulty machine).
        let sound =
            !da.support.contains(&site.node.index()) && !db.support.contains(&site.node.index());
        let m_bits = site.cell + 1;
        let stages_a = self.stages(a_op, &da, m_bits);
        let stages_b = self.stages(b_op, &db, m_bits);
        let is_sub = matches!(self.netlist.node(site.node).kind, NodeKind::Sub { .. });
        let mut patterns = Vec::new();
        for t in 0..8u8 {
            if site.detecting_tests & (1 << t) == 0 {
                continue;
            }
            let pairs = feasible_pairs(
                stages_a.last().expect("stages start at the constant"),
                stages_b.last().expect("stages start at the constant"),
                is_sub,
                site.cell,
                t,
                PAIRS_PER_COMBO,
            );
            if pairs.is_empty() {
                continue;
            }
            // Residues pin only the low bits: diversify the walk salt
            // and the free-word context too, so high bits and the
            // surrounding accumulator state (which decide downstream
            // propagation) vary across candidates. Sparse combinations
            // (few feasible pairs) get extra salts per pair so the
            // witness count stays level.
            let spread = PAIRS_PER_COMBO.div_ceil(pairs.len());
            // Propagation through downstream truncation is context-
            // sensitive (a few percent of contexts succeed on the
            // hardest sites), so the witness budget per combination is
            // sized for it: this is the classic ATPG random-fill of
            // don't-care positions around pinned deterministic bits.
            let variants = (WITNESS_BUDGET / (pairs.len() * spread)).clamp(3, 24) as u64;
            for (pi, &(ra, rb)) in pairs.iter().enumerate() {
                for s in 0..spread {
                    let salt = pi * spread + s;
                    let picks_a = reconstruct(&da, &stages_a, ra, m_bits, salt);
                    let picks_b = reconstruct(&db, &stages_b, rb, m_bits, salt);
                    for variant in 0..variants {
                        patterns.push(self.pattern(
                            &da,
                            &picks_a,
                            &db,
                            &picks_b,
                            max_delay,
                            flush,
                            (site.node.index() as u64) << 16 ^ (salt as u64) << 8 ^ variant,
                            variant != 0,
                        ));
                    }
                }
            }
        }
        if !patterns.is_empty() {
            ChainOutcome::Patterns(patterns)
        } else if sound {
            ChainOutcome::Unactivatable
        } else {
            ChainOutcome::Unknown
        }
    }

    /// Decides a fault whose operands both factor through the *same*
    /// pair base — a fault inside one CSD product, where the pre-sum
    /// is the only free variable. The pre-sum menu is exhaustive, so
    /// this path is decisive in both directions: spread witnesses when
    /// a detecting combination is reached, a sound untestability proof
    /// when none is. `None` when the operands do not share a base
    /// (the general decomposition path applies instead).
    fn shared_base_solve(
        &self,
        site: &FaultSite,
        a_op: NodeId,
        b_op: NodeId,
        flush: usize,
    ) -> Option<ChainOutcome> {
        if !matches!(self.purity.purity(a_op), Purity::Window)
            || !matches!(self.purity.purity(b_op), Purity::Window)
        {
            return None;
        }
        let mut scratch = Decomposition::default();
        let base = self.pair_base(a_op, &mut scratch)?;
        if self.pair_base(b_op, &mut scratch)? != base {
            return None;
        }
        let (NodeKind::Add { a: p1, b: p2 } | NodeKind::Sub { a: p1, b: p2 }) =
            self.netlist.node(base).kind
        else {
            unreachable!("pair bases are adders");
        };
        let (Purity::Pure(d1), Purity::Pure(d2)) = (self.purity.purity(p1), self.purity.purity(p2))
        else {
            unreachable!("pair bases have pure operands");
        };
        let menu = self.pre_menu(base, p1, p2);
        // Cone members between the base and both operands, ascending
        // id (creation order is topological).
        let mut members: Vec<usize> = Vec::new();
        let mut stack = vec![a_op, b_op];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == base || !seen.insert(n.index()) {
                continue;
            }
            members.push(n.index());
            for op in operands(&self.netlist.node(n).kind) {
                if !matches!(self.purity.purity(op), Purity::Const) {
                    stack.push(op);
                }
            }
        }
        members.sort_unstable();
        let sound = !scratch.support.contains(&site.node.index());
        let mut values = self.const_values.clone();
        let mut hits: Vec<Vec<(i64, i64)>> = vec![Vec::new(); 8];
        for &(s, u, v) in menu.iter() {
            values[base.index()] = s;
            for &m in &members {
                values[m] = eval_member(self.netlist, &values, m);
            }
            let t = combo_from_values(self.netlist, &values, site.node, site.cell);
            if site.detecting_tests & (1 << t) != 0 {
                hits[t as usize].push((u, v));
            }
        }
        let len = d1.max(d2) as usize + 1;
        let mut patterns = Vec::new();
        for list in hits.iter().filter(|l| !l.is_empty()) {
            // Spread the witnesses across the menu: the pre-sum pins
            // the combination, but downstream propagation still varies
            // with it.
            let step = list.len().div_ceil(PAIRS_PER_COMBO);
            for &(u, v) in list.iter().step_by(step) {
                // The fault cone is pure in exactly the two slots, so
                // every other word is free context: diversify it (and
                // prepend a warm-up) to vary the accumulator state the
                // activated difference must propagate through.
                for variant in 0..3u64 {
                    let pre = if variant == 0 { 0 } else { 8 };
                    let mut words = vec![0i64; pre + len + flush];
                    if variant > 0 {
                        let mut state = (base.index() as u64) << 8 | variant;
                        let span = (self.hi() - self.lo()) as u64;
                        for w in words.iter_mut() {
                            *w = (self.lo() + (splitmix(&mut state) % span) as i64) << self.align;
                        }
                    }
                    words[pre + len - 1 - d1 as usize] = u << self.align;
                    words[pre + len - 1 - d2 as usize] = v << self.align;
                    patterns.push(words);
                }
            }
        }
        Some(if !patterns.is_empty() {
            ChainOutcome::Patterns(patterns)
        } else if sound {
            ChainOutcome::Unactivatable
        } else {
            ChainOutcome::Unknown
        })
    }

    /// The subset-sum stages of one operand over `Z_{2^m_bits}`:
    /// `stages[k]` holds the residues reachable by the constant plus
    /// the first `k` terms (so the last stage is the operand's exact
    /// reachable residue set).
    fn stages(&self, op: NodeId, d: &Decomposition, m_bits: u32) -> Rc<Vec<ResidueSet>> {
        let key = (op.index(), m_bits);
        if let Some(s) = self.stage_cache.borrow().get(&key) {
            return Rc::clone(s);
        }
        let m = 1usize << m_bits;
        let mut stages = Vec::with_capacity(d.terms.len() + 1);
        let mut first = ResidueSet::new(m);
        first.set(residue(d.constant, m_bits));
        stages.push(first);
        for term in &d.terms {
            let prev = stages.last().expect("stages start at the constant");
            let mut next = ResidueSet::new(m);
            if prev.is_full() {
                next.fill();
            } else {
                let deltas: HashSet<usize> =
                    term.entries.iter().map(|e| residue(term.sign * e.value, m_bits)).collect();
                for delta in deltas {
                    next.or_rotated(prev, delta);
                }
            }
            stages.push(next);
        }
        let rc = Rc::new(stages);
        self.stage_cache.borrow_mut().insert(key, Rc::clone(&rc));
        rc
    }

    /// The raw input pattern realizing one entry pick per term on each
    /// side, flush appended. With `context` set, the words no term
    /// claims — the operands provably do not depend on them — are
    /// filled from a deterministic stream keyed by `seed`, and a
    /// warm-up prefix is prepended: activation is unchanged, but the
    /// accumulator state the activated difference propagates through
    /// varies.
    #[allow(clippy::too_many_arguments)]
    fn pattern(
        &self,
        da: &Decomposition,
        picks_a: &[usize],
        db: &Decomposition,
        picks_b: &[usize],
        max_delay: u32,
        flush: usize,
        seed: u64,
        context: bool,
    ) -> Vec<i64> {
        let len = max_delay as usize + 1;
        let pre = if context { 8 } else { 0 };
        let mut words = vec![0i64; pre + len + flush];
        if context {
            let mut state = seed;
            let span = (self.hi() - self.lo()) as u64;
            for w in words.iter_mut() {
                *w = (self.lo() + (splitmix(&mut state) % span) as i64) << self.align;
            }
        }
        let mut place = |d: &Decomposition, picks: &[usize]| {
            for (term, &pick) in d.terms.iter().zip(picks) {
                let e = term.entries[pick];
                match term.slots {
                    Slots::Sample { delay } => {
                        words[pre + len - 1 - delay as usize] = e.u << self.align;
                    }
                    Slots::Pair { du, dv } => {
                        words[pre + len - 1 - du as usize] = e.u << self.align;
                        words[pre + len - 1 - dv as usize] = e.v << self.align;
                    }
                }
            }
        };
        place(da, picks_a);
        place(db, picks_b);
        words
    }

    /// Decomposes an operand into `constant + Σ sign·term`, or `None`
    /// when its structure does not unroll.
    fn decompose(&self, node: NodeId) -> Option<Decomposition> {
        let mut out = Decomposition::default();
        if self.unroll(node, 0, 1, &mut out) && out.terms.len() <= 96 {
            Some(out)
        } else {
            None
        }
    }

    fn unroll(&self, node: NodeId, delay: u32, sign: i64, out: &mut Decomposition) -> bool {
        let q = self.netlist.format();
        out.support.insert(node.index());
        match self.purity.purity(node) {
            Purity::Const => {
                out.constant = q.wrap(out.constant + sign * self.const_values[node.index()]);
                true
            }
            Purity::Pure(d) => {
                out.terms.push(Term {
                    sign,
                    slots: Slots::Sample { delay: d + delay },
                    entries: self.sample_table(node),
                });
                true
            }
            Purity::Window => match self.netlist.node(node).kind {
                NodeKind::Register { src } => self.unroll(src, delay + 1, sign, out),
                NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
                    // A whole CSD product over one pair pre-sum factors
                    // as a single term; only unfactorable adders unroll
                    // into their operands.
                    if let Some(term) = self.pair_term(node, delay, sign, out) {
                        out.terms.push(term);
                        return true;
                    }
                    let flip = if matches!(self.netlist.node(node).kind, NodeKind::Sub { .. }) {
                        -sign
                    } else {
                        sign
                    };
                    self.unroll(a, delay, sign, out) && self.unroll(b, delay, flip, out)
                }
                _ => {
                    if let Some(term) = self.pair_term(node, delay, sign, out) {
                        out.terms.push(term);
                        true
                    } else {
                        false
                    }
                }
            },
        }
    }

    /// Tries to express a window node as a single term over one
    /// pair-adder pre-sum: the node's input dependence must factor
    /// entirely through one `Add`/`Sub` of two pure operands at
    /// distinct delays.
    fn pair_term(
        &self,
        node: NodeId,
        delay: u32,
        sign: i64,
        out: &mut Decomposition,
    ) -> Option<Term> {
        let base = self.pair_base(node, out)?;
        let (NodeKind::Add { a: p1, b: p2 } | NodeKind::Sub { a: p1, b: p2 }) =
            self.netlist.node(base).kind
        else {
            unreachable!("pair bases are adders");
        };
        let (Purity::Pure(d1), Purity::Pure(d2)) = (self.purity.purity(p1), self.purity.purity(p2))
        else {
            unreachable!("pair bases have pure operands");
        };
        let entries = self.pair_table(node, base, p1, p2);
        Some(Term { sign, slots: Slots::Pair { du: d1 + delay, dv: d2 + delay }, entries })
    }

    /// `true` if the node is an adder/subtractor of two pure operands
    /// (necessarily at distinct delays, or it would itself be pure).
    fn is_pair_base(&self, node: NodeId) -> bool {
        matches!(self.purity.purity(node), Purity::Window)
            && match self.netlist.node(node).kind {
                NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
                    matches!(self.purity.purity(a), Purity::Pure(_))
                        && matches!(self.purity.purity(b), Purity::Pure(_))
                }
                _ => false,
            }
    }

    /// The unique pair base the node's input dependence factors
    /// through, if any. Visited nodes join the decomposition's support
    /// either way.
    fn pair_base(&self, node: NodeId, out: &mut Decomposition) -> Option<NodeId> {
        if self.is_pair_base(node) {
            return Some(node);
        }
        let mut base: Option<NodeId> = None;
        let mut stack = vec![node];
        let mut seen = HashSet::new();
        let mut ok = true;
        while let Some(n) = stack.pop() {
            if !seen.insert(n.index()) {
                continue;
            }
            for op in operands(&self.netlist.node(n).kind) {
                match self.purity.purity(op) {
                    Purity::Const => {}
                    // A pure leaf outside the base mixes in its own
                    // sample: not factorable.
                    Purity::Pure(_) => ok = false,
                    Purity::Window => {
                        if self.is_pair_base(op) {
                            seen.insert(op.index());
                            match base {
                                None => base = Some(op),
                                Some(b) if b == op => {}
                                Some(_) => ok = false,
                            }
                        } else if matches!(
                            self.netlist.node(op).kind,
                            NodeKind::Register { .. } | NodeKind::Input
                        ) {
                            ok = false;
                        } else {
                            stack.push(op);
                        }
                    }
                }
            }
            if !ok {
                break;
            }
        }
        out.support.extend(seen);
        if ok {
            base
        } else {
            None
        }
    }

    /// The value menu of a pure node, one entry per input sample —
    /// exhaustive over the node's reachable values.
    fn sample_table(&self, node: NodeId) -> Rc<Vec<Entry>> {
        if let Some(t) = self.sample_tables.borrow().get(&node.index()) {
            return Rc::clone(t);
        }
        let mut ev = ConeEval::new(self.netlist, self.input_bits);
        let mut entries = Vec::with_capacity((self.hi() - self.lo()) as usize);
        for u in self.lo()..self.hi() {
            ev.eval(u);
            entries.push(Entry { value: ev.value(node), u, v: 0 });
        }
        let rc = Rc::new(entries);
        self.sample_tables.borrow_mut().insert(node.index(), Rc::clone(&rc));
        rc
    }

    /// The value menu of a pair-factored subgraph: the node evaluated
    /// over **every** reachable pre-sum value (full `(u, v)` product
    /// enumeration), each with a concrete realizing sample pair —
    /// exhaustive over the term's reachable values.
    fn pair_table(&self, node: NodeId, base: NodeId, p1: NodeId, p2: NodeId) -> Rc<Vec<Entry>> {
        if let Some(t) = self.pair_tables.borrow().get(&node.index()) {
            return Rc::clone(t);
        }
        let menu = self.pre_menu(base, p1, p2);
        // Members of the cone between base and node, ascending id
        // (creation order is topological).
        let mut members: Vec<usize> = Vec::new();
        let mut stack = vec![node];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == base || !seen.insert(n.index()) {
                continue;
            }
            members.push(n.index());
            for op in operands(&self.netlist.node(n).kind) {
                if !matches!(self.purity.purity(op), Purity::Const) {
                    stack.push(op);
                }
            }
        }
        members.sort_unstable();
        let mut values = self.const_values.clone();
        let mut entries = Vec::new();
        let mut seen_values = HashSet::new();
        for &(s, u, v) in menu.iter() {
            values[base.index()] = s;
            for &m in &members {
                values[m] = eval_member(self.netlist, &values, m);
            }
            let value = values[node.index()];
            if seen_values.insert(value) {
                entries.push(Entry { value, u, v });
            }
        }
        let rc = Rc::new(entries);
        self.pair_tables.borrow_mut().insert(node.index(), Rc::clone(&rc));
        rc
    }

    /// Every distinct reachable pre-sum of a pair base, ascending,
    /// each with the first realizing `(u, v)` sample pair — exhaustive
    /// by full product enumeration over the pure operands' menus.
    fn pre_menu(&self, base: NodeId, p1: NodeId, p2: NodeId) -> Rc<Vec<(i64, i64, i64)>> {
        if let Some(m) = self.pre_menus.borrow().get(&base.index()) {
            return Rc::clone(m);
        }
        let q = self.netlist.format();
        let base_is_sub = matches!(self.netlist.node(base).kind, NodeKind::Sub { .. });
        let f1 = self.sample_table(p1);
        let f2 = self.sample_table(p2);
        // Pre-sums are width-wrapped: index by offset from the most
        // negative representable value.
        let width = self.netlist.width();
        let span = 1usize << width;
        let offset = 1i64 << (width - 1);
        let mut witness: Vec<Option<(i64, i64)>> = vec![None; span];
        for e1 in f1.iter() {
            for e2 in f2.iter() {
                let s = if base_is_sub {
                    q.wrap(e1.value - e2.value)
                } else {
                    q.wrap(e1.value + e2.value)
                };
                let idx = (s + offset) as usize;
                if witness[idx].is_none() {
                    witness[idx] = Some((e1.u, e2.u));
                }
            }
        }
        let menu: Vec<(i64, i64, i64)> = witness
            .iter()
            .enumerate()
            .filter_map(|(idx, w)| w.map(|(u, v)| (idx as i64 - offset, u, v)))
            .collect();
        let rc = Rc::new(menu);
        self.pre_menus.borrow_mut().insert(base.index(), Rc::clone(&rc));
        rc
    }
}

/// `x mod 2^m_bits`, non-negative.
fn residue(x: i64, m_bits: u32) -> usize {
    (x & ((1i64 << m_bits) - 1)) as usize
}

/// splitmix64: a tiny deterministic stream for context filler words.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Residue pairs collected per feasible combination.
const PAIRS_PER_COMBO: usize = 8;

/// Target witness patterns per feasible combination (split across
/// residue pairs, reconstruction salts, and context variants).
const WITNESS_BUDGET: usize = 96;

/// Residue pairs `(ra, rb)` over `Z_{2^(cell+1)}` realizing
/// full-adder combination `t = (a << 2) | (b_line << 1) | ci` at
/// `cell`, up to `limit` of them. Deterministic, and deliberately
/// spread across the sets (a golden-ratio walk over the `a` low
/// parts, both window edges on the `b` side): residues pin only the
/// low bits, so diversity here buys diversity in the downstream
/// propagation the caller still has to win. Empty iff the combination
/// is infeasible.
fn feasible_pairs(
    ra_set: &ResidueSet,
    rb_set: &ResidueSet,
    is_sub: bool,
    cell: u32,
    t: u8,
    limit: usize,
) -> Vec<(usize, usize)> {
    let m = 1usize << cell; // weight of the target cell
    let want_a = t >> 2 & 1 != 0;
    let want_b_line = t >> 1 & 1 != 0;
    let want_ci = t & 1 != 0;
    // The b operand's own cell bit: complemented on the line for Sub.
    let want_b = want_b_line != is_sub;
    if cell == 0 {
        // No low bits: the carry-in is the subtractor's +1 (or 0).
        if want_ci != is_sub {
            return Vec::new();
        }
        let ra = usize::from(want_a);
        let rb = usize::from(want_b);
        return if ra_set.get(ra) && rb_set.get(rb) { vec![(ra, rb)] } else { Vec::new() };
    }
    // Low parts present in rb_set within the required cell-bit half.
    let rb_half = usize::from(want_b) * m;
    let rb_lows: Vec<usize> = (0..m).filter(|&low| rb_set.get(rb_half + low)).collect();
    if rb_lows.is_empty() {
        return Vec::new();
    }
    let ra_half = usize::from(want_a) * m;
    let mut out = Vec::new();
    for i in 0..m {
        // Odd multiplier mod a power of two: a bijective scramble.
        let a_low = i.wrapping_mul(0x9E37_79B1) % m;
        if !ra_set.get(ra_half + a_low) {
            continue;
        }
        // The required carry out of the low bits pins the b operand's
        // low part into one contiguous window.
        let (lo, hi) = if is_sub {
            // ci = 1 iff a_low >= b_low (borrow-free low subtraction).
            if want_ci {
                (0, a_low + 1)
            } else {
                (a_low + 1, m)
            }
        } else if want_ci {
            // ci = 1 iff a_low + b_low >= m (empty when a_low == 0).
            (m - a_low, m)
        } else {
            (0, m - a_low)
        };
        if lo >= hi {
            continue;
        }
        let first = rb_lows.partition_point(|&x| x < lo);
        let last = rb_lows.partition_point(|&x| x < hi);
        if first == last {
            continue;
        }
        // Both edges of the window, when distinct.
        out.push((ra_half + a_low, rb_half + rb_lows[first]));
        if last - 1 > first && out.len() < limit {
            out.push((ra_half + a_low, rb_half + rb_lows[last - 1]));
        }
        if out.len() >= limit {
            break;
        }
    }
    out
}

/// Walks a target residue back through the subset-sum stages,
/// returning one entry pick per term. `salt` rotates each menu's scan
/// order so repeated walks to the same residue choose different
/// concrete entries.
fn reconstruct(
    d: &Decomposition,
    stages: &[ResidueSet],
    target: usize,
    m_bits: u32,
    salt: usize,
) -> Vec<usize> {
    let m = 1usize << m_bits;
    let mut picks = vec![0usize; d.terms.len()];
    let mut r = target;
    for k in (0..d.terms.len()).rev() {
        let term = &d.terms[k];
        let len = term.entries.len();
        let start = salt.wrapping_mul(104_729) % len;
        let mut found = false;
        for j in 0..len {
            let i = (start + j) % len;
            let delta = residue(term.sign * term.entries[i].value, m_bits);
            let prev = (r + m - delta) % m;
            if stages[k].get(prev) {
                picks[k] = i;
                r = prev;
                found = true;
                break;
            }
        }
        assert!(found, "stage {k} admits no predecessor for residue {r}");
    }
    debug_assert_eq!(r, residue(d.constant, m_bits), "walk must end at the constant");
    picks
}

/// The operand ids of a node kind.
fn operands(kind: &NodeKind) -> Vec<NodeId> {
    match *kind {
        NodeKind::Register { src }
        | NodeKind::Output { src }
        | NodeKind::Not { src }
        | NodeKind::SetLsb { src }
        | NodeKind::ShiftRight { src, .. } => vec![src],
        NodeKind::Add { a, b } | NodeKind::Sub { a, b } => vec![a, b],
        NodeKind::CsaSum { a, b, c } | NodeKind::CsaCarry { a, b, c, .. } => vec![a, b, c],
        _ => Vec::new(),
    }
}

/// One combinational node's value from its operands' values (same
/// arithmetic as the scalar simulator).
fn eval_member(netlist: &Netlist, values: &[i64], index: usize) -> i64 {
    let q = netlist.format();
    match netlist.nodes()[index].kind {
        NodeKind::Const { raw } => raw,
        NodeKind::Output { src } => values[src.index()],
        NodeKind::ShiftRight { src, amount } => values[src.index()] >> amount.min(62),
        NodeKind::Not { src } => q.wrap(-values[src.index()] - 1),
        NodeKind::SetLsb { src } => q.sign_extend(q.to_bits(values[src.index()]) | 1),
        NodeKind::Add { a, b } => q.wrap(values[a.index()] + values[b.index()]),
        NodeKind::Sub { a, b } => q.wrap(values[a.index()] - values[b.index()]),
        NodeKind::CsaSum { a, b, c } => q.sign_extend(
            (q.to_bits(values[a.index()])
                ^ q.to_bits(values[b.index()])
                ^ q.to_bits(values[c.index()]))
                & q.to_bits(-1),
        ),
        NodeKind::CsaCarry { a, b, c, .. } => {
            let (av, bv, cv) = (
                q.to_bits(values[a.index()]),
                q.to_bits(values[b.index()]),
                q.to_bits(values[c.index()]),
            );
            let carry = (av & bv) | ((av ^ bv) & cv);
            q.sign_extend((carry << 1) & q.to_bits(-1))
        }
        ref kind => panic!("non-combinational member {kind:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::{combo_from_values, ScalarSim};
    use rtl::NetlistBuilder;

    /// Every pair `feasible_pair` returns must realize its requested
    /// combination under the simulator's ripple arithmetic.
    #[test]
    fn feasible_pairs_realize_their_combination() {
        let mut b = NetlistBuilder::new(12).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let add = b.add_labeled(x, d, "add");
        let sub = b.sub_labeled(x, d, "sub");
        b.output(add, "ya");
        b.output(sub, "ys");
        let n = b.finish().unwrap();
        let mut values = vec![0i64; n.nodes().len()];
        let mut state = 11u64;
        for cell in 0..10u32 {
            let m = 1usize << (cell + 1);
            let mut ra = ResidueSet::new(m);
            let mut rb = ResidueSet::new(m);
            for _ in 0..m.div_ceil(3).max(2) {
                ra.set(splitmix(&mut state) as usize % m);
                rb.set(splitmix(&mut state) as usize % m);
            }
            for t in 0..8u8 {
                for (is_sub, node) in [(false, add), (true, sub)] {
                    for (a_res, b_res) in feasible_pairs(&ra, &rb, is_sub, cell, t, 8) {
                        assert!(ra.get(a_res) && rb.get(b_res));
                        // Any words with those low residues produce
                        // the combination at the cell.
                        values[x.index()] = a_res as i64;
                        values[d.index()] = b_res as i64;
                        assert_eq!(
                            combo_from_values(&n, &values, node, cell),
                            t,
                            "cell={cell} t={t} is_sub={is_sub} ra={a_res} rb={b_res}"
                        );
                    }
                }
            }
        }
    }

    /// Brute force over every two-word input stream of a two-tap
    /// accumulator: the solver's verdicts must match exactly — every
    /// reached combination solved with a pattern that replays, every
    /// unreached combination proven unactivatable.
    #[test]
    fn solver_matches_brute_force_on_a_two_tap_accumulator() {
        let input_bits = 6u32;
        let mut b = NetlistBuilder::new(12).unwrap();
        let x = b.input("x");
        let m1 = b.shift_right(x, 2);
        let r = b.register(m1);
        let m0 = b.shift_right(x, 1);
        let acc = b.add_labeled(r, m0, "acc");
        let y = b.register(acc);
        b.output(y, "y");
        let n = b.finish().unwrap();
        let cj = ChainJustifier::new(&n, input_bits);
        let align = n.width() - input_bits;
        let (lo, hi) = (-(1i64 << (input_bits - 1)), 1i64 << (input_bits - 1));
        let mut sim = ScalarSim::new(&n);
        for cell in [0u32, 3, 7] {
            // Every combination some (x1, x2) stream reaches at the
            // probe cycle.
            let mut reached = [false; 8];
            for x1 in lo..hi {
                for x2 in lo..hi {
                    sim.reset();
                    sim.step(x1 << align);
                    sim.step(x2 << align);
                    let t = combo_from_values(&n, sim.values(), acc, cell);
                    reached[t as usize] = true;
                }
            }
            for t in 0..8u8 {
                let fault =
                    rtl::fulladder::FaFault { line: rtl::fulladder::Line::X1And, stuck_one: true };
                let site = FaultSite {
                    node: acc,
                    cell,
                    representative: fault,
                    members: 1,
                    member_faults: vec![fault],
                    detecting_tests: 1 << t,
                };
                match cj.solve(&site, 2) {
                    ChainOutcome::Patterns(pats) => {
                        assert!(reached[t as usize], "cell={cell} t={t} false positive");
                        // The reconstructed pattern really drives t at
                        // the probe cycle (two flush words follow it).
                        let p = &pats[0];
                        sim.reset();
                        let mut seen = None;
                        for (i, &w) in p.iter().enumerate() {
                            sim.step(w);
                            if i + 2 == p.len() - 1 {
                                seen = Some(combo_from_values(&n, sim.values(), acc, cell));
                            }
                        }
                        assert_eq!(seen, Some(t), "cell={cell} pattern misses its combo");
                    }
                    ChainOutcome::Unactivatable => {
                        assert!(!reached[t as usize], "cell={cell} t={t} false negative");
                    }
                    ChainOutcome::Unknown => panic!("two-tap accumulator must decompose"),
                }
            }
        }
    }

    #[test]
    fn folded_product_factors_through_its_pair_base() {
        // pre = (x >> 1) + (x.z2 >> 1); product = (pre >> 1) + (pre >> 3).
        let mut b = NetlistBuilder::new(12).unwrap();
        let x = b.input("x");
        let z1 = b.register(x);
        let z2 = b.register(z1);
        let h1 = b.shift_right(x, 1);
        let h2 = b.shift_right(z2, 1);
        let pre = b.add_labeled(h1, h2, "pre");
        let s1 = b.shift_right(pre, 1);
        let s3 = b.shift_right(pre, 3);
        let product = b.add_labeled(s1, s3, "product");
        b.output(product, "y");
        let n = b.finish().unwrap();
        let cj = ChainJustifier::new(&n, 8);
        let d = cj.decompose(product).expect("product must factor");
        assert_eq!(d.terms.len(), 1);
        let Slots::Pair { du, dv } = d.terms[0].slots else {
            panic!("expected a pair term, got {:?}", d.terms[0].slots);
        };
        assert_eq!((du, dv), (0, 2));
        // Every menu entry must be consistent: evaluating the sample
        // pair through a scalar run reproduces the recorded value.
        let mut sim = ScalarSim::new(&n);
        for e in d.terms[0].entries.iter().take(64) {
            sim.reset();
            // v arrives two cycles before u (delay 2 vs 0).
            sim.step(e.v << 4);
            sim.step(0);
            sim.step(e.u << 4);
            assert_eq!(sim.values()[product.index()], e.value, "entry {e:?}");
        }
    }
}
