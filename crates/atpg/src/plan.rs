//! Hybrid LFSR reseeding: compress the deterministic pattern set into
//! a handful of seeds for the on-chip generator.
//!
//! The deployment shape follows the hybrid BIST literature: the tester
//! stores a short seed list instead of raw vectors; between seeds the
//! existing maximal-length LFSR free-runs for a fixed block length. A
//! fault whose activating word is `v` is covered by the seed that is
//! `v`'s *predecessor* state — loading it makes the LFSR emit `v` on
//! its first cycle and pseudorandom follow-on stimulus afterwards,
//! which frequently detects several other residual faults for free.
//! Seed selection is a greedy set cover over measured (simulated)
//! per-block detections, so a block's claimed coverage is always
//! ground truth. Faults no seed covers fall back to raw stored
//! patterns, so the plan never silently drops a justified fault.

use faultsim::{FaultId, FaultUniverse, ParallelFaultSimulator, StageSchedule};
use rtl::Netlist;
use std::collections::BTreeMap;
use tpg::{polynomials, Lfsr1, ShiftDirection, TestGenerator};

/// Knobs for the top-off stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopOffConfig {
    /// Vectors the LFSR free-runs per loaded seed.
    pub block_len: u32,
    /// Maximum number of stored seeds.
    pub max_seeds: u32,
}

impl Default for TopOffConfig {
    fn default() -> Self {
        TopOffConfig { block_len: 256, max_seeds: 16 }
    }
}

/// One selected seed and the residual faults its block detects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedBlock {
    /// The LFSR state to load (nonzero, `width` bits).
    pub seed: u64,
    /// Faults (parent-universe ids) the simulated block detects.
    pub covers: Vec<FaultId>,
}

/// The complete compressed top-off plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReseedPlan {
    /// LFSR width in bits (= the design's input width).
    pub width: u32,
    /// Primitive feedback polynomial (from [`tpg::polynomials`]).
    pub poly: u64,
    /// Vectors expanded per seed.
    pub block_len: u32,
    /// Selected seeds, in greedy pick order.
    pub seeds: Vec<SeedBlock>,
    /// Raw fallback patterns (aligned words) for faults no seed
    /// covers, in ascending fault-id order.
    pub stored: Vec<(FaultId, Vec<i64>)>,
}

impl ReseedPlan {
    /// Tester storage spent on seeds.
    pub fn seed_bits(&self) -> usize {
        self.seeds.len() * self.width as usize
    }

    /// Tester storage spent on raw fallback patterns (`width` bits per
    /// stored input word — only the input sample is stored, not the
    /// aligned datapath word).
    pub fn stored_bits(&self) -> usize {
        self.stored.iter().map(|(_, p)| p.len() * self.width as usize).sum()
    }

    /// Total top-off test length in clock cycles.
    pub fn total_vectors(&self) -> usize {
        self.seeds.len() * self.block_len as usize
            + self.stored.iter().map(|(_, p)| p.len()).sum::<usize>()
    }

    /// Expands one seed into its block of aligned input words.
    ///
    /// # Panics
    ///
    /// Panics if the seed is zero or wider than the LFSR (plans only
    /// ever hold seeds they expanded themselves).
    pub fn expand(&self, seed: u64, align: u32) -> Vec<i64> {
        let mut lfsr =
            Lfsr1::with_polynomial(self.width, self.poly, seed, ShiftDirection::LsbToMsb)
                .expect("plan seed must load");
        (0..self.block_len).map(|_| lfsr.next_word() << align).collect()
    }
}

/// The LFSR state whose *next* emitted word is `word` (nonzero,
/// `width`-bit): stepping the maximal-length sequence `period - 1`
/// times walks back one state. `None` for the all-zero word, which a
/// maximal LFSR never emits.
pub fn predecessor_seed(word: u64, width: u32, poly: u64) -> Option<u64> {
    let mask = (1u64 << width) - 1;
    let state = word & mask;
    if state == 0 {
        return None;
    }
    let mut lfsr = Lfsr1::with_polynomial(width, poly, state, ShiftDirection::LsbToMsb).ok()?;
    let steps = lfsr.period() - 1;
    let mut s = state;
    for _ in 0..steps {
        s = lfsr.step();
    }
    Some(s)
}

/// Maximum candidate seeds evaluated per greedy round.
const CANDIDATE_CAP: usize = 32;

/// Builds the greedy seed-cover plan for `targets` (the non-untestable
/// residue, parent-universe ids). `patterns` maps the justified subset
/// of `targets` to their verified activating patterns; justified
/// faults left uncovered by every selected seed are stored raw, so the
/// plan detects at least the justified set.
///
/// Deterministic: candidate generation, gain measurement (the parallel
/// fault simulator is bit-identical at every thread count) and
/// tie-breaking (smallest seed) are all order-stable.
pub fn plan_reseeding(
    netlist: &Netlist,
    universe: &FaultUniverse,
    targets: &[FaultId],
    patterns: &BTreeMap<FaultId, Vec<i64>>,
    input_bits: u32,
    cfg: &TopOffConfig,
) -> ReseedPlan {
    let Ok(poly) = polynomials::primitive(input_bits) else {
        // No tabulated polynomial at this width: store every justified
        // pattern raw rather than fail.
        return ReseedPlan {
            width: input_bits,
            poly: 0,
            block_len: cfg.block_len,
            seeds: Vec::new(),
            stored: patterns.iter().map(|(&id, p)| (id, p.clone())).collect(),
        };
    };
    let align = netlist.width() - input_bits;
    let word_mask = (1u64 << input_bits) - 1;
    let mut plan = ReseedPlan {
        width: input_bits,
        poly,
        block_len: cfg.block_len,
        seeds: Vec::new(),
        stored: Vec::new(),
    };
    let mut uncovered: Vec<FaultId> = targets.to_vec();
    let mut used: Vec<u64> = Vec::new();
    while !uncovered.is_empty() && (plan.seeds.len() as u32) < cfg.max_seeds {
        // Candidates: the predecessor of each uncovered fault's first
        // pattern word (its activating sample), so that word leads the
        // block. Sorted/deduped for determinism, capped per round.
        let mut candidates: Vec<u64> = uncovered
            .iter()
            .filter_map(|id| patterns.get(id))
            .filter_map(|p| p.first())
            .filter_map(|&raw| {
                predecessor_seed((raw >> align) as u64 & word_mask, input_bits, poly)
            })
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|s| !used.contains(s));
        candidates.truncate(CANDIDATE_CAP);
        if candidates.is_empty() {
            break;
        }
        let sub = universe.subset(&uncovered);
        let sim = ParallelFaultSimulator::new(netlist, &sub)
            .with_schedule(StageSchedule::with_boundaries(vec![]));
        let mut best: Option<(u64, Vec<FaultId>)> = None;
        for &seed in &candidates {
            let inputs = plan.expand(seed, align);
            let result = sim.run(&inputs);
            // Map subset detections back to parent-universe ids.
            let covers: Vec<FaultId> = result
                .detection_cycles()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(i, _)| uncovered[i])
                .collect();
            let better = match &best {
                None => !covers.is_empty(),
                Some((_, b)) => covers.len() > b.len(),
            };
            if better {
                best = Some((seed, covers));
            }
        }
        let Some((seed, covers)) = best else { break };
        uncovered.retain(|id| !covers.contains(id));
        used.push(seed);
        plan.seeds.push(SeedBlock { seed, covers });
    }
    // Justified faults no seed block reached: store their patterns raw.
    plan.stored =
        uncovered.iter().filter_map(|id| patterns.get(id).map(|p| (*id, p.clone()))).collect();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predecessor_seed_leads_with_the_requested_word() {
        let poly = polynomials::primitive(12).unwrap();
        for word in [1u64, 2, 0x7FF, 0xFFF, 0x800, 0x123] {
            let seed = predecessor_seed(word, 12, poly).expect("nonzero word has a predecessor");
            assert_ne!(seed, 0);
            let mut lfsr =
                Lfsr1::with_polynomial(12, poly, seed, ShiftDirection::LsbToMsb).unwrap();
            assert_eq!(lfsr.step(), word, "seed {seed:#x} must step to {word:#x}");
        }
        assert_eq!(predecessor_seed(0, 12, poly), None);
    }

    #[test]
    fn expand_is_deterministic_and_starts_at_the_seed_successor() {
        let poly = polynomials::primitive(12).unwrap();
        let plan = ReseedPlan { width: 12, poly, block_len: 8, seeds: vec![], stored: vec![] };
        let a = plan.expand(0x0AB, 4);
        let b = plan.expand(0x0AB, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut lfsr = Lfsr1::with_polynomial(12, poly, 0x0AB, ShiftDirection::LsbToMsb).unwrap();
        assert_eq!(a[0], lfsr.next_word() << 4);
    }

    #[test]
    fn storage_accounting_adds_up() {
        let plan = ReseedPlan {
            width: 12,
            poly: 0x1053,
            block_len: 64,
            seeds: vec![
                SeedBlock { seed: 1, covers: vec![FaultId(0)] },
                SeedBlock { seed: 2, covers: vec![FaultId(1), FaultId(2)] },
            ],
            stored: vec![(FaultId(3), vec![16, 0, 0]), (FaultId(4), vec![-16])],
        };
        assert_eq!(plan.seed_bits(), 24);
        assert_eq!(plan.stored_bits(), 4 * 12);
        assert_eq!(plan.total_vectors(), 2 * 64 + 4);
    }
}
