//! Sound static untestability screens for faults the purity sweep
//! cannot reach: cycle-accurate ternary reachability (activation) and a
//! bit-level observability mask (propagation).
//!
//! Both analyses answer one-sided questions, so both err conservative:
//!
//! - **Ternary reachability** (forward, from reset): simulate the
//!   netlist over three-valued words (`0`, `1`, unknown) with a fully
//!   unknown input every cycle, starting from the all-zero reset state.
//!   Each cycle's ternary state over-approximates every concrete state
//!   reachable at that cycle, so the union over cycles of the
//!   full-adder input combinations compatible with the state
//!   over-approximates the combinations that can *ever* occur. Exact
//!   per-cycle states are tracked through the warm-up (this is what
//!   proves the carry-save subtractor's `+1` seed redundancies: the
//!   carry LSB is zero only at reset, when the partial-sum registers
//!   are still zero too); once the state recurs or the warm-up bound
//!   passes, the tail is folded into a widened inductive invariant.
//! - **Observability mask** (backward): which bits of each node can
//!   *possibly* influence any primary output, over-approximated (every
//!   adder carry is assumed to propagate). A fault whose entire effect
//!   lands on unobservable bits is untestable. This is what proves the
//!   folded symmetric form's truncation redundancies — the `>> 1`
//!   halving discards its operand's LSB.

use faultsim::FaultSite;
use rtl::fulladder::{eval_faulty, eval_good};
use rtl::{Netlist, NodeId, NodeKind};

/// One ternary word: `known` flags bits that are constant, `value`
/// holds those constants (zero where unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Ternary {
    known: u64,
    value: u64,
}

impl Ternary {
    fn bit(self, i: u32) -> Option<bool> {
        if self.known >> i & 1 == 1 {
            Some(self.value >> i & 1 == 1)
        } else {
            None
        }
    }

    /// The join (least common knowledge): bits both sides know *and*
    /// agree on.
    fn join(self, other: Ternary) -> Ternary {
        let known = self.known & other.known & !(self.value ^ other.value);
        Ternary { known, value: self.value & known }
    }
}

/// Ternary sum/carry of one full-adder bit.
fn ternary_full_add(
    a: Option<bool>,
    b: Option<bool>,
    c: Option<bool>,
) -> (Option<bool>, Option<bool>) {
    let sum = match (a, b, c) {
        (Some(a), Some(b), Some(c)) => Some(a ^ b ^ c),
        _ => None,
    };
    // The majority is pinned by any two equal known inputs.
    let carry = match (a, b, c) {
        (Some(x), Some(y), _) if x == y => Some(x),
        (Some(x), _, Some(z)) if x == z => Some(x),
        (_, Some(y), Some(z)) if y == z => Some(y),
        (Some(a), Some(b), Some(c)) => Some((a & b) | ((a ^ b) & c)),
        _ => None,
    };
    (sum, carry)
}

/// The combined static screen over one netlist.
pub struct StaticScreen {
    /// Per-node ternary bits provably constant over *every* cycle.
    bits: Vec<Ternary>,
    /// Per-node, per-cell possible full-adder combinations, unioned
    /// over every cycle (empty for non-arithmetic nodes).
    combos: Vec<Vec<u8>>,
    /// Per-node mask of output-influencing bits.
    obs: Vec<u64>,
    width: u32,
}

impl StaticScreen {
    /// Runs both analyses.
    pub fn analyze(netlist: &Netlist, input_bits: u32) -> StaticScreen {
        let (bits, combos) = ternary_reachability(netlist, input_bits);
        let obs = observability(netlist);
        StaticScreen { bits, combos, obs, width: netlist.width() }
    }

    /// The full-adder input combinations that can occur at `cell` of an
    /// arithmetic node in *some* cycle of *some* input sequence from
    /// reset, as a `T0..T7` bitmask over-approximation (`0xFF` when
    /// nothing is pinned). The carry-in is rippled ternarily from the
    /// LSB within each cycle's state, so a provably-dead carry chain
    /// (e.g. a hardwired-zero operand bit) pins downstream
    /// combinations, and warm-up-only combinations stay separated from
    /// steady-state ones.
    pub fn possible_combos(&self, _netlist: &Netlist, node: NodeId, cell: u32) -> u8 {
        match self.combos[node.index()].get(cell as usize) {
            Some(&mask) => mask,
            None => 0xFF,
        }
    }

    /// Bit of a node provably constant in every cycle from reset
    /// (`None` when the bit can vary).
    pub fn known_bit(&self, node: NodeId, bit: u32) -> Option<bool> {
        self.bits[node.index()].bit(bit)
    }

    /// `true` if the fault is *provably untestable* by the static
    /// screens: either every detecting combination is impossible, or
    /// every output bit its effect can land on is unobservable.
    pub fn untestable(&self, netlist: &Netlist, site: &FaultSite) -> bool {
        let active = site.detecting_tests & self.possible_combos(netlist, site.node, site.cell);
        if active == 0 {
            return true;
        }
        // Effect category under the combinations that can occur.
        let mut sum_eff = false;
        let mut cout_eff = false;
        for t in 0..8u8 {
            if active >> t & 1 == 0 {
                continue;
            }
            let a = t >> 2 & 1 == 1;
            let b = t >> 1 & 1 == 1;
            let c = t & 1 == 1;
            let good = eval_good(a, b, c);
            let faulty = eval_faulty(a, b, c, site.representative);
            sum_eff |= good.0 != faulty.0;
            cout_eff |= good.1 != faulty.1;
        }
        let top = netlist.msb_trim(site.node);
        let mask = if self.width == 64 { !0u64 } else { (1u64 << self.width) - 1 };
        let mut eff = 0u64;
        if sum_eff {
            eff |= if site.cell >= top {
                // The top (and any trimmed) cell's sum is the sign the
                // cells above replicate.
                mask & (!0u64 << site.cell)
            } else {
                1 << site.cell
            };
        }
        if cout_eff && site.cell < top {
            eff |= mask & (!0u64 << (site.cell + 1));
        }
        eff & self.obs[site.node.index()] == 0
    }
}

/// One combinational evaluation of the netlist over ternary words:
/// `reg` supplies every register's state, the input is unknown above
/// its alignment zeros.
fn ternary_values(netlist: &Netlist, reg: &[Ternary], input: Ternary) -> Vec<Ternary> {
    let w = netlist.width();
    let mask = if w == 64 { !0u64 } else { (1u64 << w) - 1 };
    let nodes = netlist.nodes();
    let mut bits = vec![Ternary::default(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        bits[i] = match node.kind {
            NodeKind::Input => input,
            NodeKind::Const { raw } => Ternary { known: mask, value: raw as u64 & mask },
            NodeKind::Register { .. } => reg[i],
            NodeKind::Output { src } => bits[src.index()],
            NodeKind::Not { src } => {
                let s = bits[src.index()];
                Ternary { known: s.known, value: !s.value & s.known & mask }
            }
            NodeKind::SetLsb { src } => {
                let s = bits[src.index()];
                Ternary { known: s.known | 1, value: s.value | 1 }
            }
            NodeKind::ShiftRight { src, amount } => {
                let s = bits[src.index()];
                let mut out = Ternary::default();
                for i in 0..w {
                    let j = (i + amount).min(w - 1);
                    if let Some(v) = s.bit(j) {
                        out.known |= 1 << i;
                        out.value |= (v as u64) << i;
                    }
                }
                out
            }
            NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
                let is_sub = matches!(node.kind, NodeKind::Sub { .. });
                let at = bits[a.index()];
                let bt = bits[b.index()];
                let mut out = Ternary::default();
                let mut carry = Some(is_sub);
                for i in 0..w {
                    let b_line = bt.bit(i).map(|v| v ^ is_sub);
                    let (sum, cout) = ternary_full_add(at.bit(i), b_line, carry);
                    if let Some(v) = sum {
                        out.known |= 1 << i;
                        out.value |= (v as u64) << i;
                    }
                    carry = cout;
                }
                out
            }
            NodeKind::CsaSum { a, b, c } => {
                let (at, bt, ct) = (bits[a.index()], bits[b.index()], bits[c.index()]);
                let known = at.known & bt.known & ct.known;
                Ternary { known, value: (at.value ^ bt.value ^ ct.value) & known }
            }
            NodeKind::CsaCarry { a, b, c, .. } => {
                let (at, bt, ct) = (bits[a.index()], bits[b.index()], bits[c.index()]);
                let mut out = Ternary { known: 1, value: 0 };
                for i in 0..w - 1 {
                    if let Some(v) = ternary_full_add(at.bit(i), bt.bit(i), ct.bit(i)).1 {
                        out.known |= 1 << (i + 1);
                        out.value |= (v as u64) << (i + 1);
                    }
                }
                out
            }
            // Unknown kinds: nothing provable.
            _ => Ternary::default(),
        };
    }
    bits
}

/// The register state one cycle after `values` (each register latches
/// its source's ternary word).
fn ternary_next_regs(netlist: &Netlist, values: &[Ternary]) -> Vec<Ternary> {
    let nodes = netlist.nodes();
    let mut reg = vec![Ternary::default(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        if let NodeKind::Register { src } = node.kind {
            reg[i] = values[src.index()];
        }
    }
    reg
}

/// Folds one cycle's combinations into the per-node, per-cell union
/// masks (same per-cell carry ripple as `combos_from_values`, but over
/// ternary operands).
fn accumulate_combos(netlist: &Netlist, values: &[Ternary], combos: &mut [Vec<u8>]) {
    let w = netlist.width();
    // `options(t)[v]` is whether bit value `v` is possible.
    let options = |t: Option<bool>| match t {
        Some(true) => [false, true],
        Some(false) => [true, false],
        None => [true, true],
    };
    let cell_mask = |a_t: Option<bool>, b_t: Option<bool>, c_t: Option<bool>| -> u8 {
        let mut mask = 0u8;
        for t in 0..8u8 {
            let a = t >> 2 & 1 == 1;
            let b = t >> 1 & 1 == 1;
            let c = t & 1 == 1;
            if options(a_t)[a as usize] && options(b_t)[b as usize] && options(c_t)[c as usize] {
                mask |= 1 << t;
            }
        }
        mask
    };
    for id in netlist.arithmetic_ids() {
        let out = &mut combos[id.index()];
        if out.is_empty() {
            out.resize(w as usize, 0);
        }
        match netlist.node(id).kind {
            NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
                let is_sub = matches!(netlist.node(id).kind, NodeKind::Sub { .. });
                let at = values[a.index()];
                let bt = values[b.index()];
                let mut carry = Some(is_sub);
                for cell in 0..w {
                    let b_line = bt.bit(cell).map(|v| v ^ is_sub);
                    out[cell as usize] |= cell_mask(at.bit(cell), b_line, carry);
                    carry = ternary_full_add(at.bit(cell), b_line, carry).1;
                }
            }
            NodeKind::CsaSum { a, b, c } => {
                let (at, bt, ct) = (values[a.index()], values[b.index()], values[c.index()]);
                for cell in 0..w {
                    out[cell as usize] |= cell_mask(at.bit(cell), bt.bit(cell), ct.bit(cell));
                }
            }
            // Carry-save carry words share their sum sibling's cells;
            // faults are enumerated on the sum node.
            _ => out.fill(0xFF),
        }
    }
}

/// Cycle-accurate ternary reachability from reset. Returns the
/// per-node all-cycle constant-bit invariant and the per-node,
/// per-cell possible-combination masks.
///
/// Exact ternary states are stepped cycle by cycle (each one a sound
/// per-cycle over-approximation, since ternary transfer functions
/// contain the concrete ones). If the state stabilizes the analysis is
/// complete — every later cycle repeats it. If it has not stabilized
/// within the warm-up bound, the remaining tail is covered by widening
/// the state to an inductive invariant (joining each step into its
/// predecessor until nothing changes) and folding that invariant's
/// combinations in once.
fn ternary_reachability(netlist: &Netlist, input_bits: u32) -> (Vec<Ternary>, Vec<Vec<u8>>) {
    let w = netlist.width();
    let mask = if w == 64 { !0u64 } else { (1u64 << w) - 1 };
    let align = w - input_bits;
    let input = Ternary { known: (1u64 << align) - 1, value: 0 };
    let nodes = netlist.nodes();
    let mut combos = vec![Vec::new(); nodes.len()];
    let mut invariant: Option<Vec<Ternary>> = None;
    let fold = |values: &[Ternary], combos: &mut Vec<Vec<u8>>, inv: &mut Option<Vec<Ternary>>| {
        accumulate_combos(netlist, values, combos);
        match inv {
            None => *inv = Some(values.to_vec()),
            Some(inv) => {
                for (i, v) in values.iter().enumerate() {
                    inv[i] = inv[i].join(*v);
                }
            }
        }
    };
    // Registers reset to zero: fully known.
    let mut reg = vec![Ternary { known: mask, value: 0 }; nodes.len()];
    let warmup = 2 * (netlist.register_indices().len() + 2);
    for _ in 0..warmup {
        let values = ternary_values(netlist, &reg, input);
        fold(&values, &mut combos, &mut invariant);
        let next = ternary_next_regs(netlist, &values);
        if next == reg {
            // Stabilized: every later cycle repeats this state.
            return (invariant.expect("at least one cycle folded"), combos);
        }
        reg = next;
    }
    // Widen the unstabilized tail into an inductive invariant.
    loop {
        let values = ternary_values(netlist, &reg, input);
        let mut next = ternary_next_regs(netlist, &values);
        for (i, n) in next.iter_mut().enumerate() {
            *n = n.join(reg[i]);
        }
        if next == reg {
            fold(&values, &mut combos, &mut invariant);
            return (invariant.expect("at least one cycle folded"), combos);
        }
        reg = next;
    }
}

/// Backward over-approximate observability: for each node, the bits
/// whose value can influence some primary output. Single reverse pass
/// — node ids are topologically ordered, so every user is visited
/// before its operands.
fn observability(netlist: &Netlist) -> Vec<u64> {
    let w = netlist.width();
    let mask = if w == 64 { !0u64 } else { (1u64 << w) - 1 };
    let nodes = netlist.nodes();
    let mut obs = vec![0u64; nodes.len()];
    // A carry makes operand bit `j` influence every sum bit at or
    // above `j`: the operand sees the down-closure of the user's mask.
    let down_closure = |m: u64| -> u64 {
        if m == 0 {
            0
        } else {
            let high = 63 - m.leading_zeros();
            if high >= 63 {
                !0
            } else {
                (1u64 << (high + 1)) - 1
            }
        }
    };
    for i in (0..nodes.len()).rev() {
        let m = match nodes[i].kind {
            NodeKind::Output { .. } => mask,
            _ => obs[i],
        };
        if m == 0 {
            continue;
        }
        match nodes[i].kind {
            NodeKind::Input | NodeKind::Const { .. } => {}
            NodeKind::Output { src } | NodeKind::Register { src } | NodeKind::Not { src } => {
                obs[src.index()] |= m;
            }
            NodeKind::SetLsb { src } => {
                obs[src.index()] |= m & !1;
            }
            NodeKind::ShiftRight { src, amount } => {
                // Node bit i reads src bit min(i + amount, w - 1).
                let mut s = 0u64;
                for bit in 0..w {
                    if m >> bit & 1 == 1 {
                        s |= 1 << (bit + amount).min(w - 1);
                    }
                }
                obs[src.index()] |= s;
            }
            NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
                let d = down_closure(m) & mask;
                obs[a.index()] |= d;
                obs[b.index()] |= d;
            }
            NodeKind::CsaSum { a, b, c } => {
                obs[a.index()] |= m;
                obs[b.index()] |= m;
                obs[c.index()] |= m;
            }
            NodeKind::CsaCarry { a, b, c, .. } => {
                obs[a.index()] |= m >> 1;
                obs[b.index()] |= m >> 1;
                obs[c.index()] |= m >> 1;
            }
            _ => {}
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::FaultUniverse;
    use rtl::range::{aligned_input_range, RangeAnalysis};
    use rtl::NetlistBuilder;

    #[test]
    fn known_bits_track_alignment_and_setlsb() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let s = b.set_lsb(x);
        let d = b.register(s);
        let y = b.add_labeled(s, d, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        // 6-bit input aligned into 8 bits: low 2 bits known zero.
        let screen = StaticScreen::analyze(&n, 6);
        assert_eq!(screen.known_bit(x, 0), Some(false));
        assert_eq!(screen.known_bit(x, 1), Some(false));
        // SetLsb pins bit 0 to one...
        assert_eq!(screen.known_bit(s, 0), Some(true));
        assert_eq!(screen.known_bit(s, 1), Some(false));
        // ...but its register sees a reset zero in cycle 0, so over all
        // cycles only the still-zero bit stays constant.
        assert_eq!(screen.known_bit(d, 0), None);
        assert_eq!(screen.known_bit(d, 1), Some(false));
        // Adder bit 1: the carry out of bit 0 is unknown once the
        // register bit oscillates.
        assert_eq!(screen.known_bit(y, 1), None);
    }

    #[test]
    fn per_cycle_analysis_separates_warmup_from_steady_state() {
        // d holds 0 in cycle 1 and 1 forever after; the adder's bit-0
        // cell therefore sees (s=1, d=0) only at warm-up and (s=1, d=1)
        // afterwards — never (0, 0) or (0, 1).
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let s = b.set_lsb(x);
        let d = b.register(s);
        let y = b.add_labeled(s, d, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let screen = StaticScreen::analyze(&n, 6);
        let possible = screen.possible_combos(&n, y, 0);
        // a = s (bit 0 always 1) -> only combos with the a-bit set.
        assert_eq!(possible & 0b0000_1111, 0, "a-bit-low combos must be impossible");
        // Carry into cell 0 is the ripple seed (0 for an adder).
        assert_eq!(possible & 0b1010_1010, 0, "cell 0 of an adder has no carry-in");
        // Both remaining combos occur: b=0 at warm-up, b=1 after.
        assert_eq!(possible, 0b0101_0000);
    }

    #[test]
    fn observability_sees_through_a_right_shift() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let pair = b.add_labeled(x, d, "pair");
        let half = b.shift_right(pair, 1);
        let y = b.add_labeled(half, x, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let obs = observability(&n);
        // The halving discards `pair`'s LSB: bit 0 unobservable, the
        // rest visible.
        assert_eq!(obs[pair.index()] & 1, 0);
        assert_ne!(obs[pair.index()] & 2, 0);
        // The accumulator feeds the output directly.
        assert_eq!(obs[y.index()], 0xFF);
    }

    #[test]
    fn truncated_lsb_faults_are_proven_untestable() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let pair = b.add_labeled(x, d, "pair");
        let half = b.shift_right(pair, 1);
        let y = b.add_labeled(half, x, "acc");
        b.output(y, "y");
        let n = b.finish().unwrap();
        let r = RangeAnalysis::analyze(&n, aligned_input_range(8, 8));
        let u = FaultUniverse::enumerate(&n, &r);
        let screen = StaticScreen::analyze(&n, 8);
        let mut proved = 0;
        for id in u.ids() {
            let site = u.site(id);
            if screen.untestable(&n, site) {
                proved += 1;
                // Everything proven must be a pure-sum fault at the
                // truncated cell 0 of `pair`.
                assert_eq!(site.node, pair, "unexpected untestable site {site}");
                assert_eq!(site.cell, 0);
            }
        }
        assert!(proved > 0, "the truncated LSB must yield untestable faults");
    }
}
