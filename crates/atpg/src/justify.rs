//! Backward justification with forward-implication verification.
//!
//! Justification runs in two regimes, chosen per fault by the
//! [`ConeAnalysis`] classification of its
//! host node:
//!
//! - **Pure nodes** (functions of one delayed input sample): one
//!   exhaustive sweep over all `2^input_bits` sample values records,
//!   per full-adder cell, exactly which of the eight input combinations
//!   `T0..T7` are reachable and a spread of samples reaching each. A
//!   fault whose detecting-test set misses the reachable set is
//!   **provably untestable** — the proof is exact because the sweep is
//!   exhaustive and warm-up cycles only replay the (enumerated) zero
//!   sample. Otherwise the recorded samples become pattern candidates.
//! - **Window nodes** (mixing several delays): no exhaustive proof is
//!   possible, so a deterministic family of high-yield stimulus shapes
//!   (constants at the rails, alternations, impulses, powers of two,
//!   short LFSR bursts) is tried in order.
//!
//! Every candidate — from either regime — is confirmed by forward
//! implication on the real bit-sliced simulator with the representative
//! fault injected: a pattern is only ever reported with an observed
//! output divergence, so `Detected` verdicts are ground truth, not
//! heuristics. Candidates that all fail leave the fault `Unresolved`
//! (honestly counted, never silently dropped).

use crate::chain::{ChainJustifier, ChainOutcome};
use crate::cone::{combos_from_values, ConeAnalysis, ConeEval, Purity, ScalarSim};
use crate::knownbits::StaticScreen;
use faultsim::{FaultId, FaultSite, FaultUniverse};
use rtl::sim::{BitSlicedSim, CellFault};
use rtl::{Netlist, NodeId};
use std::cell::OnceCell;
use std::collections::HashMap;
use tpg::{Lfsr1, ShiftDirection, TestGenerator};

/// The justifier's ruling on one residual fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A deterministic activating pattern was found and *verified* by
    /// forward simulation: applying these raw (aligned) input words
    /// from reset makes the faulty machine's output diverge on the
    /// final word.
    Detected {
        /// Raw input words, aligned to the datapath width.
        pattern: Vec<i64>,
    },
    /// Proven unactivatable: the cell combinations that detect this
    /// fault are outside the exhaustively-enumerated reachable set of
    /// its (pure) host node. No input sequence can ever expose it.
    Untestable,
    /// Neither proven untestable nor activated by any candidate; the
    /// fault stays in the universe and is reported as missed.
    Unresolved,
}

/// Maximum samples retained per reachable combination (half head of
/// the sweep, half tail, for value spread).
const SAMPLES_PER_COMBO: usize = 8;

/// Maximum single-sample candidates tried per pure fault before
/// falling through to the window-node stimulus families.
const PURE_CANDIDATES: usize = 12;

/// Maximum stimulus witnesses retained per (window node, cell, combo).
const WITNESSES_PER_COMBO: usize = 3;

/// Maximum witness patterns tried per window fault.
const WINDOW_CANDIDATES: usize = 24;

#[derive(Clone, Default)]
struct CellCombos {
    reached: u8,
    samples: [Vec<i64>; 8],
}

struct PureCells {
    delay: u32,
    cells: Vec<CellCombos>,
}

/// A stimulus shape *observed* (by scalar simulation) to drive a
/// specific full-adder combination at a specific window-node cell.
#[derive(Debug, Clone, Copy)]
enum Witness {
    /// Hold sample `x` from reset; the combination appears on cycle
    /// `cycles` (1-based).
    Const { x: i64, cycles: u32 },
    /// Hold `x1` to steady state, then `x2` for `hold` cycles; the
    /// combination appears on the last cycle.
    TwoPhase { x1: i64, x2: i64, hold: u32 },
}

/// Per-window-node witness buckets: `cells[cell][combo]` holds up to
/// [`WITNESSES_PER_COMBO`] observed stimuli.
struct WitnessTable {
    /// Cycles the two-phase prefix holds `x1` (pipeline depth).
    prefix: u32,
    per_node: HashMap<usize, Vec<[Vec<Witness>; 8]>>,
}

/// Deterministic pattern justification over one netlist and fault
/// universe.
pub struct Justifier<'n> {
    netlist: &'n Netlist,
    universe: &'n FaultUniverse,
    input_bits: u32,
    align: u32,
    /// Indexed by node index; `Some` for pure arithmetic nodes.
    pure: Vec<Option<PureCells>>,
    screen: StaticScreen,
    /// Lazily built: only window-fault justification needs the
    /// (comparatively expensive) scalar stimulus sweeps.
    witnesses: OnceCell<WitnessTable>,
    /// Lazily built: only faults the witness sweeps miss need the
    /// chain-decomposition search.
    chain: OnceCell<ChainJustifier<'n>>,
    flush: usize,
}

impl<'n> Justifier<'n> {
    /// Builds the justifier, running the exhaustive single-sample sweep
    /// over every pure arithmetic node (`2^input_bits` cone
    /// evaluations).
    ///
    /// # Panics
    ///
    /// Panics if `input_bits` is zero, exceeds the datapath width, or
    /// exceeds 20 (the sweep is exponential in it; every design in this
    /// workspace uses 12).
    pub fn new(netlist: &'n Netlist, universe: &'n FaultUniverse, input_bits: u32) -> Self {
        assert!(
            (1..=20).contains(&input_bits) && input_bits <= netlist.width(),
            "input_bits {input_bits} outside the supported range"
        );
        let cone = ConeAnalysis::analyze(netlist);
        let width = netlist.width() as usize;
        let mut pure: Vec<Option<PureCells>> = (0..netlist.nodes().len()).map(|_| None).collect();
        for id in netlist.arithmetic_ids() {
            if let Purity::Pure(delay) = cone.purity(id) {
                pure[id.index()] =
                    Some(PureCells { delay, cells: vec![CellCombos::default(); width] });
            }
        }
        let mut eval = ConeEval::new(netlist, input_bits);
        let lo = -(1i64 << (input_bits - 1));
        let hi = 1i64 << (input_bits - 1);
        let total = (hi - lo) as usize;
        for (step, v) in (lo..hi).enumerate() {
            eval.eval(v);
            for id in netlist.arithmetic_ids() {
                let Some(info) = pure[id.index()].as_mut() else { continue };
                for (cell, combos) in info.cells.iter_mut().enumerate() {
                    let t = eval.combo(id, cell as u32) as usize;
                    combos.reached |= 1 << t;
                    let bucket = &mut combos.samples[t];
                    if bucket.len() < SAMPLES_PER_COMBO / 2 {
                        bucket.push(v);
                    } else if step >= total - SAMPLES_PER_COMBO / 2 {
                        // Tail of the sweep: keep the most positive
                        // samples alongside the most negative head.
                        if bucket.len() < SAMPLES_PER_COMBO {
                            bucket.push(v);
                        }
                    }
                }
            }
        }
        // Two spare cycles after a full pipeline flush cover the output
        // stage of any downstream logic.
        let flush = netlist.register_indices().len() + 2;
        let screen = StaticScreen::analyze(netlist, input_bits);
        Justifier {
            netlist,
            universe,
            input_bits,
            align: netlist.width() - input_bits,
            pure,
            screen,
            witnesses: OnceCell::new(),
            chain: OnceCell::new(),
            flush,
        }
    }

    /// Whether one of the sound static proofs rules the fault out: the
    /// exhaustive pure-cone sweep, the ternary known-bits analysis, or
    /// the observability mask.
    fn proven_untestable(&self, site: &FaultSite) -> bool {
        let pure_unreachable = self.pure[site.node.index()]
            .as_ref()
            .is_some_and(|p| p.cells[site.cell as usize].reached & site.detecting_tests == 0);
        pure_unreachable || self.screen.untestable(self.netlist, site)
    }

    /// The faults whose detecting tests are provably unreachable or
    /// whose effects are provably unobservable (see
    /// [`Verdict::Untestable`]), in ascending id order. Cheap: reuses
    /// the construction-time analyses, no simulation.
    pub fn untestable(&self) -> Vec<FaultId> {
        self.universe.ids().filter(|&id| self.proven_untestable(self.universe.site(id))).collect()
    }

    /// Justifies one fault: tries to produce a verified activating
    /// pattern, prove untestability, or give up (`Unresolved`).
    pub fn justify(&self, id: FaultId) -> Verdict {
        let site = self.universe.site(id);
        if self.proven_untestable(site) {
            return Verdict::Untestable;
        }
        let mut sim = BitSlicedSim::new(self.netlist);
        if let Some(info) = self.pure[site.node.index()].as_ref() {
            let combos = &info.cells[site.cell as usize];
            // Gather activating samples across every detecting combo,
            // most promising first (each is *known* to activate the
            // cell; only observability at the output is in question).
            let mut samples: Vec<i64> = (0..8)
                .filter(|t| site.detecting_tests & (1 << t) != 0)
                .flat_map(|t| combos.samples[t as usize].iter().copied())
                .collect();
            samples.sort_unstable();
            samples.dedup();
            let hold = info.delay as usize + 1;
            for &v in samples.iter().take(PURE_CANDIDATES) {
                let raw = v << self.align;
                // Hold the sample long enough to fill the delay chain,
                // then flush with zeros to propagate the divergence.
                let mut pattern = vec![raw; hold];
                pattern.extend(std::iter::repeat_n(0, self.flush));
                if let Some(len) = self.try_pattern(&mut sim, site, &pattern) {
                    pattern.truncate(len);
                    return Verdict::Detected { pattern };
                }
                // A zero flush can mask the divergence downstream; try
                // holding the sample for the whole pattern instead.
                let pattern = vec![raw; hold + self.flush];
                if let Some(len) = self.try_pattern(&mut sim, site, &pattern) {
                    let mut pattern = pattern;
                    pattern.truncate(len);
                    return Verdict::Detected { pattern };
                }
            }
        }
        // Window node, or a pure fault whose samples were all masked:
        // observed witnesses first, then the generic stimulus families.
        for pattern in self.witness_patterns(site) {
            if let Some(len) = self.try_pattern(&mut sim, site, &pattern) {
                let mut pattern = pattern;
                pattern.truncate(len);
                return Verdict::Detected { pattern };
            }
        }
        // Accumulator cells whose combinations need *joint* operand
        // conditions: decompose the operands into independently
        // controllable terms and solve the combination exactly over
        // the reachable residue sets.
        let chain = self.chain.get_or_init(|| ChainJustifier::new(self.netlist, self.input_bits));
        match chain.solve(site, self.flush) {
            ChainOutcome::Patterns(patterns) => {
                for pattern in patterns {
                    if let Some(len) = self.try_pattern(&mut sim, site, &pattern) {
                        let mut pattern = pattern;
                        pattern.truncate(len);
                        return Verdict::Detected { pattern };
                    }
                }
            }
            // No detecting combination is reachable on the fault-free
            // operands: activation can never occur.
            ChainOutcome::Unactivatable => return Verdict::Untestable,
            ChainOutcome::Unknown => {}
        }
        for pattern in self.window_candidates() {
            if let Some(len) = self.try_pattern(&mut sim, site, &pattern) {
                let mut pattern = pattern;
                pattern.truncate(len);
                return Verdict::Detected { pattern };
            }
        }
        Verdict::Unresolved
    }

    /// The lazily-built witness table (see [`WitnessTable`]): two
    /// scalar sweeps record which stimuli drive which combinations at
    /// every window-node cell. Sweep one holds each input sample from
    /// reset through the pipeline depth (exhaustive over constant
    /// streams). Sweep two settles the pipeline on a rail/corner
    /// driver, then probes every sample for a few cycles — reaching
    /// (driver-state × sample) operand pairs no constant stream can.
    fn witness_table(&self) -> &WitnessTable {
        self.witnesses.get_or_init(|| {
            let prefix = self.netlist.register_indices().len() as u32 + 2;
            let mut per_node: HashMap<usize, Vec<[Vec<Witness>; 8]>> = HashMap::new();
            let window_nodes: Vec<NodeId> = self
                .netlist
                .arithmetic_ids()
                .into_iter()
                .filter(|id| self.pure[id.index()].is_none())
                .collect();
            if window_nodes.is_empty() {
                return WitnessTable { prefix, per_node };
            }
            let width = self.netlist.width() as usize;
            for &id in &window_nodes {
                per_node.insert(id.index(), vec![std::array::from_fn(|_| Vec::new()); width]);
            }
            let lo = -(1i64 << (self.input_bits - 1));
            let hi = 1i64 << (self.input_bits - 1);
            let mut sim = ScalarSim::new(self.netlist);
            let mut combos: Vec<u8> = Vec::with_capacity(width);
            let record = |per_node: &mut HashMap<usize, Vec<[Vec<Witness>; 8]>>,
                          sim: &ScalarSim<'_>,
                          combos: &mut Vec<u8>,
                          witness: Witness| {
                for &id in &window_nodes {
                    combos_from_values(self.netlist, sim.values(), id, combos);
                    let cells = per_node.get_mut(&id.index()).expect("pre-inserted");
                    for (cell, &combo) in combos.iter().enumerate() {
                        let bucket = &mut cells[cell][combo as usize];
                        if bucket.len() < WITNESSES_PER_COMBO {
                            bucket.push(witness);
                        }
                    }
                }
            };
            // Sweep one: every constant stream, every warm-up cycle.
            for v in lo..hi {
                let raw = v << self.align;
                sim.reset();
                for t in 1..=prefix {
                    sim.step(raw);
                    record(&mut per_node, &sim, &mut combos, Witness::Const { x: v, cycles: t });
                }
            }
            // Sweep two: rail/corner drivers to steady state, then
            // every sample probed for three cycles.
            let max = hi - 1;
            let drivers =
                [0i64, max, lo, max >> 1, lo >> 1, max >> 2, lo >> 2, 1, -1, max - 1, lo + 1];
            for x1 in drivers {
                sim.reset();
                for _ in 0..prefix {
                    sim.step(x1 << self.align);
                }
                let settled = sim.save_regs();
                for x2 in lo..hi {
                    sim.restore_regs(&settled);
                    for hold in 1..=3u32 {
                        sim.step(x2 << self.align);
                        record(
                            &mut per_node,
                            &sim,
                            &mut combos,
                            Witness::TwoPhase { x1, x2, hold },
                        );
                    }
                }
            }
            WitnessTable { prefix, per_node }
        })
    }

    /// Candidate patterns for a window fault, from observed witnesses
    /// of its detecting combinations. Each witness yields two
    /// variants: flush with zeros, or keep holding the final word.
    fn witness_patterns(&self, site: &FaultSite) -> Vec<Vec<i64>> {
        let table = self.witness_table();
        let Some(cells) = table.per_node.get(&site.node.index()) else {
            return Vec::new();
        };
        let buckets = &cells[site.cell as usize];
        let mut patterns = Vec::new();
        // Round-robin across detecting combos so no single combo's
        // witnesses crowd out the others.
        for rank in 0..WITNESSES_PER_COMBO {
            for t in 0..8 {
                if site.detecting_tests & (1 << t) == 0 {
                    continue;
                }
                let Some(&witness) = buckets[t as usize].get(rank) else { continue };
                let base: Vec<i64> = match witness {
                    Witness::Const { x, cycles } => vec![x << self.align; cycles as usize],
                    Witness::TwoPhase { x1, x2, hold } => {
                        let mut p = vec![x1 << self.align; table.prefix as usize];
                        p.extend(std::iter::repeat_n(x2 << self.align, hold as usize));
                        p
                    }
                };
                let last = *base.last().expect("witness patterns are non-empty");
                let mut hold_on = base.clone();
                hold_on.extend(std::iter::repeat_n(last, self.flush));
                patterns.push(hold_on);
                let mut zeros = base;
                zeros.extend(std::iter::repeat_n(0, self.flush));
                patterns.push(zeros);
                if patterns.len() >= WINDOW_CANDIDATES {
                    return patterns;
                }
            }
        }
        patterns
    }

    /// The deterministic stimulus families for window-node faults, in
    /// trial order. All values are raw aligned words.
    fn window_candidates(&self) -> Vec<Vec<i64>> {
        let max = ((1i64 << (self.input_bits - 1)) - 1) << self.align;
        let min = -(1i64 << (self.input_bits - 1)) << self.align;
        let len = self.flush + 16;
        let mut families: Vec<Vec<i64>> = vec![
            vec![max; len],
            vec![min; len],
            (0..len).map(|t| if t % 2 == 0 { max } else { min }).collect(),
            (0..len).map(|t| if t % 2 == 0 { min } else { max }).collect(),
            (0..len).map(|t| if t % 4 < 2 { max } else { min }).collect(),
            std::iter::once(max).chain(std::iter::repeat_n(0, len - 1)).collect(),
            std::iter::once(min).chain(std::iter::repeat_n(0, len - 1)).collect(),
        ];
        for k in (0..self.input_bits - 1).rev() {
            let v = 1i64 << (k + self.align);
            families.push(vec![v; len]);
            families.push(vec![-v; len]);
        }
        // Short pseudorandom bursts as a last resort: the default-seed
        // maximal LFSR and its decorrelated variant, 256 words each.
        for decorrelate in [false, true] {
            if let Ok(mut lfsr) = Lfsr1::new(self.input_bits, ShiftDirection::LsbToMsb) {
                let mut burst = Vec::with_capacity(256);
                let mut prev_lsb = 0u64;
                for _ in 0..256 {
                    let mut v = lfsr.next_word();
                    if decorrelate && prev_lsb == 1 {
                        // Mirror tpg's Decorrelated: invert the word
                        // when the previous LSB was one.
                        v = -v - 1;
                    }
                    prev_lsb = (v as u64) & 1;
                    burst.push(v << self.align);
                }
                families.push(burst);
            }
        }
        families
    }

    /// Forward implication: injects the representative fault into lane
    /// 1 (lane 0 stays fault-free), replays the pattern from reset, and
    /// returns the 1-based cycle of the first output divergence.
    fn try_pattern(
        &self,
        sim: &mut BitSlicedSim<'_>,
        site: &FaultSite,
        pattern: &[i64],
    ) -> Option<usize> {
        sim.reset();
        sim.clear_all_faults();
        sim.set_faults(
            site.node,
            vec![CellFault { cell: site.cell, fault: site.representative, lanes: 1 << 1 }],
        );
        for (t, &raw) in pattern.iter().enumerate() {
            sim.step(raw);
            if sim.output_diff_lanes(0) != 0 {
                return Some(t + 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::ParallelFaultSimulator;
    use rtl::reachability::Reachability;

    fn lp_mini() -> (Netlist, FaultUniverse) {
        let design = filters::designs::lowpass_mini().expect("design LP-MINI");
        let netlist = design.netlist().clone();
        let reach = Reachability::analyze(&netlist, design.spec().input_bits);
        let universe = FaultUniverse::enumerate_pruned(&netlist, design.claimed_ranges(), &reach);
        (netlist, universe)
    }

    #[test]
    fn every_detected_verdict_replays_on_the_simulator() {
        let (netlist, universe) = lp_mini();
        let justifier = Justifier::new(&netlist, &universe, 12);
        let mut detected = 0usize;
        for id in universe.ids().take(64) {
            if let Verdict::Detected { pattern } = justifier.justify(id) {
                detected += 1;
                let site = universe.site(id);
                let mut sim = BitSlicedSim::new(&netlist);
                sim.set_faults(
                    site.node,
                    vec![CellFault { cell: site.cell, fault: site.representative, lanes: 1 << 1 }],
                );
                let mut seen = false;
                for &raw in &pattern {
                    sim.step(raw);
                    seen |= sim.output_diff_lanes(0) != 0;
                }
                assert!(seen, "verdict pattern for {site} does not replay");
            }
        }
        assert!(detected > 0, "no detected verdicts among the first 64 faults");
    }

    #[test]
    fn untestable_faults_survive_a_long_random_campaign() {
        // Soundness spot-check: nothing the justifier proves untestable
        // may be detected by an independent pseudorandom campaign.
        let (netlist, universe) = lp_mini();
        let justifier = Justifier::new(&netlist, &universe, 12);
        let untestable = justifier.untestable();
        let mut lfsr = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let inputs: Vec<i64> = (0..4096).map(|_| lfsr.next_word() << 4).collect();
        let result = ParallelFaultSimulator::new(&netlist, &universe).run(&inputs);
        let cycles = result.detection_cycles();
        for id in untestable {
            assert!(
                cycles[id.index()].is_none(),
                "{} was proven untestable yet detected",
                universe.site(id)
            );
        }
    }

    #[test]
    fn justify_agrees_with_untestable_list() {
        let (netlist, universe) = lp_mini();
        let justifier = Justifier::new(&netlist, &universe, 12);
        let untestable = justifier.untestable();
        for &id in untestable.iter().take(8) {
            assert_eq!(justifier.justify(id), Verdict::Untestable);
        }
    }
}
