//! Uniform-delay purity analysis and the exact single-sample cone
//! evaluator behind backward justification.
//!
//! The paper's circuits are single-input feedforward datapaths: a delay
//! line feeding per-tap CSD multipliers feeding an accumulator chain.
//! Every multiplier node is a function of exactly *one* delayed input
//! sample `x[t-d]` — the generalization of the reachability analysis's
//! "pure" nodes (functions of the *current* sample) to arbitrary but
//! uniform register depth. For such nodes, backward justification is
//! exhaustive: enumerating the `2^input_bits` values of the one driving
//! sample yields the exact set of reachable full-adder cell input
//! combinations, so an activating input either exists (and is in hand)
//! or provably does not (the fault is untestable).

use rtl::{Netlist, NodeId, NodeKind};

/// How a node's value depends on the input history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purity {
    /// Constant, independent of the input.
    Const,
    /// A function of exactly one input sample, `x[t - delay]`.
    Pure(u32),
    /// Depends on samples at two or more distinct delays (a window).
    Window,
}

/// Per-node purity classification of a feedforward netlist.
#[derive(Debug, Clone)]
pub struct ConeAnalysis {
    purity: Vec<Purity>,
}

impl ConeAnalysis {
    /// Classifies every node. Node ids are creation-ordered in a
    /// [`NetlistBuilder`](rtl::NetlistBuilder) DAG, so one forward pass
    /// suffices — operands always precede their users.
    pub fn analyze(netlist: &Netlist) -> ConeAnalysis {
        let nodes = netlist.nodes();
        let mut purity = vec![Purity::Window; nodes.len()];
        let join = |a: Purity, b: Purity| match (a, b) {
            (Purity::Const, p) | (p, Purity::Const) => p,
            (Purity::Pure(d1), Purity::Pure(d2)) if d1 == d2 => Purity::Pure(d1),
            _ => Purity::Window,
        };
        for (i, node) in nodes.iter().enumerate() {
            purity[i] = match node.kind {
                NodeKind::Input => Purity::Pure(0),
                NodeKind::Const { .. } => Purity::Const,
                // A register stays pure only on a clean delay line (its
                // source is the input or another register). Elsewhere
                // the reset state (zero) differs from the value a zero
                // sample would propagate, so warm-up cycles could show
                // combinations outside the enumerated set and the
                // untestability proof would be unsound.
                NodeKind::Register { src } => match (purity[src.index()], &nodes[src.index()].kind)
                {
                    (Purity::Pure(d), NodeKind::Input | NodeKind::Register { .. }) => {
                        Purity::Pure(d + 1)
                    }
                    _ => Purity::Window,
                },
                NodeKind::Output { src }
                | NodeKind::ShiftRight { src, .. }
                | NodeKind::Not { src }
                | NodeKind::SetLsb { src } => purity[src.index()],
                NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
                    join(purity[a.index()], purity[b.index()])
                }
                NodeKind::CsaSum { a, b, c } | NodeKind::CsaCarry { a, b, c, .. } => {
                    join(join(purity[a.index()], purity[b.index()]), purity[c.index()])
                }
                // Future node kinds: conservatively opaque, never pure.
                _ => Purity::Window,
            };
        }
        ConeAnalysis { purity }
    }

    /// The node's classification.
    pub fn purity(&self, node: NodeId) -> Purity {
        self.purity[node.index()]
    }

    /// The node's uniform sample delay, if it is pure.
    pub fn delay(&self, node: NodeId) -> Option<u32> {
        match self.purity[node.index()] {
            Purity::Pure(d) => Some(d),
            _ => None,
        }
    }
}

/// Scalar evaluator of the netlist as a function of *one* input sample,
/// with registers treated as pass-throughs. The computed value of a
/// node classified [`Purity::Pure`]`(d)` is exactly its word at time
/// `t + d` when the sample is applied at time `t` (after the `d`-deep
/// register chain has been fed the same sample); values at
/// [`Purity::Window`] nodes are meaningless and must not be read.
pub struct ConeEval<'n> {
    netlist: &'n Netlist,
    align: u32,
    values: Vec<i64>,
}

impl<'n> ConeEval<'n> {
    /// An evaluator for an `input_bits`-wide sample left-aligned into
    /// the datapath (the alignment every design and analysis in this
    /// workspace uses).
    ///
    /// # Panics
    ///
    /// Panics if `input_bits` exceeds the datapath width.
    pub fn new(netlist: &'n Netlist, input_bits: u32) -> Self {
        assert!(input_bits <= netlist.width(), "input wider than the datapath");
        ConeEval {
            netlist,
            align: netlist.width() - input_bits,
            values: vec![0; netlist.nodes().len()],
        }
    }

    /// Evaluates every node for the signed `input_bits`-wide sample `v`.
    pub fn eval(&mut self, v: i64) {
        let q = self.netlist.format();
        let raw = v << self.align;
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            self.values[i] = match node.kind {
                NodeKind::Input => raw,
                NodeKind::Const { raw } => raw,
                NodeKind::Register { src } | NodeKind::Output { src } => self.values[src.index()],
                NodeKind::ShiftRight { src, amount } => self.values[src.index()] >> amount.min(62),
                NodeKind::Not { src } => q.wrap(-self.values[src.index()] - 1),
                NodeKind::SetLsb { src } => q.sign_extend(q.to_bits(self.values[src.index()]) | 1),
                NodeKind::Add { a, b } => q.wrap(self.values[a.index()] + self.values[b.index()]),
                NodeKind::Sub { a, b } => q.wrap(self.values[a.index()] - self.values[b.index()]),
                NodeKind::CsaSum { a, b, c } => q.sign_extend(
                    (q.to_bits(self.values[a.index()])
                        ^ q.to_bits(self.values[b.index()])
                        ^ q.to_bits(self.values[c.index()]))
                        & q.to_bits(-1),
                ),
                NodeKind::CsaCarry { a, b, c, .. } => {
                    let (av, bv, cv) = (
                        q.to_bits(self.values[a.index()]),
                        q.to_bits(self.values[b.index()]),
                        q.to_bits(self.values[c.index()]),
                    );
                    let carry = (av & bv) | ((av ^ bv) & cv);
                    q.sign_extend((carry << 1) & q.to_bits(-1))
                }
                // Unknown kinds are classified Window by the purity
                // analysis, so their values are never read.
                _ => 0,
            };
        }
    }

    /// The evaluated word at a node (valid for pure nodes only).
    pub fn value(&self, node: NodeId) -> i64 {
        self.values[node.index()]
    }

    /// The full-adder input combination `(a << 2) | (b_line << 1) | ci`
    /// seen by `cell` of an arithmetic node under the evaluated sample:
    /// the carry is rippled up from the node's LSB exactly as the
    /// bit-sliced simulator does (initial carry 1 and an inverted B
    /// line for a subtractor; the three operand bits directly for a
    /// carry-save cell).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an adder, subtractor or carry-save sum.
    pub fn combo(&self, node: NodeId, cell: u32) -> u8 {
        combo_from_values(self.netlist, &self.values, node, cell)
    }
}

/// [`ConeEval::combo`] over an explicit node-value table.
///
/// # Panics
///
/// Panics if `node` is not an adder, subtractor or carry-save sum.
pub fn combo_from_values(netlist: &Netlist, values: &[i64], node: NodeId, cell: u32) -> u8 {
    let q = netlist.format();
    match netlist.node(node).kind {
        NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
            let is_sub = matches!(netlist.node(node).kind, NodeKind::Sub { .. });
            let a_bits = q.to_bits(values[a.index()]);
            let b_line =
                if is_sub { !q.to_bits(values[b.index()]) } else { q.to_bits(values[b.index()]) };
            let mut carry = u64::from(is_sub);
            for bit in 0..cell {
                let av = (a_bits >> bit) & 1;
                let bv = (b_line >> bit) & 1;
                carry = (av & bv) | ((av ^ bv) & carry);
            }
            let av = (a_bits >> cell) & 1;
            let bv = (b_line >> cell) & 1;
            ((av << 2) | (bv << 1) | carry) as u8
        }
        NodeKind::CsaSum { a, b, c } => {
            let av = (q.to_bits(values[a.index()]) >> cell) & 1;
            let bv = (q.to_bits(values[b.index()]) >> cell) & 1;
            let cv = (q.to_bits(values[c.index()]) >> cell) & 1;
            ((av << 2) | (bv << 1) | cv) as u8
        }
        ref kind => panic!("no full-adder cells on {kind:?}"),
    }
}

/// All cells' combinations of an arithmetic node in one LSB-to-MSB
/// ripple (`out[cell]` = [`combo_from_values`] at `cell`), `O(width)`
/// total. `out` is resized to the datapath width.
///
/// # Panics
///
/// Panics if `node` is not an adder, subtractor or carry-save sum.
pub fn combos_from_values(netlist: &Netlist, values: &[i64], node: NodeId, out: &mut Vec<u8>) {
    let q = netlist.format();
    let w = netlist.width();
    out.clear();
    match netlist.node(node).kind {
        NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
            let is_sub = matches!(netlist.node(node).kind, NodeKind::Sub { .. });
            let a_bits = q.to_bits(values[a.index()]);
            let b_line =
                if is_sub { !q.to_bits(values[b.index()]) } else { q.to_bits(values[b.index()]) };
            let mut carry = u64::from(is_sub);
            for bit in 0..w {
                let av = (a_bits >> bit) & 1;
                let bv = (b_line >> bit) & 1;
                out.push(((av << 2) | (bv << 1) | carry) as u8);
                carry = (av & bv) | ((av ^ bv) & carry);
            }
        }
        NodeKind::CsaSum { a, b, c } => {
            let a_bits = q.to_bits(values[a.index()]);
            let b_bits = q.to_bits(values[b.index()]);
            let c_bits = q.to_bits(values[c.index()]);
            for bit in 0..w {
                let av = (a_bits >> bit) & 1;
                let bv = (b_bits >> bit) & 1;
                let cv = (c_bits >> bit) & 1;
                out.push(((av << 2) | (bv << 1) | cv) as u8);
            }
        }
        ref kind => panic!("no full-adder cells on {kind:?}"),
    }
}

/// A plain scalar (one machine, no fault injection) simulator: exact
/// register semantics, reset to zero, one raw aligned input word per
/// cycle. The witness sweeps drive thousands of short runs through it;
/// register state can be snapshotted and restored so multi-phase
/// stimuli don't replay their shared prefix.
pub struct ScalarSim<'n> {
    netlist: &'n Netlist,
    values: Vec<i64>,
    regs: Vec<i64>,
}

impl<'n> ScalarSim<'n> {
    /// A simulator at reset.
    pub fn new(netlist: &'n Netlist) -> Self {
        let n = netlist.nodes().len();
        ScalarSim { netlist, values: vec![0; n], regs: vec![0; n] }
    }

    /// Back to the all-zero reset state.
    pub fn reset(&mut self) {
        self.values.fill(0);
        self.regs.fill(0);
    }

    /// Advances one cycle with the given raw (aligned) input word.
    pub fn step(&mut self, raw: i64) {
        let q = self.netlist.format();
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            self.values[i] = match node.kind {
                NodeKind::Input => raw,
                NodeKind::Const { raw } => raw,
                NodeKind::Register { .. } => self.regs[i],
                NodeKind::Output { src } => self.values[src.index()],
                NodeKind::ShiftRight { src, amount } => self.values[src.index()] >> amount.min(62),
                NodeKind::Not { src } => q.wrap(-self.values[src.index()] - 1),
                NodeKind::SetLsb { src } => q.sign_extend(q.to_bits(self.values[src.index()]) | 1),
                NodeKind::Add { a, b } => q.wrap(self.values[a.index()] + self.values[b.index()]),
                NodeKind::Sub { a, b } => q.wrap(self.values[a.index()] - self.values[b.index()]),
                NodeKind::CsaSum { a, b, c } => q.sign_extend(
                    (q.to_bits(self.values[a.index()])
                        ^ q.to_bits(self.values[b.index()])
                        ^ q.to_bits(self.values[c.index()]))
                        & q.to_bits(-1),
                ),
                NodeKind::CsaCarry { a, b, c, .. } => {
                    let (av, bv, cv) = (
                        q.to_bits(self.values[a.index()]),
                        q.to_bits(self.values[b.index()]),
                        q.to_bits(self.values[c.index()]),
                    );
                    let carry = (av & bv) | ((av ^ bv) & cv);
                    q.sign_extend((carry << 1) & q.to_bits(-1))
                }
                _ => 0,
            };
        }
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            if let NodeKind::Register { src } = node.kind {
                self.regs[i] = self.values[src.index()];
            }
        }
    }

    /// The node values of the current cycle.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Snapshot of the register state (restorable).
    pub fn save_regs(&self) -> Vec<i64> {
        self.regs.clone()
    }

    /// Restores a [`ScalarSim::save_regs`] snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a different netlist.
    pub fn restore_regs(&mut self, snapshot: &[i64]) {
        assert_eq!(snapshot.len(), self.regs.len(), "snapshot from a different netlist");
        self.regs.copy_from_slice(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::sim::BitSlicedSim;
    use rtl::NetlistBuilder;

    /// A two-tap toy: tap 0 multiplies the current sample, tap 1 a
    /// one-cycle-delayed sample; the accumulator mixes both delays.
    fn taps() -> Netlist {
        let mut b = NetlistBuilder::new(10).unwrap();
        let x = b.input("x");
        let m0 = b.shift_right(x, 1);
        let d1 = b.register(x);
        let h1 = b.shift_right(d1, 2);
        let m1 = b.add_labeled(h1, d1, "tap1");
        let acc = b.add_labeled(m0, m1, "acc");
        b.output(acc, "y");
        b.finish().unwrap()
    }

    #[test]
    fn purity_tracks_uniform_delays() {
        let n = taps();
        let cone = ConeAnalysis::analyze(&n);
        let tap1 = n.find_label("tap1").unwrap();
        let acc = n.find_label("acc").unwrap();
        // tap1 adds two delay-1 views of the input: pure at delay 1.
        assert_eq!(cone.purity(tap1), Purity::Pure(1));
        // acc mixes delay 0 and delay 1: a window.
        assert_eq!(cone.purity(acc), Purity::Window);
        assert_eq!(cone.delay(tap1), Some(1));
        assert_eq!(cone.delay(acc), None);
    }

    #[test]
    fn cone_eval_matches_the_bit_sliced_simulator() {
        // Drive the real simulator with a constant sample until the
        // pipeline fills; every pure node must then hold exactly the
        // cone evaluator's value for that sample.
        let n = taps();
        let cone = ConeAnalysis::analyze(&n);
        let mut eval = ConeEval::new(&n, 10);
        for v in [-512i64, -100, -1, 0, 1, 37, 511] {
            eval.eval(v);
            let mut sim = BitSlicedSim::new(&n);
            for _ in 0..4 {
                sim.step(v);
            }
            for id in n.node_ids() {
                if cone.delay(id).is_some() {
                    assert_eq!(sim.lane_value(id, 0), eval.value(id), "node {id} sample {v}");
                }
            }
        }
    }

    #[test]
    fn combos_match_a_direct_ripple() {
        let n = taps();
        let tap1 = n.find_label("tap1").unwrap();
        let mut eval = ConeEval::new(&n, 10);
        let q = n.format();
        for v in [-512i64, -3, 0, 5, 511] {
            eval.eval(v);
            // tap1 = (d1 >> 2) + d1 with d1 = v: rebuild the ripple.
            let a_bits = q.to_bits(v >> 2);
            let b_bits = q.to_bits(v);
            let mut carry = 0u64;
            for cell in 0..10u32 {
                let av = (a_bits >> cell) & 1;
                let bv = (b_bits >> cell) & 1;
                let expect = ((av << 2) | (bv << 1) | carry) as u8;
                assert_eq!(eval.combo(tap1, cell), expect, "cell {cell} sample {v}");
                carry = (av & bv) | ((av ^ bv) & carry);
            }
        }
    }
}
