//! Deterministic top-off pattern generation with hybrid LFSR
//! reseeding.
//!
//! A spectrally-compatible pseudorandom campaign leaves a residue of
//! undetected stuck-at faults (the paper's Tables 4–5); the paper
//! patches it by hand with mixed-mode vectors (Table 6). This crate
//! closes that loop automatically:
//!
//! 1. **Justify** ([`Justifier`]): for each residual fault, derive a
//!    deterministic activating pattern by backward justification over
//!    the input cone and confirm it by forward implication on the
//!    bit-sliced simulator — or *prove* the fault unactivatable
//!    ([`Verdict::Untestable`]) when its detecting full-adder
//!    combinations are outside the exhaustively-enumerated reachable
//!    set of its host node.
//! 2. **Compress** ([`plan_reseeding`]): cover the justified patterns
//!    with a few LFSR seeds (greedy measured set cover over the
//!    existing maximal-length generator), falling back to raw stored
//!    patterns, so the tester stores seeds instead of vectors.
//! 3. **Verify** ([`top_off`]): re-simulate the complete plan against
//!    the residue and report ground-truth detected / unresolved sets —
//!    no fault is ever silently dropped.
//!
//! Untestable faults can also be screened *before* a campaign
//! ([`untestable_faults`]) to shrink the universe every future run
//! simulates.

#![forbid(unsafe_code)]

pub mod chain;
pub mod cone;
pub mod justify;
pub mod knownbits;
pub mod plan;

pub use cone::{ConeAnalysis, ConeEval, Purity};
pub use justify::{Justifier, Verdict};
pub use knownbits::StaticScreen;
pub use plan::{plan_reseeding, predecessor_seed, ReseedPlan, SeedBlock, TopOffConfig};

use faultsim::{FaultId, FaultUniverse, ParallelFaultSimulator, StageSchedule};
use rtl::Netlist;
use std::collections::BTreeMap;

/// The complete outcome of a top-off pass over one campaign residue.
#[derive(Debug, Clone)]
pub struct TopOff {
    /// Per-fault justification verdicts, in `residue` order.
    pub verdicts: Vec<(FaultId, Verdict)>,
    /// Faults proven unactivatable (subset of `residue`).
    pub untestable: Vec<FaultId>,
    /// The compressed seed/stored-pattern plan.
    pub plan: ReseedPlan,
    /// Residual faults the *verified* plan detects, ascending id.
    pub detected: Vec<FaultId>,
    /// Residual faults neither proven untestable nor detected by the
    /// plan, ascending id. Honest misses — the campaign must report
    /// them.
    pub unresolved: Vec<FaultId>,
}

/// Screens the whole universe for provably-untestable faults (one
/// exhaustive cone sweep, no simulation), ascending id order. Campaigns
/// remove these before simulating.
pub fn untestable_faults(
    netlist: &Netlist,
    universe: &FaultUniverse,
    input_bits: u32,
) -> Vec<FaultId> {
    Justifier::new(netlist, universe, input_bits).untestable()
}

/// Runs the full justify → compress → verify pipeline over a campaign
/// residue (`residue` holds parent-universe fault ids, typically
/// [`faultsim::FaultSimResult::missed`]).
///
/// The returned verdict partition is exact:
/// `untestable ∪ detected ∪ unresolved == residue` with the three sets
/// disjoint, and `detected` was measured by re-simulating the plan —
/// every seed block and stored pattern from reset — never inferred.
pub fn top_off(
    netlist: &Netlist,
    universe: &FaultUniverse,
    residue: &[FaultId],
    input_bits: u32,
    cfg: &TopOffConfig,
) -> TopOff {
    let justifier = Justifier::new(netlist, universe, input_bits);
    let mut verdicts = Vec::with_capacity(residue.len());
    let mut untestable = Vec::new();
    let mut targets = Vec::new();
    let mut patterns: BTreeMap<FaultId, Vec<i64>> = BTreeMap::new();
    for &id in residue {
        let verdict = justifier.justify(id);
        match &verdict {
            Verdict::Untestable => untestable.push(id),
            Verdict::Detected { pattern } => {
                targets.push(id);
                patterns.insert(id, pattern.clone());
            }
            Verdict::Unresolved => targets.push(id),
        }
        verdicts.push((id, verdict));
    }
    untestable.sort_unstable();
    let plan = plan_reseeding(netlist, universe, &targets, &patterns, input_bits, cfg);
    let (detected, unresolved) = verify_plan(netlist, universe, &targets, &plan, input_bits);
    TopOff { verdicts, untestable, plan, detected, unresolved }
}

/// Re-simulates every seed block and stored pattern of `plan` from
/// reset against the target faults, returning the measured
/// `(detected, unresolved)` partition (both ascending id).
pub fn verify_plan(
    netlist: &Netlist,
    universe: &FaultUniverse,
    targets: &[FaultId],
    plan: &ReseedPlan,
    input_bits: u32,
) -> (Vec<FaultId>, Vec<FaultId>) {
    if targets.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let align = netlist.width() - input_bits;
    let sub = universe.subset(targets);
    let sim = ParallelFaultSimulator::new(netlist, &sub)
        .with_schedule(StageSchedule::with_boundaries(vec![]));
    let mut hit = vec![false; targets.len()];
    let mut sequences: Vec<Vec<i64>> =
        plan.seeds.iter().map(|b| plan.expand(b.seed, align)).collect();
    sequences.extend(plan.stored.iter().map(|(_, p)| p.clone()));
    for inputs in &sequences {
        let result = sim.run(inputs);
        for (i, cycle) in result.detection_cycles().iter().enumerate() {
            hit[i] |= cycle.is_some();
        }
    }
    let mut detected: Vec<FaultId> = Vec::new();
    let mut unresolved: Vec<FaultId> = Vec::new();
    for (i, &id) in targets.iter().enumerate() {
        if hit[i] {
            detected.push(id);
        } else {
            unresolved.push(id);
        }
    }
    detected.sort_unstable();
    unresolved.sort_unstable();
    (detected, unresolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::reachability::Reachability;
    use tpg::{Lfsr1, ShiftDirection, TestGenerator};

    fn lp_mini() -> (Netlist, FaultUniverse, u32) {
        let design = filters::designs::lowpass_mini().expect("design LP-MINI");
        let netlist = design.netlist().clone();
        let input_bits = design.spec().input_bits;
        let reach = Reachability::analyze(&netlist, input_bits);
        let universe = FaultUniverse::enumerate_pruned(&netlist, design.claimed_ranges(), &reach);
        (netlist, universe, input_bits)
    }

    fn short_campaign_residue(netlist: &Netlist, universe: &FaultUniverse) -> Vec<FaultId> {
        let mut lfsr = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let inputs: Vec<i64> = (0..256).map(|_| lfsr.next_word() << 4).collect();
        ParallelFaultSimulator::new(netlist, universe).run(&inputs).missed()
    }

    #[test]
    fn top_off_partitions_the_residue_exactly() {
        let (netlist, universe, input_bits) = lp_mini();
        let residue = short_campaign_residue(&netlist, &universe);
        assert!(!residue.is_empty(), "a 256-vector campaign should leave a residue");
        let result = top_off(&netlist, &universe, &residue, input_bits, &TopOffConfig::default());
        assert_eq!(result.verdicts.len(), residue.len());
        let mut all: Vec<FaultId> = result
            .untestable
            .iter()
            .chain(&result.detected)
            .chain(&result.unresolved)
            .copied()
            .collect();
        all.sort_unstable();
        let mut expect = residue;
        expect.sort_unstable();
        assert_eq!(all, expect, "verdict partition must cover the residue exactly");
        // Every justified fault is covered by a seed or stored raw.
        let seed_covered: Vec<FaultId> =
            result.plan.seeds.iter().flat_map(|b| b.covers.iter().copied()).collect();
        for (id, verdict) in &result.verdicts {
            if matches!(verdict, Verdict::Detected { .. }) {
                assert!(
                    seed_covered.contains(id)
                        || result.plan.stored.iter().any(|(sid, _)| sid == id),
                    "justified fault {id:?} neither seed-covered nor stored"
                );
                assert!(result.detected.contains(id), "justified fault {id:?} not verified");
            }
        }
    }

    #[test]
    fn top_off_is_deterministic_across_thread_counts() {
        // The planner and verifier only use the parallel fault
        // simulator (bit-identical at every thread count) plus
        // order-stable greedy selection, so two runs must agree even
        // though intermediate sims pick their own thread counts.
        let (netlist, universe, input_bits) = lp_mini();
        let residue = short_campaign_residue(&netlist, &universe);
        let cfg = TopOffConfig { block_len: 64, max_seeds: 8 };
        let a = top_off(&netlist, &universe, &residue, input_bits, &cfg);
        let b = top_off(&netlist, &universe, &residue, input_bits, &cfg);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.unresolved, b.unresolved);
    }

    #[test]
    fn untestable_screen_agrees_with_the_justifier() {
        let (netlist, universe, input_bits) = lp_mini();
        let screened = untestable_faults(&netlist, &universe, input_bits);
        let justifier = Justifier::new(&netlist, &universe, input_bits);
        assert_eq!(screened, justifier.untestable());
    }
}
