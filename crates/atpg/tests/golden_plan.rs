//! Golden snapshot of the LP-MINI top-off: the deterministic pattern
//! set and the hybrid reseeding plan, byte for byte.
//!
//! The plan is a tester artifact — seeds and stored patterns are what
//! a production flow burns into the BIST controller — so its exact
//! content is pinned: any change to the justifier's search order, the
//! greedy seed cover, or the fallback storage must re-bless this file
//! and be reviewed as a behavior change, not slip through as noise.
//!
//! Regenerate with `BLESS=1 cargo test -p bist-atpg --test golden_plan`.

use bist_atpg::{top_off, TopOffConfig, Verdict};
use faultsim::{FaultId, FaultUniverse, ParallelFaultSimulator};
use rtl::reachability::Reachability;
use std::fmt::Write as _;
use tpg::{Lfsr1, ShiftDirection, TestGenerator};

fn ids(list: &[FaultId]) -> String {
    let strs: Vec<String> = list.iter().map(|id| id.0.to_string()).collect();
    strs.join(",")
}

fn words(pattern: &[i64]) -> String {
    let strs: Vec<String> = pattern.iter().map(|w| w.to_string()).collect();
    strs.join(",")
}

/// Runs the pipeline the snapshot pins: LP-MINI, a 256-vector Type 1
/// LFSR campaign, then a block-64 / 8-seed top-off of the residue.
fn render_plan() -> String {
    let design = filters::designs::lowpass_mini().expect("design LP-MINI");
    let netlist = design.netlist().clone();
    let input_bits = design.spec().input_bits;
    let reach = Reachability::analyze(&netlist, input_bits);
    let universe = FaultUniverse::enumerate_pruned(&netlist, design.claimed_ranges(), &reach);
    let mut lfsr = Lfsr1::new(input_bits, ShiftDirection::LsbToMsb).unwrap();
    let align = netlist.width() - input_bits;
    let inputs: Vec<i64> = (0..256).map(|_| lfsr.next_word() << align).collect();
    let residue = ParallelFaultSimulator::new(&netlist, &universe).run(&inputs).missed();

    let cfg = TopOffConfig { block_len: 64, max_seeds: 8 };
    let top = top_off(&netlist, &universe, &residue, input_bits, &cfg);

    let mut out = String::new();
    let mut w = |line: String| writeln!(out, "{line}").expect("string write");
    w("# LP-MINI LFSR-1 @256 top-off, block_len 64, max_seeds 8".into());
    w(format!("residue {}", residue.len()));
    for (id, verdict) in &top.verdicts {
        match verdict {
            Verdict::Untestable => w(format!("fault {} untestable", id.0)),
            Verdict::Unresolved => w(format!("fault {} unresolved", id.0)),
            Verdict::Detected { pattern } => {
                w(format!("fault {} pattern {}", id.0, words(pattern)));
            }
        }
    }
    w(format!(
        "plan width {} poly {:#x} block_len {}",
        top.plan.width, top.plan.poly, top.plan.block_len
    ));
    for block in &top.plan.seeds {
        w(format!("seed {:#x} covers {}", block.seed, ids(&block.covers)));
    }
    for (id, pattern) in &top.plan.stored {
        w(format!("stored {} words {}", id.0, words(pattern)));
    }
    w(format!("detected {}", ids(&top.detected)));
    w(format!("unresolved {}", ids(&top.unresolved)));
    w(format!(
        "storage seed_bits {} stored_bits {} total_vectors {}",
        top.plan.seed_bits(),
        top.plan.stored_bits(),
        top.plan.total_vectors()
    ));
    out
}

#[test]
fn lp_mini_pattern_set_and_seed_plan_are_byte_stable() {
    let actual = render_plan();
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/lp_mini_topoff.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {}: {e} (run with BLESS=1)", path.display())
    });
    assert_eq!(
        actual,
        expected,
        "the LP-MINI top-off plan drifted from {}; re-bless with BLESS=1 \
         only if the justifier/planner change is intentional",
        path.display()
    );
}
