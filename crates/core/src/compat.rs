//! The frequency-domain compatibility metric and the paper's Table 3
//! classification.
//!
//! "Comparing the filter's transfer function with the test generator's
//! spectrum gives a quick indication of their compatibility. Formally,
//! we can estimate the output signal variance as
//! `sigma_y^2 = (1/L) sum |G[k]|^2 |H[k]|^2`" (paper Section 6.1).
//! A generator is judged against the idealized white generator of equal
//! word variance: a large shortfall means the generator starves the
//! filter's passband and upper-bit faults are at risk.

use dsp::response::response_at;
use dsp::spectrum::PowerSpectrum;
use std::fmt;

/// The paper's three-way compatibility rating (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compatibility {
    /// `+` — the generator feeds the filter's passband well.
    Good,
    /// `±` — design-dependent; part of the passband is under-fed.
    Marginal,
    /// `−` — the generator starves the passband.
    Poor,
}

impl fmt::Display for Compatibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Compatibility::Good => "+",
            Compatibility::Marginal => "±",
            Compatibility::Poor => "−",
        };
        write!(f, "{s}")
    }
}

/// Output variance of a filter with impulse response `h` driven by a
/// generator with one-sided power spectrum `g`:
/// `sigma_y^2 = (1/L) sum G[k] |H[k]|^2` (the paper's Section 6.1
/// estimate; `G` here is already a power spectrum).
pub fn output_variance(g: &PowerSpectrum, h: &[f64]) -> f64 {
    if g.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (k, &p) in g.values().iter().enumerate() {
        let f = g.frequency(k);
        acc += p * response_at(h, f).norm_sqr();
    }
    acc / g.len() as f64
}

/// Ratio of a generator's predicted output variance to the idealized
/// white generator's (equal word variance). `1.0` means the generator
/// loses nothing to spectral mismatch.
pub fn compatibility_ratio(g: &PowerSpectrum, reference: &PowerSpectrum, h: &[f64]) -> f64 {
    let denom = output_variance(reference, h);
    if denom <= 0.0 {
        return 0.0;
    }
    output_variance(g, h) / denom
}

/// Classifies a generator/filter pair from its output variance against
/// the white-reference output variance.
///
/// Thresholds: below 35% of the reference is [`Compatibility::Poor`]
/// (severe passband starvation — the paper's LFSR-1-on-lowpass and
/// ramp-on-highpass cases), above 85% is [`Compatibility::Good`], in
/// between is design-dependent ([`Compatibility::Marginal`]).
pub fn classify(variance: f64, reference_variance: f64) -> Compatibility {
    if reference_variance <= 0.0 {
        return Compatibility::Marginal;
    }
    let ratio = variance / reference_variance;
    if ratio >= 0.85 {
        Compatibility::Good
    } else if ratio >= 0.35 {
        Compatibility::Marginal
    } else {
        Compatibility::Poor
    }
}

/// One row of a compatibility table: a named generator spectrum.
#[derive(Debug, Clone)]
pub struct GeneratorSpectrum {
    /// Display name ("LFSR-1", ...).
    pub name: String,
    /// One-sided power spectrum.
    pub spectrum: PowerSpectrum,
}

/// Builds the paper's Table 3: one rating per (generator, filter) pair,
/// judging each generator against the white reference of variance 1/3.
///
/// `filters` pairs a display name with an impulse response.
pub fn compatibility_table(
    generators: &[GeneratorSpectrum],
    filters: &[(String, Vec<f64>)],
) -> Vec<(String, Vec<Compatibility>)> {
    generators
        .iter()
        .map(|g| {
            let reference = tpg::spectra::flat(1.0 / 3.0, g.spectrum.len().max(16));
            let row = filters
                .iter()
                .map(|(_, h)| {
                    classify(output_variance(&g.spectrum, h), output_variance(&reference, h))
                })
                .collect();
            (g.name.clone(), row)
        })
        .collect()
}

/// Classifies a generator against a whole *filter type* from its
/// compatibility ratios across a family of band-edge variations — the
/// semantics of the paper's Table 3, where `±` means "compatibility is
/// dependent on the specifics of the design":
///
/// * `+` — good for every family member (worst ratio ≥ 0.75);
/// * `−` — catastrophically starved somewhere in the family (worst
///   ratio < 0.03) or starved everywhere (best ratio < 0.10);
/// * `±` — otherwise (adequate for some band placements, not others).
pub fn classify_family(ratios: &[f64]) -> Compatibility {
    if ratios.is_empty() {
        return Compatibility::Marginal;
    }
    let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if lo >= 0.75 {
        Compatibility::Good
    } else if lo < 0.03 || hi < 0.10 {
        Compatibility::Poor
    } else {
        Compatibility::Marginal
    }
}

/// Prototype impulse-response families for the three basic filter
/// types (band edges swept over the placements a designer might pick).
pub fn band_families() -> Vec<(String, Vec<Vec<f64>>)> {
    use dsp::firdesign::{BandKind, FirSpec};
    let design = |kind: BandKind, taps: usize| -> Vec<f64> {
        FirSpec::new(kind, taps).kaiser_beta(5.5).design().expect("valid family prototype")
    };
    let lowpass = [0.02, 0.04, 0.06, 0.08]
        .iter()
        .map(|&c| design(BandKind::Lowpass { cutoff: c }, 60))
        .collect();
    let bandpass = [0.02, 0.05, 0.10, 0.20, 0.28]
        .iter()
        .map(|&lo| design(BandKind::Bandpass { low: lo, high: lo + 0.2 }, 58))
        .collect();
    let highpass =
        [0.25, 0.35, 0.45].iter().map(|&c| design(BandKind::Highpass { cutoff: c }, 59)).collect();
    vec![
        ("Lowpass".to_string(), lowpass),
        ("Bandpass".to_string(), bandpass),
        ("Highpass".to_string(), highpass),
    ]
}

/// Builds the paper's Table 3 proper: each generator rated against each
/// *filter type* (family of designs), reproducing the `+ / ± / −`
/// entries including the design-dependent `±` cells.
pub fn type_compatibility_table(
    generators: &[GeneratorSpectrum],
) -> Vec<(String, Vec<Compatibility>)> {
    let families = band_families();
    generators
        .iter()
        .map(|g| {
            let reference = tpg::spectra::flat(1.0 / 3.0, g.spectrum.len().max(16));
            let row = families
                .iter()
                .map(|(_, members)| {
                    let ratios: Vec<f64> = members
                        .iter()
                        .map(|h| compatibility_ratio(&g.spectrum, &reference, h))
                        .collect();
                    classify_family(&ratios)
                })
                .collect();
            (g.name.clone(), row)
        })
        .collect()
}

/// The five paper generators' spectra (12-bit versions, as in the
/// paper's Fig. 4), ready for [`compatibility_table`].
pub fn paper_generator_spectra(bins: usize) -> Vec<GeneratorSpectrum> {
    let lfsr2 =
        tpg::Lfsr2::new(12, tpg::polynomials::PAPER_TYPE2_POLY).expect("paper polynomial is valid");
    vec![
        GeneratorSpectrum { name: "LFSR-1".into(), spectrum: tpg::spectra::lfsr1(12, bins) },
        GeneratorSpectrum { name: "LFSR-2".into(), spectrum: tpg::spectra::lfsr2(&lfsr2, bins) },
        GeneratorSpectrum { name: "LFSR-D".into(), spectrum: tpg::spectra::flat(1.0 / 3.0, bins) },
        GeneratorSpectrum { name: "LFSR-M".into(), spectrum: tpg::spectra::flat(1.0, bins) },
        GeneratorSpectrum { name: "Ramp".into(), spectrum: tpg::spectra::ramp(12, bins) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::firdesign::{BandKind, FirSpec};

    fn lp() -> Vec<f64> {
        FirSpec::new(BandKind::Lowpass { cutoff: 0.04 }, 60).design().unwrap()
    }

    fn hp() -> Vec<f64> {
        FirSpec::new(BandKind::Highpass { cutoff: 0.38 }, 59).design().unwrap()
    }

    #[test]
    fn white_noise_output_variance_matches_parseval() {
        let h = lp();
        let white = tpg::spectra::flat(1.0, 1024);
        let v = output_variance(&white, &h);
        let expect: f64 = h.iter().map(|c| c * c).sum();
        // Riemann-sum error of the frequency grid is O(1/bins).
        assert!((v - expect).abs() < 0.02 * expect, "{v} vs {expect}");
    }

    #[test]
    fn lfsr1_starves_narrowband_lowpass() {
        let h = lp();
        let g = tpg::spectra::lfsr1(12, 1024);
        let w = tpg::spectra::flat(1.0 / 3.0, 1024);
        let ratio = compatibility_ratio(&g, &w, &h);
        assert!(ratio < 0.35, "ratio {ratio}");
    }

    #[test]
    fn lfsr1_feeds_highpass_well() {
        let h = hp();
        let g = tpg::spectra::lfsr1(12, 1024);
        let w = tpg::spectra::flat(1.0 / 3.0, 1024);
        let ratio = compatibility_ratio(&g, &w, &h);
        assert!(ratio > 0.85, "ratio {ratio}");
    }

    #[test]
    fn ramp_is_poor_on_highpass() {
        let h = hp();
        let g = tpg::spectra::ramp(12, 1024);
        let w = tpg::spectra::flat(1.0 / 3.0, 1024);
        assert!(compatibility_ratio(&g, &w, &h) < 0.35);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(classify(0.9, 1.0), Compatibility::Good);
        assert_eq!(classify(0.5, 1.0), Compatibility::Marginal);
        assert_eq!(classify(0.1, 1.0), Compatibility::Poor);
        assert_eq!(classify(1.0, 0.0), Compatibility::Marginal);
    }

    #[test]
    fn table_reproduces_key_paper_entries() {
        let gens = paper_generator_spectra(512);
        let filters = vec![("LP".to_string(), lp()), ("HP".to_string(), hp())];
        let table = compatibility_table(&gens, &filters);
        let find = |name: &str| table.iter().find(|(n, _)| n == name).unwrap().1.clone();
        // Paper Table 3 anchors:
        assert_eq!(find("LFSR-1")[0], Compatibility::Poor); // LP
        assert_eq!(find("LFSR-1")[1], Compatibility::Good); // HP
        assert_eq!(find("LFSR-D")[0], Compatibility::Good);
        assert_eq!(find("LFSR-D")[1], Compatibility::Good);
        assert_eq!(find("LFSR-M")[0], Compatibility::Good);
        assert_eq!(find("Ramp")[0], Compatibility::Good); // LP
        assert_eq!(find("Ramp")[1], Compatibility::Poor); // HP
    }

    #[test]
    fn type_table_reproduces_paper_table3_exactly() {
        use Compatibility::{Good as P, Marginal as M, Poor as N};
        let table = type_compatibility_table(&paper_generator_spectra(1024));
        let expect = [
            ("LFSR-1", [N, M, P]),
            ("LFSR-2", [M, M, P]),
            ("LFSR-D", [P, P, P]),
            ("LFSR-M", [P, P, P]),
            ("Ramp", [P, N, N]),
        ];
        for (name, row) in expect {
            let got = &table.iter().find(|(n, _)| n == name).expect("generator present").1;
            assert_eq!(got.as_slice(), row.as_slice(), "{name}");
        }
    }

    #[test]
    fn classify_family_edge_cases() {
        assert_eq!(classify_family(&[]), Compatibility::Marginal);
        assert_eq!(classify_family(&[1.0, 0.8]), Compatibility::Good);
        assert_eq!(classify_family(&[0.01, 0.9]), Compatibility::Poor);
        assert_eq!(classify_family(&[0.05, 0.08]), Compatibility::Poor);
        assert_eq!(classify_family(&[0.2, 0.9]), Compatibility::Marginal);
    }

    #[test]
    fn display_uses_paper_symbols() {
        assert_eq!(Compatibility::Good.to_string(), "+");
        assert_eq!(Compatibility::Marginal.to_string(), "±");
        assert_eq!(Compatibility::Poor.to_string(), "−");
    }
}
