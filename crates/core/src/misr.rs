//! Multiple-input signature register (MISR) for response compaction.
//!
//! The paper's fault-simulation results assume *no aliasing* in the
//! response analyzer (detection by direct output compare, which this
//! workspace's fault simulator implements); a production BIST datapath
//! compacts the filter output into a MISR signature instead. This
//! module provides that compactor so complete BIST sessions can be
//! assembled, and so aliasing behaviour can be studied.

use tpg::polynomials;
use tpg::TpgError;

/// A Galois-feedback multiple-input signature register.
///
/// # Example
///
/// ```
/// use bist_core::misr::Misr;
///
/// let mut a = Misr::new(16)?;
/// let mut b = Misr::new(16)?;
/// for w in 0..100i64 {
///     a.absorb(w);
///     b.absorb(if w == 50 { w ^ 1 } else { w }); // one corrupted word
/// }
/// assert_ne!(a.signature(), b.signature());
/// # Ok::<(), tpg::TpgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    width: u32,
    poly_low: u64,
    state: u64,
}

impl Misr {
    /// Creates a MISR of `width` bits using the tabulated primitive
    /// polynomial (zero initial state).
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] if no polynomial is
    /// tabulated for `width`.
    pub fn new(width: u32) -> Result<Self, TpgError> {
        let poly = polynomials::primitive(width)?;
        Ok(Misr { width, poly_low: poly & ((1u64 << width) - 1), state: 0 })
    }

    /// Absorbs one output word (its low `width` bits).
    pub fn absorb(&mut self, word: i64) {
        let mask = (1u64 << self.width) - 1;
        let msb = (self.state >> (self.width - 1)) & 1;
        self.state = ((self.state << 1) & mask) ^ if msb == 1 { self.poly_low } else { 0 };
        self.state ^= (word as u64) & mask;
    }

    /// Absorbs a whole response sequence.
    pub fn absorb_all(&mut self, words: &[i64]) {
        for &w in words {
            self.absorb(w);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets the signature to zero.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_signatures() {
        let seq: Vec<i64> = (0..256).map(|i| (i * 73 % 65536) - 32768).collect();
        let mut a = Misr::new(16).unwrap();
        let mut b = Misr::new(16).unwrap();
        a.absorb_all(&seq);
        b.absorb_all(&seq);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn single_bit_corruption_changes_signature() {
        let seq: Vec<i64> = (0..512).map(|i| (i * 37 % 65536) - 32768).collect();
        let mut good = Misr::new(16).unwrap();
        good.absorb_all(&seq);
        for corrupt_at in [0usize, 100, 511] {
            let mut bad = Misr::new(16).unwrap();
            let mut seq2 = seq.clone();
            seq2[corrupt_at] ^= 0x40;
            bad.absorb_all(&seq2);
            assert_ne!(good.signature(), bad.signature(), "corruption at {corrupt_at}");
        }
    }

    #[test]
    fn error_order_matters() {
        // A MISR is a linear compactor: swapping two different words
        // changes the signature (unlike a simple checksum).
        let mut a = Misr::new(16).unwrap();
        let mut b = Misr::new(16).unwrap();
        a.absorb_all(&[1, 2, 3, 4]);
        b.absorb_all(&[1, 3, 2, 4]);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn aliasing_exists_but_is_rare() {
        // An error pattern equal to the MISR's own feedback cancels —
        // verify at least that random-ish double corruptions rarely
        // alias (probability ~2^-16).
        let seq: Vec<i64> = (0..128).collect();
        let mut good = Misr::new(16).unwrap();
        good.absorb_all(&seq);
        let mut aliased = 0;
        for k in 1..100u64 {
            let mut bad = Misr::new(16).unwrap();
            let mut seq2 = seq.clone();
            seq2[10] ^= k as i64;
            seq2[90] ^= (k * 3) as i64;
            bad.absorb_all(&seq2);
            if bad.signature() == good.signature() {
                aliased += 1;
            }
        }
        assert_eq!(aliased, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = Misr::new(12).unwrap();
        m.absorb_all(&[5, 6, 7]);
        assert_ne!(m.signature(), 0);
        m.reset();
        assert_eq!(m.signature(), 0);
        assert_eq!(m.width(), 12);
    }
}
