//! Multiple-input signature register (MISR) for response compaction,
//! plus the analytical aliasing-probability estimator.
//!
//! The paper's fault-simulation results assume *no aliasing* in the
//! response analyzer (detection by direct output compare); a production
//! BIST datapath compacts the filter output into a MISR signature
//! instead. This module pairs the hardware model in [`rtl::misr`] with
//! the workspace's tabulated primitive polynomials (from
//! `tpg::polynomials`), and provides the estimator behind the `L4xx`
//! aliasing lints: for a `w`-bit MISR with a primitive feedback
//! polynomial, a detected fault's error stream escapes the signature
//! check with probability ≈ `2^-w` (see `DESIGN.md` §10 for the
//! derivation and the measured escape rates on the paper roster).

use tpg::polynomials;
use tpg::TpgError;

/// A Galois-feedback multiple-input signature register using the
/// tabulated primitive polynomial for its width — a thin wrapper over
/// the hardware model in [`rtl::misr::Misr`], which takes the
/// polynomial explicitly.
///
/// # Example
///
/// ```
/// use bist_core::misr::Misr;
///
/// let mut a = Misr::new(16)?;
/// let mut b = Misr::new(16)?;
/// for w in 0..100i64 {
///     a.absorb(w);
///     b.absorb(if w == 50 { w ^ 1 } else { w }); // one corrupted word
/// }
/// assert_ne!(a.signature(), b.signature());
/// # Ok::<(), tpg::TpgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    inner: rtl::misr::Misr,
}

impl Misr {
    /// Creates a MISR of `width` bits using the tabulated primitive
    /// polynomial (zero initial state).
    ///
    /// # Errors
    ///
    /// Returns [`TpgError::UnsupportedWidth`] if no polynomial is
    /// tabulated for `width`.
    pub fn new(width: u32) -> Result<Self, TpgError> {
        let poly = polynomials::primitive(width)?;
        let inner = rtl::misr::Misr::with_polynomial(width, poly)
            .expect("tabulated polynomial widths are 4..=24");
        Ok(Misr { inner })
    }

    /// Absorbs one output word (its low `width` bits).
    pub fn absorb(&mut self, word: i64) {
        self.inner.absorb(word);
    }

    /// Absorbs a whole response sequence.
    pub fn absorb_all(&mut self, words: &[i64]) {
        self.inner.absorb_all(words);
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.inner.signature()
    }

    /// Resets the signature to zero.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.inner.width()
    }

    /// The feedback polynomial's low terms (the `x^width` term is
    /// implicit) — what a [`faultsim::SignatureConfig`] needs.
    pub fn poly_low(&self) -> u64 {
        self.inner.poly_low()
    }
}

/// Analytical probability that one *detected* fault escapes a `width`-
/// bit MISR check: the compactor is linear over GF(2), so a fault
/// aliases exactly when its non-zero error stream lies in the
/// polynomial's `(n-width)`-dimensional code — `(2^(n-width) - 1) /
/// (2^n - 1) ≈ 2^-width` of the non-zero streams for an `n`-cycle test
/// with an unstructured error pattern.
pub fn aliasing_probability(width: u32) -> f64 {
    0.5f64.powi(width.min(1024) as i32)
}

/// Expected number of aliased faults among `detected` detected ones,
/// under the per-fault escape probability of [`aliasing_probability`]
/// (independence across faults is an approximation; it is what the
/// `L401` lint budgets against).
pub fn expected_aliased(detected: usize, width: u32) -> f64 {
    detected as f64 * aliasing_probability(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_signatures() {
        let seq: Vec<i64> = (0..256).map(|i| (i * 73 % 65536) - 32768).collect();
        let mut a = Misr::new(16).unwrap();
        let mut b = Misr::new(16).unwrap();
        a.absorb_all(&seq);
        b.absorb_all(&seq);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn single_bit_corruption_changes_signature() {
        let seq: Vec<i64> = (0..512).map(|i| (i * 37 % 65536) - 32768).collect();
        let mut good = Misr::new(16).unwrap();
        good.absorb_all(&seq);
        for corrupt_at in [0usize, 100, 511] {
            let mut bad = Misr::new(16).unwrap();
            let mut seq2 = seq.clone();
            seq2[corrupt_at] ^= 0x40;
            bad.absorb_all(&seq2);
            assert_ne!(good.signature(), bad.signature(), "corruption at {corrupt_at}");
        }
    }

    #[test]
    fn error_order_matters() {
        // A MISR is a linear compactor: swapping two different words
        // changes the signature (unlike a simple checksum).
        let mut a = Misr::new(16).unwrap();
        let mut b = Misr::new(16).unwrap();
        a.absorb_all(&[1, 2, 3, 4]);
        b.absorb_all(&[1, 3, 2, 4]);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn aliasing_exists_but_is_rare() {
        // An error pattern equal to the MISR's own feedback cancels —
        // verify at least that random-ish double corruptions rarely
        // alias (probability ~2^-16).
        let seq: Vec<i64> = (0..128).collect();
        let mut good = Misr::new(16).unwrap();
        good.absorb_all(&seq);
        let mut aliased = 0;
        for k in 1..100u64 {
            let mut bad = Misr::new(16).unwrap();
            let mut seq2 = seq.clone();
            seq2[10] ^= k as i64;
            seq2[90] ^= (k * 3) as i64;
            bad.absorb_all(&seq2);
            if bad.signature() == good.signature() {
                aliased += 1;
            }
        }
        assert_eq!(aliased, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = Misr::new(12).unwrap();
        m.absorb_all(&[5, 6, 7]);
        assert_ne!(m.signature(), 0);
        m.reset();
        assert_eq!(m.signature(), 0);
        assert_eq!(m.width(), 12);
    }

    #[test]
    fn wrapper_matches_the_rtl_model_bit_for_bit() {
        // The session-facing Misr is the rtl hardware model plus a
        // polynomial table lookup — nothing else.
        let seq: Vec<i64> = (0..300).map(|i| (i * 911 % 65536) - 32768).collect();
        let mut wrapped = Misr::new(16).unwrap();
        let mut raw =
            rtl::misr::Misr::with_polynomial(16, tpg::polynomials::primitive(16).unwrap()).unwrap();
        wrapped.absorb_all(&seq);
        raw.absorb_all(&seq);
        assert_eq!(wrapped.signature(), raw.signature());
        assert_eq!(wrapped.poly_low(), raw.poly_low());
    }

    #[test]
    fn estimator_halves_per_bit() {
        assert_eq!(aliasing_probability(1), 0.5);
        assert_eq!(aliasing_probability(16), 2f64.powi(-16));
        assert!(aliasing_probability(16) > aliasing_probability(17));
        let e = expected_aliased(1000, 10);
        assert!((e - 1000.0 / 1024.0).abs() < 1e-12, "{e}");
        assert_eq!(expected_aliased(0, 16), 0.0);
    }
}
