//! Missed-fault severity analysis: separating *serious* escapes from
//! *near-redundant* faults.
//!
//! "The significance of any untested fault depends on the likelihood of
//! fault activation during normal operation of the filter" (paper
//! Conclusion). Given a representative operating stimulus, this module
//! measures each missed fault's activation rate in the fault-free
//! machine ([`faultsim::census`]) and its observable output effect when
//! injected, then classifies:
//!
//! * **serious** — the fault visibly corrupts the output under the
//!   operating stimulus (the paper's Fig. 2 scenario: a test escape
//!   that a customer's signal will find);
//! * **activated-only** — the cell sees detecting combinations but the
//!   effect never reaches the output within the stimulus;
//! * **near-redundant** — never even activated; testing it requires
//!   signals outside the operating envelope.

use crate::session::BistSession;
use faultsim::census::activation_census;
use faultsim::FaultId;

/// Severity classification of one missed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Corrupts the output under the operating stimulus.
    Serious,
    /// Activated at the cell but not observed at the output.
    ActivatedOnly,
    /// Never activated by the stimulus.
    NearRedundant,
}

/// One missed fault's assessment.
#[derive(Debug, Clone)]
pub struct MissAssessment {
    /// The fault.
    pub fault: FaultId,
    /// Classification under the given stimulus.
    pub severity: Severity,
    /// Empirical per-vector activation probability.
    pub activation_probability: f64,
    /// Peak output error when injected (raw LSBs).
    pub peak_output_error: i64,
}

/// Summary counts of an assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeveritySummary {
    /// Faults corrupting the output under the stimulus.
    pub serious: usize,
    /// Activated but unobserved faults.
    pub activated_only: usize,
    /// Never-activated faults.
    pub near_redundant: usize,
}

/// Assesses every fault in `missed` against an operating stimulus
/// (raw input words, already aligned to the datapath).
///
/// This is the paper's proposed "identification of near-redundant
/// faults" made concrete: the faults worth worrying about after a BIST
/// run are the ones this returns as [`Severity::Serious`].
pub fn assess_missed(
    session: &BistSession<'_>,
    missed: &[FaultId],
    stimulus: &[i64],
) -> (Vec<MissAssessment>, SeveritySummary) {
    let netlist = session.design().netlist();
    let census = activation_census(netlist, session.universe(), missed, stimulus);
    // Only activated faults need an injection trace; batch them 63 per
    // simulation pass.
    let activated: Vec<FaultId> = missed.iter().copied().filter(|&f| census.count(f) > 0).collect();
    let peaks = faultsim::inject::peak_errors(netlist, session.universe(), &activated, stimulus);
    let peak_of: std::collections::HashMap<FaultId, i64> =
        activated.into_iter().zip(peaks).collect();

    let mut out = Vec::with_capacity(missed.len());
    let mut summary = SeveritySummary::default();
    for &fault in missed {
        let activation_probability = census.probability(fault);
        let (severity, peak) = match peak_of.get(&fault) {
            None => {
                summary.near_redundant += 1;
                (Severity::NearRedundant, 0)
            }
            Some(&peak) if peak > 0 => {
                summary.serious += 1;
                (Severity::Serious, peak)
            }
            Some(_) => {
                summary.activated_only += 1;
                (Severity::ActivatedOnly, 0)
            }
        };
        out.push(MissAssessment {
            fault,
            severity,
            activation_probability,
            peak_output_error: peak,
        });
    }
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpg::TestGenerator;

    fn small_design() -> filters::FilterDesign {
        filters::FilterDesign::elaborate(filters::FilterSpec {
            name: "sev".into(),
            band: dsp::firdesign::BandKind::Lowpass { cutoff: 0.06 },
            taps: 20,
            input_bits: 12,
            coef_frac_bits: 15,
            max_csd_digits: 4,
            width: 16,
            kaiser_beta: 5.5,
        })
        .expect("design elaborates")
    }

    #[test]
    fn lfsr1_escapes_on_narrowband_lowpass_include_serious_faults() {
        // The paper's Section 5 claim, end to end: after a >99%-coverage
        // LFSR-1 test, an ordinary sine exposes some missed faults as
        // serious.
        let d = small_design();
        let session = BistSession::new(&d).expect("session");
        let mut gen = tpg::Lfsr1::new(12, tpg::ShiftDirection::LsbToMsb).expect("lfsr");
        let run = session.run(&mut gen, &crate::session::RunConfig::new(2048)).expect("run");
        assert!(run.coverage() > 0.98, "coverage {}", run.coverage());
        let missed = run.result.missed();
        assert!(!missed.is_empty());

        let mut sine = tpg::Sine::new(12, 0.85, 0.01).expect("sine");
        let stimulus: Vec<i64> = (0..1024).map(|_| d.align_input(sine.next_word())).collect();
        let (assessments, summary) = assess_missed(&session, &missed, &stimulus);
        assert_eq!(assessments.len(), missed.len());
        assert_eq!(summary.serious + summary.activated_only + summary.near_redundant, missed.len());
        assert!(summary.serious > 0, "no serious escape found: {summary:?}");
        // Serious faults carry a nonzero peak error and activation rate.
        for a in assessments.iter().filter(|a| a.severity == Severity::Serious) {
            assert!(a.peak_output_error > 0);
            assert!(a.activation_probability > 0.0);
        }
    }

    #[test]
    fn zero_stimulus_marks_everything_near_redundant_or_quiet() {
        let d = small_design();
        let session = BistSession::new(&d).expect("session");
        let mut gen = tpg::Ramp::new(12).expect("ramp");
        let run = session.run(&mut gen, &crate::session::RunConfig::new(256)).expect("run");
        let missed = run.result.missed();
        let stimulus = vec![0i64; 64];
        let (_, summary) = assess_missed(&session, &missed, &stimulus);
        assert_eq!(summary.serious, 0);
    }
}
