//! Amplitude-distribution prediction at internal filter nodes (paper
//! Section 7.2, Figs. 8–9).
//!
//! Under the LFSR linear model, the signal at a node is
//! `sum_n h'[n] a(t-n)` with `h' = h_node * g` and `a` a 0/1 white bit
//! stream, so its distribution is the convolution of scaled Bernoulli
//! terms. Under the idealized generator the node signal is
//! `sum_n h[n] u(t-n)` with independent uniform words `u`, so the
//! distribution convolves scaled uniform terms. Both are computed with
//! [`dsp::dist::Distribution`] and can be compared against simulation
//! histograms.

use dsp::conv::convolve;
use dsp::dist::Distribution;
use dsp::stats::Histogram;
use rtl::{Netlist, NodeId};

/// Default grid step for predictions (2^-9 of full scale).
pub const DEFAULT_STEP: f64 = 1.0 / 512.0;

/// Predicted distribution at `node` when the input is driven by an LFSR
/// described by the linear model `g` (paper Fig. 8 "theory" curve).
pub fn predict_lfsr(netlist: &Netlist, node: NodeId, g: &[f64], step: f64) -> Distribution {
    let len = netlist.register_indices().len() + 2;
    let h = rtl::linear::impulse_response(netlist, node, len);
    let weights = convolve(&h, g);
    Distribution::sum_of_bernoulli(&weights, step)
}

/// Predicted distribution at `node` for an idealized generator with
/// independent uniform words (paper Fig. 9 "theory" curve).
pub fn predict_ideal(netlist: &Netlist, node: NodeId, step: f64) -> Distribution {
    let len = netlist.register_indices().len() + 2;
    let h = rtl::linear::impulse_response(netlist, node, len);
    Distribution::sum_of_uniform(&h, step)
}

/// Histogram of the actual signal at `node` under the given input
/// sequence (the simulation side of Figs. 8–9), as fractional values.
pub fn simulate_histogram(
    netlist: &Netlist,
    node: NodeId,
    inputs: &[i64],
    bins: usize,
) -> Histogram {
    let samples = faultsim::inject::probe_node(netlist, node, inputs);
    let lsb = netlist.format().lsb();
    let mut hist = Histogram::new(-1.0, 1.0, bins);
    for &raw in &samples {
        hist.add(raw as f64 * lsb);
    }
    hist
}

/// Maximum absolute difference between a predicted density and a
/// histogram's density estimate on the histogram's grid, normalized by
/// the histogram's density peak — a goodness-of-fit score for the
/// theory-vs-simulation comparisons.
pub fn density_mismatch(prediction: &Distribution, hist: &Histogram) -> f64 {
    let bins = hist.counts().len();
    let predicted = prediction.density_on(-1.0, 1.0, bins);
    let actual = hist.density();
    let peak = actual.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    predicted.iter().zip(&actual).map(|(p, a)| (p - a).abs()).fold(0.0, f64::max) / peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpg::{collect_words, model, Lfsr1, ShiftDirection};

    fn small_filter() -> filters::FilterDesign {
        filters::FilterDesign::elaborate(filters::FilterSpec {
            name: "T".into(),
            band: dsp::firdesign::BandKind::Lowpass { cutoff: 0.1 },
            taps: 20,
            input_bits: 12,
            coef_frac_bits: 14,
            max_csd_digits: 4,
            width: 16,
            kaiser_beta: 5.0,
        })
        .unwrap()
    }

    #[test]
    fn lfsr_prediction_matches_simulation_moments() {
        let d = small_filter();
        let node = d.output();
        let g = model::lfsr1_model(12, ShiftDirection::LsbToMsb);
        let predicted = predict_lfsr(d.netlist(), node, &g, DEFAULT_STEP);

        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let inputs: Vec<i64> =
            collect_words(&mut gen, 4095).into_iter().map(|w| d.align_input(w)).collect();
        let samples = faultsim::inject::probe_node(d.netlist(), node, &inputs);
        let lsb = d.netlist().format().lsb();
        let values: Vec<f64> = samples.iter().map(|&r| r as f64 * lsb).collect();
        let s = dsp::stats::Summary::of(&values).unwrap();

        assert!(
            (predicted.std_dev() - s.std_dev()).abs() < 0.15 * s.std_dev().max(1e-6),
            "predicted {} vs simulated {}",
            predicted.std_dev(),
            s.std_dev()
        );
    }

    #[test]
    fn ideal_prediction_matches_white_simulation() {
        let d = small_filter();
        let node = d.output();
        let predicted = predict_ideal(d.netlist(), node, DEFAULT_STEP);

        let mut gen = tpg::IdealWhite::new(12).unwrap();
        let inputs: Vec<i64> =
            collect_words(&mut gen, 8192).into_iter().map(|w| d.align_input(w)).collect();
        let hist = simulate_histogram(d.netlist(), node, &inputs, 64);
        let mismatch = density_mismatch(&predicted, &hist);
        assert!(mismatch < 0.25, "density mismatch {mismatch}");
    }

    #[test]
    fn prediction_has_unit_mass_and_reasonable_support() {
        let d = small_filter();
        let g = model::lfsr1_model(12, ShiftDirection::LsbToMsb);
        let p = predict_lfsr(d.netlist(), d.output(), &g, DEFAULT_STEP);
        assert!((p.total_mass() - 1.0).abs() < 1e-6);
        // A scaled design keeps everything within [-1, 1).
        assert!(p.prob_in(-1.0, 1.0) > 0.999);
    }

    #[test]
    fn histogram_counts_all_samples() {
        let d = small_filter();
        let inputs: Vec<i64> = (0..100).map(|i| d.align_input((i * 41) % 2048 - 1024)).collect();
        let h = simulate_histogram(d.netlist(), d.output(), &inputs, 32);
        assert_eq!(h.total(), 100);
        assert_eq!(h.outliers(), 0);
    }
}
