//! Campaign specifications: a serializable, canonicalizable description
//! of one complete BIST experiment — which design, which generator, and
//! the [`RunConfig`] knobs — decoupled from any in-memory object.
//!
//! This is the unit of work the `bistd` campaign daemon schedules and
//! caches: a [`CampaignSpec`] travels over the wire as JSON, is
//! canonicalized to a deterministic key string
//! ([`CampaignSpec::canonical`]) for content addressing, and is
//! executed by [`CampaignSpec::run`] on a worker thread. Both sides of
//! the wire (and the inline `bench` harness) build designs and
//! generators through the same registry, so a cached artifact is
//! interchangeable with a fresh run.

use crate::session::{BistRun, BistSession, ResponseCheck, RunConfig, SatConfig, SessionError};
use atpg::TopOffConfig;
use faultsim::{CancelToken, SimEngine, StageSchedule};
use filters::FilterDesign;
use obs::JsonValue;
use std::fmt::Write as _;
use tpg::TestGenerator;

/// Designs a campaign can name: the paper's three Table 1 circuits, the
/// two architecture variants of the LP design, and the 16-tap miniature
/// used by service smoke tests.
pub const KNOWN_DESIGNS: [&str; 6] = ["LP", "BP", "HP", "LP-SYM", "LP-CSA", "LP-MINI"];

/// Single-mode generators a campaign can name (12-bit, matching the
/// paper designs). The mixed scheme is spelled `Mixed@<n>`: LFSR-1 for
/// `n` vectors, then LFSR-M.
pub const KNOWN_GENERATORS: [&str; 6] = ["LFSR-1", "LFSR-2", "LFSR-D", "LFSR-M", "Ramp", "Ideal"];

/// One complete, self-contained experiment description.
///
/// `threads` is part of the spec (a submitter may pin worker
/// parallelism) and of the canonical form — even though results are
/// bit-identical at every thread count, the produced artifact records
/// the thread count it ran with, so specs differing in any field get
/// distinct cache keys and bit-identical replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Design name (see [`KNOWN_DESIGNS`]).
    pub design: String,
    /// Generator name (see [`KNOWN_GENERATORS`]) or `Mixed@<n>`.
    pub generator: String,
    /// Test length in vectors.
    pub vectors: usize,
    /// Signature-register width in bits.
    pub misr_width: u32,
    /// How responses are checked: `Trace` direct compare (the paper's
    /// oracle) or `Signature` MISR compaction with aliasing accounting.
    pub mode: ResponseCheck,
    /// Fault-dropping stage boundaries; `None` = the default schedule.
    pub boundaries: Option<Vec<u32>>,
    /// Fault-simulation worker threads (`0` = one per core).
    pub threads: usize,
    /// Deterministic top-off stage (ATPG screen + justification +
    /// hybrid LFSR reseeding); `None` = disabled.
    pub topoff: Option<TopOffConfig>,
    /// SAT proof stage (CDCL redundancy pruning + optional
    /// design/model equivalence certificate); `None` = disabled.
    pub sat: Option<SatConfig>,
    /// Structural fault collapsing: analyze the netlist, simulate only
    /// equivalence-class representatives and expand verdicts back
    /// (results stay byte-identical); `false` = disabled.
    pub collapse: bool,
    /// Fault-simulation execution engine: the compiled tape kernel
    /// (default) or the graph walker retained for differential runs.
    /// Results are bit-identical under either engine.
    pub engine: SimEngine,
}

impl CampaignSpec {
    /// A spec with the session defaults: 16-bit MISR, trace-mode
    /// response checking, default stage schedule, one worker thread per
    /// core.
    pub fn new(design: impl Into<String>, generator: impl Into<String>, vectors: usize) -> Self {
        CampaignSpec {
            design: design.into(),
            generator: generator.into(),
            vectors,
            misr_width: 16,
            mode: ResponseCheck::default(),
            boundaries: None,
            threads: 0,
            topoff: None,
            sat: None,
            collapse: false,
            engine: SimEngine::default(),
        }
    }

    /// The same spec in signature mode (builder-style convenience).
    pub fn with_mode(mut self, mode: ResponseCheck) -> Self {
        self.mode = mode;
        self
    }

    /// The same spec with the deterministic top-off stage enabled
    /// (builder-style convenience).
    pub fn with_topoff(mut self, cfg: TopOffConfig) -> Self {
        self.topoff = Some(cfg);
        self
    }

    /// The same spec with the SAT proof stage enabled (builder-style
    /// convenience).
    pub fn with_sat(mut self, cfg: SatConfig) -> Self {
        self.sat = Some(cfg);
        self
    }

    /// The same spec with structural fault collapsing enabled
    /// (builder-style convenience).
    pub fn with_collapse(mut self, collapse: bool) -> Self {
        self.collapse = collapse;
        self
    }

    /// The same spec under a specific fault-simulation engine
    /// (builder-style convenience).
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Checks every field against the registries and basic bounds,
    /// without paying for elaboration.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), SessionError> {
        if !KNOWN_DESIGNS.contains(&self.design.as_str()) {
            return Err(SessionError::InvalidConfig {
                reason: format!(
                    "unknown design '{}' (known: {})",
                    self.design,
                    KNOWN_DESIGNS.join(", ")
                ),
            });
        }
        if !KNOWN_GENERATORS.contains(&self.generator.as_str())
            && parse_mixed(&self.generator).is_none()
        {
            return Err(SessionError::InvalidConfig {
                reason: format!(
                    "unknown generator '{}' (known: {}, or Mixed@<n>)",
                    self.generator,
                    KNOWN_GENERATORS.join(", ")
                ),
            });
        }
        if self.vectors == 0 {
            return Err(SessionError::InvalidConfig { reason: "vectors must be positive".into() });
        }
        if let Some(b) = &self.boundaries {
            if !b.windows(2).all(|w| w[0] < w[1]) {
                return Err(SessionError::InvalidConfig {
                    reason: "schedule boundaries must be strictly ascending".into(),
                });
            }
        }
        if let Some(t) = &self.topoff {
            if t.block_len == 0 {
                return Err(SessionError::InvalidConfig {
                    reason: "topoff block_len must be positive".into(),
                });
            }
        }
        if let Some(s) = &self.sat {
            if s.max_conflicts == 0 {
                return Err(SessionError::InvalidConfig {
                    reason: "sat max_conflicts must be positive".into(),
                });
            }
        }
        Ok(())
    }

    /// The canonical key string content-addressed caches hash: every
    /// field in a fixed order, with the default schedule spelled out,
    /// so any two specs that run identically serialize identically.
    ///
    /// ```
    /// use bist_core::campaign::CampaignSpec;
    ///
    /// let spec = CampaignSpec::new("LP", "LFSR-D", 4096);
    /// assert_eq!(
    ///     spec.canonical(),
    ///     "design=LP;generator=LFSR-D;vectors=4096;misr=16;mode=trace;schedule=64,256,1024;threads=0;topoff=off"
    /// );
    /// ```
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "design={};generator={};vectors={};misr={};mode={};schedule=",
            self.design, self.generator, self.vectors, self.misr_width, self.mode
        );
        let default_boundaries = vec![64, 256, 1024];
        let boundaries = self.boundaries.as_ref().unwrap_or(&default_boundaries);
        for (i, b) in boundaries.iter().enumerate() {
            let _ = write!(out, "{}{b}", if i == 0 { "" } else { "," });
        }
        let _ = write!(out, ";threads={}", self.threads);
        match &self.topoff {
            None => out.push_str(";topoff=off"),
            Some(t) => {
                let _ = write!(out, ";topoff=block{},seeds{}", t.block_len, t.max_seeds);
            }
        }
        // Appended only when enabled, so every pre-SAT spec keeps its
        // exact historical cache key.
        if let Some(s) = &self.sat {
            let _ =
                write!(out, ";sat=conf{},equiv{}", s.max_conflicts, if s.equiv { 1 } else { 0 });
        }
        // Same rule for the collapse knob: the suffix appears only when
        // the stage is on, so older specs keep their cache keys even
        // though collapsed results are byte-identical anyway.
        if self.collapse {
            out.push_str(";collapse=on");
        }
        // The engine suffix appears only for the non-default walker:
        // kernel results are bit-identical to historical walker runs,
        // so default specs keep their exact pre-kernel cache keys,
        // while an explicit walker request gets its own key.
        if self.engine == SimEngine::Walker {
            out.push_str(";engine=walker");
        }
        out
    }

    /// Renders the spec as a JSON object (the wire form).
    pub fn to_json(&self) -> JsonValue {
        let mut v = JsonValue::object()
            .push("design", self.design.as_str())
            .push("generator", self.generator.as_str())
            .push("vectors", self.vectors)
            .push("misr_width", self.misr_width)
            .push("mode", self.mode.as_str());
        if let Some(b) = &self.boundaries {
            v = v.push("boundaries", b.clone());
        }
        v = v.push("threads", self.threads);
        if let Some(t) = &self.topoff {
            v = v.push(
                "topoff",
                JsonValue::object().push("block_len", t.block_len).push("max_seeds", t.max_seeds),
            );
        }
        if let Some(s) = &self.sat {
            v = v.push(
                "sat",
                JsonValue::object().push("max_conflicts", s.max_conflicts).push("equiv", s.equiv),
            );
        }
        if self.collapse {
            v = v.push("collapse", true);
        }
        if self.engine == SimEngine::Walker {
            v = v.push("engine", self.engine.as_str());
        }
        v
    }

    /// Reads a spec back from its wire form. Missing optional fields
    /// (`misr_width`, `mode`, `boundaries`, `threads`) take the
    /// defaults.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidConfig`] on missing/mistyped fields (the
    /// result is *not* yet validated against the registries; call
    /// [`CampaignSpec::validate`] for that).
    pub fn from_json(v: &JsonValue) -> Result<CampaignSpec, SessionError> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| SessionError::InvalidConfig {
                reason: format!("campaign spec is missing '{name}'"),
            })
        };
        let text = |name: &str| {
            field(name)?.as_str().map(str::to_string).ok_or_else(|| SessionError::InvalidConfig {
                reason: format!("'{name}' must be a string"),
            })
        };
        let number = |name: &str, default: u64| match v.get(name) {
            None => Ok(default),
            Some(n) => n.as_u64().ok_or_else(|| SessionError::InvalidConfig {
                reason: format!("'{name}' must be a non-negative integer"),
            }),
        };
        let boundaries = match v.get("boundaries") {
            None | Some(JsonValue::Null) => None,
            Some(b) => {
                let items = b.as_array().ok_or_else(|| SessionError::InvalidConfig {
                    reason: "'boundaries' must be an array of cycle counts".into(),
                })?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let cycle =
                        item.as_u64().and_then(|c| u32::try_from(c).ok()).ok_or_else(|| {
                            SessionError::InvalidConfig {
                                reason: "'boundaries' entries must be u32 cycle counts".into(),
                            }
                        })?;
                    out.push(cycle);
                }
                Some(out)
            }
        };
        let mode = match v.get("mode") {
            None => ResponseCheck::default(),
            Some(m) => {
                let name = m.as_str().ok_or_else(|| SessionError::InvalidConfig {
                    reason: "'mode' must be a string".into(),
                })?;
                ResponseCheck::parse(name).ok_or_else(|| SessionError::InvalidConfig {
                    reason: format!("unknown response-check mode '{name}'"),
                })?
            }
        };
        let topoff = match v.get("topoff") {
            None | Some(JsonValue::Null) => None,
            Some(t) => {
                let sub = |name: &str| {
                    t.get(name).and_then(JsonValue::as_u64).and_then(|n| u32::try_from(n).ok())
                };
                let (Some(block_len), Some(max_seeds)) = (sub("block_len"), sub("max_seeds"))
                else {
                    return Err(SessionError::InvalidConfig {
                        reason: "'topoff' must be an object with u32 'block_len' and 'max_seeds'"
                            .into(),
                    });
                };
                Some(TopOffConfig { block_len, max_seeds })
            }
        };
        let sat = match v.get("sat") {
            None | Some(JsonValue::Null) => None,
            Some(s) => {
                let (Some(max_conflicts), Some(equiv)) = (
                    s.get("max_conflicts").and_then(JsonValue::as_u64),
                    s.get("equiv").and_then(JsonValue::as_bool),
                ) else {
                    return Err(SessionError::InvalidConfig {
                        reason: "'sat' must be an object with u64 'max_conflicts' and bool 'equiv'"
                            .into(),
                    });
                };
                Some(SatConfig { max_conflicts, equiv })
            }
        };
        // Missing or null means off, so pre-collapse peers and cache
        // spills keep parsing.
        let collapse = match v.get("collapse") {
            None | Some(JsonValue::Null) => false,
            Some(c) => c.as_bool().ok_or_else(|| SessionError::InvalidConfig {
                reason: "'collapse' must be a boolean".into(),
            })?,
        };
        // Missing or null means the default kernel, so pre-kernel peers
        // and cache spills keep parsing.
        let engine = match v.get("engine") {
            None | Some(JsonValue::Null) => SimEngine::default(),
            Some(e) => {
                let name = e.as_str().ok_or_else(|| SessionError::InvalidConfig {
                    reason: "'engine' must be a string".into(),
                })?;
                SimEngine::parse(name).ok_or_else(|| SessionError::InvalidConfig {
                    reason: format!("unknown simulation engine '{name}'"),
                })?
            }
        };
        Ok(CampaignSpec {
            design: text("design")?,
            generator: text("generator")?,
            vectors: number("vectors", 0)? as usize,
            misr_width: number("misr_width", 16)? as u32,
            mode,
            boundaries,
            threads: number("threads", 0)? as usize,
            topoff,
            sat,
            collapse,
            engine,
        })
    }

    /// Elaborates the named design.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidConfig`] for an unknown name, or the
    /// wrapped [`filters::FilterError`] from elaboration.
    pub fn build_design(&self) -> Result<FilterDesign, SessionError> {
        build_design(&self.design)
    }

    /// Builds the named generator.
    ///
    /// # Errors
    ///
    /// [`SessionError::InvalidConfig`] for an unknown name, or the
    /// wrapped [`tpg::TpgError`] from construction.
    pub fn build_generator(&self) -> Result<Box<dyn TestGenerator>, SessionError> {
        build_generator(&self.generator)
    }

    /// The [`RunConfig`] this spec describes, with an optional
    /// cancellation token attached.
    pub fn run_config(&self, cancel: Option<CancelToken>) -> RunConfig {
        let mut config = RunConfig::new(self.vectors)
            .with_misr_width(self.misr_width)
            .with_response_check(self.mode)
            .with_threads(self.threads);
        if let Some(b) = &self.boundaries {
            config = config.with_schedule(StageSchedule::with_boundaries(b.clone()));
        }
        if let Some(t) = &self.topoff {
            config = config.with_top_off(*t);
        }
        if let Some(s) = &self.sat {
            config = config.with_sat_prune(*s);
        }
        config = config.with_collapse(self.collapse);
        config = config.with_engine(self.engine);
        if let Some(token) = cancel {
            config = config.with_cancel(token);
        }
        config
    }

    /// Validates, elaborates and runs the whole campaign, checking
    /// `cancel` (if given) at phase and stage boundaries.
    ///
    /// # Errors
    ///
    /// Any [`SessionError`]: invalid spec, elaboration failure, or
    /// [`SessionError::Cancelled`].
    pub fn run(&self, cancel: Option<CancelToken>) -> Result<BistRun, SessionError> {
        self.run_linted(cancel, Vec::new())
    }

    /// Like [`CampaignSpec::run`], but attaches admission-time lint
    /// diagnostics to the run's artifact (see
    /// [`RunConfig::with_lint`]). The diagnostics are observational:
    /// they never change what is simulated.
    ///
    /// # Errors
    ///
    /// Any [`SessionError`]: invalid spec, elaboration failure, or
    /// [`SessionError::Cancelled`].
    pub fn run_linted(
        &self,
        cancel: Option<CancelToken>,
        lint: Vec<obs::Diagnostic>,
    ) -> Result<BistRun, SessionError> {
        self.validate()?;
        let design = self.build_design()?;
        if let Some(token) = &cancel {
            if token.is_cancelled() {
                return Err(SessionError::Cancelled {
                    deadline_exceeded: token.deadline_exceeded(),
                });
            }
        }
        let session = BistSession::new(&design)?;
        let mut generator = self.build_generator()?;
        session.run(&mut *generator, &self.run_config(cancel).with_lint(lint))
    }
}

/// Elaborates a design by registry name (see [`KNOWN_DESIGNS`]).
///
/// # Errors
///
/// [`SessionError::InvalidConfig`] for an unknown name, or the wrapped
/// [`filters::FilterError`] from elaboration.
pub fn build_design(name: &str) -> Result<FilterDesign, SessionError> {
    let design = match name {
        "LP" => filters::designs::lowpass()?,
        "BP" => filters::designs::bandpass()?,
        "HP" => filters::designs::highpass()?,
        "LP-SYM" => filters::designs::lowpass_symmetric()?,
        "LP-CSA" => filters::designs::lowpass_carry_save()?,
        "LP-MINI" => filters::designs::lowpass_mini()?,
        other => {
            return Err(SessionError::InvalidConfig {
                reason: format!("unknown design '{other}' (known: {})", KNOWN_DESIGNS.join(", ")),
            })
        }
    };
    Ok(design)
}

/// Builds a 12-bit generator by registry name (see
/// [`KNOWN_GENERATORS`]), including the `Mixed@<n>` scheme.
///
/// # Errors
///
/// [`SessionError::InvalidConfig`] for an unknown name, or the wrapped
/// [`tpg::TpgError`] from construction.
pub fn build_generator(name: &str) -> Result<Box<dyn TestGenerator>, SessionError> {
    use tpg::ShiftDirection::LsbToMsb;
    let generator: Box<dyn TestGenerator> = match name {
        "LFSR-1" => Box::new(tpg::Lfsr1::new(12, LsbToMsb)?),
        "LFSR-2" => Box::new(tpg::Lfsr2::new(12, tpg::polynomials::PAPER_TYPE2_POLY)?),
        "LFSR-D" => Box::new(tpg::Decorrelated::maximal(12, LsbToMsb)?),
        "LFSR-M" => Box::new(tpg::MaxVariance::maximal(12)?),
        "Ramp" => Box::new(tpg::Ramp::new(12)?),
        "Ideal" => Box::new(tpg::IdealWhite::new(12)?),
        other => match parse_mixed(other) {
            Some(switch_after) => Box::new(tpg::Mixed::lfsr1_then_maxvar(12, switch_after)?),
            None => {
                return Err(SessionError::InvalidConfig {
                    reason: format!(
                        "unknown generator '{other}' (known: {}, or Mixed@<n>)",
                        KNOWN_GENERATORS.join(", ")
                    ),
                })
            }
        },
    };
    Ok(generator)
}

/// Parses `Mixed@<n>` into its switch-over vector count. Static
/// analyzers use this to decompose a mixed scheme into its phases
/// (LFSR-1 for `n` vectors, then LFSR-M).
pub fn parse_mixed(name: &str) -> Option<u64> {
    name.strip_prefix("Mixed@")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_deterministic_and_field_sensitive() {
        let base = CampaignSpec::new("LP", "LFSR-D", 4096);
        assert_eq!(base.canonical(), base.canonical());
        // The default schedule is spelled out, so None == explicit default.
        let explicit = CampaignSpec { boundaries: Some(vec![64, 256, 1024]), ..base.clone() };
        assert_eq!(base.canonical(), explicit.canonical());
        // Every other single-field change shows in the canonical form.
        for changed in [
            CampaignSpec { design: "HP".into(), ..base.clone() },
            CampaignSpec { generator: "Ramp".into(), ..base.clone() },
            CampaignSpec { vectors: 4095, ..base.clone() },
            CampaignSpec { misr_width: 12, ..base.clone() },
            CampaignSpec { mode: ResponseCheck::Signature, ..base.clone() },
            CampaignSpec { boundaries: Some(vec![64]), ..base.clone() },
            CampaignSpec { threads: 2, ..base.clone() },
            base.clone().with_topoff(TopOffConfig::default()),
            base.clone().with_sat(SatConfig::default()),
            base.clone().with_collapse(true),
            base.clone().with_engine(SimEngine::Walker),
        ] {
            assert_ne!(base.canonical(), changed.canonical(), "{changed:?}");
        }
        // Different top-off knobs get different cache keys too.
        let a = base.clone().with_topoff(TopOffConfig { block_len: 64, max_seeds: 8 });
        let b = base.clone().with_topoff(TopOffConfig { block_len: 256, max_seeds: 8 });
        assert_ne!(a.canonical(), b.canonical());
        assert!(a.canonical().ends_with(";topoff=block64,seeds8"), "{}", a.canonical());
        // And different SAT knobs: the suffix appears only when enabled,
        // so every pre-SAT spec keeps its exact historical cache key.
        assert!(base.canonical().ends_with(";topoff=off"), "{}", base.canonical());
        let c = base.clone().with_sat(SatConfig { max_conflicts: 500, equiv: false });
        let d = base.clone().with_sat(SatConfig { max_conflicts: 500, equiv: true });
        assert_ne!(c.canonical(), d.canonical());
        assert!(c.canonical().ends_with(";topoff=off;sat=conf500,equiv0"), "{}", c.canonical());
        let both = a.with_sat(SatConfig { max_conflicts: 20_000, equiv: true });
        assert!(
            both.canonical().ends_with(";topoff=block64,seeds8;sat=conf20000,equiv1"),
            "{}",
            both.canonical()
        );
        // The collapse suffix follows the same only-when-on rule and
        // sits after every stage knob.
        let all = both.with_collapse(true);
        assert!(
            all.canonical().ends_with(";sat=conf20000,equiv1;collapse=on"),
            "{}",
            all.canonical()
        );
        assert!(!base.canonical().contains("collapse"), "{}", base.canonical());
        // The engine suffix appears only for the non-default walker
        // (kernel runs are bit-identical, so default specs keep their
        // exact pre-kernel cache keys) and sits last.
        let walked = all.with_engine(SimEngine::Walker);
        assert!(
            walked.canonical().ends_with(";collapse=on;engine=walker"),
            "{}",
            walked.canonical()
        );
        assert!(!base.canonical().contains("engine"), "{}", base.canonical());
    }

    #[test]
    fn json_round_trips_with_and_without_optionals() {
        let full = CampaignSpec {
            design: "BP".into(),
            generator: "Mixed@2048".into(),
            vectors: 8192,
            misr_width: 12,
            mode: ResponseCheck::Signature,
            boundaries: Some(vec![16, 64]),
            threads: 4,
            topoff: Some(TopOffConfig { block_len: 128, max_seeds: 4 }),
            sat: Some(SatConfig { max_conflicts: 5000, equiv: true }),
            collapse: true,
            engine: SimEngine::Walker,
        };
        assert_eq!(CampaignSpec::from_json(&full.to_json()).unwrap(), full);
        assert!(full.to_json().to_json().contains("\"collapse\":true"));
        assert!(full.to_json().to_json().contains("\"engine\":\"walker\""));
        assert!(full
            .to_json()
            .to_json()
            .contains("\"topoff\":{\"block_len\":128,\"max_seeds\":4}"));
        assert!(full
            .to_json()
            .to_json()
            .contains("\"sat\":{\"max_conflicts\":5000,\"equiv\":true}"));
        let minimal =
            JsonValue::parse("{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64}")
                .unwrap();
        let spec = CampaignSpec::from_json(&minimal).unwrap();
        assert_eq!(spec, CampaignSpec::new("LP", "LFSR-1", 64));
        assert_eq!(spec.misr_width, 16);
        assert_eq!(spec.mode, ResponseCheck::Trace);
        assert_eq!(spec.topoff, None);
        assert_eq!(spec.sat, None);
        assert!(!spec.collapse);
        assert_eq!(spec.engine, SimEngine::Kernel);
        assert!(!spec.to_json().to_json().contains("topoff"), "absent knob stays off the wire");
        assert!(!spec.to_json().to_json().contains("sat"), "absent knob stays off the wire");
        assert!(!spec.to_json().to_json().contains("collapse"), "absent knob stays off the wire");
        assert!(!spec.to_json().to_json().contains("engine"), "default engine stays off the wire");
        // A pre-collapse peer may spell the knob as an explicit null.
        let nulled = JsonValue::parse(
            "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"collapse\":null}",
        )
        .unwrap();
        assert!(!CampaignSpec::from_json(&nulled).unwrap().collapse);
        // Same for a pre-kernel peer and the engine knob.
        let nulled = JsonValue::parse(
            "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"engine\":null}",
        )
        .unwrap();
        assert_eq!(CampaignSpec::from_json(&nulled).unwrap().engine, SimEngine::Kernel);
        let walker = JsonValue::parse(
            "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"engine\":\"walker\"}",
        )
        .unwrap();
        assert_eq!(CampaignSpec::from_json(&walker).unwrap().engine, SimEngine::Walker);
    }

    #[test]
    fn from_json_rejects_missing_and_mistyped_fields() {
        for (text, needle) in [
            ("{\"generator\":\"LFSR-1\",\"vectors\":64}", "missing 'design'"),
            ("{\"design\":3,\"generator\":\"LFSR-1\",\"vectors\":64}", "must be a string"),
            ("{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":-4}", "non-negative integer"),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"boundaries\":7}",
                "array",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"mode\":\"crc\"}",
                "unknown response-check mode 'crc'",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"topoff\":7}",
                "'topoff' must be an object",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\
                 \"topoff\":{\"block_len\":64}}",
                "'topoff' must be an object",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"sat\":7}",
                "'sat' must be an object",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\
                 \"sat\":{\"max_conflicts\":100}}",
                "'sat' must be an object",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"collapse\":7}",
                "'collapse' must be a boolean",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\"engine\":7}",
                "'engine' must be a string",
            ),
            (
                "{\"design\":\"LP\",\"generator\":\"LFSR-1\",\"vectors\":64,\
                 \"engine\":\"graph\"}",
                "unknown simulation engine 'graph'",
            ),
        ] {
            let v = JsonValue::parse(text).unwrap();
            let err = CampaignSpec::from_json(&v).unwrap_err();
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn validate_names_the_offending_field() {
        assert!(CampaignSpec::new("LP", "LFSR-D", 64).validate().is_ok());
        assert!(CampaignSpec::new("LP", "Mixed@2048", 64).validate().is_ok());
        let err = CampaignSpec::new("XX", "LFSR-D", 64).validate().unwrap_err();
        assert!(err.to_string().contains("unknown design 'XX'"), "{err}");
        let err = CampaignSpec::new("LP", "nope", 64).validate().unwrap_err();
        assert!(err.to_string().contains("unknown generator 'nope'"), "{err}");
        let err = CampaignSpec::new("LP", "Mixed@x", 64).validate().unwrap_err();
        assert!(err.to_string().contains("unknown generator"), "{err}");
        let err = CampaignSpec::new("LP", "LFSR-D", 0).validate().unwrap_err();
        assert!(err.to_string().contains("vectors"), "{err}");
        let bad = CampaignSpec {
            boundaries: Some(vec![64, 64]),
            ..CampaignSpec::new("LP", "LFSR-D", 128)
        };
        assert!(bad.validate().unwrap_err().to_string().contains("ascending"));
        let bad = CampaignSpec::new("LP", "LFSR-D", 128)
            .with_topoff(TopOffConfig { block_len: 0, max_seeds: 4 });
        assert!(bad.validate().unwrap_err().to_string().contains("block_len"), "{bad:?}");
        let ok = CampaignSpec::new("LP", "LFSR-D", 128).with_topoff(TopOffConfig::default());
        assert!(ok.validate().is_ok());
        let bad = CampaignSpec::new("LP", "LFSR-D", 128)
            .with_sat(SatConfig { max_conflicts: 0, equiv: false });
        assert!(bad.validate().unwrap_err().to_string().contains("max_conflicts"), "{bad:?}");
        let ok = CampaignSpec::new("LP", "LFSR-D", 128).with_sat(SatConfig::default());
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn registry_builds_every_known_name() {
        for name in KNOWN_GENERATORS {
            let mut g = build_generator(name).unwrap();
            assert_eq!(g.width(), 12, "{name}");
            g.next_word();
        }
        let mut m = build_generator("Mixed@4").unwrap();
        m.next_word();
        assert!(build_generator("bogus").is_err());
        // Designs: just the cheap ones here (variants covered e2e).
        for name in ["LP", "BP", "HP", "LP-MINI"] {
            assert_eq!(build_design(name).unwrap().name(), name);
        }
        assert!(build_design("bogus").is_err());
    }

    #[test]
    fn spec_run_executes_end_to_end_and_honors_cancel() {
        let spec = CampaignSpec { threads: 1, ..CampaignSpec::new("LP", "LFSR-D", 32) };
        let run = spec.run(None).unwrap();
        assert_eq!(run.artifact.vectors, 32);
        assert_eq!(run.artifact.design, "LP");
        assert_eq!(run.artifact.generator, "LFSR-D");

        let token = CancelToken::new();
        token.cancel();
        let err = spec.run(Some(token)).unwrap_err();
        assert!(matches!(err, SessionError::Cancelled { .. }), "{err}");

        let bad = CampaignSpec::new("nope", "LFSR-D", 32);
        assert!(bad.run(None).is_err());
    }

    #[test]
    fn walker_and_kernel_runs_are_byte_identical() {
        // The retained walker is the differential oracle for the
        // compiled kernel: whole-artifact equality in both response
        // modes on the miniature design.
        for mode in [ResponseCheck::Trace, ResponseCheck::Signature] {
            let base = CampaignSpec { threads: 1, ..CampaignSpec::new("LP-MINI", "LFSR-D", 96) }
                .with_mode(mode);
            let kernel = base.clone().with_engine(SimEngine::Kernel).run(None).unwrap();
            let walker = base.with_engine(SimEngine::Walker).run(None).unwrap();
            assert_eq!(kernel.signature, walker.signature);
            assert_eq!(kernel.missed(), walker.missed());
            assert_eq!(kernel.artifact.coverage, walker.artifact.coverage);
            assert_eq!(kernel.artifact.detected, walker.artifact.detected);
            assert_eq!(kernel.artifact.signature, walker.artifact.signature);
            assert_eq!(kernel.artifact.aliased, walker.artifact.aliased);
        }
    }

    #[test]
    fn run_linted_attaches_diagnostics_to_the_artifact() {
        let spec = CampaignSpec { threads: 1, ..CampaignSpec::new("LP-MINI", "LFSR-D", 32) };
        let diags = vec![obs::Diagnostic::new(
            "L301",
            obs::Severity::Warn,
            obs::Location::Field { name: "vectors".into() },
            "degenerate vector count",
        )];
        let run = spec.run_linted(None, diags.clone()).unwrap();
        assert_eq!(run.artifact.lint, diags);
        // Plain run() is the unlinted shorthand with identical results.
        let plain = spec.run(None).unwrap();
        assert!(plain.artifact.lint.is_empty());
        assert_eq!(plain.signature, run.signature);
    }

    #[test]
    fn run_config_carries_every_spec_field() {
        let spec = CampaignSpec {
            design: "LP".into(),
            generator: "LFSR-D".into(),
            vectors: 777,
            misr_width: 12,
            mode: ResponseCheck::Signature,
            boundaries: Some(vec![8, 32]),
            threads: 3,
            topoff: Some(TopOffConfig { block_len: 64, max_seeds: 2 }),
            sat: Some(SatConfig { max_conflicts: 999, equiv: false }),
            collapse: true,
            engine: SimEngine::Walker,
        };
        let config = spec.run_config(Some(CancelToken::new()));
        assert_eq!(config.vectors(), 777);
        assert_eq!(config.misr_width(), 12);
        assert_eq!(config.response_check(), ResponseCheck::Signature);
        assert_eq!(config.threads(), 3);
        assert_eq!(config.schedule(), &StageSchedule::with_boundaries(vec![8, 32]));
        assert!(config.cancel().is_some());
        assert_eq!(config.top_off(), Some(&TopOffConfig { block_len: 64, max_seeds: 2 }));
        assert_eq!(config.sat_prune(), Some(&SatConfig { max_conflicts: 999, equiv: false }));
        assert!(config.collapse());
        assert_eq!(config.engine(), SimEngine::Walker);
        // Without the knobs the config leaves every stage off.
        let plain = CampaignSpec::new("LP", "LFSR-D", 64).run_config(None);
        assert_eq!(plain.top_off(), None);
        assert_eq!(plain.sat_prune(), None);
        assert!(!plain.collapse());
        assert_eq!(plain.engine(), SimEngine::Kernel);
    }
}
