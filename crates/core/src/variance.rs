//! Per-adder test-signal variance analysis (the paper's Eq. 1 and
//! Section 7.1).
//!
//! "In a linear system, we can characterize the output of an adder by
//! the impulse response corresponding to the subsystem that outputs at
//! that adder ... `sigma_k^2 = sigma_x^2 * sum h_k^2[i]`." For LFSR
//! sources the linear model `g[n]` is cascaded first
//! (`h'_k = h_k * g`, with `sigma_x^2 = 1/4` for the 0/1 bit source),
//! which is exactly how the paper predicts the tap-20 attenuation of
//! its Fig. 6.

use dsp::conv::convolve;
use rtl::{Netlist, NodeId};
use std::fmt;

/// The stimulus model used for a variance analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceModel {
    /// White words of the given variance applied directly to the filter
    /// input (the LFSR-D model uses variance 1/3, LFSR-M variance 1).
    White {
        /// Word variance.
        variance: f64,
    },
    /// A 0/1 white bit source (variance 1/4) shaped by an LFSR linear
    /// model before entering the filter (see [`tpg::model::lfsr1_model`]).
    Shaped {
        /// The LFSR model's impulse response `g[n]`.
        model: Vec<f64>,
    },
}

/// Predicted test-signal statistics at one adder.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeVariance {
    /// The analyzed node.
    pub node: NodeId,
    /// The node's label.
    pub label: String,
    /// Predicted signal variance at the node.
    pub variance: f64,
    /// Predicted standard deviation.
    pub std_dev: f64,
    /// Highest active cell (effective MSB) of the node, if arithmetic.
    pub msb_cell: Option<u32>,
    /// `std_dev / msb_cell_weight`: how large the test signal is
    /// relative to the most significant active bit. Small values flag
    /// the paper's attenuation problem (its tap-20 case).
    pub msb_utilization: Option<f64>,
}

impl fmt::Display for NodeVariance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): std {:.4}", self.node, self.label, self.std_dev)?;
        if let Some(u) = self.msb_utilization {
            write!(f, ", MSB utilization {u:.3}")?;
        }
        Ok(())
    }
}

/// Runs the Eq. 1 analysis over the given nodes.
///
/// `ranges` supplies each node's active span so the predicted deviation
/// can be compared with the bit weight it must exercise.
pub fn analyze(
    netlist: &Netlist,
    ranges: &rtl::range::RangeAnalysis,
    nodes: &[NodeId],
    source: &SourceModel,
) -> Vec<NodeVariance> {
    let len = netlist.register_indices().len() + 2;
    let responses = rtl::linear::impulse_responses(netlist, nodes, len);
    nodes
        .iter()
        .zip(responses)
        .map(|(&node, h)| {
            let (sigma_x2, h_eff) = match source {
                SourceModel::White { variance } => (*variance, h),
                SourceModel::Shaped { model } => (0.25, convolve(&h, model)),
            };
            let variance: f64 = sigma_x2 * h_eff.iter().map(|x| x * x).sum::<f64>();
            let std_dev = variance.sqrt();
            let msb_cell = ranges.active_span(netlist, node).map(|(_, m)| m);
            let msb_utilization = msb_cell.map(|m| {
                let weight = 2f64.powi(m as i32 - (netlist.width() as i32 - 1));
                std_dev / weight
            });
            NodeVariance {
                node,
                label: netlist.node(node).label.clone(),
                variance,
                std_dev,
                msb_cell,
                msb_utilization,
            }
        })
        .collect()
}

/// Convenience: analyze every adder/subtractor of a filter design.
pub fn analyze_design(design: &filters::FilterDesign, source: &SourceModel) -> Vec<NodeVariance> {
    let netlist = design.netlist();
    let ranges = rtl::range::RangeAnalysis::analyze(
        netlist,
        rtl::range::aligned_input_range(design.spec().input_bits, netlist.width()),
    );
    let nodes = netlist.arithmetic_ids();
    analyze(netlist, &ranges, &nodes, source)
}

/// Nodes whose MSB utilization falls below `threshold` — the points the
/// paper's variance analysis flags as potential attenuation problems.
pub fn attenuation_problems(report: &[NodeVariance], threshold: f64) -> Vec<&NodeVariance> {
    report.iter().filter(|r| r.msb_utilization.is_some_and(|u| u < threshold)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpg::{model, ShiftDirection};

    fn lp() -> filters::FilterDesign {
        filters::designs::lowpass().unwrap()
    }

    #[test]
    fn white_variance_equals_noise_gain() {
        let d = lp();
        let out_node = d.output();
        let ranges = rtl::range::RangeAnalysis::analyze(
            d.netlist(),
            rtl::range::aligned_input_range(12, 16),
        );
        let r = analyze(d.netlist(), &ranges, &[out_node], &SourceModel::White { variance: 1.0 });
        let h = d.impulse_response();
        let gain: f64 = h.iter().map(|c| c * c).sum();
        assert!((r[0].variance - gain).abs() < 1e-9);
    }

    #[test]
    fn lfsr1_model_attenuates_lowpass_taps_more_than_white() {
        let d = lp();
        let white = analyze_design(&d, &SourceModel::White { variance: 1.0 / 3.0 });
        let shaped = analyze_design(
            &d,
            &SourceModel::Shaped { model: model::lfsr1_model(12, ShiftDirection::LsbToMsb) },
        );
        // Same total word variance (1/3), but the Type 1 null removes
        // most of what the narrowband lowpass would pass: accumulator
        // variances drop sharply.
        let pick = |r: &[NodeVariance]| -> f64 {
            r.iter().filter(|x| x.label.contains(".acc")).map(|x| x.variance).sum::<f64>()
        };
        let vw = pick(&white);
        let vs = pick(&shaped);
        assert!(vs < 0.4 * vw, "shaped {vs} vs white {vw}");
    }

    #[test]
    fn mid_taps_of_lowpass_are_attenuation_problems_under_lfsr1() {
        let d = lp();
        let shaped = analyze_design(
            &d,
            &SourceModel::Shaped { model: model::lfsr1_model(12, ShiftDirection::LsbToMsb) },
        );
        let problems = attenuation_problems(&shaped, 0.15);
        assert!(!problems.is_empty(), "no attenuation problems flagged");
        // The white-driven design has fewer problems at the same
        // threshold.
        let white = analyze_design(&d, &SourceModel::White { variance: 1.0 / 3.0 });
        let white_problems = attenuation_problems(&white, 0.15);
        assert!(white_problems.len() < problems.len());
    }

    #[test]
    fn display_formats_utilization() {
        let d = lp();
        let r = analyze_design(&d, &SourceModel::White { variance: 1.0 / 3.0 });
        let s = r.iter().find(|x| x.label.contains(".acc")).unwrap().to_string();
        assert!(s.contains("std"));
        assert!(s.contains("MSB utilization"));
    }
}
