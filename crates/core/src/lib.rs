//! Frequency-domain compatibility analysis for digital-filter BIST —
//! the primary contribution of *"Frequency-Domain Compatibility in
//! Digital Filter BIST"* (Goodby & Orailoğlu, DAC 1997), rebuilt as a
//! library.
//!
//! The paper's thesis: a test generator whose power spectrum starves the
//! filter's passband produces an attenuated test signal inside the
//! datapath, and the faults it misses — despite fault coverage above
//! 99% — include *serious* faults that ordinary operating signals would
//! excite. Compatibility between generator spectrum `G` and filter
//! response `H` is therefore a first-class design parameter for BIST.
//!
//! * [`compat`] — the compatibility metric
//!   `sigma_y^2 = (1/L) * sum |G[k]|^2 |H[k]|^2` and the `+ / ± / −`
//!   classification of the paper's Table 3.
//! * [`variance`] — per-adder test-signal variance via the subfilter
//!   impulse responses (paper Eq. 1), optionally cascaded with the LFSR
//!   linear models from [`tpg::model`]; flags attenuation problems early
//!   in the design.
//! * [`zones`] — the difficult-test model of the paper's Section 4:
//!   the four hard test classes T1/T2/T5/T6 at an adder's upper carry
//!   logic, their primary-input activation zones (Fig. 1), and
//!   activation probabilities under a predicted amplitude distribution.
//! * [`distribution`] — amplitude-distribution prediction at internal
//!   nodes (paper Figs. 8–9): the LFSR linear-model prediction and the
//!   idealized independent-vector prediction.
//! * [`misr`] — a multiple-input signature register for response
//!   compaction (the experiments assume no aliasing and compare outputs
//!   directly; the MISR is the production BIST path).
//! * [`session`] — end-to-end BIST runs: generator + filter + fault
//!   simulation, producing the coverage curves and missed-fault counts
//!   of the paper's Tables 4–6 and Figs. 10–13.
//! * [`selection`] — generator ranking and mixed-scheme recommendation
//!   (the paper's Section 9: a Type 1 LFSR switched to maximum-variance
//!   mode beats any single-mode generator).
//! * [`campaign`] — serializable campaign specifications with a
//!   canonical key form: the unit of work the `bistd` daemon queues,
//!   executes and content-addresses.
//!
//! # Example
//!
//! ```
//! use bist_core::compat::{classify, output_variance, Compatibility};
//!
//! // A narrowband lowpass starves under a Type 1 LFSR...
//! let h_lp = dsp::firdesign::FirSpec::new(
//!     dsp::firdesign::BandKind::Lowpass { cutoff: 0.04 }, 60,
//! ).design()?;
//! let lfsr1 = tpg::spectra::lfsr1(12, 512);
//! let white = tpg::spectra::flat(1.0 / 3.0, 512);
//! let starved = output_variance(&lfsr1, &h_lp);
//! let fed = output_variance(&white, &h_lp);
//! assert!(starved < 0.25 * fed);
//! assert_eq!(classify(starved, fed), Compatibility::Poor);
//! # Ok::<(), dsp::DspError>(())
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod campaign;
pub mod compat;
pub mod distribution;
pub mod misr;
pub mod selection;
pub mod session;
pub mod variance;
pub mod zones;

pub use atpg::TopOffConfig;
pub use faultsim::SimEngine;
pub use session::{BistRun, BistSession, RunConfig, SatConfig, SessionError};
