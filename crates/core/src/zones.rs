//! The difficult-test model: test numbering, I/O conditions (paper
//! Table 2) and primary-input activation zones (paper Fig. 1).
//!
//! At a full-adder cell, the eight possible tests are numbered by the
//! binary value `abc` of (primary input, secondary input, carry-in).
//! In a variance-mismatched adder — secondary input much smaller than
//! primary — four of them (`T1`, `T2`, `T5`, `T6`) become hard to
//! assert at the upper cells, because the input/output conditions
//! confine the primary input to narrow zones whose width is set by the
//! secondary input's magnitude. `T1`/`T6` zones sit near amplitude 0.5:
//! only a strong test signal reaches them, which is why spectral
//! attenuation (and excess headroom) turns into missed faults.

use dsp::dist::Distribution;
use rtl::fulladder::{fault_classes, FaultClass};
use std::fmt;

/// The four difficult tests of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DifficultTest {
    /// `abc = 001`: both addend bits 0, carry-in 1.
    T1,
    /// `abc = 010`: secondary bit 1, others 0.
    T2,
    /// `abc = 101`: primary 1, secondary 0, carry 1.
    T5,
    /// `abc = 110`: primary and secondary 1, carry 0.
    T6,
}

impl DifficultTest {
    /// All four difficult tests in paper order.
    pub fn all() -> [DifficultTest; 4] {
        [DifficultTest::T1, DifficultTest::T2, DifficultTest::T5, DifficultTest::T6]
    }

    /// The test number `n` (value of `abc`).
    pub fn number(self) -> u8 {
        match self {
            DifficultTest::T1 => 1,
            DifficultTest::T2 => 2,
            DifficultTest::T5 => 5,
            DifficultTest::T6 => 6,
        }
    }

    /// The test for a given `abc` value, if it is one of the difficult
    /// four.
    pub fn from_number(n: u8) -> Option<DifficultTest> {
        match n {
            1 => Some(DifficultTest::T1),
            2 => Some(DifficultTest::T2),
            5 => Some(DifficultTest::T5),
            6 => Some(DifficultTest::T6),
            _ => None,
        }
    }
}

impl fmt::Display for DifficultTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.number())
    }
}

/// One behavioural test condition at the next-to-MSB cell: bounds on
/// the primary input `A` and on the sum `A + B` (all values relative to
/// the adder's full scale `[-1, 1)`). `None` bounds are unconstrained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCondition {
    /// Inclusive lower bound on `A`.
    pub a_min: Option<f64>,
    /// Exclusive upper bound on `A`.
    pub a_max: Option<f64>,
    /// Inclusive lower bound on `A + B`.
    pub sum_min: Option<f64>,
    /// Exclusive upper bound on `A + B`.
    pub sum_max: Option<f64>,
    /// `true` when the condition corresponds to adder overflow.
    pub overflow: bool,
}

impl IoCondition {
    /// Does `(a, b)` satisfy the condition (ignoring overflow
    /// semantics — the sum is taken exactly)?
    pub fn satisfied(&self, a: f64, b: f64) -> bool {
        let s = a + b;
        self.a_min.is_none_or(|m| a >= m)
            && self.a_max.is_none_or(|m| a < m)
            && self.sum_min.is_none_or(|m| s >= m)
            && self.sum_max.is_none_or(|m| s < m)
    }
}

/// The two equivalent I/O condition classes (`a` and `b` in the paper's
/// Table 2) asserting a difficult test at the next-to-MSB cell.
pub fn io_conditions(test: DifficultTest) -> [IoCondition; 2] {
    let c =
        |a_min: Option<f64>,
         a_max: Option<f64>,
         sum_min: Option<f64>,
         sum_max: Option<f64>,
         overflow: bool| { IoCondition { a_min, a_max, sum_min, sum_max, overflow } };
    match test {
        // T1a: 0 <= A < 0.5, A+B >= 0.5 ; T1b: A < -0.5, A+B >= -0.5.
        DifficultTest::T1 => [
            c(Some(0.0), Some(0.5), Some(0.5), None, false),
            c(None, Some(-0.5), Some(-0.5), None, false),
        ],
        // T2a: 0 <= A < 0.5, A+B < 0 ; T2b: A < -0.5, A+B >= 0.5 (ovf).
        DifficultTest::T2 => [
            c(Some(0.0), Some(0.5), None, Some(0.0), false),
            c(None, Some(-0.5), Some(0.5), None, true),
        ],
        // T5a: -0.5 <= A < 0, A+B >= 0 ; T5b: A >= 0.5, A+B < -0.5 (ovf).
        DifficultTest::T5 => [
            c(Some(-0.5), Some(0.0), Some(0.0), None, false),
            c(Some(0.5), None, None, Some(-0.5), true),
        ],
        // T6a: -0.5 <= A < 0, A+B < -0.5 ; T6b: A >= 0.5, A+B < 0.5.
        DifficultTest::T6 => [
            c(Some(-0.5), Some(0.0), None, Some(-0.5), false),
            c(Some(0.5), None, None, Some(0.5), false),
        ],
    }
}

/// The primary-input activation zones of a difficult test when the
/// secondary input is bounded by `|B| <= b_bound` (the shaded bars of
/// the paper's Fig. 1; zone width is proportional to the secondary
/// magnitude). Overflow-only classes contribute no zone.
pub fn activation_zones(test: DifficultTest, b_bound: f64) -> Vec<(f64, f64)> {
    assert!(b_bound >= 0.0, "secondary bound must be nonnegative");
    let b = b_bound;
    match test {
        // A in [0.5-b, 0.5) (T1a needs A+B >= 0.5) and [-0.5-b, -0.5).
        DifficultTest::T1 => vec![(0.5 - b, 0.5), (-0.5 - b, -0.5)],
        // A in [0, b): T2a needs A+B < 0 with A >= 0.
        DifficultTest::T2 => vec![(0.0, b)],
        // A in [-b, 0): T5a needs A+B >= 0 with A < 0.
        DifficultTest::T5 => vec![(-b, 0.0)],
        // A in [-0.5, -0.5+b) and [0.5, 0.5+b).
        DifficultTest::T6 => vec![(-0.5, -0.5 + b), (0.5, 0.5 + b)],
    }
}

/// Probability that the primary input lands in one of a test's
/// activation zones, under the amplitude distribution `dist`.
pub fn activation_probability(test: DifficultTest, dist: &Distribution, b_bound: f64) -> f64 {
    activation_zones(test, b_bound)
        .into_iter()
        .map(|(lo, hi)| if hi > lo { dist.prob_in(lo, hi) } else { 0.0 })
        .sum::<f64>()
        .max(0.0)
}

/// Derives, from the gate-level full-adder model, which collapsed fault
/// classes are detected *only* by difficult tests — the cell-level
/// justification for the paper's Table 2.
pub fn classes_confined_to_difficult_tests() -> Vec<FaultClass> {
    let difficult_mask: u8 = DifficultTest::all().iter().map(|t| 1 << t.number()).sum();
    fault_classes(None).into_iter().filter(|c| c.detecting_tests & !difficult_mask == 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips() {
        for t in DifficultTest::all() {
            assert_eq!(DifficultTest::from_number(t.number()), Some(t));
        }
        assert_eq!(DifficultTest::from_number(0), None);
        assert_eq!(DifficultTest::from_number(7), None);
        assert_eq!(DifficultTest::T5.to_string(), "T5");
    }

    #[test]
    fn table2_conditions_match_paper_rows() {
        let [t1a, t1b] = io_conditions(DifficultTest::T1);
        assert!(t1a.satisfied(0.45, 0.1)); // A in [0,0.5), sum >= 0.5
        assert!(!t1a.satisfied(0.45, 0.01)); // sum too small
        assert!(t1b.satisfied(-0.55, 0.1)); // A < -0.5, sum >= -0.5
        assert!(!t1b.satisfied(-0.7, 0.1)); // sum below -0.5

        let [t2a, t2b] = io_conditions(DifficultTest::T2);
        assert!(t2a.satisfied(0.1, -0.2));
        assert!(!t2a.satisfied(0.1, 0.2));
        assert!(t2b.overflow);

        let [t5a, _] = io_conditions(DifficultTest::T5);
        assert!(t5a.satisfied(-0.1, 0.2));
        assert!(!t5a.satisfied(-0.3, 0.2));

        let [t6a, t6b] = io_conditions(DifficultTest::T6);
        assert!(t6a.satisfied(-0.4, -0.2));
        assert!(t6b.satisfied(0.6, -0.2));
        assert!(!t6b.satisfied(0.6, 0.0));
    }

    #[test]
    fn zones_shrink_with_secondary_variance() {
        let wide = activation_zones(DifficultTest::T1, 0.2);
        let narrow = activation_zones(DifficultTest::T1, 0.02);
        let width = |z: &[(f64, f64)]| z.iter().map(|(a, b)| b - a).sum::<f64>();
        assert!((width(&wide) - 0.4).abs() < 1e-12);
        assert!((width(&narrow) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn t1_t6_zones_sit_at_half_amplitude() {
        for t in [DifficultTest::T1, DifficultTest::T6] {
            for (lo, hi) in activation_zones(t, 0.05) {
                let edge = lo.abs().min(hi.abs());
                assert!((edge - 0.5).abs() < 0.06, "{t}: zone ({lo}, {hi})");
            }
        }
        // T2/T5 zones sit near zero — reachable by weak signals.
        for t in [DifficultTest::T2, DifficultTest::T5] {
            for (lo, hi) in activation_zones(t, 0.05) {
                assert!(lo.abs() <= 0.05 && hi.abs() <= 0.05, "{t}: zone ({lo}, {hi})");
            }
        }
    }

    #[test]
    fn attenuated_signal_cannot_reach_t1_zone() {
        // A tight distribution (std 0.036, the paper's Fig. 6 tap-20
        // signal) essentially never lands near +-0.5.
        let weak = Distribution::sum_of_uniform(&[0.06], 1.0 / 512.0);
        let strong = Distribution::sum_of_uniform(&[0.9], 1.0 / 512.0);
        let p_weak = activation_probability(DifficultTest::T1, &weak, 0.05);
        let p_strong = activation_probability(DifficultTest::T1, &strong, 0.05);
        assert_eq!(p_weak, 0.0);
        assert!(p_strong > 0.01, "{p_strong}");
    }

    #[test]
    fn zone_probability_is_conserved() {
        let d = Distribution::uniform(-1.0, 1.0, 1.0 / 512.0);
        // For a full-range uniform signal the T1 zone probability equals
        // the zone width / 2.
        let p = activation_probability(DifficultTest::T1, &d, 0.1);
        assert!((p - 0.1).abs() < 0.01, "{p}");
    }

    #[test]
    fn gate_level_model_confines_some_classes_to_difficult_tests() {
        let confined = classes_confined_to_difficult_tests();
        assert!(!confined.is_empty());
        let difficult_mask: u8 = DifficultTest::all().iter().map(|t| 1 << t.number()).sum();
        for c in &confined {
            assert_eq!(c.detecting_tests & !difficult_mask, 0);
        }
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_bound_panics() {
        activation_zones(DifficultTest::T1, -0.1);
    }
}
