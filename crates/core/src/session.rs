//! End-to-end BIST sessions: generator → filter → fault simulation →
//! (optionally) signature compaction.
//!
//! A [`BistSession`] owns the fault universe of one filter design and
//! runs complete test experiments against it — the machinery behind the
//! paper's Tables 4–6 and Figs. 10–13.

use crate::misr::Misr;
use faultsim::{FaultSimResult, FaultUniverse, ParallelFaultSimulator};
use filters::FilterDesign;
use rtl::range::RangeAnalysis;
use tpg::TestGenerator;

/// A reusable fault-simulation context for one filter design.
pub struct BistSession<'d> {
    design: &'d FilterDesign,
    ranges: RangeAnalysis,
    universe: FaultUniverse,
}

impl<'d> BistSession<'d> {
    /// Builds the session: runs the scaling (range) analysis, the exact
    /// input-cone reachability analysis, and enumerates the collapsed,
    /// redundancy-pruned fault universe (the paper's testable-design
    /// preparation: scaling plus redundant-operator elimination).
    pub fn new(design: &'d FilterDesign) -> Self {
        let ranges = design.claimed_ranges().clone();
        let reach =
            rtl::reachability::Reachability::analyze(design.netlist(), design.spec().input_bits);
        let universe = FaultUniverse::enumerate_pruned(design.netlist(), &ranges, &reach);
        BistSession { design, ranges, universe }
    }

    /// The design under test.
    pub fn design(&self) -> &FilterDesign {
        self.design
    }

    /// The scaling analysis.
    pub fn ranges(&self) -> &RangeAnalysis {
        &self.ranges
    }

    /// The collapsed fault universe.
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// Runs `vectors` test patterns from `generator` against every
    /// fault. The generator is reset first, so runs are reproducible.
    pub fn run(&self, generator: &mut dyn TestGenerator, vectors: usize) -> BistRun {
        generator.reset();
        let inputs: Vec<i64> =
            (0..vectors).map(|_| self.design.align_input(generator.next_word())).collect();
        let result = ParallelFaultSimulator::new(self.design.netlist(), &self.universe)
            .run(&inputs);

        // Signature of the good response (the production BIST readout).
        let good = faultsim::inject::probe_node(
            self.design.netlist(),
            self.design.output(),
            &inputs,
        );
        let mut misr = Misr::new(16).expect("16-bit MISR polynomial is tabulated");
        misr.absorb_all(&good);

        BistRun {
            generator: generator.name().to_string(),
            result,
            signature: misr.signature(),
        }
    }
}

/// Outcome of one BIST experiment.
#[derive(Debug, Clone)]
pub struct BistRun {
    /// The generator's display name.
    pub generator: String,
    /// Per-fault detection results.
    pub result: FaultSimResult,
    /// Good-machine MISR signature of the full response.
    pub signature: u64,
}

impl BistRun {
    /// Faults still missed at the end of the test — the paper's
    /// Table 4 cells.
    pub fn missed(&self) -> usize {
        self.result.missed().len()
    }

    /// Missed faults normalized by the design's adder/subtractor count
    /// — the paper's Table 5 cells.
    pub fn normalized_missed(&self, design: &FilterDesign) -> f64 {
        self.missed() as f64 / design.netlist().stats().arithmetic() as f64
    }

    /// Final fault coverage.
    pub fn coverage(&self) -> f64 {
        self.result.coverage_after(self.result.total_cycles())
    }

    /// Coverage curve at logarithmically spaced points — the series
    /// plotted in the paper's Figs. 10–13.
    pub fn coverage_curve(&self, points: usize) -> Vec<(u32, f64)> {
        let total = self.result.total_cycles().max(1);
        let cycles: Vec<u32> = (0..points)
            .map(|i| {
                let frac = (i + 1) as f64 / points as f64;
                ((total as f64).powf(frac)).round() as u32
            })
            .collect();
        self.result.curve(&cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpg::{Decorrelated, Lfsr1, MaxVariance, Ramp, ShiftDirection};

    fn small_design(cutoff: f64) -> FilterDesign {
        filters::FilterDesign::elaborate(filters::FilterSpec {
            name: "T".into(),
            band: dsp::firdesign::BandKind::Lowpass { cutoff },
            taps: 16,
            input_bits: 12,
            coef_frac_bits: 14,
            max_csd_digits: 3,
            width: 16,
            kaiser_beta: 4.0,
        })
        .unwrap()
    }

    #[test]
    fn session_enumerates_universe_once() {
        let d = small_design(0.1);
        let s = BistSession::new(&d);
        assert!(s.universe().len() > 500, "universe {}", s.universe().len());
        assert!(s.universe().uncollapsed_len() > s.universe().len());
    }

    #[test]
    fn random_patterns_reach_high_coverage_on_easy_design() {
        let d = small_design(0.2);
        let s = BistSession::new(&d);
        let mut gen = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).unwrap();
        let run = s.run(&mut gen, 512);
        assert!(run.coverage() > 0.9, "coverage {}", run.coverage());
        assert!(run.missed() < s.universe().len() / 10);
    }

    #[test]
    fn runs_are_reproducible() {
        let d = small_design(0.15);
        let s = BistSession::new(&d);
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let a = s.run(&mut gen, 128);
        let b = s.run(&mut gen, 128);
        assert_eq!(a.missed(), b.missed());
        assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn different_generators_give_different_signatures() {
        let d = small_design(0.15);
        let s = BistSession::new(&d);
        let mut a = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let mut b = Ramp::new(12).unwrap();
        assert_ne!(s.run(&mut a, 64).signature, s.run(&mut b, 64).signature);
    }

    #[test]
    fn maxvar_lags_on_lower_bits() {
        // LFSR-M misses more faults than LFSR-D at equal length (the
        // paper's consistent finding), even on an easy design.
        let d = small_design(0.2);
        let s = BistSession::new(&d);
        let mut dcor = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).unwrap();
        let mut maxv = MaxVariance::maximal(12).unwrap();
        let run_d = s.run(&mut dcor, 512);
        let run_m = s.run(&mut maxv, 512);
        assert!(
            run_m.missed() > run_d.missed(),
            "LFSR-M {} vs LFSR-D {}",
            run_m.missed(),
            run_d.missed()
        );
    }

    #[test]
    fn curve_is_monotone() {
        let d = small_design(0.15);
        let s = BistSession::new(&d);
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let run = s.run(&mut gen, 256);
        let curve = run.coverage_curve(8);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        let norm = run.normalized_missed(&d);
        assert!((norm - run.missed() as f64 / d.netlist().stats().arithmetic() as f64).abs() < 1e-12);
    }
}
