//! End-to-end BIST sessions: generator → filter → fault simulation →
//! (optionally) signature compaction.
//!
//! A [`BistSession`] owns the fault universe of one filter design and
//! runs complete test experiments against it — the machinery behind the
//! paper's Tables 4–6 and Figs. 10–13.

use crate::misr::Misr;
use atpg::TopOffConfig;
use faultsim::{
    CancelToken, FaultId, FaultSimResult, FaultUniverse, ParallelFaultSimulator, SignatureConfig,
    SimEngine, SimOptions, StageSchedule,
};
use filters::FilterDesign;
use obs::{
    CollapseReport, Diagnostic, Registry, ResidueVerdict, RunArtifact, SatReport, StageTiming,
    TopOffReport,
};
use rtl::range::RangeAnalysis;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use tpg::TestGenerator;

/// Unified error type at the session boundary: everything the lower
/// layers (generators, filter elaboration, DSP, netlists) can report,
/// plus session-level configuration mistakes. [`BistSession::new`] and
/// [`BistSession::run`] return this instead of panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionError {
    /// A test-generator / MISR construction error.
    Tpg(tpg::TpgError),
    /// A filter design/elaboration error.
    Filter(filters::FilterError),
    /// A netlist error.
    Rtl(rtl::RtlError),
    /// A DSP substrate error.
    Dsp(dsp::DspError),
    /// The run configuration or design/generator pairing was invalid;
    /// the message says which constraint was violated.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The run's [`CancelToken`] fired (explicit cancellation or a
    /// deadline) and the session stopped at a stage boundary.
    Cancelled {
        /// Whether the token read cancelled because its deadline
        /// passed, rather than an explicit cancel call.
        deadline_exceeded: bool,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Tpg(e) => write!(f, "test-pattern generation failed: {e}"),
            SessionError::Filter(e) => write!(f, "filter design failed: {e}"),
            SessionError::Rtl(e) => write!(f, "netlist error: {e}"),
            SessionError::Dsp(e) => write!(f, "dsp error: {e}"),
            SessionError::InvalidConfig { reason } => {
                write!(f, "invalid session configuration: {reason}")
            }
            SessionError::Cancelled { deadline_exceeded: true } => {
                write!(f, "session run cancelled: deadline exceeded")
            }
            SessionError::Cancelled { deadline_exceeded: false } => {
                write!(f, "session run cancelled")
            }
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Tpg(e) => Some(e),
            SessionError::Filter(e) => Some(e),
            SessionError::Rtl(e) => Some(e),
            SessionError::Dsp(e) => Some(e),
            SessionError::InvalidConfig { .. } => None,
            SessionError::Cancelled { .. } => None,
        }
    }
}

impl From<tpg::TpgError> for SessionError {
    fn from(e: tpg::TpgError) -> Self {
        SessionError::Tpg(e)
    }
}

impl From<filters::FilterError> for SessionError {
    fn from(e: filters::FilterError) -> Self {
        SessionError::Filter(e)
    }
}

impl From<rtl::RtlError> for SessionError {
    fn from(e: rtl::RtlError) -> Self {
        SessionError::Rtl(e)
    }
}

impl From<dsp::DspError> for SessionError {
    fn from(e: dsp::DspError) -> Self {
        SessionError::Dsp(e)
    }
}

/// How a run decides that a fault was observed.
///
/// The two checks share the same simulated machines and report the
/// same per-fault first-divergence cycles; they differ in what the
/// (modelled) tester stores and reads out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseCheck {
    /// Direct output compare against the materialized fault-free
    /// response trace — the paper's "no aliasing in the response
    /// analyzer" oracle. Response storage is `O(vectors)` words.
    #[default]
    Trace,
    /// MISR signature compaction inside the fault simulator: every
    /// lane folds its output stream into a per-lane signature register
    /// and only end-of-test signatures are kept — `O(lanes)` words of
    /// response storage, the production BIST readout. Compare-detected
    /// faults whose signatures collide with the fault-free one are
    /// counted and reported as *aliased* (see
    /// [`faultsim::FaultSimResult::aliased`]), never silently passed.
    Signature,
}

impl ResponseCheck {
    /// Canonical lower-case name (`"trace"` / `"signature"`), used in
    /// campaign specs, cache keys and artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            ResponseCheck::Trace => "trace",
            ResponseCheck::Signature => "signature",
        }
    }

    /// Parses a canonical name back; `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "trace" => Some(ResponseCheck::Trace),
            "signature" => Some(ResponseCheck::Signature),
            _ => None,
        }
    }
}

impl fmt::Display for ResponseCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of the SAT proof stage.
///
/// With the stage enabled, [`BistSession::run`] hands every fault the
/// ATPG static screen flags to the CDCL redundancy prover
/// ([`sat::prove_faults`]): a fault whose miter is UNSAT at every
/// reachable frame is *machine-checked redundant* and removed from the
/// simulated universe, a SAT witness is replayed through the fault
/// simulator as a detection, and anything undecided within the
/// conflict budget is left in the universe. When the top-off stage is
/// also enabled, faults it leaves unresolved get the same SAT verdict
/// pass and proven-redundant ones are reported under their own
/// `"redundant"` partition. With [`SatConfig::equiv`] set, the run
/// additionally proves the design's CSD netlist equivalent to its
/// behavioral fixed-point model ([`sat::check_equivalence`]) and
/// records the certificate verdict in [`obs::SatReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SatConfig {
    /// Per-query conflict budget for the redundancy prover; queries
    /// exceeding it leave the fault `Unknown` (never pruned).
    pub max_conflicts: u64,
    /// Also prove the design/model equivalence certificate.
    pub equiv: bool,
}

impl Default for SatConfig {
    /// The prover's default budget (20 000 conflicts per query) with
    /// the equivalence certificate enabled.
    fn default() -> Self {
        SatConfig { max_conflicts: 20_000, equiv: true }
    }
}

/// Configuration of one BIST run: test length, MISR width, response
/// check ([`ResponseCheck`]), the fault simulator's stage schedule and
/// its worker-thread count.
///
/// Built builder-style from [`RunConfig::new`]; the defaults are a
/// 16-bit MISR, trace-mode response checking, the default
/// [`StageSchedule`], and one worker thread per available core:
///
/// ```
/// use bist_core::session::RunConfig;
///
/// let cfg = RunConfig::new(4096).with_misr_width(16).with_threads(4);
/// assert_eq!(cfg.vectors(), 4096);
/// assert_eq!(cfg.threads(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct RunConfig {
    vectors: usize,
    misr_width: u32,
    response_check: ResponseCheck,
    schedule: StageSchedule,
    threads: usize,
    metrics: Option<Arc<Registry>>,
    cancel: Option<CancelToken>,
    lint: Vec<Diagnostic>,
    top_off: Option<TopOffConfig>,
    sat: Option<SatConfig>,
    collapse: bool,
    engine: SimEngine,
}

impl RunConfig {
    /// A configuration applying `vectors` test patterns, with default
    /// MISR width (16), trace-mode response checking, stage schedule
    /// and thread count (one per core).
    pub fn new(vectors: usize) -> Self {
        RunConfig {
            vectors,
            misr_width: 16,
            response_check: ResponseCheck::default(),
            schedule: StageSchedule::new(),
            threads: 0,
            metrics: None,
            cancel: None,
            lint: Vec::new(),
            top_off: None,
            sat: None,
            collapse: false,
            engine: SimEngine::default(),
        }
    }

    /// Overrides the test length.
    pub fn with_vectors(mut self, vectors: usize) -> Self {
        self.vectors = vectors;
        self
    }

    /// Overrides the signature-register width (must have a tabulated
    /// primitive polynomial; checked by [`BistSession::run`]).
    pub fn with_misr_width(mut self, width: u32) -> Self {
        self.misr_width = width;
        self
    }

    /// Selects the response check (trace compare vs. MISR signature
    /// compaction; see [`ResponseCheck`]).
    pub fn with_response_check(mut self, check: ResponseCheck) -> Self {
        self.response_check = check;
        self
    }

    /// Overrides the fault simulator's stage schedule.
    pub fn with_schedule(mut self, schedule: StageSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the fault simulator's worker-thread count (`0` = one
    /// per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a campaign-level metric registry: every run's per-stage
    /// spans, engine counters and latency histograms are folded into it
    /// (counters accumulate across runs, spans append). Each run's own
    /// [`RunArtifact`] is built regardless, so this is only needed for
    /// cross-run aggregation.
    pub fn with_metrics(mut self, metrics: Arc<Registry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Test length in vectors.
    pub fn vectors(&self) -> usize {
        self.vectors
    }

    /// Signature-register width in bits.
    pub fn misr_width(&self) -> u32 {
        self.misr_width
    }

    /// The configured response check.
    pub fn response_check(&self) -> ResponseCheck {
        self.response_check
    }

    /// The fault simulator's stage schedule.
    pub fn schedule(&self) -> &StageSchedule {
        &self.schedule
    }

    /// Worker-thread count (`0` = one per core).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached campaign metric registry, if any.
    pub fn metrics(&self) -> Option<&Arc<Registry>> {
        self.metrics.as_ref()
    }

    /// Attaches a cancellation token. [`BistSession::run`] checks it
    /// between pipeline phases, and the fault simulator checks it at
    /// every stage boundary; a fired token surfaces as
    /// [`SessionError::Cancelled`].
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Attaches static-analysis diagnostics produced at admission time
    /// (e.g. by the `lint` crate). [`BistSession::run`] copies them
    /// verbatim into the run's [`RunArtifact::lint`], so downstream
    /// consumers of the artifact see the predictions alongside the
    /// measured coverage. Diagnostics never change what is simulated.
    pub fn with_lint(mut self, lint: Vec<Diagnostic>) -> Self {
        self.lint = lint;
        self
    }

    /// The attached admission-time diagnostics (empty when unlinted).
    pub fn lint(&self) -> &[Diagnostic] {
        &self.lint
    }

    /// Enables the deterministic top-off stage: before simulation the
    /// ATPG static screen removes provably-untestable faults from the
    /// universe, and after it every still-undetected fault is either
    /// justified deterministically (and compressed into an LFSR
    /// reseeding plan) or proven unactivatable. The outcome lands in
    /// [`obs::RunArtifact::topoff`]; the run's coverage is then
    /// measured over the *testable* universe.
    pub fn with_top_off(mut self, cfg: TopOffConfig) -> Self {
        self.top_off = Some(cfg);
        self
    }

    /// The top-off configuration, if the stage is enabled.
    pub fn top_off(&self) -> Option<&TopOffConfig> {
        self.top_off.as_ref()
    }

    /// Enables the SAT proof stage (see [`SatConfig`]): before
    /// simulation, statically-screened faults are handed to the CDCL
    /// redundancy prover and the machine-checked-redundant ones are
    /// removed from the universe; unresolved top-off faults get a SAT
    /// verdict pass; the outcome lands in [`obs::RunArtifact::sat`].
    pub fn with_sat_prune(mut self, cfg: SatConfig) -> Self {
        self.sat = Some(cfg);
        self
    }

    /// The SAT proof-stage configuration, if the stage is enabled.
    pub fn sat_prune(&self) -> Option<&SatConfig> {
        self.sat.as_ref()
    }

    /// Enables structural fault collapsing: the run analyzes the
    /// screened universe with the `structure` crate, simulates only
    /// equivalence-class representatives, and expands their verdicts
    /// back over every class. Detection cycles and MISR signatures are
    /// intrinsic per fault, so the expanded full-universe result is
    /// byte-identical to an uncollapsed run; the collapse census and
    /// SCOAP summary land in [`obs::RunArtifact::collapse`].
    pub fn with_collapse(mut self, collapse: bool) -> Self {
        self.collapse = collapse;
        self
    }

    /// Whether structural fault collapsing is enabled.
    pub fn collapse(&self) -> bool {
        self.collapse
    }

    /// Selects the fault-simulation execution engine (default:
    /// [`SimEngine::Kernel`], the compiled straight-line tape). The
    /// walker is retained for differential testing; results are
    /// bit-identical under either engine.
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The selected fault-simulation execution engine.
    pub fn engine(&self) -> SimEngine {
        self.engine
    }
}

impl Default for RunConfig {
    /// The paper's Section 8 test length: 4096 vectors.
    fn default() -> Self {
        RunConfig::new(4096)
    }
}

/// A reusable fault-simulation context for one filter design.
pub struct BistSession<'d> {
    design: &'d FilterDesign,
    ranges: RangeAnalysis,
    universe: FaultUniverse,
}

impl<'d> BistSession<'d> {
    /// Builds the session: runs the scaling (range) analysis, the exact
    /// input-cone reachability analysis, and enumerates the collapsed,
    /// redundancy-pruned fault universe (the paper's testable-design
    /// preparation: scaling plus redundant-operator elimination).
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::InvalidConfig`] if the design's netlist
    /// is not a single-input, single-output datapath (the only shape a
    /// BIST session can drive).
    pub fn new(design: &'d FilterDesign) -> Result<Self, SessionError> {
        let netlist = design.netlist();
        if netlist.input_ids().len() != 1 || netlist.output_ids().is_empty() {
            return Err(SessionError::InvalidConfig {
                reason: format!(
                    "BIST sessions require a single-input netlist with outputs; \
                     design '{}' has {} inputs and {} outputs",
                    design.name(),
                    netlist.input_ids().len(),
                    netlist.output_ids().len()
                ),
            });
        }
        let ranges = design.claimed_ranges().clone();
        let reach = rtl::reachability::Reachability::analyze(netlist, design.spec().input_bits);
        let universe = FaultUniverse::enumerate_pruned(netlist, &ranges, &reach);
        Ok(BistSession { design, ranges, universe })
    }

    /// The design under test.
    pub fn design(&self) -> &FilterDesign {
        self.design
    }

    /// The scaling analysis.
    pub fn ranges(&self) -> &RangeAnalysis {
        &self.ranges
    }

    /// The collapsed fault universe.
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// Runs [`RunConfig::vectors`] test patterns from `generator`
    /// against every fault, sharding the fault universe across
    /// [`RunConfig::threads`] worker threads. The generator is reset
    /// first, so runs are reproducible — and results are bit-identical
    /// at every thread count, with or without metrics attached.
    ///
    /// Each pipeline phase (pattern generation, fault simulation,
    /// signature compaction) runs under an [`obs`] span; the timings,
    /// engine counters and the missed-fault census land in the
    /// returned run's [`BistRun::artifact`]. A registry attached via
    /// [`RunConfig::with_metrics`] additionally receives every metric
    /// for cross-run aggregation.
    ///
    /// Under [`ResponseCheck::Signature`] the compaction happens
    /// *inside* the fault simulator (per-lane MISRs, no separate
    /// `session.signature` phase, no materialized response trace), the
    /// good-machine signature is bit-identical to the trace-mode one,
    /// and any compare-detected fault whose signature aliases the
    /// fault-free value is counted in the artifact's `aliased` field.
    ///
    /// # Errors
    ///
    /// * [`SessionError::InvalidConfig`] if the generator's word width
    ///   does not match the design's input width.
    /// * [`SessionError::Tpg`] if no primitive polynomial is tabulated
    ///   for [`RunConfig::misr_width`].
    pub fn run(
        &self,
        generator: &mut dyn TestGenerator,
        config: &RunConfig,
    ) -> Result<BistRun, SessionError> {
        let input_bits = self.design.spec().input_bits;
        if generator.width() != input_bits {
            return Err(SessionError::InvalidConfig {
                reason: format!(
                    "generator '{}' produces {}-bit words but design '{}' expects {}-bit inputs",
                    generator.name(),
                    generator.width(),
                    self.design.name(),
                    input_bits
                ),
            });
        }
        let mut misr = Misr::new(config.misr_width())?;
        let cancelled = |token: &CancelToken| SessionError::Cancelled {
            deadline_exceeded: token.deadline_exceeded(),
        };
        if let Some(token) = config.cancel() {
            if token.is_cancelled() {
                return Err(cancelled(token));
            }
        }

        // A fresh per-run registry keeps the artifact's spans and
        // counters scoped to exactly this run; the caller's campaign
        // registry (if any) absorbs the snapshot at the end.
        let registry = Arc::new(Registry::new());

        // Both optional proof stages start from the ATPG static
        // screen: the top-off stage removes everything it flags, the
        // SAT stage treats its output as the redundancy-prover
        // candidate set. Computed once, under the screen's span.
        let screen: Vec<FaultId> = if config.top_off().is_some() || config.sat_prune().is_some() {
            let _span = registry.span("session.atpg_screen");
            atpg::untestable_faults(self.design.netlist(), &self.universe, input_bits)
        } else {
            Vec::new()
        };

        // SAT proof stage: prove the screened candidates redundant
        // (UNSAT miter at every frame) or detectable (witness replayed
        // through the fault simulator); optionally discharge the
        // design/model equivalence certificate.
        let mut sat_report: Option<SatReport> = None;
        let mut sat_redundant: Vec<FaultId> = Vec::new();
        if let Some(scfg) = config.sat_prune() {
            let _span = registry.span("session.sat_prune");
            let specs: Vec<sat::FaultSpec> = screen.iter().map(|&id| self.fault_spec(id)).collect();
            let outcome = sat::prove_faults(
                self.design.netlist(),
                input_bits,
                &specs,
                &sat::PruneConfig { max_conflicts: scfg.max_conflicts },
            );
            sat_redundant = screen
                .iter()
                .zip(&outcome.verdicts)
                .filter(|(_, (_, v))| matches!(v, sat::FaultVerdict::Redundant))
                .map(|(&id, _)| id)
                .collect();
            let mut report = SatReport {
                universe_before: self.universe.len(),
                candidates: specs.len(),
                redundant_proven: outcome.redundant,
                detectable: outcome.detectable,
                unknown: outcome.unknown,
                witnesses_confirmed: outcome.witnesses_confirmed,
                equiv_checked: scfg.equiv,
                equiv_proved: false,
                equiv_lemmas: 0,
                conflicts: outcome.stats.conflicts,
                decisions: outcome.stats.decisions,
                propagations: outcome.stats.propagations,
            };
            if scfg.equiv {
                let eq = sat::check_equivalence(self.design);
                report.equiv_proved = eq.proved;
                report.equiv_lemmas = eq.lemmas_proved;
                report.conflicts += eq.stats.conflicts;
                report.decisions += eq.stats.decisions;
                report.propagations += eq.stats.propagations;
            }
            sat_report = Some(report);
        }

        // Shrink the simulated universe: with the top-off stage on,
        // everything the screen flags goes (its historical semantics);
        // with only the SAT stage on, strictly the machine-checked
        // redundant subset goes. Without either knob the session's own
        // universe is used untouched and results stay bit-identical to
        // prior schemas.
        let removed: &[FaultId] = if config.top_off().is_some() { &screen } else { &sat_redundant };
        let screened_untestable = if config.top_off().is_some() { screen.len() } else { 0 };
        let screened_owned;
        let universe: &FaultUniverse = if removed.is_empty() {
            &self.universe
        } else {
            let keep: Vec<FaultId> = (0..self.universe.len() as u32)
                .map(FaultId)
                .filter(|id| !removed.contains(id))
                .collect();
            screened_owned = self.universe.subset(&keep);
            &screened_owned
        };

        // Structural collapse stage: analyze the screened universe,
        // then simulate only equivalence-class representatives. The
        // class map expands representative verdicts back over every
        // class afterwards — detection cycles and signatures are
        // intrinsic per fault, so the expanded result is byte-identical
        // to an uncollapsed run. Top-off and SAT verdict passes below
        // consume the representative residue directly.
        let mut collapse_report: Option<CollapseReport> = None;
        let mut class_map: Option<Vec<u32>> = None;
        let collapsed_owned;
        let sim_universe: &FaultUniverse = if config.collapse() {
            let _span = registry.span("session.structure");
            let analysis = structure::analyze(self.design.netlist(), universe);
            collapsed_owned = universe.subset(&analysis.collapsed.representatives);
            class_map = Some(analysis.collapsed.class_map.clone());
            collapse_report = Some(Self::collapse_report(&analysis.report));
            &collapsed_owned
        } else {
            universe
        };

        let inputs: Vec<i64> = {
            let _span = registry.span("session.patterns");
            generator.reset();
            (0..config.vectors()).map(|_| self.design.align_input(generator.next_word())).collect()
        };

        let mut options = SimOptions::new()
            .with_schedule(config.schedule().clone())
            .with_threads(config.threads())
            .with_engine(config.engine())
            .with_metrics(Arc::clone(&registry));
        if let Some(token) = config.cancel() {
            options = options.with_cancel(token.clone());
        }
        if config.response_check() == ResponseCheck::Signature {
            options = options
                .with_signature(SignatureConfig { width: misr.width(), poly: misr.poly_low() });
        }
        let threads_used = options.effective_threads();
        let result = {
            let _span = registry.span("session.fault_sim");
            ParallelFaultSimulator::new(self.design.netlist(), sim_universe)
                .with_options(options)
                .try_run(&inputs)
                .map_err(|_| {
                    cancelled(config.cancel().expect("only an attached token cancels a run"))
                })?
        };

        // Signature of the good response (the production BIST readout).
        // In signature mode the fault simulator's good lane already
        // folded the response on the fly (O(lanes) storage); in trace
        // mode the fault-free response is re-simulated and materialized
        // (O(vectors) storage) before compaction.
        let signature = match result.good_signature() {
            Some(sig) => sig,
            None => {
                let _span = registry.span("session.signature");
                let good = faultsim::inject::probe_node(
                    self.design.netlist(),
                    self.design.output(),
                    &inputs,
                );
                misr.absorb_all(&good);
                misr.signature()
            }
        };
        // Deterministic top-off: justify every undetected fault, plan
        // the seed compression, and verify the plan by re-simulation.
        // With collapsing on this stage sees the representative residue
        // — each justified representative certifies its whole class.
        let mut topoff_report = None;
        if let Some(tcfg) = config.top_off() {
            let top = {
                let _span = registry.span("session.top_off");
                atpg::top_off(
                    self.design.netlist(),
                    sim_universe,
                    &result.missed(),
                    input_bits,
                    tcfg,
                )
            };
            // SAT verdict pass: faults the justifier left unresolved
            // are retried by the redundancy prover; proven-redundant
            // ones move to their own partition, so "unresolved" keeps
            // meaning "nobody knows".
            let mut redundant_ids: Vec<FaultId> = Vec::new();
            if let Some(scfg) = config.sat_prune() {
                if !top.unresolved.is_empty() {
                    let _span = registry.span("session.sat_verdict");
                    let specs: Vec<sat::FaultSpec> =
                        top.unresolved.iter().map(|&id| Self::spec_for(sim_universe, id)).collect();
                    let outcome = sat::prove_faults(
                        self.design.netlist(),
                        input_bits,
                        &specs,
                        &sat::PruneConfig { max_conflicts: scfg.max_conflicts },
                    );
                    redundant_ids = top
                        .unresolved
                        .iter()
                        .zip(&outcome.verdicts)
                        .filter(|(_, (_, v))| matches!(v, sat::FaultVerdict::Redundant))
                        .map(|(&id, _)| id)
                        .collect();
                    let report = sat_report.as_mut().expect("sat stage ran before top-off");
                    report.candidates += specs.len();
                    report.redundant_proven += outcome.redundant;
                    report.detectable += outcome.detectable;
                    report.unknown += outcome.unknown;
                    report.witnesses_confirmed += outcome.witnesses_confirmed;
                    report.conflicts += outcome.stats.conflicts;
                    report.decisions += outcome.stats.decisions;
                    report.propagations += outcome.stats.propagations;
                }
            }
            let residue = faultsim::report::residue(self.design.netlist(), sim_universe, &result);
            let verdicts = residue
                .iter()
                .map(|rf| ResidueVerdict {
                    fault: rf.id.0,
                    node: rf.label.clone(),
                    cell: rf.cell,
                    line: format!("{:?}", rf.line),
                    stuck_one: rf.stuck_one,
                    verdict: if top.untestable.contains(&rf.id) {
                        "untestable"
                    } else if top.detected.contains(&rf.id) {
                        "detected"
                    } else if redundant_ids.contains(&rf.id) {
                        "redundant"
                    } else {
                        "unresolved"
                    }
                    .to_string(),
                })
                .collect();
            topoff_report = Some(TopOffReport {
                screened_untestable,
                residue: residue.len(),
                untestable: top.untestable.len(),
                detected: top.detected.len(),
                unresolved: top.unresolved.len() - redundant_ids.len(),
                redundant: redundant_ids.len(),
                seeds: top.plan.seeds.len(),
                seed_bits: top.plan.seed_bits(),
                stored_patterns: top.plan.stored.len(),
                stored_bits: top.plan.stored_bits(),
                total_vectors: top.plan.total_vectors(),
                block_len: top.plan.block_len,
                verdicts,
            });
        }

        // Expand representative verdicts over every class member. Each
        // fault's detection cycle and signature are intrinsic — the
        // representative of its equivalence class produced the same
        // faulty trace — so the expanded result matches an uncollapsed
        // run bit for bit.
        let result = match &class_map {
            Some(map) => result.expand_classes(map),
            None => result,
        };
        let aliased = result.aliased().len();

        let snapshot = registry.snapshot();
        if let Some(campaign) = config.metrics() {
            campaign.absorb(&snapshot);
        }

        let mut artifact = RunArtifact::new(self.design.name(), generator.name());
        artifact.vectors = result.total_cycles();
        artifact.threads = threads_used;
        artifact.total_faults = universe.len();
        artifact.detected = result.detected_count();
        artifact.missed = universe.len() - result.detected_count();
        artifact.coverage = result.coverage_after(result.total_cycles());
        artifact.missed_by_class = Self::missed_census(universe, &result);
        artifact.signature = signature;
        artifact.mode = config.response_check().as_str().to_string();
        artifact.aliased = aliased;
        artifact.response_store_words = match config.response_check() {
            // The materialized fault-free response trace.
            ResponseCheck::Trace => result.total_cycles() as u64,
            // One signature word per bit-sliced lane.
            ResponseCheck::Signature => 64,
        };
        artifact.stages = snapshot
            .spans
            .iter()
            .map(|s| StageTiming { name: s.name.clone(), millis: s.millis() })
            .collect();
        artifact.counters = snapshot.counters.into_iter().collect();
        artifact.lint = config.lint().to_vec();
        artifact.topoff = topoff_report;
        artifact.sat = sat_report;
        artifact.collapse = collapse_report;

        Ok(BistRun { generator: generator.name().to_string(), result, signature, artifact })
    }

    /// The SAT-encoder fault handle for one collapsed class of the
    /// session's own universe.
    fn fault_spec(&self, id: FaultId) -> sat::FaultSpec {
        Self::spec_for(&self.universe, id)
    }

    /// The SAT-encoder fault handle for one collapsed class of any
    /// universe over this design's netlist (class representatives are
    /// what the prover reasons about).
    fn spec_for(universe: &FaultUniverse, id: FaultId) -> sat::FaultSpec {
        let site = universe.site(id);
        sat::FaultSpec { node: site.node, cell: site.cell, fault: site.representative }
    }

    /// Flatten the structural-analysis census into the artifact's
    /// wire-format record.
    fn collapse_report(report: &structure::StructureReport) -> CollapseReport {
        CollapseReport {
            gates: report.gates,
            max_level: report.max_level,
            ffr_count: report.ffr_count,
            dominator_depth: report.dominator_depth,
            raw_lines: report.raw_lines,
            screened_faults: report.screened_faults,
            sites_before: report.sites_before,
            classes_after: report.classes_after,
            prime_classes: report.prime_classes,
            dominated_classes: report.merges.dominated_classes,
            reduction_vs_raw: report.reduction_vs_raw(),
            reduction_vs_sites: report.reduction_vs_sites(),
            scoap_max_cc0: report.scoap.max_cc0,
            scoap_max_cc1: report.scoap.max_cc1,
            scoap_max_co: report.scoap.max_co,
            scoap_unobservable_cells: report.scoap.unobservable_cells,
            scoap_co_histogram: report.scoap.co_histogram.clone(),
        }
    }

    /// Census of the missed faults by difficult-test class (paper
    /// Table 2): for each of T1/T2/T5/T6, how many missed fault classes
    /// are detectable by that cell-level test. A fault detectable by
    /// several difficult tests counts toward each.
    fn missed_census(universe: &FaultUniverse, result: &FaultSimResult) -> Vec<(String, usize)> {
        let mut counts = [0usize; 4];
        for fid in result.missed() {
            let tests = universe.site(fid).detecting_tests;
            for (slot, t) in crate::zones::DifficultTest::all().into_iter().enumerate() {
                if tests & (1u8 << t.number()) != 0 {
                    counts[slot] += 1;
                }
            }
        }
        crate::zones::DifficultTest::all()
            .into_iter()
            .zip(counts)
            .map(|(t, n)| (format!("T{}", t.number()), n))
            .collect()
    }
}

/// Outcome of one BIST experiment.
#[derive(Debug, Clone)]
pub struct BistRun {
    /// The generator's display name.
    pub generator: String,
    /// Per-fault detection results.
    pub result: FaultSimResult,
    /// Good-machine MISR signature of the full response.
    pub signature: u64,
    /// The structured end-of-run record: coverage, missed-fault census
    /// by difficult-test class, per-stage durations, engine counters.
    pub artifact: RunArtifact,
}

impl BistRun {
    /// Faults still missed at the end of the test — the paper's
    /// Table 4 cells.
    pub fn missed(&self) -> usize {
        self.result.missed().len()
    }

    /// Missed faults normalized by the design's adder/subtractor count
    /// — the paper's Table 5 cells.
    pub fn normalized_missed(&self, design: &FilterDesign) -> f64 {
        self.missed() as f64 / design.netlist().stats().arithmetic() as f64
    }

    /// Final fault coverage.
    pub fn coverage(&self) -> f64 {
        self.result.coverage_after(self.result.total_cycles())
    }

    /// Coverage curve at logarithmically spaced points — the series
    /// plotted in the paper's Figs. 10–13.
    pub fn coverage_curve(&self, points: usize) -> Vec<(u32, f64)> {
        let total = self.result.total_cycles().max(1);
        let cycles: Vec<u32> = (0..points)
            .map(|i| {
                let frac = (i + 1) as f64 / points as f64;
                ((total as f64).powf(frac)).round() as u32
            })
            .collect();
        self.result.curve(&cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpg::{Decorrelated, Lfsr1, MaxVariance, Ramp, ShiftDirection};

    fn small_design(cutoff: f64) -> FilterDesign {
        filters::FilterDesign::elaborate(filters::FilterSpec {
            name: "T".into(),
            band: dsp::firdesign::BandKind::Lowpass { cutoff },
            taps: 16,
            input_bits: 12,
            coef_frac_bits: 14,
            max_csd_digits: 3,
            width: 16,
            kaiser_beta: 4.0,
        })
        .unwrap()
    }

    /// A small folded (symmetric) design: its trimmed fold adder keeps
    /// enough statically-screenable faults for the SAT prune stage to
    /// have real candidates, while staying fast to prove.
    fn small_sym_design() -> FilterDesign {
        filters::FilterDesign::elaborate_full(
            filters::FilterSpec {
                name: "T-SYM".into(),
                band: dsp::firdesign::BandKind::Lowpass { cutoff: 0.15 },
                taps: 12,
                input_bits: 12,
                coef_frac_bits: 14,
                max_csd_digits: 3,
                width: 16,
                kaiser_beta: 4.0,
            },
            filters::ScalingPolicy::WorstCase,
            filters::Architecture::Symmetric,
        )
        .unwrap()
    }

    /// Per-fault detection outcomes keyed by fault-site identity, so
    /// runs over different universe subsets can be compared.
    fn verdicts_by_site(
        universe: &FaultUniverse,
        result: &FaultSimResult,
    ) -> std::collections::BTreeMap<String, Option<u32>> {
        universe
            .ids()
            .map(|id| {
                let site = universe.site(id);
                let key = format!("{:?}/{}/{:?}", site.node, site.cell, site.representative);
                (key, result.detection_cycles()[id.index()])
            })
            .collect()
    }

    #[test]
    fn session_enumerates_universe_once() {
        let d = small_design(0.1);
        let s = BistSession::new(&d).unwrap();
        assert!(s.universe().len() > 500, "universe {}", s.universe().len());
        assert!(s.universe().uncollapsed_len() > s.universe().len());
    }

    #[test]
    fn random_patterns_reach_high_coverage_on_easy_design() {
        let d = small_design(0.2);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).unwrap();
        let run = s.run(&mut gen, &RunConfig::new(512)).unwrap();
        assert!(run.coverage() > 0.9, "coverage {}", run.coverage());
        assert!(run.missed() < s.universe().len() / 10);
    }

    #[test]
    fn runs_are_reproducible() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let a = s.run(&mut gen, &RunConfig::new(128)).unwrap();
        let b = s.run(&mut gen, &RunConfig::new(128)).unwrap();
        assert_eq!(a.missed(), b.missed());
        assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let serial = s.run(&mut gen, &RunConfig::new(192).with_threads(1)).unwrap();
        for threads in [2usize, 4] {
            let sharded = s.run(&mut gen, &RunConfig::new(192).with_threads(threads)).unwrap();
            assert_eq!(
                serial.result.detection_cycles(),
                sharded.result.detection_cycles(),
                "threads = {threads}"
            );
            assert_eq!(serial.signature, sharded.signature);
        }
    }

    #[test]
    fn different_generators_give_different_signatures() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut a = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let mut b = Ramp::new(12).unwrap();
        let cfg = RunConfig::new(64);
        assert_ne!(s.run(&mut a, &cfg).unwrap().signature, s.run(&mut b, &cfg).unwrap().signature);
    }

    #[test]
    fn signature_mode_matches_trace_mode_verdicts() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let trace = s.run(&mut gen, &RunConfig::new(192)).unwrap();
        let signed = s
            .run(&mut gen, &RunConfig::new(192).with_response_check(ResponseCheck::Signature))
            .unwrap();
        // Same detected-fault set, cycle for cycle, and the same
        // good-machine signature — compaction changes what is stored,
        // not what is observed.
        assert_eq!(trace.result.detection_cycles(), signed.result.detection_cycles());
        assert_eq!(trace.signature, signed.signature);
        assert!(trace.result.signatures().is_none());
        let sigs = signed.result.signatures().expect("signature mode keeps per-fault signatures");
        assert_eq!(sigs.good, signed.signature);
        assert_eq!(signed.artifact.mode, "signature");
        assert_eq!(trace.artifact.mode, "trace");
        assert_eq!(trace.artifact.response_store_words, 192);
        assert_eq!(signed.artifact.response_store_words, 64);
        assert_eq!(signed.artifact.aliased, signed.result.aliased().len());
    }

    #[test]
    fn signature_mode_is_thread_and_schedule_invariant() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let base_cfg = RunConfig::new(160).with_response_check(ResponseCheck::Signature);
        let reference = s
            .run(
                &mut gen,
                &base_cfg
                    .clone()
                    .with_threads(1)
                    .with_schedule(StageSchedule::with_boundaries(vec![])),
            )
            .unwrap();
        for (threads, boundaries) in
            [(2usize, vec![16u32, 48]), (4, vec![1, 7, 100]), (8, vec![64])]
        {
            let run = s
                .run(
                    &mut gen,
                    &base_cfg
                        .clone()
                        .with_threads(threads)
                        .with_schedule(StageSchedule::with_boundaries(boundaries.clone())),
                )
                .unwrap();
            assert_eq!(run.signature, reference.signature, "threads {threads} {boundaries:?}");
            assert_eq!(
                run.result.signatures(),
                reference.result.signatures(),
                "threads {threads} {boundaries:?}"
            );
            assert_eq!(
                run.result.detection_cycles(),
                reference.result.detection_cycles(),
                "threads {threads} {boundaries:?}"
            );
        }
    }

    #[test]
    fn signature_mode_skips_the_trace_compaction_phase() {
        let d = small_design(0.2);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Ramp::new(12).unwrap();
        let trace = s.run(&mut gen, &RunConfig::new(64)).unwrap();
        let signed = s
            .run(&mut gen, &RunConfig::new(64).with_response_check(ResponseCheck::Signature))
            .unwrap();
        let has_phase =
            |run: &BistRun| run.artifact.stages.iter().any(|t| t.name == "session.signature");
        assert!(has_phase(&trace), "trace mode re-simulates the good response");
        assert!(!has_phase(&signed), "signature mode folds inside the fault simulator");
    }

    #[test]
    fn response_check_parses_and_displays_canonically() {
        assert_eq!(ResponseCheck::Trace.as_str(), "trace");
        assert_eq!(ResponseCheck::Signature.to_string(), "signature");
        assert_eq!(ResponseCheck::parse("trace"), Some(ResponseCheck::Trace));
        assert_eq!(ResponseCheck::parse("signature"), Some(ResponseCheck::Signature));
        assert_eq!(ResponseCheck::parse("Trace"), None);
        assert_eq!(ResponseCheck::default(), ResponseCheck::Trace);
    }

    #[test]
    fn misr_width_is_configurable_and_checked() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let narrow = s.run(&mut gen, &RunConfig::new(64).with_misr_width(12)).unwrap();
        let wide = s.run(&mut gen, &RunConfig::new(64).with_misr_width(16)).unwrap();
        assert!(narrow.signature < (1 << 12));
        assert_ne!(narrow.signature, wide.signature);
        // An untabulated width is a SessionError, not a panic.
        let err = s.run(&mut gen, &RunConfig::new(64).with_misr_width(63)).unwrap_err();
        assert!(matches!(err, SessionError::Tpg(_)), "{err}");
    }

    #[test]
    fn mismatched_generator_width_is_rejected() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(10, ShiftDirection::LsbToMsb).unwrap();
        let err = s.run(&mut gen, &RunConfig::new(64)).unwrap_err();
        assert!(matches!(err, SessionError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("10-bit"), "{err}");
    }

    #[test]
    fn maxvar_lags_on_lower_bits() {
        // LFSR-M misses more faults than LFSR-D at equal length (the
        // paper's consistent finding), even on an easy design.
        let d = small_design(0.2);
        let s = BistSession::new(&d).unwrap();
        let mut dcor = Decorrelated::maximal(12, ShiftDirection::LsbToMsb).unwrap();
        let mut maxv = MaxVariance::maximal(12).unwrap();
        let cfg = RunConfig::new(512);
        let run_d = s.run(&mut dcor, &cfg).unwrap();
        let run_m = s.run(&mut maxv, &cfg).unwrap();
        assert!(
            run_m.missed() > run_d.missed(),
            "LFSR-M {} vs LFSR-D {}",
            run_m.missed(),
            run_d.missed()
        );
    }

    #[test]
    fn curve_is_monotone() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let run = s.run(&mut gen, &RunConfig::new(256)).unwrap();
        let curve = run.coverage_curve(8);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        let norm = run.normalized_missed(&d);
        assert!(
            (norm - run.missed() as f64 / d.netlist().stats().arithmetic() as f64).abs() < 1e-12
        );
    }

    #[test]
    fn default_config_is_the_paper_test_length() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.vectors(), 4096);
        assert_eq!(cfg.misr_width(), 16);
        assert_eq!(cfg.threads(), 0);
        let cfg = cfg.with_vectors(128).with_schedule(StageSchedule::with_boundaries(vec![8]));
        assert_eq!(cfg.vectors(), 128);
        assert_eq!(cfg.schedule(), &StageSchedule::with_boundaries(vec![8]));
    }

    #[test]
    fn cancelled_token_aborts_the_run_as_a_session_error() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = s.run(&mut gen, &RunConfig::new(128).with_cancel(token)).unwrap_err();
        assert!(matches!(err, SessionError::Cancelled { deadline_exceeded: false }), "{err}");
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let token = CancelToken::new().with_deadline(std::time::Instant::now());
        let err = s.run(&mut gen, &RunConfig::new(128).with_cancel(token)).unwrap_err();
        assert!(matches!(err, SessionError::Cancelled { deadline_exceeded: true }), "{err}");
        assert!(err.to_string().contains("deadline"), "{err}");
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn unfired_token_leaves_results_bit_identical() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let plain = s.run(&mut gen, &RunConfig::new(128)).unwrap();
        let watched =
            s.run(&mut gen, &RunConfig::new(128).with_cancel(CancelToken::new())).unwrap();
        assert_eq!(plain.signature, watched.signature);
        assert_eq!(plain.result.detection_cycles(), watched.result.detection_cycles());
    }

    #[test]
    fn session_errors_display_their_source() {
        let e = SessionError::from(tpg::TpgError::ZeroSeed);
        assert!(e.to_string().contains("seed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = SessionError::InvalidConfig { reason: "nope".into() };
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn session_errors_chain_sources_for_every_wrapped_layer() {
        // Each lower-layer error must surface through source(), and the
        // chained cause's own message must match what Display embeds —
        // this is what lets artifact/error reporting render full causes.
        let cases: Vec<SessionError> = vec![
            tpg::TpgError::UnsupportedWidth { width: 99 }.into(),
            filters::FilterError::ScalingDiverged { l1: 2.5 }.into(),
            rtl::RtlError::InvalidWidth { width: 1 }.into(),
            dsp::DspError::NotPowerOfTwo { len: 3 }.into(),
        ];
        for e in cases {
            let source =
                std::error::Error::source(&e).unwrap_or_else(|| panic!("no source for {e}"));
            assert!(
                e.to_string().contains(&source.to_string()),
                "display '{e}' does not embed its cause '{source}'"
            );
            // One level is enough for these leaf errors; walking the
            // chain must terminate.
            let mut depth = 0;
            let mut cursor: Option<&(dyn std::error::Error + 'static)> = Some(source);
            while let Some(c) = cursor {
                depth += 1;
                assert!(depth < 10, "unbounded error chain");
                cursor = c.source();
            }
        }
    }

    #[test]
    fn run_attaches_a_complete_artifact() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let run = s.run(&mut gen, &RunConfig::new(256).with_threads(2)).unwrap();
        let a = &run.artifact;
        assert_eq!(a.design, "T");
        assert_eq!(a.generator, run.generator);
        assert_eq!(a.vectors, 256);
        assert_eq!(a.threads, 2);
        assert_eq!(a.total_faults, s.universe().len());
        assert_eq!(a.detected + a.missed, a.total_faults);
        assert_eq!(a.missed, run.missed());
        assert!((a.coverage - run.coverage()).abs() < 1e-12);
        assert_eq!(a.signature, run.signature);
        // The three session phases appear as stages, in pipeline order.
        let names: Vec<&str> = a.stages.iter().map(|st| st.name.as_str()).collect();
        let patterns = names.iter().position(|n| *n == "session.patterns").unwrap();
        let sim = names.iter().position(|n| *n == "session.fault_sim").unwrap();
        let sig = names.iter().position(|n| *n == "session.signature").unwrap();
        assert!(patterns < sim && sim < sig, "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("faultsim.stage")), "{names:?}");
        // Engine counters came along.
        let counters: std::collections::BTreeMap<_, _> = a.counters.iter().cloned().collect();
        assert_eq!(counters["faultsim.faults_detected"], a.detected as u64);
        assert_eq!(counters["faultsim.faults_undetected"], a.missed as u64);
        // The census covers only missed faults; every count is bounded.
        assert_eq!(a.missed_by_class.len(), 4);
        for (class, n) in &a.missed_by_class {
            assert!(class.starts_with('T'));
            assert!(*n <= a.missed, "{class} census {n} > missed {}", a.missed);
        }
        // The artifact renders to JSON and a human summary.
        assert!(a.to_json().to_json().contains("\"design\":\"T\""));
        assert!(a.summary().contains("coverage"));
    }

    #[test]
    fn run_attaches_lint_diagnostics_verbatim() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let diags = vec![obs::Diagnostic::new(
            "L201",
            obs::Severity::Error,
            obs::Location::Design,
            "predicted incompatibility",
        )];
        let linted = s.run(&mut gen, &RunConfig::new(64).with_lint(diags.clone())).unwrap();
        assert_eq!(linted.artifact.lint, diags);
        assert!(linted.artifact.to_json().to_json().contains("\"lint\":[{\"code\":\"L201\""));
        // Linting is observational: results stay bit-identical.
        let plain = s.run(&mut gen, &RunConfig::new(64)).unwrap();
        assert!(plain.artifact.lint.is_empty());
        assert_eq!(plain.signature, linted.signature);
    }

    #[test]
    fn campaign_registry_accumulates_across_runs() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let campaign = std::sync::Arc::new(obs::Registry::new());
        let cfg = RunConfig::new(64).with_threads(1).with_metrics(std::sync::Arc::clone(&campaign));
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let a = s.run(&mut gen, &cfg).unwrap();
        let b = s.run(&mut gen, &cfg).unwrap();
        // Metrics attached or not, results stay bit-identical.
        assert_eq!(a.signature, b.signature);
        let snap = campaign.snapshot();
        assert_eq!(
            snap.counters["faultsim.faults_detected"],
            (a.artifact.detected + b.artifact.detected) as u64
        );
        assert_eq!(snap.spans.iter().filter(|sp| sp.name == "session.fault_sim").count(), 2);
    }

    #[test]
    fn top_off_stage_partitions_the_residue_and_reports_the_plan() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let cfg = RunConfig::new(96).with_top_off(TopOffConfig { block_len: 64, max_seeds: 8 });
        let run = s.run(&mut gen, &cfg).unwrap();
        let a = &run.artifact;
        let t = a.topoff.as_ref().expect("the knob fills the report");
        // The screen shrinks (or keeps) the simulated universe; the
        // artifact counts faults over the testable universe.
        assert_eq!(a.total_faults + t.screened_untestable, s.universe().len());
        assert_eq!(a.detected + a.missed, a.total_faults);
        // Exact verdict partition over the residue, one verdict per
        // residual fault.
        assert_eq!(t.residue, a.missed);
        assert_eq!(t.detected + t.untestable + t.unresolved, t.residue);
        assert_eq!(t.verdicts.len(), t.residue);
        for v in &t.verdicts {
            assert!(
                matches!(v.verdict.as_str(), "detected" | "untestable" | "unresolved"),
                "{v:?}"
            );
            assert!(!v.node.is_empty());
        }
        // Storage accounting is consistent with the plan shape.
        assert_eq!(t.seed_bits, t.seeds * 12);
        assert_eq!(t.block_len, 64);
        // The stage ran under its own spans.
        let names: Vec<&str> = a.stages.iter().map(|st| st.name.as_str()).collect();
        assert!(names.contains(&"session.atpg_screen"), "{names:?}");
        assert!(names.contains(&"session.top_off"), "{names:?}");
        assert!(a.to_json().to_json().contains("\"topoff\":{\"screened_untestable\":"));
    }

    #[test]
    fn top_off_stage_is_thread_count_invariant() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let base = RunConfig::new(96).with_top_off(TopOffConfig { block_len: 64, max_seeds: 8 });
        let one = s.run(&mut gen, &base.clone().with_threads(1)).unwrap();
        let four = s.run(&mut gen, &base.with_threads(4)).unwrap();
        let (a, b) = (one.artifact.topoff.unwrap(), four.artifact.topoff.unwrap());
        assert_eq!(a, b, "top-off verdicts and plan must not depend on the worker count");
        assert_eq!(one.signature, four.signature);
    }

    #[test]
    fn sat_prune_removes_proven_redundant_faults_and_keeps_verdicts_identical() {
        let d = small_sym_design();
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let plain = s.run(&mut gen, &RunConfig::new(96).with_threads(1)).unwrap();
        let pruned = s
            .run(&mut gen, &RunConfig::new(96).with_threads(1).with_sat_prune(SatConfig::default()))
            .unwrap();
        let r = pruned.artifact.sat.as_ref().expect("the knob fills the report");
        // The screen finds real candidates on the folded design and
        // the prover machine-checks (a subset of) them redundant.
        assert!(r.candidates > 0, "{r:?}");
        assert!(r.redundant_proven > 0, "{r:?}");
        assert_eq!(r.universe_before, s.universe().len());
        assert_eq!(r.redundant_proven + r.detectable + r.unknown, r.candidates);
        // Every SAT witness replayed through the fault simulator.
        assert_eq!(r.witnesses_confirmed, r.detectable, "{r:?}");
        // The equivalence certificate was attempted and discharged.
        assert!(r.equiv_checked && r.equiv_proved, "{r:?}");
        assert!(r.equiv_lemmas > 0, "{r:?}");
        // Exactly the proven-redundant classes left the universe…
        assert_eq!(pruned.artifact.total_faults, s.universe().len() - r.redundant_proven);
        // …and every surviving fault keeps its exact verdict. The
        // pruned universe is re-derived through the same proof path the
        // session took (screen candidates → CDCL prover → keep list).
        let screen = atpg::untestable_faults(d.netlist(), s.universe(), 12);
        let specs: Vec<sat::FaultSpec> = screen.iter().map(|&id| s.fault_spec(id)).collect();
        let outcome = sat::prove_faults(
            d.netlist(),
            12,
            &specs,
            &sat::PruneConfig { max_conflicts: SatConfig::default().max_conflicts },
        );
        let keep: Vec<FaultId> = (0..s.universe().len() as u32)
            .map(FaultId)
            .filter(|id| {
                !screen
                    .iter()
                    .zip(&outcome.verdicts)
                    .any(|(&sid, (_, v))| sid == *id && matches!(v, sat::FaultVerdict::Redundant))
            })
            .collect();
        let pruned_universe = s.universe().subset(&keep);
        assert_eq!(pruned_universe.len(), pruned.artifact.total_faults);
        let before = verdicts_by_site(&s.universe, &plain.result);
        let after = verdicts_by_site(&pruned_universe, &pruned.result);
        for (site, verdict) in &after {
            assert_eq!(before.get(site), Some(verdict), "verdict changed at {site}");
        }
        // Pruned classes were all undetected in the unpruned run —
        // pruning redundant faults can only raise coverage, never hide
        // a detection.
        assert_eq!(before.len() - after.len(), r.redundant_proven);
        for (site, verdict) in &before {
            if !after.contains_key(site) {
                assert_eq!(*verdict, None, "a detected fault was pruned at {site}");
            }
        }
        let names: Vec<&str> = pruned.artifact.stages.iter().map(|st| st.name.as_str()).collect();
        assert!(names.contains(&"session.atpg_screen"), "{names:?}");
        assert!(names.contains(&"session.sat_prune"), "{names:?}");
        assert!(pruned.artifact.to_json().to_json().contains("\"sat\":{\"universe_before\":"));
    }

    #[test]
    fn sat_verdict_pass_keeps_the_topoff_partition_exact() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let cfg = RunConfig::new(96)
            .with_top_off(TopOffConfig { block_len: 64, max_seeds: 8 })
            .with_sat_prune(SatConfig { max_conflicts: 500, equiv: false });
        let run = s.run(&mut gen, &cfg).unwrap();
        let a = &run.artifact;
        let t = a.topoff.as_ref().expect("the knob fills the report");
        let r = a.sat.as_ref().expect("the knob fills the report");
        // The four-way partition is exact: every residual fault has
        // exactly one verdict and the counts add up.
        assert_eq!(t.residue, a.missed);
        assert_eq!(t.detected + t.untestable + t.unresolved + t.redundant, t.residue);
        assert_eq!(t.verdicts.len(), t.residue);
        let mut counted = [0usize; 4];
        for v in &t.verdicts {
            match v.verdict.as_str() {
                "detected" => counted[0] += 1,
                "untestable" => counted[1] += 1,
                "unresolved" => counted[2] += 1,
                "redundant" => counted[3] += 1,
                other => panic!("unknown verdict '{other}' in {v:?}"),
            }
        }
        assert_eq!(counted, [t.detected, t.untestable, t.unresolved, t.redundant]);
        // The equivalence certificate was not requested.
        assert!(!r.equiv_checked && !r.equiv_proved);
        // Witness replay stayed sound across both prover passes.
        assert_eq!(r.witnesses_confirmed, r.detectable, "{r:?}");
    }

    #[test]
    fn sat_stage_is_observational_for_surviving_faults() {
        // Without candidates to prune (the ripple design's universe is
        // already statically tight) the SAT stage must leave results
        // bit-identical to a plain run.
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let plain = s.run(&mut gen, &RunConfig::new(96)).unwrap();
        let sat = s
            .run(
                &mut gen,
                &RunConfig::new(96).with_sat_prune(SatConfig { max_conflicts: 1000, equiv: false }),
            )
            .unwrap();
        let r = sat.artifact.sat.as_ref().unwrap();
        assert_eq!(r.redundant_proven, 0, "{r:?}");
        assert_eq!(sat.signature, plain.signature);
        assert_eq!(sat.result.detection_cycles(), plain.result.detection_cycles());
    }

    #[test]
    fn runs_without_the_knob_carry_no_sat_report() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let run = s.run(&mut gen, &RunConfig::new(64)).unwrap();
        assert_eq!(run.artifact.sat, None);
        assert!(!run.artifact.to_json().to_json().contains("\"sat\""));
        let names: Vec<&str> = run.artifact.stages.iter().map(|st| st.name.as_str()).collect();
        assert!(!names.contains(&"session.sat_prune"), "{names:?}");
    }

    #[test]
    fn runs_without_the_knob_carry_no_topoff_report() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let run = s.run(&mut gen, &RunConfig::new(64)).unwrap();
        assert_eq!(run.artifact.topoff, None);
        assert!(!run.artifact.to_json().to_json().contains("topoff"));
        assert_eq!(run.artifact.total_faults, s.universe().len());
    }

    #[test]
    fn instrumentation_does_not_change_detection_results() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let plain = s.run(&mut gen, &RunConfig::new(128).with_threads(1)).unwrap();
        let campaign = std::sync::Arc::new(obs::Registry::new());
        let metered =
            s.run(&mut gen, &RunConfig::new(128).with_threads(4).with_metrics(campaign)).unwrap();
        assert_eq!(plain.result.detection_cycles(), metered.result.detection_cycles());
        assert_eq!(plain.signature, metered.signature);
    }

    #[test]
    fn collapsed_runs_are_byte_identical_in_trace_mode() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let plain = s.run(&mut gen, &RunConfig::new(128)).unwrap();
        let collapsed = s.run(&mut gen, &RunConfig::new(128).with_collapse(true)).unwrap();
        // The expanded result covers the *full* screened universe and
        // matches the uncollapsed run verdict for verdict.
        assert_eq!(plain.result.detection_cycles(), collapsed.result.detection_cycles());
        assert_eq!(plain.signature, collapsed.signature);
        assert_eq!(plain.artifact.total_faults, collapsed.artifact.total_faults);
        assert_eq!(plain.artifact.detected, collapsed.artifact.detected);
        assert_eq!(plain.artifact.missed_by_class, collapsed.artifact.missed_by_class);
        assert_eq!(plain.artifact.coverage, collapsed.artifact.coverage);
    }

    #[test]
    fn collapsed_runs_are_byte_identical_in_signature_mode() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let cfg = RunConfig::new(128).with_response_check(ResponseCheck::Signature);
        let plain = s.run(&mut gen, &cfg).unwrap();
        let collapsed = s.run(&mut gen, &cfg.clone().with_collapse(true)).unwrap();
        assert_eq!(plain.signature, collapsed.signature);
        assert_eq!(plain.result.detection_cycles(), collapsed.result.detection_cycles());
        // Per-fault end-of-test signatures expand back over every class
        // member, so the full SignatureSet — aliasing census included —
        // is preserved exactly.
        assert_eq!(plain.result.signatures(), collapsed.result.signatures());
        assert_eq!(plain.artifact.aliased, collapsed.artifact.aliased);
    }

    #[test]
    fn collapse_census_rides_the_artifact_only_with_the_knob() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let plain = s.run(&mut gen, &RunConfig::new(64)).unwrap();
        assert_eq!(plain.artifact.collapse, None);
        assert!(!plain.artifact.to_json().to_json().contains("\"collapse\""));

        let run = s.run(&mut gen, &RunConfig::new(64).with_collapse(true)).unwrap();
        let c = run.artifact.collapse.as_ref().expect("the knob fills the census");
        // The census is internally consistent and tied to this run's
        // universe: collapse really removed machines from the schedule.
        assert_eq!(c.sites_before, s.universe().len());
        assert!(c.classes_after < c.sites_before, "{c:?}");
        assert!(c.prime_classes <= c.classes_after);
        assert_eq!(c.classes_after - c.prime_classes, c.dominated_classes);
        assert!(c.raw_lines >= c.screened_faults, "{c:?}");
        assert!(c.reduction_vs_raw > 0.0 && c.reduction_vs_raw < 1.0);
        let names: Vec<&str> = run.artifact.stages.iter().map(|st| st.name.as_str()).collect();
        assert!(names.contains(&"session.structure"), "{names:?}");
        assert!(run.artifact.to_json().to_json().contains("\"collapse\":{\"gates\":"));
    }

    #[test]
    fn collapse_composes_with_topoff() {
        let d = small_design(0.15);
        let s = BistSession::new(&d).unwrap();
        let mut gen = Lfsr1::new(12, ShiftDirection::LsbToMsb).unwrap();
        let cfg = RunConfig::new(96).with_top_off(TopOffConfig { block_len: 64, max_seeds: 8 });
        let plain = s.run(&mut gen, &cfg).unwrap();
        let collapsed = s.run(&mut gen, &cfg.clone().with_collapse(true)).unwrap();
        // Detection verdicts still expand to the uncollapsed run.
        assert_eq!(plain.result.detection_cycles(), collapsed.result.detection_cycles());
        assert_eq!(plain.signature, collapsed.signature);
        let t = collapsed.artifact.topoff.as_ref().expect("the knob fills the report");
        // The top-off residue counts representative *classes*, while
        // the artifact's missed count covers the expanded universe, so
        // residue can only be smaller or equal.
        assert!(t.residue <= collapsed.artifact.missed, "{t:?}");
        assert_eq!(t.detected + t.untestable + t.unresolved + t.redundant, t.residue);
        assert_eq!(t.verdicts.len(), t.residue);
    }
}
