//! Generator selection: rank the standard BIST generators against a
//! filter design and recommend a test scheme.
//!
//! Implements the paper's selection guidance: prefer a generator that
//! puts substantial energy in the filter's passband; combine a
//! CUT-compatible generator with the maximum-variance mode (which
//! exercises upper bits and compensates for a Type 1 LFSR's
//! low-frequency rolloff) for coverage neither achieves alone
//! (Section 9).

use crate::compat::{classify, compatibility_ratio, paper_generator_spectra, Compatibility};
use crate::session::{BistRun, BistSession, RunConfig, SessionError};
use filters::FilterDesign;
use tpg::{ShiftDirection, TestGenerator};

/// One generator's rating against a design.
#[derive(Debug, Clone)]
pub struct GeneratorRating {
    /// Generator display name.
    pub name: String,
    /// Predicted output variance relative to an ideal white generator
    /// of the same word variance (1.0 = no spectral loss).
    pub ratio: f64,
    /// The paper's `+/±/−` classification.
    pub compatibility: Compatibility,
}

/// Rates the five paper generators against a design, best ratio first.
pub fn rate_generators(design: &FilterDesign, bins: usize) -> Vec<GeneratorRating> {
    let h = design.coefficients();
    let reference = tpg::spectra::flat(1.0 / 3.0, bins);
    let mut out: Vec<GeneratorRating> = paper_generator_spectra(bins)
        .into_iter()
        .map(|g| {
            let ratio = compatibility_ratio(&g.spectrum, &reference, &h);
            let compatibility = classify(
                crate::compat::output_variance(&g.spectrum, &h),
                crate::compat::output_variance(&reference, &h),
            );
            GeneratorRating { name: g.name, ratio, compatibility }
        })
        .collect();
    out.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    out
}

/// A recommended BIST scheme for a design.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The best *wide-band* single-mode generator (the normal-mode
    /// phase of the mixed scheme).
    pub primary: String,
    /// Whether to append a maximum-variance phase (the paper
    /// recommends it whenever upper-bit coverage matters — effectively
    /// always for conservatively scaled designs).
    pub add_max_variance_phase: bool,
    /// Full ranking for reference.
    pub ratings: Vec<GeneratorRating>,
}

/// Recommends a scheme: the best spectrum-compatible wide-band
/// generator, plus a maximum-variance phase.
///
/// The ramp and max-variance generators are excluded from the primary
/// role: the ramp cannot test mid/high bands and the max-variance mode
/// cannot test lower bits (its word bits are fully correlated), so the
/// primary must be an LFSR-class wide-band source.
pub fn recommend(design: &FilterDesign) -> Recommendation {
    let ratings = rate_generators(design, 512);
    let primary = ratings
        .iter()
        .filter(|r| matches!(r.name.as_str(), "LFSR-1" | "LFSR-2" | "LFSR-D"))
        .max_by(|a, b| a.ratio.total_cmp(&b.ratio))
        .map(|r| r.name.clone())
        .unwrap_or_else(|| "LFSR-D".to_string());
    Recommendation { primary, add_max_variance_phase: true, ratings }
}

/// A frequency inside the design's passband suitable for a tuned
/// (deterministic) test phase — the carrier of [`tuned_sweep_for`].
pub fn tuned_frequency(design: &FilterDesign) -> f64 {
    use dsp::firdesign::BandKind;
    match design.spec().band {
        BandKind::Lowpass { cutoff } => cutoff * 0.5,
        BandKind::Highpass { cutoff } => (cutoff + 0.5) * 0.5,
        BandKind::Bandpass { low, high } => 0.5 * (low + high),
        BandKind::Bandstop { low, .. } => (low * 0.5).max(0.01),
        _ => 0.25,
    }
}

/// Builds the deterministic tuned phase the paper's conclusion proposes
/// ("more specialized test controllers ... tailored to the specific
/// filter"): an amplitude-stepped passband sine (see
/// [`tpg::ZoneSweep`]) that walks every tap's partial sum through the
/// difficult-test activation zones.
///
/// # Errors
///
/// Returns [`SessionError::Tpg`] for an unsupported generator width.
pub fn tuned_sweep_for(design: &FilterDesign) -> Result<tpg::ZoneSweep, SessionError> {
    Ok(tpg::ZoneSweep::new(design.spec().input_bits, tuned_frequency(design), 32, 64)?)
}

/// Builds the concrete generator for a [`Recommendation`]: the primary
/// wide-band source, switched to maximum-variance mode halfway through
/// `vectors` when the recommendation includes the mixed phase.
///
/// # Errors
///
/// Returns [`SessionError::Tpg`] when the design's input width has no
/// tabulated LFSR polynomial.
pub fn recommended_generator(
    design: &FilterDesign,
    rec: &Recommendation,
    vectors: usize,
) -> Result<Box<dyn TestGenerator>, SessionError> {
    let width = design.spec().input_bits;
    let primary: Box<dyn TestGenerator> = match rec.primary.as_str() {
        "LFSR-1" => Box::new(tpg::Lfsr1::new(width, ShiftDirection::LsbToMsb)?),
        "LFSR-2" => Box::new(tpg::Lfsr2::new(width, tpg::polynomials::PAPER_TYPE2_POLY)?),
        _ => Box::new(tpg::Decorrelated::maximal(width, ShiftDirection::LsbToMsb)?),
    };
    if !rec.add_max_variance_phase {
        return Ok(primary);
    }
    let maxvar = Box::new(tpg::MaxVariance::maximal(width)?);
    Ok(Box::new(tpg::Mixed::new(primary, maxvar, (vectors / 2) as u64)?))
}

/// One-call evaluation of the paper's selection guidance: rate the
/// generators, build the recommended (mixed) scheme, and fault-simulate
/// it through the session API.
///
/// # Errors
///
/// Propagates [`SessionError`] from generator construction and
/// [`BistSession::run`].
pub fn run_recommended(
    session: &BistSession,
    config: &RunConfig,
) -> Result<(Recommendation, BistRun), SessionError> {
    let rec = recommend(session.design());
    let mut gen = recommended_generator(session.design(), &rec, config.vectors())?;
    let run = session.run(&mut *gen, config)?;
    Ok((rec, run))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_frequency_sits_in_the_passband() {
        let lp = filters::designs::lowpass().unwrap();
        let f = tuned_frequency(&lp);
        let gain = dsp::response::magnitude_at(&lp.coefficients(), f);
        let peak = dsp::response::magnitude_at(&lp.coefficients(), 0.0);
        assert!(gain > 0.7 * peak, "tuned frequency outside passband: {f}");

        let hp = filters::designs::highpass().unwrap();
        let f = tuned_frequency(&hp);
        let gain = dsp::response::magnitude_at(&hp.coefficients(), f);
        let peak = dsp::response::magnitude_at(&hp.coefficients(), 0.49);
        assert!(gain > 0.7 * peak, "tuned frequency outside passband: {f}");
    }

    #[test]
    fn tuned_sweep_builds_for_all_paper_designs() {
        for d in filters::designs::paper_designs().unwrap() {
            let mut gen = tuned_sweep_for(&d).unwrap();
            use tpg::TestGenerator;
            assert_eq!(gen.width(), 12);
            gen.next_word();
        }
    }

    #[test]
    fn lowpass_rejects_lfsr1_as_primary() {
        let d = filters::designs::lowpass().unwrap();
        let rec = recommend(&d);
        assert_ne!(rec.primary, "LFSR-1");
        assert!(rec.add_max_variance_phase);
        // LFSR-1 is rated Poor against the narrowband lowpass.
        let lfsr1 = rec.ratings.iter().find(|r| r.name == "LFSR-1").unwrap();
        assert_eq!(lfsr1.compatibility, Compatibility::Poor);
    }

    #[test]
    fn highpass_accepts_lfsr_class_primaries() {
        let d = filters::designs::highpass().unwrap();
        let ratings = rate_generators(&d, 512);
        let get = |n: &str| ratings.iter().find(|r| r.name == n).unwrap().compatibility;
        assert_eq!(get("LFSR-1"), Compatibility::Good);
        assert_eq!(get("LFSR-D"), Compatibility::Good);
        assert_eq!(get("Ramp"), Compatibility::Poor);
    }

    #[test]
    fn ratings_are_sorted_descending() {
        let d = filters::designs::bandpass().unwrap();
        let ratings = rate_generators(&d, 256);
        for w in ratings.windows(2) {
            assert!(w[0].ratio >= w[1].ratio);
        }
        assert_eq!(ratings.len(), 5);
    }

    #[test]
    fn ramp_never_recommended_as_primary() {
        for d in filters::designs::paper_designs().unwrap() {
            let rec = recommend(&d);
            assert_ne!(rec.primary, "Ramp", "{}", d.name());
            assert_ne!(rec.primary, "LFSR-M", "{}", d.name());
        }
    }

    #[test]
    fn recommended_scheme_runs_through_the_session_api() {
        let d = filters::FilterDesign::elaborate(filters::FilterSpec {
            name: "sel".into(),
            band: dsp::firdesign::BandKind::Lowpass { cutoff: 0.15 },
            taps: 14,
            input_bits: 12,
            coef_frac_bits: 14,
            max_csd_digits: 3,
            width: 16,
            kaiser_beta: 4.0,
        })
        .unwrap();
        let session = BistSession::new(&d).unwrap();
        let (rec, run) = run_recommended(&session, &RunConfig::new(256)).unwrap();
        assert_ne!(rec.primary, "Ramp");
        // The mixed name records both phases.
        assert!(run.generator.contains('/'), "generator {}", run.generator);
        assert!(run.coverage() > 0.8, "coverage {}", run.coverage());
    }
}
