//! The load-bearing property of structural fault collapsing: a session
//! run with `collapse` on must be *byte-identical* to the plain run
//! over the full screened universe — same per-fault detection cycles,
//! same per-fault MISR signatures, same good signature, same coverage —
//! on every built-in filter in both response-check modes.
//!
//! The deterministic roster sweep below always runs. The randomized
//! (property-based) variant needs the `proptest` crate and is gated
//! behind the off-by-default `proptest` feature so the workspace
//! builds offline; see the workspace `Cargo.toml` for how to re-enable
//! it.

use bist_core::campaign::build_generator;
use bist_core::session::{BistRun, BistSession, ResponseCheck, RunConfig};
use filters::FilterDesign;

/// The satellite roster: the paper's three filters plus the gated mini
/// variant.
fn roster() -> Vec<FilterDesign> {
    let mut designs = filters::designs::paper_designs().expect("paper designs elaborate");
    designs.push(filters::designs::lowpass_mini().expect("LP-MINI elaborates"));
    designs
}

fn run(design: &FilterDesign, gen_name: &str, config: &RunConfig) -> BistRun {
    let session = BistSession::new(design).expect("session");
    let mut gen = build_generator(gen_name).expect("registry generator");
    session.run(&mut *gen, config).expect("12-bit roster runs")
}

/// Asserts the full byte-identity contract between a plain and a
/// collapsed run of the same cell.
fn assert_identical(plain: &BistRun, collapsed: &BistRun, cell: &str) {
    assert_eq!(
        plain.result.detection_cycles(),
        collapsed.result.detection_cycles(),
        "detection map diverged: {cell}"
    );
    assert_eq!(
        plain.result.signatures(),
        collapsed.result.signatures(),
        "per-fault signatures diverged: {cell}"
    );
    assert_eq!(plain.signature, collapsed.signature, "good signature diverged: {cell}");
    assert_eq!(plain.artifact.coverage, collapsed.artifact.coverage, "coverage: {cell}");
    assert_eq!(plain.artifact.detected, collapsed.artifact.detected, "detected: {cell}");
    assert_eq!(plain.artifact.missed, collapsed.artifact.missed, "missed: {cell}");
    assert_eq!(
        plain.artifact.total_faults, collapsed.artifact.total_faults,
        "universe size: {cell}"
    );
    assert_eq!(
        plain.artifact.missed_by_class, collapsed.artifact.missed_by_class,
        "difficult-test census: {cell}"
    );
}

#[test]
fn collapsed_runs_are_byte_identical_across_the_roster() {
    for design in &roster() {
        for mode in [ResponseCheck::Trace, ResponseCheck::Signature] {
            let config = RunConfig::new(192).with_response_check(mode);
            let plain = run(design, "LFSR-D", &config);
            let collapsed = run(design, "LFSR-D", &config.with_collapse(true));
            let cell = format!("{} x LFSR-D ({mode:?})", design.name());
            assert_identical(&plain, &collapsed, &cell);
            assert!(plain.artifact.collapse.is_none(), "plain runs carry no census: {cell}");
            let census =
                collapsed.artifact.collapse.as_ref().expect("collapse runs attach their census");
            assert!(
                census.classes_after < census.sites_before,
                "collapsing must shrink the simulated universe: {cell}"
            );
        }
    }
}

#[cfg(feature = "proptest")]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// The roster is immutable; elaborate it once across all cases.
    fn shared_roster() -> &'static [FilterDesign] {
        static ROSTER: OnceLock<Vec<FilterDesign>> = OnceLock::new();
        ROSTER.get_or_init(roster)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn collapse_identity_holds_for_arbitrary_cells(
            design_idx in 0usize..4,
            gen_idx in 0usize..4,
            vectors in 16usize..160,
            threads in 1usize..4,
            signature_mode in proptest::bool::ANY,
        ) {
            let design = &shared_roster()[design_idx];
            let gen_name = ["LFSR-1", "LFSR-D", "LFSR-M", "Ramp"][gen_idx];
            let mode = if signature_mode {
                ResponseCheck::Signature
            } else {
                ResponseCheck::Trace
            };
            let config = RunConfig::new(vectors)
                .with_threads(threads)
                .with_response_check(mode);
            let plain = run(design, gen_name, &config);
            let collapsed = run(design, gen_name, &config.with_collapse(true));
            let cell = format!(
                "{} x {gen_name} @{vectors} ({mode:?}, {threads} thread(s))",
                design.name()
            );
            assert_identical(&plain, &collapsed, &cell);
        }
    }
}
