//! `L0xx` — the shared dataflow pass.
//!
//! Re-exposes the netlist-level analyses (interval/granularity from
//! `rtl::range`, input-cone reachability from `rtl::reachability`) as
//! structured diagnostics:
//!
//! * `L001` *info* — redundant sign bits: cells above an adder's active
//!   span, guaranteed untestable headroom (the paper's "redundant sign
//!   bits" of conservatively scaled designs).
//! * `L002` *info* — hardwired-zero cells: cells below the active span,
//!   structurally zero because of input granularity (the left-aligned
//!   12-bit input in a 16-bit path).
//! * `L003` *info* — provably-redundant fault sites *inside* the active
//!   span: full-adder fault classes none of whose detecting input
//!   combinations is reachable from the input cone.
//! * `L004` *warn* — a degenerate adder whose active span is empty
//!   (provably constant); every fault on it is redundant.

use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};
use rtl::fulladder::fault_classes;
use rtl::reachability::Reachability;
use rtl::{Netlist, NodeId};

/// The node's label, falling back to its id (`nNN`) when unnamed.
pub(crate) fn label_of(netlist: &Netlist, id: NodeId) -> String {
    let label = &netlist.node(id).label;
    if label.is_empty() {
        id.to_string()
    } else {
        label.clone()
    }
}

/// Runs the dataflow pass over every arithmetic node, in node order.
pub fn lint_netlist(design: &FilterDesign) -> Vec<Diagnostic> {
    let netlist = design.netlist();
    let ranges = design.claimed_ranges();
    let reach = Reachability::analyze(netlist, design.spec().input_bits);
    let classes = fault_classes(None);
    let width = netlist.width();

    let mut out = Vec::new();
    for id in netlist.arithmetic_ids() {
        let label = label_of(netlist, id);
        let Some((lsb, msb)) = ranges.active_span(netlist, id) else {
            out.push(Diagnostic::new(
                "L004",
                Severity::Warn,
                Location::Node { label, cell: None },
                "adder is provably constant: its active cell span is empty, \
                 so every fault on it is redundant",
            ));
            continue;
        };
        let headroom = width - 1 - msb;
        if headroom > 0 {
            let (lo, hi) = ranges.value_range(id);
            out.push(Diagnostic::new(
                "L001",
                Severity::Info,
                Location::Node { label: label.clone(), cell: Some(msb + 1) },
                format!(
                    "{headroom} redundant sign bit(s): value range [{lo:.4}, {hi:.4}] \
                     never exercises cells {} and above",
                    msb + 1
                ),
            ));
        }
        if lsb > 0 {
            out.push(Diagnostic::new(
                "L002",
                Severity::Info,
                Location::Node { label: label.clone(), cell: Some(0) },
                format!("{lsb} low cell(s) hardwired to zero by input granularity"),
            ));
        }
        let candidates = classes.len() * (msb - lsb + 1) as usize;
        let redundant: usize = (lsb..=msb)
            .map(|cell| {
                let mask = reach.combo_mask(id, cell);
                classes.iter().filter(|c| c.detecting_tests & mask == 0).count()
            })
            .sum();
        if redundant > 0 {
            out.push(Diagnostic::new(
                "L003",
                Severity::Info,
                Location::Node { label, cell: None },
                format!(
                    "{redundant} of {candidates} in-span fault classes are provably \
                     redundant: no reachable input combination detects them"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_lowpass_reports_headroom_granularity_and_reachability() {
        let d = filters::designs::lowpass_mini().unwrap();
        let diags = lint_netlist(&d);
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        // A conservatively scaled design has redundant sign bits.
        assert!(codes.contains(&"L001"), "{codes:?}");
        // The CSD shift structure leaves unreachable combinations.
        assert!(codes.contains(&"L003"), "{codes:?}");
        // Nothing in a real design is constant, and the pass is info-only.
        assert!(diags.iter().all(|d| d.code != "L004"));
        assert!(diags.iter().all(|d| d.severity == Severity::Info));
        // Every finding points at a node.
        assert!(diags.iter().all(|d| matches!(d.location, Location::Node { .. })));
    }

    #[test]
    fn symmetric_design_reports_hardwired_zero_cells() {
        // LP-SYM's symmetric pre-adders sum two unshifted input words,
        // so the left-aligned 12-bit input's low zero cells survive to
        // the adder and L002 fires; the CSD designs consume them in
        // their shift network.
        let d = filters::designs::lowpass_symmetric().unwrap();
        let diags = lint_netlist(&d);
        let l002: Vec<_> = diags.iter().filter(|x| x.code == "L002").collect();
        assert!(!l002.is_empty());
        assert!(l002.iter().all(|x| x.severity == Severity::Info
            && matches!(x.location, Location::Node { cell: Some(0), .. })));
    }

    #[test]
    fn pass_is_deterministic() {
        let d = filters::designs::lowpass_mini().unwrap();
        assert_eq!(lint_netlist(&d), lint_netlist(&d));
    }

    #[test]
    fn degenerate_constant_adder_is_flagged_l004() {
        // An adder of two constant zeros has an empty active span: its
        // operands' granularity covers the whole word and its value
        // range is the single point zero.
        let mut b = rtl::NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let z0 = b.constant(0);
        let dead = b.add_labeled(z0, z0, "dead");
        let live = b.add_labeled(x, x, "live");
        let merged = b.add(dead, live);
        b.output(merged, "y");
        let netlist = b.finish().unwrap();
        let ranges =
            rtl::range::RangeAnalysis::analyze(&netlist, rtl::range::aligned_input_range(12, 16));
        // Drive the lint internals directly at the netlist level via a
        // minimal design-like harness: reuse active_span semantics.
        assert_eq!(ranges.active_span(&netlist, dead), None);
        assert!(ranges.active_span(&netlist, live).is_some());
    }

    #[test]
    fn unnamed_nodes_fall_back_to_their_id() {
        let mut b = rtl::NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let s = b.add(x, x);
        b.output(s, "y");
        let n = b.finish().unwrap();
        assert_eq!(label_of(&n, s), format!("{s}"));
        assert_eq!(label_of(&n, x), "x");
    }
}
