//! `L5xx` — top-off stage lints.
//!
//! Static checks on the deterministic top-off knobs of a campaign
//! spec, emitted only when the stage is enabled (specs without
//! `topoff` produce no `L5xx` diagnostics at all):
//!
//! * `L501` *info* — the stage is enabled: records the reseeding knobs
//!   and that coverage will be reported over the testable universe
//!   (statically-proven-untestable faults removed before simulation).
//! * `L502` *warn* — seed blocks shorter than twice the design's
//!   register pipeline: a reseeded block may end before the faults it
//!   targets propagate to the output, pushing justified faults into
//!   the raw stored-pattern fallback.
//! * `L503` *warn* — `max_seeds` is zero: no reseeding is attempted,
//!   every justified pattern is stored raw and the plan degenerates to
//!   classic stored-pattern top-off.

use bist_core::campaign::CampaignSpec;
use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};

/// Runs the top-off pass. No-op for specs without the stage.
pub fn lint_topoff(design: &FilterDesign, spec: &CampaignSpec) -> Vec<Diagnostic> {
    let Some(cfg) = &spec.topoff else {
        return Vec::new();
    };
    let mut out = vec![Diagnostic::new(
        "L501",
        Severity::Info,
        Location::Field { name: "topoff".into() },
        format!(
            "deterministic top-off enabled (block_len {}, max_seeds {}): \
             provably-untestable faults are screened out before simulation and \
             the campaign residue is justified, compressed and re-verified",
            cfg.block_len, cfg.max_seeds
        ),
    )];
    let registers = design.netlist().stats().registers as usize;
    if (cfg.block_len as usize) < 2 * registers {
        out.push(Diagnostic::new(
            "L502",
            Severity::Warn,
            Location::Field { name: "topoff".into() },
            format!(
                "seed block of {} vectors barely flushes the {registers}-register \
                 pipeline (want at least {}): reseeded blocks may end before their \
                 target faults reach the output, forcing raw stored patterns",
                cfg.block_len,
                2 * registers
            ),
        ));
    }
    if cfg.max_seeds == 0 {
        out.push(Diagnostic::new(
            "L503",
            Severity::Warn,
            Location::Field { name: "topoff".into() },
            "max_seeds is 0: no LFSR reseeding is attempted, every justified \
             pattern is stored raw (classic stored-pattern top-off)"
                .to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_core::TopOffConfig;

    fn mini() -> FilterDesign {
        filters::designs::lowpass_mini().unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<String> {
        diags.iter().map(|d| d.code.clone()).collect()
    }

    #[test]
    fn specs_without_the_stage_emit_nothing() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        assert!(lint_topoff(&d, &spec).is_empty());
    }

    #[test]
    fn enabled_stage_is_an_info_and_sane_knobs_stay_clean() {
        let d = mini();
        let spec =
            CampaignSpec::new("LP-MINI", "LFSR-D", 4096).with_topoff(TopOffConfig::default());
        let diags = lint_topoff(&d, &spec);
        assert_eq!(codes(&diags), ["L501"]);
        assert_eq!(diags[0].severity, Severity::Info);
    }

    #[test]
    fn short_blocks_and_zero_seeds_warn() {
        let d = mini();
        let registers = d.netlist().stats().registers;
        let short = CampaignSpec::new("LP-MINI", "LFSR-D", 4096)
            .with_topoff(TopOffConfig { block_len: 1, max_seeds: 8 });
        let diags = lint_topoff(&d, &short);
        assert_eq!(codes(&diags), ["L501", "L502"]);
        assert!(diags[1].message.contains(&format!("{registers}-register")), "{}", diags[1]);
        let degenerate = CampaignSpec::new("LP-MINI", "LFSR-D", 4096)
            .with_topoff(TopOffConfig { block_len: 256, max_seeds: 0 });
        assert_eq!(codes(&lint_topoff(&d, &degenerate)), ["L501", "L503"]);
    }
}
