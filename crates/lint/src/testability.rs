//! `L1xx` — testability predictors.
//!
//! The paper's Section 7.1 variance analysis, recast as lints: an adder
//! whose predicted test-signal deviation is small relative to its MSB
//! cell weight will rarely activate the difficult tests T1/T2/T5/T6 in
//! its upper cells, so its faults are the ones random-pattern BIST
//! misses.
//!
//! * `L101` *warn* — excess headroom: the adder is under-utilized even
//!   under an ideal white source of word variance 1/3 (a scaling
//!   artifact, generator-independent).
//! * `L102` *warn* — variance mismatch: a spectrally shaped generator
//!   (the Type 1 LFSR) attenuates the adder's test signal well below
//!   what a white source would deliver — the paper's tap-20 case.

use bist_core::variance::{analyze_design, NodeVariance, SourceModel};
use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};
use tpg::ShiftDirection;

/// `L101` fires when MSB utilization under the ideal white source falls
/// below this.
pub const HEADROOM_UTILIZATION: f64 = 0.125;

/// `L102` fires when MSB utilization under the generator's shaped model
/// falls below this...
pub const MISMATCH_UTILIZATION: f64 = 0.15;

/// ...and is degraded to below this fraction of the white-source
/// utilization (so the starvation is attributable to the generator,
/// not to scaling alone).
pub const MISMATCH_DEGRADATION: f64 = 0.6;

/// The white reference source: word variance 1/3 (a uniform full-range
/// word, the LFSR-D model).
fn white() -> SourceModel {
    SourceModel::White { variance: 1.0 / 3.0 }
}

/// The linear shaping model of a generator, when its words are
/// spectrally shaped enough for Eq. 1 to predict per-adder attenuation.
/// Only the Type 1 LFSR has one; the decorrelated/max-variance/ideal
/// generators are modeled as white, and the mixed scheme's
/// max-variance tail is specifically there to re-exercise upper cells.
fn shaped_model_for(generator: &str) -> Option<Vec<f64>> {
    match generator {
        "LFSR-1" => Some(tpg::model::lfsr1_model(12, ShiftDirection::LsbToMsb)),
        _ => None,
    }
}

fn node_location(r: &NodeVariance) -> Location {
    Location::Node {
        label: if r.label.is_empty() { r.node.to_string() } else { r.label.clone() },
        cell: r.msb_cell,
    }
}

/// `L101`: adders under-utilized even by an ideal white source.
pub fn lint_headroom(design: &FilterDesign) -> Vec<Diagnostic> {
    analyze_design(design, &white())
        .iter()
        .filter(|r| r.msb_utilization.is_some_and(|u| u < HEADROOM_UTILIZATION))
        .map(|r| {
            Diagnostic::new(
                "L101",
                Severity::Warn,
                node_location(r),
                format!(
                    "excess headroom: white-source std-dev {:.4} is only {:.3} of the \
                     MSB cell weight; upper-cell T1/T2/T5/T6 tests are predicted \
                     hard to activate",
                    r.std_dev,
                    r.msb_utilization.unwrap_or(0.0)
                ),
            )
        })
        .collect()
}

/// `L102`: adders a shaped generator starves relative to white.
pub fn lint_variance_mismatch(design: &FilterDesign, generator: &str) -> Vec<Diagnostic> {
    let Some(model) = shaped_model_for(generator) else {
        return Vec::new();
    };
    let white_report = analyze_design(design, &white());
    let shaped_report = analyze_design(design, &SourceModel::Shaped { model });
    shaped_report
        .iter()
        .zip(&white_report)
        .filter(|(s, w)| match (s.msb_utilization, w.msb_utilization) {
            (Some(su), Some(wu)) => su < MISMATCH_UTILIZATION && su < MISMATCH_DEGRADATION * wu,
            _ => false,
        })
        .map(|(s, w)| {
            Diagnostic::new(
                "L102",
                Severity::Warn,
                node_location(s),
                format!(
                    "variance mismatch under {generator}: std-dev drops from {:.4} \
                     (white) to {:.4}, MSB utilization {:.3}; predicted \
                     T1/T2/T5/T6 hot spot",
                    w.std_dev,
                    s.std_dev,
                    s.msb_utilization.unwrap_or(0.0)
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr1_starves_lowpass_accumulators_but_lfsrd_does_not() {
        let d = filters::designs::lowpass().unwrap();
        let mismatched = lint_variance_mismatch(&d, "LFSR-1");
        assert!(!mismatched.is_empty(), "no L102 on LP under LFSR-1");
        assert!(mismatched.iter().all(|x| x.code == "L102" && x.severity == Severity::Warn));
        // The flagged nodes include mid-chain accumulators (the paper's
        // tap-20 neighborhood).
        assert!(
            mismatched.iter().any(|x| matches!(
                &x.location,
                Location::Node { label, .. } if label.contains(".acc")
            )),
            "{mismatched:?}"
        );
        // White-equivalent generators produce no mismatch lints.
        for gen in ["LFSR-D", "LFSR-M", "Ideal", "Mixed@2048"] {
            assert!(lint_variance_mismatch(&d, gen).is_empty(), "{gen}");
        }
    }

    #[test]
    fn headroom_pass_is_deterministic_and_warn_only() {
        let d = filters::designs::lowpass_mini().unwrap();
        let a = lint_headroom(&d);
        let b = lint_headroom(&d);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.code == "L101" && x.severity == Severity::Warn));
    }
}
