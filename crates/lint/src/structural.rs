//! `L7xx` — structural-analysis lints.
//!
//! Previews the collapse stage statically and cross-validates the
//! `L1xx` testability *heuristics* against SCOAP-*exact* observability
//! ranks. Emitted only when the spec enables structural collapsing
//! (specs without `collapse` produce no `L7xx` diagnostics at all):
//!
//! * `L701` *info* — collapse census: raw stuck-at lines, screened
//!   sites, equivalence classes, prime (non-dominated) classes and the
//!   raw-universe reduction ratio the stage will achieve at run time.
//! * `L702` *info* — SCOAP summary (worst controllability and
//!   observability over the cell sum gates) plus an agreement census:
//!   how many of the SCOAP-hardest-to-observe nodes the `L1xx`
//!   predictors already flagged.
//! * `L703` *warn* — a node in the SCOAP-hardest tier was flagged by
//!   *no* `L1xx` pass: the variance predictors disagree with the exact
//!   dataflow ranks there, so its faults may be harder than predicted.

use std::collections::BTreeSet;

use bist_core::campaign::CampaignSpec;
use bist_core::BistSession;
use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};
use structure::SCOAP_INF;

use crate::testability;

/// How many of the hardest-to-observe nodes the cross-validation
/// compares against the `L1xx` labels. Small and fixed so the pass
/// stays deterministic and the warning volume bounded.
const HARDEST_TIER: usize = 3;

/// Runs the structural-analysis pass. No-op for specs without the
/// collapse stage.
pub fn lint_structure(design: &FilterDesign, spec: &CampaignSpec) -> Vec<Diagnostic> {
    if !spec.collapse {
        return Vec::new();
    }
    // Elaboration problems are the spec passes' findings, not ours.
    let Ok(session) = BistSession::new(design) else {
        return Vec::new();
    };
    let netlist = design.netlist();
    let analysis = structure::analyze(netlist, session.universe());
    let r = &analysis.report;
    let mut out = vec![Diagnostic::new(
        "L701",
        Severity::Info,
        Location::Field { name: "collapse".into() },
        format!(
            "structural collapse enabled: {} raw stuck-at line(s) -> {} screened \
             site(s) -> {} equivalence class(es) ({} prime after the dominance \
             census); the run will simulate {:.1}% fewer machines than the raw \
             universe",
            r.raw_lines,
            r.sites_before,
            r.classes_after,
            r.prime_classes,
            100.0 * r.reduction_vs_raw()
        ),
    )];

    // Node labels the L1xx predictors flagged for this pairing.
    let flagged: BTreeSet<String> = testability::lint_headroom(design)
        .into_iter()
        .chain(testability::lint_variance_mismatch(design, &spec.generator))
        .filter_map(|d| match d.location {
            Location::Node { label, .. } => Some(label),
            _ => None,
        })
        .collect();

    // The SCOAP-hardest tier: the nodes whose worst cell observability
    // ranks highest (hardest to observe), ties broken by node id for
    // determinism. Unobservable cells are screened away upstream, so
    // they are excluded from the rank.
    let mut ranked: Vec<(rtl::NodeId, u32)> = analysis
        .worst_node_observability(netlist)
        .into_iter()
        .filter(|&(_, co)| co > 0 && co < SCOAP_INF)
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
    ranked.truncate(HARDEST_TIER);

    let label_of = |id: rtl::NodeId| {
        let label = &netlist.node(id).label;
        if label.is_empty() {
            id.to_string()
        } else {
            label.clone()
        }
    };
    let agreed = ranked.iter().filter(|&&(id, _)| flagged.contains(&label_of(id))).count();
    out.push(Diagnostic::new(
        "L702",
        Severity::Info,
        Location::Field { name: "collapse".into() },
        format!(
            "SCOAP ranks (cell sum gates): worst CC0 {}, worst CC1 {}, worst \
             observability {}; {agreed} of the {} hardest-to-observe node(s) \
             also flagged by the L1xx predictors",
            r.scoap.max_cc0,
            r.scoap.max_cc1,
            r.scoap.max_co,
            ranked.len()
        ),
    ));
    for (id, co) in ranked {
        let label = label_of(id);
        if flagged.contains(&label) {
            continue;
        }
        out.push(Diagnostic::new(
            "L703",
            Severity::Warn,
            Location::Node { label, cell: None },
            format!(
                "SCOAP ranks this node among the {HARDEST_TIER} hardest to observe \
                 (observability {co}) but no L1xx pass flagged it: the variance \
                 predictors disagree with the exact dataflow ranks here"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> FilterDesign {
        filters::designs::lowpass_mini().unwrap()
    }

    #[test]
    fn specs_without_the_stage_emit_nothing() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        assert!(lint_structure(&d, &spec).is_empty());
    }

    #[test]
    fn collapse_specs_carry_the_census_and_scoap_summary() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096).with_collapse(true);
        let diags = lint_structure(&d, &spec);
        assert!(diags.len() >= 2, "{diags:?}");
        assert_eq!(diags[0].code, "L701");
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("raw stuck-at line(s)"), "{}", diags[0]);
        assert!(diags[0].message.contains("fewer machines"), "{}", diags[0]);
        assert_eq!(diags[1].code, "L702");
        assert!(diags[1].message.contains("worst observability"), "{}", diags[1]);
        for d in &diags[2..] {
            assert_eq!(d.code, "L703");
            assert_eq!(d.severity, Severity::Warn);
            assert!(matches!(d.location, Location::Node { .. }), "{d}");
        }
    }

    #[test]
    fn the_pass_is_deterministic() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096).with_collapse(true);
        assert_eq!(lint_structure(&d, &spec), lint_structure(&d, &spec));
    }
}
