//! `L4xx` — response-compaction (MISR aliasing) lints.
//!
//! Signature-mode campaigns replace the paper's direct output compare
//! with a MISR signature check ([`bist_core::misr`]); the compactor is
//! lossy, so this pass budgets the analytical aliasing risk *before*
//! simulation spends a cycle:
//!
//! * `L401` *warn* — aliasing budget exceeded: the expected number of
//!   detected-but-aliased faults (`classes × 2^-width`, see
//!   [`bist_core::misr::expected_aliased`]) is above
//!   [`ALIASING_BUDGET`] for the configured MISR width.
//! * `L402` *warn* — compactor narrower than the response word: output
//!   bits above the MISR width never enter the signature in the cycle
//!   they appear, so single-cycle upper-bit errors rely entirely on
//!   later recirculation to be observed.
//! * `L403` *info* — signature mode disables staged fault dropping
//!   (every fault simulates full-length so its end-of-test signature
//!   exists); stage boundaries degrade to repack points.
//! * `L404` *info* — a long trace-mode campaign: the fault-free
//!   response trace costs one word per vector, where a signature check
//!   would hold 64 words total (one per bit-sliced lane).
//!
//! All four are observational: none changes what is simulated, and the
//! paper-roster defaults (trace mode, 4096 vectors, 16-bit MISR) emit
//! nothing.

use bist_core::campaign::CampaignSpec;
use bist_core::misr::expected_aliased;
use bist_core::session::ResponseCheck;
use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};

/// Expected aliased-fault budget for `L401`: half a fault. At the
/// workspace default (16-bit MISR, class bounds of a few thousand) the
/// expectation stays near 0.1, comfortably under; a 12-bit register on
/// the full LP universe (~7.6 k bound, ~1.9 expected) crosses it.
pub const ALIASING_BUDGET: f64 = 0.5;

/// Trace-mode test length at which `L404` points out the storage
/// asymmetry. The paper's standard 4096-vector runs stay quiet.
pub const TRACE_STORE_NOTE_VECTORS: usize = 8192;

/// Static upper bound on the collapsed fault-class count, from the
/// range analysis alone: four collapsed classes per active full-adder
/// cell (the same bound [`crate::campaign::estimated_cost_ms`] prices).
pub fn estimated_fault_classes(design: &FilterDesign) -> u64 {
    let netlist = design.netlist();
    let ranges = design.claimed_ranges();
    let active_cells: u64 = netlist
        .arithmetic_ids()
        .into_iter()
        .filter_map(|id| ranges.active_span(netlist, id))
        .map(|(lsb, msb)| u64::from(msb - lsb + 1))
        .sum();
    active_cells * 4
}

/// Runs the response-compaction pass over a spec.
pub fn lint_aliasing(design: &FilterDesign, spec: &CampaignSpec) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match spec.mode {
        ResponseCheck::Signature => {
            let classes = estimated_fault_classes(design);
            let expected = expected_aliased(classes as usize, spec.misr_width);
            if expected > ALIASING_BUDGET {
                out.push(Diagnostic::new(
                    "L401",
                    Severity::Warn,
                    Location::Field { name: "misr_width".into() },
                    format!(
                        "a {}-bit MISR over up to {classes} detected fault classes \
                         expects {expected:.2} aliased faults (budget {ALIASING_BUDGET}): \
                         widen the register or fall back to trace mode",
                        spec.misr_width
                    ),
                ));
            }
            let word = design.netlist().width();
            if spec.misr_width < word {
                out.push(Diagnostic::new(
                    "L402",
                    Severity::Warn,
                    Location::Field { name: "misr_width".into() },
                    format!(
                        "the {}-bit MISR is narrower than the {word}-bit response \
                         word: upper output bits never enter the signature in the \
                         cycle they appear",
                        spec.misr_width
                    ),
                ));
            }
            out.push(Diagnostic::new(
                "L403",
                Severity::Info,
                Location::Field { name: "mode".into() },
                "signature mode simulates every fault full-length (end-of-test \
                 signatures need complete streams); staged dropping becomes \
                 repack-only, so expect trace-mode coverage at higher runtime",
            ));
        }
        ResponseCheck::Trace => {
            if spec.vectors >= TRACE_STORE_NOTE_VECTORS {
                out.push(Diagnostic::new(
                    "L404",
                    Severity::Info,
                    Location::Field { name: "vectors".into() },
                    format!(
                        "trace mode stores the {}-word fault-free response trace; \
                         a signature check would hold 64 words total",
                        spec.vectors
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> FilterDesign {
        filters::designs::lowpass_mini().unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<String> {
        diags.iter().map(|d| d.code.clone()).collect()
    }

    fn sig_spec(width: u32) -> CampaignSpec {
        let mut spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        spec.mode = ResponseCheck::Signature;
        spec.misr_width = width;
        spec
    }

    #[test]
    fn paper_roster_defaults_emit_nothing() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        assert!(lint_aliasing(&d, &spec).is_empty());
    }

    #[test]
    fn narrow_registers_blow_the_budget() {
        let d = mini();
        let classes = estimated_fault_classes(&d);
        assert!(classes > 0, "degenerate class bound");
        // A 4-bit register expects classes/16 aliased faults — far over.
        let narrow = lint_aliasing(&d, &sig_spec(4));
        assert_eq!(codes(&narrow), ["L401", "L402", "L403"]);
        assert_eq!(narrow[0].severity, Severity::Warn);
        // The default 16-bit register is under budget and as wide as
        // the response word: only the informational dropping note.
        let default = lint_aliasing(&d, &sig_spec(16));
        assert_eq!(codes(&default), ["L403"]);
        assert_eq!(default[0].severity, Severity::Info);
    }

    #[test]
    fn long_trace_campaigns_get_the_storage_note() {
        let d = mini();
        let long = CampaignSpec::new("LP-MINI", "LFSR-D", TRACE_STORE_NOTE_VECTORS);
        assert_eq!(codes(&lint_aliasing(&d, &long)), ["L404"]);
        let short = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        assert!(lint_aliasing(&d, &short).is_empty());
    }
}
