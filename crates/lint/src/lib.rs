//! Static testability analysis with stable diagnostic codes.
//!
//! The paper's central analytical claim (Sections 4 and 7) is that hard
//! faults are *predictable without fault simulation*: they concentrate
//! in the upper carry cells of variance-mismatched and excess-headroom
//! adders, and generator/filter incompatibility is visible directly in
//! the spectra. This crate packages the workspace's analysis passes —
//! interval/granularity analysis, input-cone reachability, subfilter
//! variance, spectral compatibility — into a multi-pass analyzer that
//! emits structured [`Diagnostic`]s with stable codes:
//!
//! | range  | pass                 | module         |
//! |--------|----------------------|----------------|
//! | `L0xx` | netlist dataflow     | [`dataflow`]   |
//! | `L1xx` | testability          | [`testability`]|
//! | `L2xx` | spectral match       | [`spectral`]   |
//! | `L3xx` | campaign spec        | [`campaign`]   |
//! | `L4xx` | response compaction  | [`aliasing`]   |
//! | `L5xx` | top-off stage        | [`topoff`]     |
//! | `L6xx` | SAT proof stage      | [`satcheck`]   |
//! | `L7xx` | structural analysis  | [`structural`] |
//!
//! The full code table lives in `DESIGN.md` §9. Every entry point of
//! the repository runs some subset before spending a simulation cycle:
//! the `bistlint` binary runs everything, `bistd` lints at admission
//! time ([`admission_lint`]), and linted runs carry their diagnostics
//! in the run artifact (`RunConfig::with_lint`).

#![forbid(unsafe_code)]

pub mod aliasing;
pub mod campaign;
pub mod dataflow;
pub mod satcheck;
pub mod spectral;
pub mod structural;
pub mod testability;
pub mod topoff;

use bist_core::campaign::CampaignSpec;
use bist_core::session::SessionError;
use filters::FilterDesign;
use obs::{diag, Diagnostic, JsonValue, Severity};

/// Frequency bins used by the spectral pass when the caller does not
/// pick a resolution (matches `bist_core::selection`).
pub const DEFAULT_BINS: usize = 512;

/// Schema version of [`LintReport::to_json`].
pub const LINT_SCHEMA: u32 = 1;

/// The result of linting one design (optionally paired with a
/// generator and a campaign spec): the diagnostics, in pass order.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// The linted design's name.
    pub design: String,
    /// The paired generator's name, when a pairing was linted.
    pub generator: Option<String>,
    /// Findings, in pass order (`L0xx`, `L1xx`, `L2xx`, `L3xx`,
    /// `L4xx`, `L5xx`, `L6xx`, `L7xx`), node-id order within a pass.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `true` if any diagnostic has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// `(errors, warnings, infos)` tallies.
    pub fn counts(&self) -> (usize, usize, usize) {
        diag::severity_counts(&self.diagnostics)
    }

    /// Machine-readable form: schema, identity, diagnostics, tallies.
    /// Field order is fixed, so output is byte-deterministic.
    pub fn to_json(&self) -> JsonValue {
        let (errors, warnings, infos) = self.counts();
        let mut v =
            JsonValue::object().push("schema", LINT_SCHEMA).push("design", self.design.as_str());
        v = match &self.generator {
            Some(g) => v.push("generator", g.as_str()),
            None => v.push("generator", JsonValue::Null),
        };
        v.push("diagnostics", diag::diagnostics_to_json(&self.diagnostics)).push(
            "summary",
            JsonValue::object()
                .push("errors", errors)
                .push("warnings", warnings)
                .push("infos", infos),
        )
    }

    /// One-line tally (`"2 error(s), 3 warning(s), 40 info(s)"`).
    pub fn summary_line(&self) -> String {
        let (errors, warnings, infos) = self.counts();
        format!("{errors} error(s), {warnings} warning(s), {infos} info(s)")
    }
}

/// Lints a design alone (no generator pairing): the `L0xx` dataflow
/// pass plus the source-independent `L1xx` headroom predictor.
pub fn lint_design(design: &FilterDesign) -> Vec<Diagnostic> {
    let mut out = dataflow::lint_netlist(design);
    out.extend(testability::lint_headroom(design));
    out
}

/// Lints a design/generator pairing: the generator-shaped `L1xx`
/// variance predictor plus the `L2xx` spectral-compatibility pass.
/// `generator` is a registry name (`KNOWN_GENERATORS` or `Mixed@<n>`);
/// unknown names yield no diagnostics (spec validation reports them).
pub fn lint_pairing(design: &FilterDesign, generator: &str, bins: usize) -> Vec<Diagnostic> {
    let mut out = testability::lint_variance_mismatch(design, generator);
    out.extend(spectral::lint_spectra(design, generator, bins));
    out
}

/// Runs every pass over a campaign spec: elaborates the design, then
/// the dataflow, testability, spectral, spec and response-compaction
/// passes in order.
///
/// # Errors
///
/// [`SessionError`] if the spec is invalid or elaboration fails.
pub fn lint_campaign(
    spec: &CampaignSpec,
    deadline_ms: Option<u64>,
) -> Result<LintReport, SessionError> {
    spec.validate()?;
    let design = spec.build_design()?;
    let mut diagnostics = lint_design(&design);
    diagnostics.extend(lint_pairing(&design, &spec.generator, DEFAULT_BINS));
    diagnostics.extend(campaign::lint_spec(&design, spec, deadline_ms));
    diagnostics.extend(aliasing::lint_aliasing(&design, spec));
    diagnostics.extend(topoff::lint_topoff(&design, spec));
    diagnostics.extend(satcheck::lint_satcheck(&design, spec));
    diagnostics.extend(structural::lint_structure(&design, spec));
    Ok(LintReport {
        design: spec.design.clone(),
        generator: Some(spec.generator.clone()),
        diagnostics,
    })
}

/// The cheap subset a daemon can afford on every submission: the
/// `L1xx` variance, `L2xx` spectral, `L3xx` spec and `L4xx`
/// response-compaction passes — design elaboration plus a few
/// FFT-sized loops, no input-cone enumeration.
///
/// # Errors
///
/// [`SessionError`] if the spec is invalid or elaboration fails.
pub fn admission_lint(
    spec: &CampaignSpec,
    deadline_ms: Option<u64>,
) -> Result<Vec<Diagnostic>, SessionError> {
    spec.validate()?;
    let design = spec.build_design()?;
    let mut out = lint_pairing(&design, &spec.generator, DEFAULT_BINS);
    out.extend(campaign::lint_spec(&design, spec, deadline_ms));
    out.extend(aliasing::lint_aliasing(&design, spec));
    out.extend(topoff::lint_topoff(&design, spec));
    out.extend(satcheck::lint_satcheck(&design, spec));
    out.extend(structural::lint_structure(&design, spec));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Location;

    #[test]
    fn report_tallies_and_serializes_deterministically() {
        let report = LintReport {
            design: "LP".into(),
            generator: Some("LFSR-1".into()),
            diagnostics: vec![
                Diagnostic::new("L201", Severity::Error, Location::Design, "incompatible"),
                Diagnostic::new("L101", Severity::Warn, Location::Design, "headroom"),
            ],
        };
        assert!(report.has_errors());
        assert_eq!(report.counts(), (1, 1, 0));
        assert_eq!(report.summary_line(), "1 error(s), 1 warning(s), 0 info(s)");
        let json = report.to_json().to_json();
        assert!(
            json.starts_with("{\"schema\":1,\"design\":\"LP\",\"generator\":\"LFSR-1\""),
            "{json}"
        );
        assert!(json.contains("\"summary\":{\"errors\":1,\"warnings\":1,\"infos\":0}"), "{json}");
        assert_eq!(json, report.to_json().to_json());
    }

    #[test]
    fn design_only_report_has_null_generator() {
        let report = LintReport { design: "HP".into(), generator: None, diagnostics: vec![] };
        assert!(!report.has_errors());
        assert!(report.to_json().to_json().contains("\"generator\":null"));
    }

    #[test]
    fn campaign_lint_rejects_invalid_specs() {
        let bad = CampaignSpec::new("XX", "LFSR-1", 64);
        assert!(lint_campaign(&bad, None).is_err());
        assert!(admission_lint(&bad, None).is_err());
    }

    #[test]
    fn mini_design_lints_clean_of_errors() {
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        let report = lint_campaign(&spec, None).unwrap();
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert_eq!(report.generator.as_deref(), Some("LFSR-D"));
        // Admission linting is a subset of the full report.
        let admission = admission_lint(&spec, None).unwrap();
        for d in &admission {
            assert!(report.diagnostics.contains(d), "{d}");
        }
    }

    #[test]
    fn topoff_specs_carry_the_l5xx_pass_in_full_and_admission_lint() {
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096)
            .with_topoff(bist_core::TopOffConfig::default());
        let report = lint_campaign(&spec, None).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "L501"), "{:?}", report.diagnostics);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        let admission = admission_lint(&spec, None).unwrap();
        assert!(admission.iter().any(|d| d.code == "L501"));
        // Without the knob, no L5xx diagnostic appears anywhere, so
        // existing golden snapshots stay byte-identical.
        let plain = lint_campaign(&CampaignSpec::new("LP-MINI", "LFSR-D", 4096), None).unwrap();
        assert!(plain.diagnostics.iter().all(|d| !d.code.starts_with("L5")));
    }

    #[test]
    fn sat_specs_carry_the_l6xx_pass_in_full_and_admission_lint() {
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096)
            .with_sat(bist_core::session::SatConfig::default());
        let report = lint_campaign(&spec, None).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "L601"), "{:?}", report.diagnostics);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        let admission = admission_lint(&spec, None).unwrap();
        assert!(admission.iter().any(|d| d.code == "L601"));
        // Without the knob, no L6xx diagnostic appears anywhere, so
        // existing golden snapshots stay byte-identical.
        let plain = lint_campaign(&CampaignSpec::new("LP-MINI", "LFSR-D", 4096), None).unwrap();
        assert!(plain.diagnostics.iter().all(|d| !d.code.starts_with("L6")));
    }

    #[test]
    fn collapse_specs_carry_the_l7xx_pass_in_full_and_admission_lint() {
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096).with_collapse(true);
        let report = lint_campaign(&spec, None).unwrap();
        assert!(report.diagnostics.iter().any(|d| d.code == "L701"), "{:?}", report.diagnostics);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        let admission = admission_lint(&spec, None).unwrap();
        assert!(admission.iter().any(|d| d.code == "L701"));
        // Without the knob, no L7xx diagnostic appears anywhere, so
        // existing golden snapshots stay byte-identical.
        let plain = lint_campaign(&CampaignSpec::new("LP-MINI", "LFSR-D", 4096), None).unwrap();
        assert!(plain.diagnostics.iter().all(|d| !d.code.starts_with("L7")));
    }

    #[test]
    fn signature_mode_defaults_stay_error_free() {
        use bist_core::session::ResponseCheck;
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096).with_mode(ResponseCheck::Signature);
        let report = lint_campaign(&spec, None).unwrap();
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        // The L403 dropping note is present, and admission sees it too.
        assert!(report.diagnostics.iter().any(|d| d.code == "L403"), "{:?}", report.diagnostics);
        let admission = admission_lint(&spec, None).unwrap();
        for d in &admission {
            assert!(report.diagnostics.contains(d), "{d}");
        }
    }
}
