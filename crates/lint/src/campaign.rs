//! `L3xx` — campaign-spec lints.
//!
//! Static checks on the experiment description itself:
//!
//! * `L301` *warn* — degenerate vector count: the test is shorter than
//!   twice the design's register pipeline, so most faults never
//!   propagate to the output before the test ends.
//! * `L302` *warn* — wasted test length: a mixed scheme whose
//!   switch-over point lies at or beyond the test length (the
//!   max-variance phase never runs), or a test so long the generator's
//!   period makes most of it a repeat.
//! * `L303` *error* — a submission deadline shorter than a deliberately
//!   optimistic static cost estimate: the run is predicted to be
//!   cancelled before it completes, so admission should refuse it.

use bist_core::campaign::{parse_mixed, CampaignSpec};
use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};

/// Optimistic simulation throughput used by [`estimated_cost_ms`]:
/// node-evaluations per millisecond. Deliberately high (a fast machine,
/// perfect scaling) so `L303` only fires on deadlines no hardware could
/// meet — the estimate is a lower bound, never a prediction.
pub const OPTIMISTIC_NODE_EVALS_PER_MS: u64 = 1_000_000;

/// Period of the 12-bit maximal LFSR generators (`2^12 - 1`).
const LFSR12_PERIOD: usize = 4095;

/// A deliberately optimistic lower bound on the campaign's
/// fault-simulation cost in milliseconds, from static quantities only:
/// active full-adder cells (≈4 collapsed classes each), 64 bit-sliced
/// fault lanes per pass, one netlist sweep per vector per pass.
pub fn estimated_cost_ms(design: &FilterDesign, spec: &CampaignSpec) -> u64 {
    let netlist = design.netlist();
    let ranges = design.claimed_ranges();
    let active_cells: u64 = netlist
        .arithmetic_ids()
        .into_iter()
        .filter_map(|id| ranges.active_span(netlist, id))
        .map(|(lsb, msb)| u64::from(msb - lsb + 1))
        .sum();
    let classes = active_cells * 4;
    let passes = classes.div_ceil(64).max(1);
    let node_evals = passes * spec.vectors as u64 * netlist.nodes().len() as u64;
    node_evals / OPTIMISTIC_NODE_EVALS_PER_MS
}

/// Runs the spec pass. `deadline_ms` is the submission deadline, when
/// one applies (the daemon's per-job deadline; `None` for inline runs).
pub fn lint_spec(
    design: &FilterDesign,
    spec: &CampaignSpec,
    deadline_ms: Option<u64>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let registers = design.netlist().stats().registers as usize;
    if spec.vectors < 2 * registers {
        out.push(Diagnostic::new(
            "L301",
            Severity::Warn,
            Location::Field { name: "vectors".into() },
            format!(
                "degenerate vector count: {} vectors barely flushes the \
                 {registers}-register pipeline (want at least {})",
                spec.vectors,
                2 * registers
            ),
        ));
    }
    if let Some(switch) = parse_mixed(&spec.generator) {
        if switch >= spec.vectors as u64 {
            out.push(Diagnostic::new(
                "L302",
                Severity::Warn,
                Location::Field { name: "generator".into() },
                format!(
                    "mixed scheme switches to the max-variance phase after \
                     {switch} vectors but the test is only {} long: the second \
                     phase never runs",
                    spec.vectors
                ),
            ));
        }
    } else if matches!(spec.generator.as_str(), "LFSR-1" | "LFSR-2" | "Ramp") {
        let period = if spec.generator == "Ramp" { 4096 } else { LFSR12_PERIOD };
        if spec.vectors >= 2 * period {
            out.push(Diagnostic::new(
                "L302",
                Severity::Warn,
                Location::Field { name: "vectors".into() },
                format!(
                    "{} vectors exceed twice the {}'s period ({period}): most of \
                     the test repeats earlier vectors and detects nothing new",
                    spec.vectors, spec.generator
                ),
            ));
        }
    }
    if let Some(deadline) = deadline_ms {
        let estimate = estimated_cost_ms(design, spec);
        if deadline < estimate {
            out.push(Diagnostic::new(
                "L303",
                Severity::Error,
                Location::Field { name: "deadline_ms".into() },
                format!(
                    "deadline {deadline} ms is below an optimistic cost lower \
                     bound of {estimate} ms: the run is predicted to be \
                     cancelled before completion"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> FilterDesign {
        filters::designs::lowpass_mini().unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<String> {
        diags.iter().map(|d| d.code.clone()).collect()
    }

    #[test]
    fn short_tests_are_degenerate() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 16);
        assert_eq!(codes(&lint_spec(&d, &spec, None)), ["L301"]);
        let ok = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        assert!(lint_spec(&d, &ok, None).is_empty());
    }

    #[test]
    fn dead_mixed_phase_and_period_overrun_warn() {
        let d = mini();
        let dead = CampaignSpec::new("LP-MINI", "Mixed@4096", 4096);
        assert_eq!(codes(&lint_spec(&d, &dead, None)), ["L302"]);
        let live = CampaignSpec::new("LP-MINI", "Mixed@2048", 4096);
        assert!(lint_spec(&d, &live, None).is_empty());
        let repeat = CampaignSpec::new("LP-MINI", "LFSR-1", 8192);
        assert_eq!(codes(&lint_spec(&d, &repeat, None)), ["L302"]);
        // The paper's standard 4096-vector LFSR-1 test is not flagged.
        let paper = CampaignSpec::new("LP-MINI", "LFSR-1", 4096);
        assert!(lint_spec(&d, &paper, None).is_empty());
    }

    #[test]
    fn impossible_deadlines_are_errors() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        let estimate = estimated_cost_ms(&d, &spec);
        assert!(estimate > 0, "estimate degenerate");
        let tight = lint_spec(&d, &spec, Some(estimate.saturating_sub(1)));
        assert_eq!(codes(&tight), ["L303"]);
        assert!(tight[0].severity == Severity::Error);
        assert!(lint_spec(&d, &spec, Some(estimate)).is_empty());
        assert!(lint_spec(&d, &spec, None).is_empty());
    }

    #[test]
    fn estimate_scales_with_vectors() {
        let d = mini();
        let short = CampaignSpec::new("LP-MINI", "LFSR-D", 1024);
        let long = CampaignSpec::new("LP-MINI", "LFSR-D", 8192);
        assert!(estimated_cost_ms(&d, &long) > estimated_cost_ms(&d, &short));
    }
}
