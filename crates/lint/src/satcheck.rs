//! `L6xx` — SAT proof stage lints.
//!
//! Cross-validates the `L1xx` testability *predictions* against
//! SAT-*exact* redundancy labels. The variance predictors flag nodes
//! where hard faults are likely; the miter proves, per fault, whether
//! a fault is redundant (UNSAT) or detectable (a concrete witness).
//! Emitted only when the spec enables the proof stage (specs without
//! `sat` produce no `L6xx` diagnostics at all):
//!
//! * `L601` *info* — the stage is enabled: records the conflict
//!   budget, whether an equivalence certificate is requested, and how
//!   many screen candidates the miter will be handed at run time.
//! * `L602` *info* — cross-validation census over a bounded sample of
//!   candidates: how many were proven redundant / detectable / left
//!   over budget, and how many of the redundancy proofs land on nodes
//!   the `L1xx` predictors already flagged.
//! * `L603` *warn* — a SAT-proven-redundant fault sits on a node *no*
//!   `L1xx` pass flagged: an exact, machine-checked blind spot in the
//!   variance predictor's model of the design.

use std::collections::BTreeSet;

use bist_core::campaign::CampaignSpec;
use bist_core::BistSession;
use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};
use rtl::{Netlist, NodeId};

use crate::testability;

/// Cap on the candidates actually proven during admission. Keeps the
/// pass interactive even on designs whose screen sheds hundreds of
/// faults (a symmetric-architecture LP sheds close to a thousand);
/// the run-time stage proves the full set.
const SAMPLE_CAP: usize = 16;

fn node_label(netlist: &Netlist, id: NodeId) -> String {
    let label = &netlist.node(id).label;
    if label.is_empty() {
        id.to_string()
    } else {
        label.clone()
    }
}

/// Runs the SAT proof-stage pass. No-op for specs without the stage.
pub fn lint_satcheck(design: &FilterDesign, spec: &CampaignSpec) -> Vec<Diagnostic> {
    let Some(cfg) = &spec.sat else {
        return Vec::new();
    };
    // Elaboration problems are the spec passes' findings, not ours.
    let Ok(session) = BistSession::new(design) else {
        return Vec::new();
    };
    let netlist = design.netlist();
    let input_bits = design.spec().input_bits;
    let candidates = atpg::untestable_faults(netlist, session.universe(), input_bits);
    let mut out = vec![Diagnostic::new(
        "L601",
        Severity::Info,
        Location::Field { name: "sat".into() },
        format!(
            "SAT proof stage enabled (max_conflicts {}, equivalence certificate {}): \
             {} screen candidate(s) will be handed to the per-fault miter for an \
             exact redundant/detectable verdict",
            cfg.max_conflicts,
            if cfg.equiv { "on" } else { "off" },
            candidates.len()
        ),
    )];
    if candidates.is_empty() {
        return out;
    }

    let sample: Vec<sat::FaultSpec> = candidates
        .iter()
        .take(SAMPLE_CAP)
        .map(|&id| {
            let site = session.universe().site(id);
            sat::FaultSpec { node: site.node, cell: site.cell, fault: site.representative }
        })
        .collect();
    let outcome = sat::prove_faults(
        netlist,
        input_bits,
        &sample,
        &sat::PruneConfig { max_conflicts: cfg.max_conflicts },
    );

    // Node labels the L1xx predictors flagged for this pairing.
    let flagged: BTreeSet<String> = testability::lint_headroom(design)
        .into_iter()
        .chain(testability::lint_variance_mismatch(design, &spec.generator))
        .filter_map(|d| match d.location {
            Location::Node { label, .. } => Some(label),
            _ => None,
        })
        .collect();

    let mut on_flagged = 0usize;
    let mut blind: Vec<(String, &sat::FaultSpec)> = Vec::new();
    for (fault, verdict) in &outcome.verdicts {
        if !matches!(verdict, sat::FaultVerdict::Redundant) {
            continue;
        }
        let label = node_label(netlist, fault.node);
        if flagged.contains(&label) {
            on_flagged += 1;
        } else {
            blind.push((label, fault));
        }
    }
    out.push(Diagnostic::new(
        "L602",
        Severity::Info,
        Location::Field { name: "sat".into() },
        format!(
            "cross-validation sample: {} of {} candidate(s) proven redundant \
             ({} detectable, {} over budget); {on_flagged} redundancy proof(s) \
             land on nodes the L1xx predictors already flagged",
            outcome.redundant,
            sample.len(),
            outcome.detectable,
            outcome.unknown
        ),
    ));
    for (label, fault) in blind {
        out.push(Diagnostic::new(
            "L603",
            Severity::Warn,
            Location::Node { label, cell: Some(fault.cell) },
            format!(
                "SAT-proven-redundant fault ({:?} stuck-at-{}) on a node no L1xx \
                 pass flagged: the variance predictors have a machine-checked \
                 blind spot here",
                fault.fault.line,
                u8::from(fault.fault.stuck_one)
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_core::SatConfig;

    fn mini() -> FilterDesign {
        filters::designs::lowpass_mini().unwrap()
    }

    fn small_sym() -> FilterDesign {
        filters::FilterDesign::elaborate_full(
            filters::FilterSpec {
                name: "T-SYM".into(),
                band: dsp::firdesign::BandKind::Lowpass { cutoff: 0.15 },
                taps: 12,
                input_bits: 12,
                coef_frac_bits: 14,
                max_csd_digits: 3,
                width: 16,
                kaiser_beta: 4.0,
            },
            filters::ScalingPolicy::WorstCase,
            filters::Architecture::Symmetric,
        )
        .unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<String> {
        diags.iter().map(|d| d.code.clone()).collect()
    }

    #[test]
    fn specs_without_the_stage_emit_nothing() {
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096);
        assert!(lint_satcheck(&d, &spec).is_empty());
    }

    #[test]
    fn candidate_free_designs_report_only_the_census() {
        // LP-MINI's reachability-pruned universe has no screen
        // candidates: the stage is a no-op the L601 census records.
        let d = mini();
        let spec = CampaignSpec::new("LP-MINI", "LFSR-D", 4096)
            .with_sat(SatConfig { max_conflicts: 500, equiv: true });
        let diags = lint_satcheck(&d, &spec);
        assert_eq!(codes(&diags), ["L601"]);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("0 screen candidate(s)"), "{}", diags[0]);
        assert!(diags[0].message.contains("max_conflicts 500"), "{}", diags[0]);
    }

    #[test]
    fn redundant_proofs_are_cross_validated_against_the_l1xx_labels() {
        // The symmetric architecture's tap-sharing adders carry
        // screen candidates; the miter proves the sample redundant
        // and the census compares the proofs to the L1xx node set.
        let d = small_sym();
        let spec = CampaignSpec::new("LP", "LFSR-D", 4096)
            .with_sat(SatConfig { max_conflicts: 2_000, equiv: false });
        let diags = lint_satcheck(&d, &spec);
        assert!(diags.len() >= 2, "{diags:?}");
        assert_eq!(diags[0].code, "L601");
        assert_eq!(diags[1].code, "L602");
        assert!(!diags[1].message.starts_with("cross-validation sample: 0 of"), "{}", diags[1]);
        for d in &diags[2..] {
            assert_eq!(d.code, "L603");
            assert_eq!(d.severity, Severity::Warn);
            assert!(matches!(d.location, Location::Node { .. }), "{d}");
        }
    }
}
