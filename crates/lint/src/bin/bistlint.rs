//! Static testability analyzer CLI.
//!
//! ```text
//! bistlint [--json] (--design <name> | --all) [--gen <name>]
//!          [--vectors <n>] [--deadline-ms <ms>] [--bins <n>]
//! ```
//!
//! Runs the `lint` crate's passes over the named design (or all three
//! paper designs with `--all`) and prints the diagnostics. Without
//! `--gen`, only the design-level passes run (`L0xx` dataflow, `L101`
//! headroom); with `--gen`, the pairing passes (`L102`, `L2xx`) and the
//! campaign-spec pass (`L3xx`, using `--vectors`/`--deadline-ms`) run
//! too — all without a single fault-simulation cycle.
//!
//! Exit status: `0` when no error-severity diagnostic was produced,
//! `1` when at least one was, `2` on usage errors. `--json` prints the
//! machine-readable report (byte-deterministic; the golden-file tests
//! snapshot it).

use bist_core::campaign::{CampaignSpec, KNOWN_DESIGNS, KNOWN_GENERATORS};
use bist_lint::LintReport;
use obs::JsonValue;

const USAGE: &str = "usage: bistlint [--json] (--design <name> | --all) [--gen <name>]\n\
                     \x20               [--vectors <n>] [--deadline-ms <ms>] [--bins <n>]\n\
                     designs: LP, BP, HP, LP-SYM, LP-CSA, LP-MINI (--all = LP, BP, HP)\n\
                     generators: LFSR-1, LFSR-2, LFSR-D, LFSR-M, Ramp, Ideal, Mixed@<n>";

struct Options {
    json: bool,
    designs: Vec<String>,
    generator: Option<String>,
    vectors: usize,
    deadline_ms: Option<u64>,
    bins: usize,
}

fn usage_error(message: &str) -> ! {
    eprintln!("bistlint: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        json: false,
        designs: Vec::new(),
        generator: None,
        vectors: 4096,
        deadline_ms: None,
        bins: bist_lint::DEFAULT_BINS,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--json" => options.json = true,
            "--all" => options.designs = vec!["LP".into(), "BP".into(), "HP".into()],
            "--design" => options.designs.push(value("--design")),
            "--gen" => options.generator = Some(value("--gen")),
            "--vectors" => {
                options.vectors = value("--vectors")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--vectors needs a positive integer"))
            }
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    value("--deadline-ms")
                        .parse()
                        .unwrap_or_else(|_| usage_error("--deadline-ms needs an integer")),
                )
            }
            "--bins" => {
                options.bins = value("--bins")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--bins needs a positive integer"))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument '{other}'")),
        }
    }
    if options.designs.is_empty() {
        usage_error("pick a design with --design <name> or --all");
    }
    if options.vectors == 0 || options.bins == 0 {
        usage_error("--vectors and --bins must be positive");
    }
    options
}

fn lint_one(design_name: &str, options: &Options) -> LintReport {
    let design = bist_core::campaign::build_design(design_name)
        .unwrap_or_else(|e| usage_error(&format!("{e} (known: {})", KNOWN_DESIGNS.join(", "))));
    let mut diagnostics = bist_lint::lint_design(&design);
    if let Some(generator) = &options.generator {
        let spec = CampaignSpec::new(design_name, generator.clone(), options.vectors);
        if let Err(e) = spec.validate() {
            usage_error(&format!("{e} (known: {}, or Mixed@<n>)", KNOWN_GENERATORS.join(", ")));
        }
        diagnostics.extend(bist_lint::lint_pairing(&design, generator, options.bins));
        diagnostics.extend(bist_lint::campaign::lint_spec(&design, &spec, options.deadline_ms));
    }
    LintReport {
        design: design_name.to_string(),
        generator: options.generator.clone(),
        diagnostics,
    }
}

fn main() {
    let options = parse_args();
    let reports: Vec<LintReport> = options.designs.iter().map(|d| lint_one(d, &options)).collect();

    if options.json {
        let json = if reports.len() == 1 {
            reports[0].to_json()
        } else {
            JsonValue::Array(reports.iter().map(LintReport::to_json).collect())
        };
        println!("{}", json.to_json_pretty());
    } else {
        for report in &reports {
            match &report.generator {
                Some(g) => println!("== {} x {} ==", report.design, g),
                None => println!("== {} ==", report.design),
            }
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!("{}", report.summary_line());
        }
    }
    if reports.iter().any(LintReport::has_errors) {
        std::process::exit(1);
    }
}
