//! `L2xx` — generator/filter spectral-compatibility lints.
//!
//! The paper's Section 6.1 estimate
//! `sigma_y^2 = (1/L) sum |G[k]|^2 |H[k]|^2` judged against an ideal
//! white generator of equal word variance, recast as lints:
//!
//! * `L201` *error* — the generator's spectral nulls overlap the
//!   passband (the Type-1-LFSR-vs-lowpass failure): predicted output
//!   variance below 35% of the white reference. The message recommends
//!   the `bist_core::selection` primary with a max-variance tail.
//! * `L202` *warn* — marginal match (35–85% of the reference).
//! * `L203` *info* — compatible pairing, with the measured ratio.
//! * `L204` *warn* — a degenerate sole generator: max-variance words
//!   (fully correlated bits, lower cells untested) or the ramp (a slow
//!   near-DC sweep).
//!
//! A mixed scheme (`Mixed@<n>`) is judged by its best phase: the
//! max-variance tail restores the passband energy a Type 1 LFSR
//! primary lacks.

use bist_core::compat::{classify, compatibility_ratio, output_variance, Compatibility};
use bist_core::{campaign, selection};
use dsp::response::response_at;
use dsp::spectrum::PowerSpectrum;
use filters::FilterDesign;
use obs::{Diagnostic, Location, Severity};

/// The phase spectra a registry generator name denotes, in run order.
/// Unknown names yield an empty list (spec validation reports those).
fn phase_spectra(generator: &str, bins: usize) -> Vec<(String, PowerSpectrum)> {
    let flat = |v| tpg::spectra::flat(v, bins);
    match generator {
        "LFSR-1" => vec![("LFSR-1".into(), tpg::spectra::lfsr1(12, bins))],
        "LFSR-2" => {
            let lfsr = tpg::Lfsr2::new(12, tpg::polynomials::PAPER_TYPE2_POLY)
                .expect("paper polynomial is valid");
            vec![("LFSR-2".into(), tpg::spectra::lfsr2(&lfsr, bins))]
        }
        "LFSR-D" | "Ideal" => vec![(generator.to_string(), flat(1.0 / 3.0))],
        "LFSR-M" => vec![("LFSR-M".into(), flat(1.0))],
        "Ramp" => vec![("Ramp".into(), tpg::spectra::ramp(12, bins))],
        name if campaign::parse_mixed(name).is_some() => {
            vec![("LFSR-1".into(), tpg::spectra::lfsr1(12, bins)), ("LFSR-M".into(), flat(1.0))]
        }
        _ => Vec::new(),
    }
}

/// The frequency bin where the filter passes the most energy — where a
/// generator null hurts the most.
fn passband_peak_bin(h: &[f64], reference: &PowerSpectrum) -> usize {
    let mut best = (0usize, f64::NEG_INFINITY);
    for k in 0..reference.len() {
        let gain = response_at(h, reference.frequency(k)).norm_sqr();
        if gain > best.1 {
            best = (k, gain);
        }
    }
    best.0
}

/// Runs the spectral pass on one design/generator pairing.
pub fn lint_spectra(design: &FilterDesign, generator: &str, bins: usize) -> Vec<Diagnostic> {
    let phases = phase_spectra(generator, bins);
    if phases.is_empty() {
        return Vec::new();
    }
    let h = design.coefficients();
    let reference = tpg::spectra::flat(1.0 / 3.0, bins);
    let reference_variance = output_variance(&reference, &h);
    let (best_phase, best_ratio) = phases
        .iter()
        .map(|(name, g)| (name.as_str(), compatibility_ratio(g, &reference, &h)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one phase");
    let best_spectrum = &phases.iter().find(|(n, _)| n == best_phase).expect("phase present").1;
    let rating = classify(output_variance(best_spectrum, &h), reference_variance);
    let peak = passband_peak_bin(&h, &reference);

    let mut out = Vec::new();
    match rating {
        Compatibility::Poor => {
            let primary = selection::recommend(design).primary;
            out.push(Diagnostic::new(
                "L201",
                Severity::Error,
                Location::Bin { bin: peak, bins },
                format!(
                    "generator {generator} is spectrally incompatible with design \
                     '{}': predicted output variance is {:.1}% of the white \
                     reference (spectral null over the passband peak); recommend \
                     primary {primary} with a max-variance tail (mixed scheme)",
                    design.name(),
                    100.0 * best_ratio
                ),
            ));
        }
        Compatibility::Marginal => {
            out.push(Diagnostic::new(
                "L202",
                Severity::Warn,
                Location::Bin { bin: peak, bins },
                format!(
                    "marginal spectral match: best phase {best_phase} delivers \
                     {:.1}% of the white-reference output variance",
                    100.0 * best_ratio
                ),
            ));
        }
        Compatibility::Good => {
            out.push(Diagnostic::new(
                "L203",
                Severity::Info,
                Location::Design,
                format!(
                    "spectrally compatible: best phase {best_phase} delivers \
                     {:.1}% of the white-reference output variance",
                    100.0 * best_ratio
                ),
            ));
        }
    }
    if phases.len() == 1 {
        match generator {
            "LFSR-M" => out.push(Diagnostic::new(
                "L204",
                Severity::Warn,
                Location::Design,
                "max-variance generator alone: word bits are fully correlated, so \
                 lower-cell faults go untested; use it as the second phase of a \
                 mixed scheme",
            )),
            "Ramp" => out.push(Diagnostic::new(
                "L204",
                Severity::Warn,
                Location::Design,
                "ramp generator alone: a slow near-DC sweep cannot exercise mid/high \
                 bands; use it only as an auxiliary phase",
            )),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp() -> FilterDesign {
        filters::designs::lowpass().unwrap()
    }

    #[test]
    fn lfsr1_on_lowpass_is_an_error_and_recommends_a_primary() {
        let diags = lint_spectra(&lp(), "LFSR-1", 512);
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.code, "L201");
        assert_eq!(d.severity, Severity::Error);
        assert!(matches!(d.location, Location::Bin { bins: 512, .. }));
        // The recommendation must not be the failing generator.
        assert!(!d.message.contains("primary LFSR-1"), "{}", d.message);
        assert!(d.message.contains("recommend primary"), "{}", d.message);
    }

    #[test]
    fn mixed_scheme_rescues_the_lowpass_pairing() {
        let diags = lint_spectra(&lp(), "Mixed@2048", 512);
        assert!(diags.iter().all(|d| d.severity != Severity::Error), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "L203"), "{diags:?}");
    }

    #[test]
    fn lfsr1_on_highpass_is_compatible() {
        let hp = filters::designs::highpass().unwrap();
        let diags = lint_spectra(&hp, "LFSR-1", 512);
        assert!(diags.iter().all(|d| d.severity != Severity::Error), "{diags:?}");
    }

    #[test]
    fn ramp_on_highpass_is_incompatible_and_degenerate() {
        let hp = filters::designs::highpass().unwrap();
        let codes: Vec<String> =
            lint_spectra(&hp, "Ramp", 512).iter().map(|d| d.code.clone()).collect();
        assert!(codes.contains(&"L201".to_string()), "{codes:?}");
        assert!(codes.contains(&"L204".to_string()), "{codes:?}");
    }

    #[test]
    fn maxvar_alone_warns_even_when_compatible() {
        let diags = lint_spectra(&lp(), "LFSR-M", 512);
        assert!(diags.iter().any(|d| d.code == "L203"));
        assert!(diags.iter().any(|d| d.code == "L204" && d.severity == Severity::Warn));
    }

    #[test]
    fn unknown_generator_yields_nothing() {
        assert!(lint_spectra(&lp(), "bogus", 64).is_empty());
    }
}
