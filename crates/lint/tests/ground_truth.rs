//! Cross-validation of the static testability predictors against
//! fault-simulation ground truth — the paper's central claim, inverted:
//! the adders the variance analysis flags (`L101` excess headroom,
//! `L102` variance mismatch) should be the ones whose injected faults a
//! Type 1 LFSR actually misses, and the lint reaches that conclusion
//! without running a single fault-simulation cycle.
//!
//! The oracle here *does* run the simulator (dev-dependency only), on
//! the paper's LP design under the Type 1 LFSR. Results are
//! bit-identical in debug and release and at any thread count, so the
//! asserted precision/recall are exact, not statistical.

use bist_core::campaign;
use bist_core::session::{BistSession, RunConfig};
use obs::Location;
use std::collections::BTreeSet;

/// Vectors for the oracle run. Shorter than the paper's 4096 to keep
/// the debug-mode test quick; misses only shrink as vectors grow, and
/// the flagged hot spots are already stable at this length.
const ORACLE_VECTORS: usize = 1024;

/// Node labels flagged by the static predictors (`L101` ∪ `L102`).
fn predicted_labels(design: &filters::FilterDesign, generator: &str) -> BTreeSet<String> {
    let mut diags = bist_lint::testability::lint_headroom(design);
    diags.extend(bist_lint::testability::lint_variance_mismatch(design, generator));
    diags
        .iter()
        .filter_map(|d| match &d.location {
            Location::Node { label, .. } => Some(label.clone()),
            _ => None,
        })
        .collect()
}

/// Node labels owning at least one fault the generator actually missed.
fn missed_labels(design: &filters::FilterDesign, generator: &str) -> BTreeSet<String> {
    let session = BistSession::new(design).expect("session builds");
    let mut generator = campaign::build_generator(generator).expect("known generator");
    let run =
        session.run(&mut *generator, &RunConfig::new(ORACLE_VECTORS)).expect("oracle run succeeds");
    let netlist = design.netlist();
    run.result
        .missed()
        .into_iter()
        .map(|fid| {
            let site = session.universe().site(fid);
            let label = &netlist.node(site.node).label;
            if label.is_empty() {
                site.node.to_string()
            } else {
                label.clone()
            }
        })
        .collect()
}

#[test]
fn static_predictions_match_lfsr1_misses_on_the_paper_lowpass() {
    let design = filters::designs::lowpass().expect("LP builds");
    let predicted = predicted_labels(&design, "LFSR-1");
    let actual = missed_labels(&design, "LFSR-1");
    assert!(!predicted.is_empty(), "predictor flagged nothing");
    assert!(!actual.is_empty(), "oracle missed nothing — LFSR-1 should struggle on LP");

    let hits = predicted.intersection(&actual).count();
    let precision = hits as f64 / predicted.len() as f64;
    let recall = hits as f64 / actual.len() as f64;
    assert!(
        precision >= 0.5,
        "precision {precision:.2}: flagged {} nodes, only {hits} own missed faults\n\
         predicted: {predicted:?}\nactual: {actual:?}",
        predicted.len()
    );
    assert!(
        recall >= 0.5,
        "recall {recall:.2}: {} nodes own missed faults, only {hits} were flagged\n\
         predicted: {predicted:?}\nactual: {actual:?}",
        actual.len()
    );

    // The paper's case-study neighborhood (tap 20's accumulator) is
    // both predicted and confirmed.
    assert!(predicted.iter().any(|l| l == "tap20.acc"), "{predicted:?}");
}

#[test]
fn spectral_lint_separates_lfsr1_from_the_recommended_scheme() {
    let design = filters::designs::lowpass().expect("LP builds");
    // Type 1 LFSR vs the narrowband lowpass: flagged incompatible.
    let bad = bist_lint::spectral::lint_spectra(&design, "LFSR-1", bist_lint::DEFAULT_BINS);
    assert!(bad.iter().any(|d| d.code == "L201"), "{bad:?}");
    // The selection module recommends a mixed scheme for LP, and the
    // registry's mixed scheme (primary, then max-variance tail) passes.
    let rec = bist_core::selection::recommend(&design);
    assert!(rec.add_max_variance_phase, "selection should want a max-variance tail on LP");
    let good = bist_lint::spectral::lint_spectra(&design, "Mixed@2048", bist_lint::DEFAULT_BINS);
    assert!(good.iter().all(|d| d.code != "L201" && d.code != "L202"), "{good:?}");
    assert!(good.iter().any(|d| d.code == "L203"), "{good:?}");
}
