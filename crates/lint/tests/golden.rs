//! Golden-file snapshot tests for `bistlint --json`.
//!
//! The JSON report is a machine interface (the daemon and CI both parse
//! it), so its bytes are pinned here: any intentional change to codes,
//! messages, ordering, or serialization must re-bless the snapshots.
//!
//! Regenerate with `BLESS=1 cargo test -p bist-lint --test golden`.

use std::path::PathBuf;
use std::process::Command;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Runs the real binary and returns its stdout. Design-only runs (no
/// `--gen`) keep the snapshot independent of generator heuristics.
fn bistlint_json(design: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_bistlint"))
        .args(["--json", "--design", design])
        .output()
        .expect("bistlint runs");
    assert!(out.status.success(), "bistlint --design {design} failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf-8 report")
}

fn check_golden(design: &str, file: &str) {
    let actual = bistlint_json(design);
    let path = golden_path(file);
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {}: {e} (run with BLESS=1)", path.display())
    });
    assert_eq!(
        actual,
        expected,
        "bistlint --json --design {design} drifted from {}; \
         re-bless with BLESS=1 if the change is intentional",
        path.display()
    );
}

#[test]
fn lp_mini_report_is_byte_stable() {
    check_golden("LP-MINI", "LP-MINI.json");
}

#[test]
fn lp_report_is_byte_stable() {
    check_golden("LP", "LP.json");
}

#[test]
fn json_report_parses_and_carries_the_summary() {
    let report = obs::JsonValue::parse(&bistlint_json("LP-MINI")).expect("valid JSON");
    assert_eq!(report.get("design").and_then(obs::JsonValue::as_str), Some("LP-MINI"));
    assert_eq!(report.get("schema").and_then(obs::JsonValue::as_u64), Some(1));
    let summary = report.get("summary").expect("summary object");
    assert_eq!(summary.get("errors").and_then(obs::JsonValue::as_u64), Some(0));
}
