//! 64-lane bit-sliced logic simulation with gate-level fault injection.
//!
//! Every node value is stored as `width` bit-planes of 64 lanes each:
//! lane `l` of plane `b` is bit `b` of machine `l`'s word. All lanes see
//! the same input sequence, so lane 0 can carry the fault-free machine
//! while lanes 1..64 carry machines with injected full-adder faults —
//! the classic *parallel fault simulation* arrangement, which handles
//! sequential (register) state exactly: each faulty machine's diverged
//! register contents simply live in its own lane.
//!
//! Adders and subtractors are evaluated cell by cell through the
//! five-gate model in [`crate::fulladder`], so faults can be forced on
//! any gate line of any cell in any lane.

use crate::fulladder::{eval_word, FaFault};
use crate::node::{NodeId, NodeKind};
use crate::Netlist;

/// A fault injected into one lane of one full-adder cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFault {
    /// Cell (bit) position within the adder, `0` = LSB.
    pub cell: u32,
    /// The stuck-at fault to force.
    pub fault: FaFault,
    /// Lane mask; the fault is active in every set lane.
    pub lanes: u64,
}

/// The bit-sliced simulator.
///
/// # Example
///
/// ```
/// use bist_rtl::{NetlistBuilder, sim::BitSlicedSim};
///
/// let mut b = NetlistBuilder::new(8)?;
/// let x = b.input("x");
/// let d = b.register(x);
/// let y = b.add(x, d);
/// b.output(y, "y");
/// let n = b.finish()?;
///
/// let mut sim = BitSlicedSim::new(&n);
/// sim.step(3);
/// assert_eq!(sim.lane_value(n.output_ids()[0], 0), 3); // 3 + 0
/// sim.step(5);
/// assert_eq!(sim.lane_value(n.output_ids()[0], 0), 8); // 5 + 3
/// # Ok::<(), bist_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitSlicedSim<'n> {
    netlist: &'n Netlist,
    w: usize,
    planes: Vec<u64>,
    state: Vec<u64>,
    faults: Vec<Vec<CellFault>>,
    faulty_nodes: Vec<u32>,
    scratch: Vec<(FaFault, u64)>,
}

impl<'n> BitSlicedSim<'n> {
    /// Creates a simulator with all registers reset to zero and no
    /// faults injected.
    pub fn new(netlist: &'n Netlist) -> Self {
        let w = netlist.width() as usize;
        let n = netlist.nodes().len();
        let mut sim = BitSlicedSim {
            netlist,
            w,
            planes: vec![0; n * w],
            state: vec![0; n * w],
            faults: vec![Vec::new(); n],
            faulty_nodes: Vec::new(),
            scratch: Vec::new(),
        };
        // Constants never change; fill their planes once.
        for (i, node) in netlist.nodes().iter().enumerate() {
            if let NodeKind::Const { raw } = node.kind {
                sim.broadcast(i, raw);
            }
        }
        sim
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Resets all register state to zero (faults are kept).
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|x| *x = 0);
    }

    /// Injects faults into an adder or subtractor node. Replaces any
    /// faults previously set on that node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an adder/subtractor or a cell index is
    /// outside the datapath width.
    pub fn set_faults(&mut self, node: NodeId, faults: Vec<CellFault>) {
        assert!(
            self.netlist.node(node).kind.is_arithmetic(),
            "faults can only be injected into adders/subtractors"
        );
        for f in &faults {
            assert!((f.cell as usize) < self.w, "cell {} outside datapath", f.cell);
        }
        let idx = node.index();
        if self.faults[idx].is_empty() && !faults.is_empty() {
            self.faulty_nodes.push(idx as u32);
        }
        if faults.is_empty() {
            self.faulty_nodes.retain(|&i| i as usize != idx);
        }
        self.faults[idx] = faults;
    }

    /// Removes every injected fault.
    pub fn clear_all_faults(&mut self) {
        for &i in &self.faulty_nodes {
            self.faults[i as usize].clear();
        }
        self.faulty_nodes.clear();
    }

    /// Advances one clock cycle with the same input word broadcast to
    /// all lanes (single-input netlists).
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have exactly one input.
    pub fn step(&mut self, input_raw: i64) {
        let inputs = self.netlist.input_ids();
        assert_eq!(inputs.len(), 1, "netlist does not have exactly one input");
        let id = inputs[0];
        self.step_with(&[(id, input_raw)]);
    }

    /// Advances one clock cycle driving every listed input.
    pub fn step_with(&mut self, inputs: &[(NodeId, i64)]) {
        for &(id, raw) in inputs {
            debug_assert!(matches!(self.netlist.node(id).kind, NodeKind::Input));
            self.broadcast(id.index(), raw);
        }
        self.eval_combinational();
        self.latch_registers();
    }

    fn broadcast(&mut self, node_idx: usize, raw: i64) {
        let base = node_idx * self.w;
        let bits = raw as u64;
        for b in 0..self.w {
            self.planes[base + b] = if (bits >> b) & 1 == 1 { !0u64 } else { 0 };
        }
    }

    fn eval_combinational(&mut self) {
        let w = self.w;
        let order: &[u32] = self.netlist.eval_order();
        for &idx in order {
            let i = idx as usize;
            let kind = self.netlist.nodes()[i].kind;
            match kind {
                NodeKind::Input | NodeKind::Const { .. } => {}
                NodeKind::Register { .. } => {
                    // Registers read their own stored state.
                    let base = i * w;
                    self.planes[base..base + w].copy_from_slice(&self.state[base..base + w]);
                }
                NodeKind::Output { src } => {
                    let (dst, s) = (i * w, src.index() * w);
                    let (head, tail) = split_pair(&mut self.planes, dst, s, w);
                    head.copy_from_slice(tail);
                }
                NodeKind::ShiftRight { src, amount } => {
                    let s = src.index() * w;
                    let dst = i * w;
                    let amount = amount as usize;
                    for b in 0..w {
                        let from = b + amount;
                        let v = if from < w {
                            self.planes[s + from]
                        } else {
                            self.planes[s + w - 1] // sign extension
                        };
                        self.planes[dst + b] = v;
                    }
                }
                NodeKind::Not { src } => {
                    let sp = src.index() * w;
                    let dst = i * w;
                    for bit in 0..w {
                        self.planes[dst + bit] = !self.planes[sp + bit];
                    }
                }
                NodeKind::SetLsb { src } => {
                    let sp = src.index() * w;
                    let dst = i * w;
                    self.planes[dst] = !0u64;
                    for bit in 1..w {
                        self.planes[dst + bit] = self.planes[sp + bit];
                    }
                }
                NodeKind::Add { a, b } => self.eval_arith(i, a, b, false),
                NodeKind::Sub { a, b } => self.eval_arith(i, a, b, true),
                NodeKind::CsaSum { a, b, c } => self.eval_csa(i, a, b, c, i, false),
                NodeKind::CsaCarry { a, b, c, sum } => self.eval_csa(i, a, b, c, sum.index(), true),
            }
        }
    }

    /// Evaluates one output of a carry-save stage. The stage's faults
    /// live on the paired sum node (`fault_node`); both outputs are
    /// computed through the same faulty gate network, so a single
    /// stuck-at consistently affects sum and carry.
    fn eval_csa(
        &mut self,
        i: usize,
        a: NodeId,
        b: NodeId,
        c: NodeId,
        fault_node: usize,
        carry_out: bool,
    ) {
        let w = self.w;
        let (pa, pb, pc) = (a.index() * w, b.index() * w, c.index() * w);
        let dst = i * w;
        if self.faults[fault_node].is_empty() {
            if carry_out {
                self.planes[dst] = 0;
                for bit in 0..w - 1 {
                    let (av, bv, cv) =
                        (self.planes[pa + bit], self.planes[pb + bit], self.planes[pc + bit]);
                    self.planes[dst + bit + 1] = (av & bv) | ((av ^ bv) & cv);
                }
            } else {
                for bit in 0..w {
                    self.planes[dst + bit] =
                        self.planes[pa + bit] ^ self.planes[pb + bit] ^ self.planes[pc + bit];
                }
            }
            return;
        }
        if carry_out {
            self.planes[dst] = 0;
        }
        for bit in 0..w {
            let (av, bv, cv) =
                (self.planes[pa + bit], self.planes[pb + bit], self.planes[pc + bit]);
            self.scratch.clear();
            for f in &self.faults[fault_node] {
                if f.cell as usize == bit {
                    self.scratch.push((f.fault, f.lanes));
                }
            }
            let (sum, cout) = eval_word(av, bv, cv, &self.scratch);
            if carry_out {
                if bit + 1 < w {
                    self.planes[dst + bit + 1] = cout;
                }
            } else {
                self.planes[dst + bit] = sum;
            }
        }
    }

    fn eval_arith(&mut self, i: usize, a: NodeId, b: NodeId, subtract: bool) {
        let w = self.w;
        let pa = a.index() * w;
        let pb = b.index() * w;
        let dst = i * w;
        // Sign trimming: full cells below `top`, a carry-less sum cell
        // at `top`, sign-extension wiring above.
        let top = self.netlist.msb_trim(NodeId(i as u32)) as usize;
        let mut carry: u64 = if subtract { !0u64 } else { 0 };
        if self.faults[i].is_empty() {
            for bit in 0..top {
                let av = self.planes[pa + bit];
                let bv = if subtract { !self.planes[pb + bit] } else { self.planes[pb + bit] };
                let x1 = av ^ bv;
                self.planes[dst + bit] = x1 ^ carry;
                carry = (av & bv) | (x1 & carry);
            }
            let av = self.planes[pa + top];
            let bv = if subtract { !self.planes[pb + top] } else { self.planes[pb + top] };
            self.planes[dst + top] = av ^ bv ^ carry;
        } else {
            for bit in 0..top {
                let av = self.planes[pa + bit];
                let bv = if subtract { !self.planes[pb + bit] } else { self.planes[pb + bit] };
                self.scratch.clear();
                for f in &self.faults[i] {
                    if f.cell as usize == bit {
                        self.scratch.push((f.fault, f.lanes));
                    }
                }
                let (sum, cout) = eval_word(av, bv, carry, &self.scratch);
                self.planes[dst + bit] = sum;
                carry = cout;
            }
            let av = self.planes[pa + top];
            let bv = if subtract { !self.planes[pb + top] } else { self.planes[pb + top] };
            self.scratch.clear();
            for f in &self.faults[i] {
                if f.cell as usize == top {
                    self.scratch.push((f.fault, f.lanes));
                }
            }
            self.planes[dst + top] =
                crate::fulladder::eval_word_sum_only(av, bv, carry, &self.scratch);
        }
        let sign = self.planes[dst + top];
        for bit in top + 1..w {
            self.planes[dst + bit] = sign;
        }
    }

    fn latch_registers(&mut self) {
        let w = self.w;
        for &idx in self.netlist.register_indices() {
            let i = idx as usize;
            if let NodeKind::Register { src } = self.netlist.nodes()[i].kind {
                let s = src.index() * w;
                let d = i * w;
                self.state[d..d + w].copy_from_slice(&self.planes[s..s + w]);
            }
        }
    }

    /// Reads one lane's word at a node, sign-extended to `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn lane_value(&self, node: NodeId, lane: u32) -> i64 {
        assert!(lane < 64, "lane out of range");
        let base = node.index() * self.w;
        let mut bits: u64 = 0;
        for b in 0..self.w {
            bits |= ((self.planes[base + b] >> lane) & 1) << b;
        }
        self.netlist.format().sign_extend(bits)
    }

    /// Mask of lanes whose *output* words differ from `reference_lane`'s
    /// this cycle (the reference lane's own bit is always clear).
    pub fn output_diff_lanes(&self, reference_lane: u32) -> u64 {
        let mut diff: u64 = 0;
        for out in self.netlist.output_ids() {
            let base = out.index() * self.w;
            for b in 0..self.w {
                let plane = self.planes[base + b];
                let good = (plane >> reference_lane) & 1;
                let broadcast = good.wrapping_neg(); // 0 or all-ones
                diff |= plane ^ broadcast;
            }
        }
        diff & !(1u64 << reference_lane)
    }

    /// Folds the current cycle's output word of every lane into a
    /// signature bank, one [`crate::misr::MisrBank::absorb_planes`] per
    /// output node in [`Netlist::output_ids`] order.
    ///
    /// The planes go straight from the simulator into the bank — no
    /// per-lane word extraction — so compaction costs `O(width)` word
    /// operations per cycle for all 64 machines together. Lane `l` of
    /// the bank then tracks exactly the signature a scalar
    /// [`crate::misr::Misr`] would compute over lane `l`'s
    /// (sign-extended) output stream.
    pub fn fold_outputs(&self, bank: &mut crate::misr::MisrBank) {
        for out in self.netlist.output_ids() {
            let base = out.index() * self.w;
            bank.absorb_planes(&self.planes[base..base + self.w]);
        }
    }

    /// Snapshot of one lane's register state (one `width`-bit word per
    /// register, in [`Netlist::register_indices`] order).
    pub fn register_state_lane(&self, lane: u32) -> Vec<u64> {
        assert!(lane < 64, "lane out of range");
        self.netlist
            .register_indices()
            .iter()
            .map(|&idx| {
                let base = idx as usize * self.w;
                let mut bits: u64 = 0;
                for b in 0..self.w {
                    bits |= ((self.state[base + b] >> lane) & 1) << b;
                }
                bits
            })
            .collect()
    }

    /// Writes a register-state snapshot into one lane (the inverse of
    /// [`BitSlicedSim::register_state_lane`]); used when repacking faulty
    /// machines between simulation passes without losing their history.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the register count
    /// or `lane >= 64`.
    pub fn set_register_state_lane(&mut self, lane: u32, snapshot: &[u64]) {
        assert!(lane < 64, "lane out of range");
        assert_eq!(
            snapshot.len(),
            self.netlist.register_indices().len(),
            "snapshot does not match register count"
        );
        for (&idx, &bits) in self.netlist.register_indices().iter().zip(snapshot) {
            let base = idx as usize * self.w;
            for b in 0..self.w {
                let mask = 1u64 << lane;
                if (bits >> b) & 1 == 1 {
                    self.state[base + b] |= mask;
                } else {
                    self.state[base + b] &= !mask;
                }
            }
        }
    }
}

/// Splits one vector into two non-overlapping `len`-sized windows at
/// `dst` and `src` (dst gets the mutable half).
fn split_pair(v: &mut [u64], dst: usize, src: usize, len: usize) -> (&mut [u64], &[u64]) {
    assert!(dst + len <= src || src + len <= dst, "windows overlap");
    if dst < src {
        let (a, b) = v.split_at_mut(src);
        (&mut a[dst..dst + len], &b[..len])
    } else {
        let (a, b) = v.split_at_mut(dst);
        (&mut b[..len], &a[src..src + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fulladder::Line;
    use crate::NetlistBuilder;
    use fixedpoint::QFormat;

    fn adder_netlist(width: u32) -> Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.add_labeled(x, d, "acc");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn functional_add_with_delay() {
        let n = adder_netlist(12);
        let out = n.output_ids()[0];
        let mut sim = BitSlicedSim::new(&n);
        let q = QFormat::new(12, 11).unwrap();
        let seq = [100i64, -200, 321, 1000, -1024];
        let mut prev = 0i64;
        for &v in &seq {
            sim.step(v);
            assert_eq!(sim.lane_value(out, 0), q.wrap(v + prev));
            assert_eq!(sim.lane_value(out, 63), q.wrap(v + prev));
            prev = v;
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        let mut b = NetlistBuilder::new(10).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.sub(x, d);
        b.output(y, "y");
        let n = b.finish().unwrap();
        let out = n.output_ids()[0];
        let q = QFormat::new(10, 9).unwrap();
        let mut sim = BitSlicedSim::new(&n);
        let mut prev = 0i64;
        for v in [-512i64, 511, -100, 37, 250] {
            sim.step(v);
            assert_eq!(sim.lane_value(out, 0), q.wrap(v - prev), "input {v}");
            prev = v;
        }
    }

    #[test]
    fn shift_is_arithmetic() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let s = b.shift_right(x, 2);
        b.output(s, "y");
        let n = b.finish().unwrap();
        let out = n.output_ids()[0];
        let mut sim = BitSlicedSim::new(&n);
        sim.step(-5);
        assert_eq!(sim.lane_value(out, 0), -2); // -5 >> 2 = -2 (floor)
        sim.step(7);
        assert_eq!(sim.lane_value(out, 0), 1);
    }

    #[test]
    fn injected_fault_shows_only_in_its_lane() {
        let n = adder_netlist(12);
        let acc = n.find_label("acc").unwrap();
        let out = n.output_ids()[0];
        let mut sim = BitSlicedSim::new(&n);
        // Stuck-at-1 on the sum line of cell 0: forces output LSB to 1.
        sim.set_faults(
            acc,
            vec![CellFault {
                cell: 0,
                fault: FaFault { line: Line::Sum, stuck_one: true },
                lanes: 1 << 5,
            }],
        );
        sim.step(0); // good sum = 0, faulty lane reads 1
        assert_eq!(sim.lane_value(out, 0), 0);
        assert_eq!(sim.lane_value(out, 5), 1);
        assert_eq!(sim.output_diff_lanes(0), 1 << 5);
    }

    #[test]
    fn carry_fault_propagates_to_upper_bits() {
        let n = adder_netlist(12);
        let acc = n.find_label("acc").unwrap();
        let out = n.output_ids()[0];
        let mut sim = BitSlicedSim::new(&n);
        // cout stuck-at-1 on cell 3 injects a carry into cell 4.
        sim.set_faults(
            acc,
            vec![CellFault {
                cell: 3,
                fault: FaFault { line: Line::Cout, stuck_one: true },
                lanes: 1,
            }],
        );
        sim.step(0);
        assert_eq!(sim.lane_value(out, 1), 0); // unfaulted lane
        assert_eq!(sim.lane_value(out, 0), 16); // +2^4 from forced carry
    }

    #[test]
    fn faulty_machine_state_diverges_and_persists() {
        let n = adder_netlist(12);
        let acc = n.find_label("acc").unwrap();
        let out = n.output_ids()[0];
        let mut sim = BitSlicedSim::new(&n);
        sim.set_faults(
            acc,
            vec![CellFault {
                cell: 0,
                fault: FaFault { line: Line::Sum, stuck_one: true },
                lanes: 1 << 1,
            }],
        );
        sim.step(0);
        sim.clear_all_faults();
        // After clearing the fault the corrupted value (1) sits in no
        // register (the register holds x, not the sum), so both lanes
        // agree again next cycle.
        sim.step(2);
        assert_eq!(sim.lane_value(out, 0), sim.lane_value(out, 1));
    }

    #[test]
    fn state_snapshot_round_trips() {
        let n = adder_netlist(12);
        let mut sim = BitSlicedSim::new(&n);
        sim.step(100);
        sim.step(-3);
        let snap = sim.register_state_lane(0);
        let mut sim2 = BitSlicedSim::new(&n);
        sim2.set_register_state_lane(7, &snap);
        assert_eq!(sim2.register_state_lane(7), snap);
        // Continuing both machines produces identical outputs.
        let out = n.output_ids()[0];
        sim.step(55);
        sim2.step(55);
        assert_eq!(sim.lane_value(out, 0), sim2.lane_value(out, 7));
    }

    #[test]
    fn reset_clears_state() {
        let n = adder_netlist(12);
        let out = n.output_ids()[0];
        let mut sim = BitSlicedSim::new(&n);
        sim.step(500);
        sim.reset();
        sim.step(7);
        assert_eq!(sim.lane_value(out, 0), 7);
    }

    #[test]
    #[should_panic(expected = "adders/subtractors")]
    fn faults_on_non_adder_panic() {
        let n = adder_netlist(12);
        let mut sim = BitSlicedSim::new(&n);
        sim.set_faults(
            n.input_ids()[0],
            vec![CellFault {
                cell: 0,
                fault: FaFault { line: Line::Sum, stuck_one: true },
                lanes: 1,
            }],
        );
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_all_lanes_agree_without_faults(
                seq in proptest::collection::vec(-2048i64..=2047, 1..20),
                lane in 1u32..64,
            ) {
                let n = adder_netlist(12);
                let out = n.output_ids()[0];
                let mut sim = BitSlicedSim::new(&n);
                for &v in &seq {
                    sim.step(v);
                    prop_assert_eq!(sim.lane_value(out, 0), sim.lane_value(out, lane));
                    prop_assert_eq!(sim.output_diff_lanes(0), 0);
                }
            }

            #[test]
            fn prop_matches_reference_model(
                seq in proptest::collection::vec(-2048i64..=2047, 1..30)
            ) {
                let n = adder_netlist(12);
                let out = n.output_ids()[0];
                let q = QFormat::new(12, 11).unwrap();
                let mut sim = BitSlicedSim::new(&n);
                let mut prev = 0i64;
                for &v in &seq {
                    sim.step(v);
                    prop_assert_eq!(sim.lane_value(out, 0), q.wrap(v + prev));
                    prev = v;
                }
            }
        }
    }
}
