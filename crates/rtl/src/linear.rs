//! Exact linear (floating-point) evaluation of a netlist.
//!
//! For variance analysis (the paper's Eq. 1) each adder output is
//! characterized by the impulse response of the linear subsystem that
//! drives it. This module evaluates the netlist over `f64`, treating
//! shifts as exact scalings and ignoring truncation and wrap-around —
//! the idealization under which the netlist *is* a linear system — and
//! extracts per-node impulse responses.

use crate::node::{NodeId, NodeKind};
use crate::Netlist;

/// A linear (idealized) simulator over `f64` values in `[-1, 1)` units.
#[derive(Debug, Clone)]
pub struct LinearSim<'n> {
    netlist: &'n Netlist,
    values: Vec<f64>,
    state: Vec<f64>,
}

impl<'n> LinearSim<'n> {
    /// Creates an idealized simulator with zeroed registers.
    pub fn new(netlist: &'n Netlist) -> Self {
        let n = netlist.nodes().len();
        let mut sim = LinearSim { netlist, values: vec![0.0; n], state: vec![0.0; n] };
        for (i, node) in netlist.nodes().iter().enumerate() {
            if let NodeKind::Const { raw } = node.kind {
                sim.values[i] = raw as f64 * netlist.format().lsb();
            }
        }
        sim
    }

    /// Advances one cycle with the given input value (single-input
    /// netlists).
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have exactly one input.
    pub fn step(&mut self, input: f64) {
        let inputs = self.netlist.input_ids();
        assert_eq!(inputs.len(), 1, "netlist does not have exactly one input");
        self.values[inputs[0].index()] = input;
        for &idx in self.netlist.eval_order() {
            let i = idx as usize;
            match self.netlist.nodes()[i].kind {
                NodeKind::Input | NodeKind::Const { .. } => {}
                NodeKind::Register { .. } => self.values[i] = self.state[i],
                NodeKind::Output { src } => self.values[i] = self.values[src.index()],
                NodeKind::ShiftRight { src, amount } => {
                    self.values[i] = self.values[src.index()] * 2f64.powi(-(amount as i32));
                }
                NodeKind::Add { a, b } => {
                    self.values[i] = self.values[a.index()] + self.values[b.index()];
                }
                NodeKind::Sub { a, b } => {
                    self.values[i] = self.values[a.index()] - self.values[b.index()];
                }
                NodeKind::Not { src } => {
                    self.values[i] = -self.values[src.index()] - self.netlist.format().lsb();
                }
                NodeKind::SetLsb { src } => {
                    // The carry word's LSB is structurally zero, so the
                    // tie adds exactly one raw LSB.
                    self.values[i] = self.values[src.index()] + self.netlist.format().lsb();
                }
                // Carry-save stages are bitwise and therefore nonlinear
                // per output; only their *pair sum* is linear. The
                // idealization attributes the whole stage value to the
                // sum node (carry reads zero), which keeps every
                // downstream (merged) response exact.
                NodeKind::CsaSum { a, b, c } => {
                    self.values[i] =
                        self.values[a.index()] + self.values[b.index()] + self.values[c.index()];
                }
                NodeKind::CsaCarry { .. } => self.values[i] = 0.0,
            }
        }
        for &idx in self.netlist.register_indices() {
            let i = idx as usize;
            if let NodeKind::Register { src } = self.netlist.nodes()[i].kind {
                self.state[i] = self.values[src.index()];
            }
        }
    }

    /// The current value at a node.
    pub fn value(&self, node: NodeId) -> f64 {
        self.values[node.index()]
    }
}

/// Impulse response of the linear subsystem driving `node`, of length
/// `len`: the node's response to the input sequence `1, 0, 0, ...`.
///
/// For the FIR structures in `bist-filters` the response is exact after
/// the register pipeline flushes; `len` should cover the filter order.
///
/// # Example
///
/// ```
/// use bist_rtl::{NetlistBuilder, linear::impulse_response};
///
/// let mut b = NetlistBuilder::new(16)?;
/// let x = b.input("x");
/// let h0 = b.shift_right(x, 1);
/// let d = b.register(x);
/// let h1 = b.shift_right(d, 2);
/// let y = b.add(h0, h1);
/// b.output(y, "y");
/// let n = b.finish()?;
/// let h = impulse_response(&n, n.output_ids()[0], 4);
/// assert_eq!(h, vec![0.5, 0.25, 0.0, 0.0]);
/// # Ok::<(), bist_rtl::RtlError>(())
/// ```
pub fn impulse_response(netlist: &Netlist, node: NodeId, len: usize) -> Vec<f64> {
    impulse_responses(netlist, &[node], len).remove(0)
}

/// Impulse responses for many nodes in one pass, in the same order as
/// `nodes`.
///
/// Computed as the *difference* between an impulse run and a zero-input
/// run, so netlists with constant (affine) terms — e.g. the carry-save
/// correction ties — still yield their true linear responses.
pub fn impulse_responses(netlist: &Netlist, nodes: &[NodeId], len: usize) -> Vec<Vec<f64>> {
    let mut sim = LinearSim::new(netlist);
    let mut zero = LinearSim::new(netlist);
    let mut out = vec![Vec::with_capacity(len); nodes.len()];
    for t in 0..len {
        sim.step(if t == 0 { 1.0 } else { 0.0 });
        zero.step(0.0);
        for (h, &id) in out.iter_mut().zip(nodes) {
            h.push(sim.value(id) - zero.value(id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn two_tap() -> Netlist {
        // y = 0.5 x[n] + 0.25 x[n-1]
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let t0 = b.shift_right(x, 1);
        let d = b.register(x);
        let t1 = b.shift_right(d, 2);
        let y = b.add_labeled(t0, t1, "acc");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn impulse_response_of_fir() {
        let n = two_tap();
        let h = impulse_response(&n, n.output_ids()[0], 5);
        assert_eq!(h, vec![0.5, 0.25, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn step_response_accumulates() {
        let n = two_tap();
        let mut sim = LinearSim::new(&n);
        sim.step(1.0);
        sim.step(1.0);
        assert!((sim.value(n.output_ids()[0]) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn sub_nodes_subtract() {
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let y = b.sub(x, d);
        b.output(y, "y");
        let n = b.finish().unwrap();
        let h = impulse_response(&n, n.output_ids()[0], 3);
        assert_eq!(h, vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn batch_matches_single() {
        let n = two_tap();
        let acc = n.find_label("acc").unwrap();
        let out = n.output_ids()[0];
        let batch = impulse_responses(&n, &[acc, out], 6);
        assert_eq!(batch[0], impulse_response(&n, acc, 6));
        assert_eq!(batch[1], impulse_response(&n, out, 6));
    }

    #[test]
    fn linear_matches_bitsliced_when_no_truncation() {
        // With shifts that never drop set bits, the linear and the
        // bit-sliced simulators agree exactly.
        let n = two_tap();
        let out = n.output_ids()[0];
        let mut lin = LinearSim::new(&n);
        let mut bits = crate::sim::BitSlicedSim::new(&n);
        let lsb = n.format().lsb();
        for raw in [1024i64, -2048, 4096, 0, 512] {
            lin.step(raw as f64 * lsb);
            bits.step(raw);
            let lv = lin.value(out);
            let bv = bits.lane_value(out, 0) as f64 * lsb;
            assert!((lv - bv).abs() < 1e-12, "{lv} vs {bv}");
        }
    }
}
