//! Exact input-cone reachability analysis: which `(a, b, carry)`
//! combinations each full-adder cell can actually see.
//!
//! The constant-coefficient multipliers of a CSD filter add *shifted
//! copies of the same input word*, so their cells' inputs are strongly
//! correlated: many of the eight `(a, b, ci)` combinations can never
//! occur, and any fault distinguishable only under an unreachable
//! combination is provably redundant. The paper removes exactly these
//! ("further optimizations can be performed on the upper bits of many
//! adders to eliminate redundancies that are induced by signal
//! constraints").
//!
//! For *pure* adders — arithmetic nodes whose operands are combinational
//! functions of the current input word — the analysis is exact: every
//! possible input word is enumerated (there are only `2^input_bits`)
//! and each cell's reachable-combination mask is recorded. For adders
//! with state-dependent operands (the accumulation chain), any operand
//! that is itself pure contributes an exact per-cell *bit marginal*
//! (can the operand bit be 0? be 1?), which soundly restricts the
//! combination mask without assuming anything about the other inputs.

use crate::node::{NodeId, NodeKind};
use crate::Netlist;
use std::collections::HashMap;

/// Reachable-combination masks for the arithmetic nodes of a netlist.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Exact per-cell combo masks for pure adders (bit `t` set ⇔
    /// `abc = t` reachable).
    joint: HashMap<NodeId, Vec<u8>>,
    /// Per-cell marginals for non-pure adders, as combo masks built
    /// from any pure operand's reachable bit values.
    marginal: HashMap<NodeId, Vec<u8>>,
}

impl Reachability {
    /// Runs the analysis, enumerating every value of a `input_bits`-wide
    /// input left-aligned into the datapath.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have exactly one input, or
    /// `input_bits` exceeds 20 (the enumeration would be excessive).
    pub fn analyze(netlist: &Netlist, input_bits: u32) -> Reachability {
        assert!(input_bits <= 20, "input enumeration of 2^{input_bits} values is excessive");
        let inputs = netlist.input_ids();
        assert_eq!(inputs.len(), 1, "reachability analysis needs exactly one input");
        let input = inputs[0];
        let width = netlist.width();
        let align = width - input_bits;
        let q = netlist.format();

        let pure = pure_nodes(netlist);
        let n = netlist.nodes().len();

        // Joint masks for pure arithmetic nodes; bit-value marginals
        // (bit0: value-0 seen, bit1: value-1 seen) per cell for every
        // pure node (for the marginal constraints of non-pure adders).
        let mut joint: HashMap<NodeId, Vec<u8>> = HashMap::new();
        let mut seen_bits: HashMap<usize, Vec<u8>> = HashMap::new();
        for (i, node) in netlist.nodes().iter().enumerate() {
            if pure[i] && node.kind.is_arithmetic() {
                joint.insert(NodeId(i as u32), vec![0u8; width as usize]);
            }
            if pure[i] {
                seen_bits.insert(i, vec![0u8; width as usize]);
            }
        }

        let mut values = vec![0i64; n];
        let lo = -(1i64 << (input_bits - 1));
        let hi = 1i64 << (input_bits - 1);
        for v in lo..hi {
            let raw = v << align;
            values[input.index()] = raw;
            for &idx in netlist.eval_order() {
                let i = idx as usize;
                if !pure[i] {
                    continue;
                }
                match netlist.nodes()[i].kind {
                    NodeKind::Input => {}
                    NodeKind::Const { raw } => values[i] = raw,
                    NodeKind::Register { .. }
                    | NodeKind::CsaSum { .. }
                    | NodeKind::CsaCarry { .. } => {
                        unreachable!("registers and carry-save stages are never pure")
                    }
                    NodeKind::Output { src } => values[i] = values[src.index()],
                    NodeKind::ShiftRight { src, amount } => {
                        values[i] = values[src.index()] >> amount.min(62);
                    }
                    NodeKind::Not { src } => {
                        values[i] = q.wrap(-values[src.index()] - 1);
                    }
                    NodeKind::SetLsb { src } => {
                        values[i] = q.sign_extend(q.to_bits(values[src.index()]) | 1);
                    }
                    NodeKind::Add { a, b } => {
                        let (av, bv) = (values[a.index()], values[b.index()]);
                        values[i] = q.wrap(av + bv);
                        record_combos(
                            joint.get_mut(&NodeId(idx)).expect("pure adder registered"),
                            q.to_bits(av),
                            q.to_bits(bv),
                            false,
                            width,
                        );
                    }
                    NodeKind::Sub { a, b } => {
                        let (av, bv) = (values[a.index()], values[b.index()]);
                        values[i] = q.wrap(av - bv);
                        record_combos(
                            joint.get_mut(&NodeId(idx)).expect("pure adder registered"),
                            q.to_bits(av),
                            q.to_bits(bv),
                            true,
                            width,
                        );
                    }
                }
                if let Some(bits) = seen_bits.get_mut(&i) {
                    let pattern = q.to_bits(values[i]);
                    for (cell, b) in bits.iter_mut().enumerate() {
                        *b |= 1 << ((pattern >> cell) & 1);
                    }
                }
            }
        }

        // Marginal constraints for non-pure adders with pure operands.
        let mut marginal: HashMap<NodeId, Vec<u8>> = HashMap::new();
        for (i, node) in netlist.nodes().iter().enumerate() {
            if pure[i] || !node.kind.is_arithmetic() {
                continue;
            }
            let (a, b, is_sub) = match node.kind {
                NodeKind::Add { a, b } => (a, b, false),
                NodeKind::Sub { a, b } => (a, b, true),
                // Carry-save stages get their (weaker) constraints from
                // the range-based masks instead.
                NodeKind::CsaSum { .. } => continue,
                _ => unreachable!("arithmetic is add, sub or csa"),
            };
            let mut masks = vec![0xFFu8; width as usize];
            let mut constrained = false;
            if let Some(bits) = seen_bits.get(&a.index()) {
                for (cell, &seen) in bits.iter().enumerate() {
                    masks[cell] &= a_marginal_mask(seen);
                }
                constrained = true;
            }
            if let Some(bits) = seen_bits.get(&b.index()) {
                for (cell, &seen) in bits.iter().enumerate() {
                    // The cell's B line carries ~b for a subtractor.
                    let seen_line = if is_sub { swap_bits(seen) } else { seen };
                    masks[cell] &= b_marginal_mask(seen_line);
                }
                constrained = true;
            }
            if constrained {
                marginal.insert(NodeId(i as u32), masks);
            }
        }

        Reachability { joint, marginal }
    }

    /// The reachable-combination mask for `cell` of an arithmetic node:
    /// exact for pure adders, marginal-constrained otherwise, `0xFF`
    /// when nothing is known.
    pub fn combo_mask(&self, node: NodeId, cell: u32) -> u8 {
        if let Some(m) = self.joint.get(&node) {
            return m.get(cell as usize).copied().unwrap_or(0);
        }
        if let Some(m) = self.marginal.get(&node) {
            return m.get(cell as usize).copied().unwrap_or(0xFF);
        }
        0xFF
    }

    /// `true` if the node's combo masks are exact (the node is a pure
    /// function of the current input word).
    pub fn is_exact(&self, node: NodeId) -> bool {
        self.joint.contains_key(&node)
    }
}

/// Marks nodes that are combinational functions of the current input.
fn pure_nodes(netlist: &Netlist) -> Vec<bool> {
    let n = netlist.nodes().len();
    let mut pure = vec![false; n];
    for &idx in netlist.eval_order() {
        let i = idx as usize;
        pure[i] = match netlist.nodes()[i].kind {
            NodeKind::Input | NodeKind::Const { .. } => true,
            NodeKind::Register { .. } => false,
            // Carry-save stages are excluded from the exact enumeration
            // (the multipliers it serves are ripple structures); their
            // masks fall back to the range-based constraints.
            NodeKind::CsaSum { .. } | NodeKind::CsaCarry { .. } => false,
            ref k => k.operands().iter().all(|op| pure[op.index()]),
        };
    }
    pure
}

/// Ripples one (a, b) operand pair through the adder, OR-ing each
/// cell's observed `(a, b, ci)` combination into `masks`.
fn record_combos(masks: &mut [u8], a_bits: u64, b_bits: u64, subtract: bool, width: u32) {
    let b_line = if subtract { !b_bits } else { b_bits };
    let mut carry: u64 = u64::from(subtract);
    for (cell, mask) in masks.iter_mut().enumerate().take(width as usize) {
        let a = (a_bits >> cell) & 1;
        let b = (b_line >> cell) & 1;
        let combo = (a << 2) | (b << 1) | carry;
        *mask |= 1 << combo;
        let x1 = a ^ b;
        carry = (a & b) | (x1 & carry);
    }
}

/// Combos consistent with the observed values of the A line
/// (`seen` bit0 = value 0 observed, bit1 = value 1 observed).
fn a_marginal_mask(seen: u8) -> u8 {
    let mut mask = 0u8;
    if seen & 0b01 != 0 {
        mask |= 0b0000_1111; // a = 0 combos
    }
    if seen & 0b10 != 0 {
        mask |= 0b1111_0000; // a = 1 combos
    }
    mask
}

/// Combos consistent with the observed values of the B line.
fn b_marginal_mask(seen: u8) -> u8 {
    let mut mask = 0u8;
    if seen & 0b01 != 0 {
        mask |= 0b0011_0011; // b = 0 combos
    }
    if seen & 0b10 != 0 {
        mask |= 0b1100_1100; // b = 1 combos
    }
    mask
}

/// Swaps the "seen 0"/"seen 1" bits (an inverted line sees inverted
/// values).
fn swap_bits(seen: u8) -> u8 {
    ((seen & 1) << 1) | ((seen >> 1) & 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn pure_marking_stops_at_registers() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let s = b.shift_right(x, 1);
        let d = b.register(x);
        let pure_add = b.add_labeled(x, s, "pure");
        let impure_add = b.add_labeled(pure_add, d, "impure");
        b.output(impure_add, "y");
        let n = b.finish().unwrap();
        let r = Reachability::analyze(&n, 8);
        assert!(r.is_exact(n.find_label("pure").unwrap()));
        assert!(!r.is_exact(n.find_label("impure").unwrap()));
    }

    #[test]
    fn correlated_operands_restrict_combos() {
        // x + x: a-bit always equals b-bit, so combos with a != b are
        // unreachable at every cell.
        let mut b = NetlistBuilder::new(6).unwrap();
        let x = b.input("x");
        let s = b.add_labeled(x, x, "dbl");
        b.output(s, "y");
        let n = b.finish().unwrap();
        let r = Reachability::analyze(&n, 6);
        let node = n.find_label("dbl").unwrap();
        for cell in 0..6 {
            let mask = r.combo_mask(node, cell);
            // Unreachable: a=0,b=1 (combos 2,3) and a=1,b=0 (combos 4,5).
            assert_eq!(mask & 0b0011_1100, 0, "cell {cell}: {mask:08b}");
        }
    }

    #[test]
    fn exhaustive_enumeration_matches_brute_force() {
        // x>>1 + x>>3 over a 6-bit input: check cell 2's mask against a
        // brute-force recomputation.
        let mut b = NetlistBuilder::new(6).unwrap();
        let x = b.input("x");
        let s1 = b.shift_right(x, 1);
        let s3 = b.shift_right(x, 3);
        let sum = b.add_labeled(s1, s3, "sum");
        b.output(sum, "y");
        let n = b.finish().unwrap();
        let r = Reachability::analyze(&n, 6);
        let node = n.find_label("sum").unwrap();

        let mut expect = [0u8; 6];
        for v in -32i64..32 {
            let a = (v >> 1) as u64 & 0x3F;
            let bb = (v >> 3) as u64 & 0x3F;
            let mut carry = 0u64;
            for (cell, e) in expect.iter_mut().enumerate() {
                let ab = (a >> cell) & 1;
                let bbit = (bb >> cell) & 1;
                *e |= 1 << ((ab << 2) | (bbit << 1) | carry);
                let x1 = ab ^ bbit;
                carry = (ab & bbit) | (x1 & carry);
            }
        }
        for (cell, &e) in expect.iter().enumerate() {
            assert_eq!(r.combo_mask(node, cell as u32), e, "cell {cell}");
        }
    }

    #[test]
    fn subtractor_lsb_carry_is_one() {
        let mut b = NetlistBuilder::new(6).unwrap();
        let x = b.input("x");
        let s = b.shift_right(x, 1);
        let d = b.sub_labeled(x, s, "diff");
        b.output(d, "y");
        let n = b.finish().unwrap();
        let r = Reachability::analyze(&n, 6);
        let node = n.find_label("diff").unwrap();
        // Cell 0 of a subtractor always has carry-in 1.
        assert_eq!(r.combo_mask(node, 0) & 0b0101_0101, 0);
    }

    #[test]
    fn impure_adder_gets_marginal_from_pure_operand() {
        // The accumulation pattern: register + (x>>4). The product's
        // upper cells can still be 0 or 1 (sign), but cells above the
        // shifted word's value range... check at least that a marginal
        // mask exists and is sound (never empties a cell reachable by
        // the good machine).
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let prod = b.shift_right(x, 4);
        let dreg = b.register(x);
        let acc = b.add_labeled(dreg, prod, "acc");
        b.output(acc, "y");
        let n = b.finish().unwrap();
        let r = Reachability::analyze(&n, 8);
        let node = n.find_label("acc").unwrap();
        assert!(!r.is_exact(node));
        for cell in 0..8 {
            let mask = r.combo_mask(node, cell);
            assert_ne!(mask, 0, "cell {cell} emptied");
            // b can be 0 and 1 at every cell here (sign extension),
            // but a is unconstrained: a-combos must both be present.
            assert_ne!(mask & 0b0000_1111, 0);
            assert_ne!(mask & 0b1111_0000, 0);
        }
    }

    #[test]
    fn unknown_nodes_are_unconstrained() {
        let mut b = NetlistBuilder::new(6).unwrap();
        let x = b.input("x");
        b.output(x, "y");
        let n = b.finish().unwrap();
        let r = Reachability::analyze(&n, 6);
        assert_eq!(r.combo_mask(NodeId(0), 3), 0xFF);
    }
}
