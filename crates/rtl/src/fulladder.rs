//! Gate-level model of one full-adder cell and its stuck-at fault
//! universe.
//!
//! Every ripple-carry adder bit is the classic five-gate cell:
//!
//! ```text
//!   x1   = a XOR b
//!   sum  = x1 XOR ci
//!   and1 = a AND b
//!   and2 = x1 AND ci
//!   cout = and1 OR and2
//! ```
//!
//! Stuck-at-0/1 faults are modeled on all 16 circuit lines (stems and
//! fan-out branches). Faults are collapsed by *functional equivalence*:
//! two faults whose faulty `(sum, cout)` truth tables agree on every
//! reachable input combination are interchangeable for any test, so one
//! representative per class suffices. The same truth tables also tell us
//! exactly which of the eight cell tests `T0..T7` (test number = the
//! binary value `abc` of primary input, secondary input and carry-in —
//! the paper's Section 4.1 numbering) detect each class; the paper's
//! Table 2 falls out of this analysis (see `bist-core`).

/// One of the sixteen lines of the five-gate full-adder cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Line {
    /// Primary-input stem `a`.
    AStem,
    /// Branch of `a` into the sum XOR.
    AXor,
    /// Branch of `a` into the carry AND.
    AAnd,
    /// Secondary-input stem `b`.
    BStem,
    /// Branch of `b` into the sum XOR.
    BXor,
    /// Branch of `b` into the carry AND.
    BAnd,
    /// Carry-in stem.
    CiStem,
    /// Branch of carry-in into the sum XOR.
    CiXor,
    /// Branch of carry-in into the carry AND.
    CiAnd,
    /// Stem of the half-sum `x1 = a ^ b`.
    X1Stem,
    /// Branch of `x1` into the final XOR.
    X1Xor,
    /// Branch of `x1` into the second AND.
    X1And,
    /// Output of the first AND (`a & b`).
    And1,
    /// Output of the second AND (`x1 & ci`).
    And2,
    /// Sum output.
    Sum,
    /// Carry output.
    Cout,
}

/// All sixteen lines, in evaluation order.
pub const ALL_LINES: [Line; 16] = [
    Line::AStem,
    Line::AXor,
    Line::AAnd,
    Line::BStem,
    Line::BXor,
    Line::BAnd,
    Line::CiStem,
    Line::CiXor,
    Line::CiAnd,
    Line::X1Stem,
    Line::X1Xor,
    Line::X1And,
    Line::And1,
    Line::And2,
    Line::Sum,
    Line::Cout,
];

/// A single stuck-at fault on one cell line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaFault {
    /// The faulty line.
    pub line: Line,
    /// `true` for stuck-at-1, `false` for stuck-at-0.
    pub stuck_one: bool,
}

impl FaFault {
    /// Every stuck-at fault of the cell (32 uncollapsed faults).
    pub fn all() -> Vec<FaFault> {
        ALL_LINES
            .iter()
            .flat_map(|&line| {
                [FaFault { line, stuck_one: false }, FaFault { line, stuck_one: true }]
            })
            .collect()
    }
}

/// Fault-free evaluation of the cell for boolean inputs.
pub fn eval_good(a: bool, b: bool, ci: bool) -> (bool, bool) {
    let x1 = a ^ b;
    (x1 ^ ci, (a & b) | (x1 & ci))
}

/// Evaluation of the cell with one stuck-at fault injected.
pub fn eval_faulty(a: bool, b: bool, ci: bool, fault: FaFault) -> (bool, bool) {
    let f = |line: Line, v: bool| if line == fault.line { fault.stuck_one } else { v };
    let a_stem = f(Line::AStem, a);
    let a_xor = f(Line::AXor, a_stem);
    let a_and = f(Line::AAnd, a_stem);
    let b_stem = f(Line::BStem, b);
    let b_xor = f(Line::BXor, b_stem);
    let b_and = f(Line::BAnd, b_stem);
    let ci_stem = f(Line::CiStem, ci);
    let ci_xor = f(Line::CiXor, ci_stem);
    let ci_and = f(Line::CiAnd, ci_stem);
    let x1_stem = f(Line::X1Stem, a_xor ^ b_xor);
    let x1_xor = f(Line::X1Xor, x1_stem);
    let x1_and = f(Line::X1And, x1_stem);
    let and1 = f(Line::And1, a_and & b_and);
    let and2 = f(Line::And2, x1_and & ci_and);
    let sum = f(Line::Sum, x1_xor ^ ci_xor);
    let cout = f(Line::Cout, and1 | and2);
    (sum, cout)
}

/// Forces every fault in `faults` that sits on `line` into the 64-lane
/// word `v`, each only in its masked lanes — the one place the
/// stuck-at semantics of word-parallel evaluation is written down
/// (shared by [`eval_word`] and [`eval_word_sum_only`]).
///
/// # Example
///
/// ```
/// use bist_rtl::fulladder::{apply_line_faults, FaFault, Line};
///
/// // Stuck-at-1 on the sum line, forced only in lanes 1 and 3.
/// let faults = [(FaFault { line: Line::Sum, stuck_one: true }, 0b1010)];
/// assert_eq!(apply_line_faults(Line::Sum, 0b0100, &faults), 0b1110);
/// // Other lines — and unmasked lanes — pass through untouched.
/// assert_eq!(apply_line_faults(Line::Cout, 0b0100, &faults), 0b0100);
/// ```
#[inline]
pub fn apply_line_faults(line: Line, v: u64, faults: &[(FaFault, u64)]) -> u64 {
    let mut out = v;
    for &(fault, mask) in faults {
        if fault.line == line {
            if fault.stuck_one {
                out |= mask;
            } else {
                out &= !mask;
            }
        }
    }
    out
}

/// Word-parallel (64-lane bit-sliced) evaluation of the cell with a set
/// of per-lane faults. `faults` pairs each [`FaFault`] with a lane mask;
/// the fault is forced only in masked lanes.
///
/// The fast path (`faults` empty) is branch-free.
#[inline]
pub fn eval_word(a: u64, b: u64, ci: u64, faults: &[(FaFault, u64)]) -> (u64, u64) {
    if faults.is_empty() {
        let x1 = a ^ b;
        return (x1 ^ ci, (a & b) | (x1 & ci));
    }
    let apply = |line: Line, v: u64| -> u64 { apply_line_faults(line, v, faults) };
    let a_stem = apply(Line::AStem, a);
    let a_xor = apply(Line::AXor, a_stem);
    let a_and = apply(Line::AAnd, a_stem);
    let b_stem = apply(Line::BStem, b);
    let b_xor = apply(Line::BXor, b_stem);
    let b_and = apply(Line::BAnd, b_stem);
    let ci_stem = apply(Line::CiStem, ci);
    let ci_xor = apply(Line::CiXor, ci_stem);
    let ci_and = apply(Line::CiAnd, ci_stem);
    let x1_stem = apply(Line::X1Stem, a_xor ^ b_xor);
    let x1_xor = apply(Line::X1Xor, x1_stem);
    let x1_and = apply(Line::X1And, x1_stem);
    let and1 = apply(Line::And1, a_and & b_and);
    let and2 = apply(Line::And2, x1_and & ci_and);
    let sum = apply(Line::Sum, x1_xor ^ ci_xor);
    let cout = apply(Line::Cout, and1 | and2);
    (sum, cout)
}

/// Word-parallel evaluation of a *sum-only* cell — the MSB cell of a
/// sign-trimmed adder, which produces the sum bit but has no carry
/// logic ("the MSB logic ... does not contain any carry logic", paper
/// Section 4.1). Only the XOR-path lines exist; faults on carry-path
/// lines are ignored (they have no hardware to sit on).
#[inline]
pub fn eval_word_sum_only(a: u64, b: u64, ci: u64, faults: &[(FaFault, u64)]) -> u64 {
    if faults.is_empty() {
        return a ^ b ^ ci;
    }
    let apply = |line: Line, v: u64| -> u64 { apply_line_faults(line, v, faults) };
    // Stems and their single XOR branches coincide in this cell.
    let av = apply(Line::AXor, apply(Line::AStem, a));
    let bv = apply(Line::BXor, apply(Line::BStem, b));
    let civ = apply(Line::CiXor, apply(Line::CiStem, ci));
    let x1 = apply(Line::X1Xor, apply(Line::X1Stem, av ^ bv));
    apply(Line::Sum, x1 ^ civ)
}

/// The physical lines of a sum-only (trimmed MSB) cell.
pub const SUM_ONLY_LINES: [Line; 5] = [Line::AXor, Line::BXor, Line::CiXor, Line::X1Xor, Line::Sum];

/// Collapsed fault classes of a sum-only cell under a reachable-combo
/// mask; signatures are over the sum output alone (there is no carry
/// output to observe).
pub fn sum_only_fault_classes_masked(allowed_combos: u8) -> Vec<FaultClass> {
    let combos: Vec<(bool, bool, bool)> = (0u8..8)
        .filter(|t| allowed_combos & (1 << t) != 0)
        .map(|t| (t & 4 != 0, t & 2 != 0, t & 1 != 0))
        .collect();
    let eval = |a: bool, b: bool, ci: bool, fault: Option<FaFault>| -> bool {
        let faults: Vec<(FaFault, u64)> = fault.map(|f| (f, 1u64)).into_iter().collect();
        eval_word_sum_only(u64::from(a), u64::from(b), u64::from(ci), &faults) & 1 == 1
    };
    let mut groups: Vec<(Vec<bool>, FaultClass)> = Vec::new();
    for &line in &SUM_ONLY_LINES {
        for stuck_one in [false, true] {
            let fault = FaFault { line, stuck_one };
            let sig: Vec<bool> =
                combos.iter().map(|&(a, b, ci)| eval(a, b, ci, Some(fault))).collect();
            let good: Vec<bool> = combos.iter().map(|&(a, b, ci)| eval(a, b, ci, None)).collect();
            if sig == good {
                continue;
            }
            let mut tests = 0u8;
            for (&(a, b, ci), (&f, &g)) in combos.iter().zip(sig.iter().zip(&good)) {
                if f != g {
                    tests |= 1 << ((a as u8) << 2 | (b as u8) << 1 | ci as u8);
                }
            }
            if let Some((_, class)) = groups.iter_mut().find(|(s, _)| *s == sig) {
                class.members.push(fault);
            } else {
                groups.push((
                    sig,
                    FaultClass {
                        representative: fault,
                        members: vec![fault],
                        detecting_tests: tests,
                    },
                ));
            }
        }
    }
    groups.into_iter().map(|(_, c)| c).collect()
}

/// A functional-equivalence class of cell faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultClass {
    /// One representative fault (injected during simulation).
    pub representative: FaFault,
    /// Every member of the class, representative included.
    pub members: Vec<FaFault>,
    /// Bitmask over the eight input combinations `abc = 0..8`: bit `t`
    /// set means test `Tt` detects the class (differs in `sum` or `cout`).
    /// Only reachable combinations are considered.
    pub detecting_tests: u8,
}

impl FaultClass {
    /// `true` if the difficult test `Tt` (paper Section 4.1 numbering) is
    /// the *only* way to detect this class within the cell.
    pub fn requires_test(&self, t: u8) -> bool {
        self.detecting_tests == 1 << t
    }
}

/// Computes the collapsed fault classes of one cell.
///
/// `ci_constraint` restricts the reachable input combinations: the LSB
/// cell of an adder has carry-in fixed at 0 (at 1 for a subtractor), and
/// faults undetectable under the restriction are locally redundant and
/// omitted — the "redundancies induced by signal constraints" the paper
/// removes during design.
pub fn fault_classes(ci_constraint: Option<bool>) -> Vec<FaultClass> {
    let mask = match ci_constraint {
        None => 0xFF,
        Some(false) => 0b0101_0101,
        Some(true) => 0b1010_1010,
    };
    fault_classes_masked(mask)
}

/// Computes the collapsed fault classes of one cell when only the input
/// combinations in `allowed_combos` (bit `t` set ⇔ `abc = t` reachable)
/// can ever occur — the general form of the constraint-induced
/// redundancy elimination. Faults indistinguishable from the good cell
/// on every reachable combination are *provably redundant* and omitted;
/// faults indistinguishable from each other are collapsed.
pub fn fault_classes_masked(allowed_combos: u8) -> Vec<FaultClass> {
    let combos: Vec<(bool, bool, bool)> = (0u8..8)
        .filter(|t| allowed_combos & (1 << t) != 0)
        .map(|t| (t & 4 != 0, t & 2 != 0, t & 1 != 0))
        .collect();

    // Signature: faulty (sum, cout) on every reachable combination.
    let mut groups: Vec<(Vec<(bool, bool)>, FaultClass)> = Vec::new();
    for fault in FaFault::all() {
        let sig: Vec<(bool, bool)> =
            combos.iter().map(|&(a, b, ci)| eval_faulty(a, b, ci, fault)).collect();
        let good_sig: Vec<(bool, bool)> =
            combos.iter().map(|&(a, b, ci)| eval_good(a, b, ci)).collect();
        if sig == good_sig {
            continue; // locally redundant under the constraint
        }
        let mut tests = 0u8;
        for (&(a, b, ci), &faulty) in combos.iter().zip(&sig) {
            if faulty != eval_good(a, b, ci) {
                let t = (a as u8) << 2 | (b as u8) << 1 | ci as u8;
                tests |= 1 << t;
            }
        }
        if let Some((_, class)) = groups.iter_mut().find(|(s, _)| *s == sig) {
            class.members.push(fault);
        } else {
            groups.push((
                sig,
                FaultClass { representative: fault, members: vec![fault], detecting_tests: tests },
            ));
        }
    }
    groups.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_cell_is_a_full_adder() {
        for t in 0u8..8 {
            let (a, b, ci) = (t & 4 != 0, t & 2 != 0, t & 1 != 0);
            let (sum, cout) = eval_good(a, b, ci);
            let total = a as u8 + b as u8 + ci as u8;
            assert_eq!(sum as u8, total & 1);
            assert_eq!(cout as u8, total >> 1);
        }
    }

    #[test]
    fn faulty_eval_differs_somewhere_for_every_fault() {
        for fault in FaFault::all() {
            let mut differs = false;
            for t in 0u8..8 {
                let (a, b, ci) = (t & 4 != 0, t & 2 != 0, t & 1 != 0);
                if eval_faulty(a, b, ci, fault) != eval_good(a, b, ci) {
                    differs = true;
                }
            }
            assert!(differs, "fault {fault:?} is undetectable");
        }
    }

    #[test]
    fn word_eval_matches_boolean_eval() {
        // Pack all 8 input combos into lanes 0..8 and compare.
        let mut a = 0u64;
        let mut b = 0u64;
        let mut ci = 0u64;
        for t in 0u8..8 {
            if t & 4 != 0 {
                a |= 1 << t;
            }
            if t & 2 != 0 {
                b |= 1 << t;
            }
            if t & 1 != 0 {
                ci |= 1 << t;
            }
        }
        let (sum, cout) = eval_word(a, b, ci, &[]);
        for t in 0u8..8 {
            let (es, ec) = eval_good(t & 4 != 0, t & 2 != 0, t & 1 != 0);
            assert_eq!((sum >> t) & 1 == 1, es);
            assert_eq!((cout >> t) & 1 == 1, ec);
        }
    }

    #[test]
    fn word_eval_injects_fault_only_in_masked_lane() {
        let fault = FaFault { line: Line::Sum, stuck_one: true };
        // a=b=ci=0 in both lanes; fault masked into lane 1 only.
        let (sum, cout) = eval_word(0, 0, 0, &[(fault, 0b10)]);
        assert_eq!(sum, 0b10);
        assert_eq!(cout, 0);
    }

    #[test]
    fn word_eval_fault_on_input_branch() {
        let fault = FaFault { line: Line::AXor, stuck_one: true };
        // a=0,b=0,ci=0: faulty lane sees a_xor=1 -> sum=1, cout unaffected
        // (AAnd branch still 0).
        let (sum, cout) = eval_word(0, 0, 0, &[(fault, 1)]);
        assert_eq!(sum, 1);
        assert_eq!(cout, 0);
    }

    #[test]
    fn collapse_reduces_fault_count() {
        let classes = fault_classes(None);
        let total: usize = classes.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 32, "all detectable faults are classified");
        assert!(classes.len() < 32, "collapsing merged something");
        assert!(classes.len() >= 16, "cell has many distinct behaviours");
        // Representatives are members.
        for c in &classes {
            assert!(c.members.contains(&c.representative));
            assert_ne!(c.detecting_tests, 0);
        }
    }

    #[test]
    fn classes_are_functionally_distinct() {
        let classes = fault_classes(None);
        for (i, a) in classes.iter().enumerate() {
            for b in classes.iter().skip(i + 1) {
                let sig = |f: FaFault| -> Vec<(bool, bool)> {
                    (0u8..8).map(|t| eval_faulty(t & 4 != 0, t & 2 != 0, t & 1 != 0, f)).collect()
                };
                assert_ne!(sig(a.representative), sig(b.representative));
            }
        }
    }

    #[test]
    fn sum_only_cell_behaves_like_three_input_xor() {
        for t in 0u8..8 {
            let (a, b, ci) = (t & 4 != 0, t & 2 != 0, t & 1 != 0);
            let s = eval_word_sum_only(u64::from(a), u64::from(b), u64::from(ci), &[]);
            assert_eq!(s & 1 == 1, a ^ b ^ ci);
        }
    }

    #[test]
    fn sum_only_faults_flip_sum_in_masked_lanes() {
        let f = FaFault { line: Line::BXor, stuck_one: true };
        let s = eval_word_sum_only(0, 0, 0, &[(f, 0b100)]);
        assert_eq!(s, 0b100);
        // Carry-path faults have no effect in a sum-only cell.
        let g = FaFault { line: Line::And1, stuck_one: true };
        assert_eq!(eval_word_sum_only(0, 0, 0, &[(g, 0b100)]), 0);
    }

    #[test]
    fn sum_only_classes_are_fewer_and_xor_path_only() {
        let full = fault_classes_masked(0xFF);
        let slim = sum_only_fault_classes_masked(0xFF);
        assert!(!slim.is_empty());
        assert!(slim.len() < full.len());
        let total: usize = slim.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 10, "5 lines x 2 polarities");
        for c in &slim {
            for m in &c.members {
                assert!(SUM_ONLY_LINES.contains(&m.line));
            }
        }
        assert!(sum_only_fault_classes_masked(0).is_empty());
    }

    #[test]
    fn masked_classes_shrink_with_the_mask() {
        let full = fault_classes_masked(0xFF);
        let two = fault_classes_masked(0b0000_0101); // only T0 and T2
        assert!(two.len() < full.len());
        let total_two: usize = two.iter().map(|c| c.members.len()).sum();
        assert!(total_two < 32);
        for c in &two {
            assert_eq!(c.detecting_tests & !0b0000_0101, 0);
        }
        // A single reachable combo leaves only the classes that combo
        // distinguishes.
        let one = fault_classes_masked(0b0000_0001);
        assert!(!one.is_empty());
        assert!(one.len() <= two.len());
        // No reachable combos: everything is redundant.
        assert!(fault_classes_masked(0).is_empty());
    }

    #[test]
    fn constrained_lsb_cell_drops_carry_faults() {
        let unconstrained = fault_classes(None);
        let lsb_add = fault_classes(Some(false));
        // With ci pinned to 0 some faults become locally redundant, so
        // fewer classes (and strictly fewer total members) remain.
        let total_add: usize = lsb_add.iter().map(|c| c.members.len()).sum();
        assert!(total_add < 32);
        assert!(lsb_add.len() < unconstrained.len());
        for c in &lsb_add {
            // No class may claim detection by a test with ci=1.
            assert_eq!(c.detecting_tests & 0b10101010, 0);
        }
    }

    #[test]
    fn stuck_sum_line_detected_by_every_test() {
        let classes = fault_classes(None);
        let sum_sa0 = classes
            .iter()
            .find(|c| c.members.contains(&FaFault { line: Line::Sum, stuck_one: false }))
            .unwrap();
        // sum s-a-0 flips the output whenever the good sum is 1: tests
        // with odd population count (T1, T2, T4, T7).
        assert_eq!(sum_sa0.detecting_tests, 0b1001_0110);
    }

    #[test]
    fn some_fault_requires_t1_when_carry_cone_considered() {
        // Within a single cell, classes detected ONLY by T1 (abc=001):
        // e.g. the and2/x1and path faults that matter only when ci=1 and
        // exactly one... enumerate and require at least one class whose
        // mask is a subset of the "difficult" tests {T1,T2,T5,T6}.
        let classes = fault_classes(None);
        let difficult = (1u8 << 1) | (1 << 2) | (1 << 5) | (1 << 6);
        assert!(
            classes.iter().any(|c| c.detecting_tests & !difficult == 0),
            "no class is confined to the difficult tests"
        );
    }
}
