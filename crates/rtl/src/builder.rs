use crate::node::{Node, NodeId, NodeKind};
use crate::RtlError;
use fixedpoint::QFormat;

/// Incremental construction of a [`Netlist`].
///
/// All nodes share one datapath width. Construction methods return the
/// new node's id; [`NetlistBuilder::finish`] validates the graph and
/// computes the combinational evaluation order.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    width: u32,
    nodes: Vec<Node>,
}

impl NetlistBuilder {
    /// Starts a netlist with the given datapath width (2..=63 bits).
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::InvalidWidth`] for unsupported widths.
    pub fn new(width: u32) -> Result<Self, RtlError> {
        if !(2..=63).contains(&width) {
            return Err(RtlError::InvalidWidth { width });
        }
        Ok(NetlistBuilder { width, nodes: Vec::new() })
    }

    fn push(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, label: label.into() });
        id
    }

    /// Adds an external input port.
    pub fn input(&mut self, label: impl Into<String>) -> NodeId {
        self.push(NodeKind::Input, label)
    }

    /// Adds a constant word (wrapped into the datapath width).
    pub fn constant(&mut self, raw: i64) -> NodeId {
        let q = QFormat::new(self.width, self.width - 1).expect("validated width");
        self.push(NodeKind::Const { raw: q.wrap(raw) }, String::new())
    }

    /// Adds a delay register on `src`.
    pub fn register(&mut self, src: NodeId) -> NodeId {
        self.push(NodeKind::Register { src }, String::new())
    }

    /// Adds a delay register with a label.
    pub fn register_labeled(&mut self, src: NodeId, label: impl Into<String>) -> NodeId {
        self.push(NodeKind::Register { src }, label)
    }

    /// Adds a ripple-carry adder `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeKind::Add { a, b }, String::new())
    }

    /// Adds a labeled ripple-carry adder `a + b`.
    pub fn add_labeled(&mut self, a: NodeId, b: NodeId, label: impl Into<String>) -> NodeId {
        self.push(NodeKind::Add { a, b }, label)
    }

    /// Adds a ripple-carry subtractor `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeKind::Sub { a, b }, String::new())
    }

    /// Adds a labeled ripple-carry subtractor `a - b`.
    pub fn sub_labeled(&mut self, a: NodeId, b: NodeId, label: impl Into<String>) -> NodeId {
        self.push(NodeKind::Sub { a, b }, label)
    }

    /// Adds a hardwired arithmetic right shift.
    pub fn shift_right(&mut self, src: NodeId, amount: u32) -> NodeId {
        self.push(NodeKind::ShiftRight { src, amount }, String::new())
    }

    /// Adds a bitwise inverter bank (`!src`).
    pub fn not_word(&mut self, src: NodeId) -> NodeId {
        self.push(NodeKind::Not { src }, String::new())
    }

    /// Adds an LSB-tie (`src | 1`) — wiring for carry-save subtraction.
    pub fn set_lsb(&mut self, src: NodeId) -> NodeId {
        self.push(NodeKind::SetLsb { src }, String::new())
    }

    /// Adds a carry-save (3:2 compressor) stage and returns its
    /// `(sum, carry)` node pair. Faults for the stage's shared
    /// full-adder cells are injected on the returned sum node.
    pub fn csa(
        &mut self,
        a: NodeId,
        b: NodeId,
        c: NodeId,
        label: impl Into<String>,
    ) -> (NodeId, NodeId) {
        let label = label.into();
        let sum = self.push(NodeKind::CsaSum { a, b, c }, label.clone());
        let carry = self.push(
            NodeKind::CsaCarry { a, b, c, sum },
            if label.is_empty() { String::new() } else { format!("{label}.carry") },
        );
        (sum, carry)
    }

    /// Adds an output port observing `src`.
    pub fn output(&mut self, src: NodeId, label: impl Into<String>) -> NodeId {
        self.push(NodeKind::Output { src }, label)
    }

    /// Validates the graph and freezes it into a [`Netlist`].
    ///
    /// # Errors
    ///
    /// * [`RtlError::UnknownNode`] for dangling operand references.
    /// * [`RtlError::CombinationalCycle`] if a cycle exists that does not
    ///   pass through a register.
    /// * [`RtlError::MissingPort`] if there is no input or no output.
    pub fn finish(self) -> Result<Netlist, RtlError> {
        let n = self.nodes.len();
        for node in &self.nodes {
            for op in node.kind.operands() {
                if op.index() >= n {
                    return Err(RtlError::UnknownNode { node: op });
                }
            }
        }
        if !self.nodes.iter().any(|x| matches!(x.kind, NodeKind::Input)) {
            return Err(RtlError::MissingPort { kind: "input" });
        }
        if !self.nodes.iter().any(|x| matches!(x.kind, NodeKind::Output { .. })) {
            return Err(RtlError::MissingPort { kind: "output" });
        }

        // Kahn's algorithm over combinational edges (registers are
        // sources: they read stored state, not their operand).
        let mut indegree = vec![0usize; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.kind, NodeKind::Register { .. }) {
                continue;
            }
            for op in node.kind.operands() {
                indegree[i] += 1;
                fanout[op.index()].push(i as u32);
            }
        }
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut ready: Vec<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
        while let Some(i) = ready.pop() {
            order.push(i);
            for &j in &fanout[i as usize] {
                indegree[j as usize] -= 1;
                if indegree[j as usize] == 0 {
                    ready.push(j);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&i| indegree[i] > 0).expect("cycle exists");
            return Err(RtlError::CombinationalCycle { node: NodeId(stuck as u32) });
        }

        let registers: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, x)| matches!(x.kind, NodeKind::Register { .. }))
            .map(|(i, _)| i as u32)
            .collect();
        let inputs: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, x)| matches!(x.kind, NodeKind::Input))
            .map(|(i, _)| i as u32)
            .collect();
        let outputs: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, x)| matches!(x.kind, NodeKind::Output { .. }))
            .map(|(i, _)| i as u32)
            .collect();

        let msb_trim = vec![self.width - 1; self.nodes.len()];
        Ok(Netlist {
            width: self.width,
            nodes: self.nodes,
            order,
            registers,
            inputs,
            outputs,
            msb_trim,
        })
    }
}

/// A validated, immutable netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    width: u32,
    nodes: Vec<Node>,
    /// Combinational evaluation order (topological).
    order: Vec<u32>,
    registers: Vec<u32>,
    inputs: Vec<u32>,
    outputs: Vec<u32>,
    /// Per-node top full-adder cell; cells above it are sign-extension
    /// wiring (see [`Netlist::with_sign_trimming`]).
    msb_trim: Vec<u32>,
}

impl Netlist {
    /// Datapath width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The datapath word format (`Q1.(width-1)`).
    pub fn format(&self) -> QFormat {
        QFormat::new(self.width, self.width - 1).expect("validated width")
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The id of the node at `index` in the node table.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_id(&self, index: usize) -> NodeId {
        assert!(index < self.nodes.len(), "node index {index} out of range");
        NodeId(index as u32)
    }

    /// Ids of all nodes, in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Topological combinational evaluation order (node indices).
    pub fn eval_order(&self) -> &[u32] {
        &self.order
    }

    /// Indices of register nodes.
    pub fn register_indices(&self) -> &[u32] {
        &self.registers
    }

    /// Input port ids, in creation order.
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.inputs.iter().map(|&i| NodeId(i)).collect()
    }

    /// Output port ids, in creation order.
    pub fn output_ids(&self) -> Vec<NodeId> {
        self.outputs.iter().map(|&i| NodeId(i)).collect()
    }

    /// Finds a node by label.
    pub fn find_label(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().position(|x| x.label == label).map(|i| NodeId(i as u32))
    }

    /// Ids of all adders and subtractors, in creation order.
    pub fn arithmetic_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, x)| x.kind.is_arithmetic())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Applies the sign-extension optimization implied by a value-range
    /// analysis: every adder/subtractor keeps full-adder cells only up
    /// to its range's MSB; the top kept cell loses its carry logic
    /// (nothing consumes the carry) and the bits above are wired to the
    /// sign — the paper's "scaling techniques to identify and remove
    /// redundant sign bits". Fault-free behaviour is unchanged (the
    /// range analysis guarantees those bits equal the sign); *faulty*
    /// behaviour honors the reduced hardware.
    pub fn with_sign_trimming(mut self, ranges: &crate::range::RangeAnalysis) -> Netlist {
        let trims: Vec<(usize, u32)> = self
            .arithmetic_ids()
            .into_iter()
            // Carry-save stages are not trimmed: every cell's carry
            // output feeds the next stage's shifted carry word.
            .filter(|&id| !matches!(self.node(id).kind, NodeKind::CsaSum { .. }))
            .filter_map(|id| ranges.active_span(&self, id).map(|(_, msb)| (id.index(), msb)))
            .collect();
        for (idx, msb) in trims {
            self.msb_trim[idx] = msb;
        }
        self
    }

    /// The top full-adder cell of a node after sign trimming (defaults
    /// to `width - 1` when untrimmed).
    pub fn msb_trim(&self, id: NodeId) -> u32 {
        self.msb_trim[id.index()]
    }

    /// Structural statistics (the rows of the paper's Table 1, minus the
    /// fault count which depends on the fault model in `bist-faultsim`).
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats { width: self.width, ..NetlistStats::default() };
        for node in &self.nodes {
            match node.kind {
                NodeKind::Input => s.inputs += 1,
                NodeKind::Const { .. } => s.constants += 1,
                NodeKind::Register { .. } => s.registers += 1,
                NodeKind::Add { .. } => s.adders += 1,
                NodeKind::Sub { .. } => s.subtractors += 1,
                NodeKind::ShiftRight { .. } => s.shifts += 1,
                NodeKind::Output { .. } => s.outputs += 1,
                NodeKind::CsaSum { .. } => s.csa_stages += 1,
                NodeKind::CsaCarry { .. } | NodeKind::Not { .. } | NodeKind::SetLsb { .. } => {}
            }
        }
        s
    }
}

/// Structural element counts of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Datapath width in bits.
    pub width: u32,
    /// Input ports.
    pub inputs: u32,
    /// Output ports.
    pub outputs: u32,
    /// Constant words.
    pub constants: u32,
    /// Delay registers.
    pub registers: u32,
    /// Ripple-carry adders.
    pub adders: u32,
    /// Ripple-carry subtractors.
    pub subtractors: u32,
    /// Hardwired shifts.
    pub shifts: u32,
    /// Carry-save (3:2 compressor) stages.
    pub csa_stages: u32,
}

impl NetlistStats {
    /// Adders plus subtractors plus carry-save stages — the "adders"
    /// column of the paper's Table 1 (which counts all adder-class
    /// elements).
    pub fn arithmetic(&self) -> u32 {
        self.adders + self.subtractors + self.csa_stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        let d = b.register_labeled(x, "z1");
        let s = b.shift_right(d, 1);
        let y = b.add_labeled(x, s, "acc");
        b.output(y, "y");
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_valid_netlist() {
        let n = toy();
        assert_eq!(n.width(), 8);
        assert_eq!(n.stats().adders, 1);
        assert_eq!(n.stats().registers, 1);
        assert_eq!(n.stats().shifts, 1);
        assert_eq!(n.input_ids().len(), 1);
        assert_eq!(n.output_ids().len(), 1);
        assert_eq!(n.find_label("acc"), Some(NodeId(3)));
        assert_eq!(n.find_label("nope"), None);
        assert_eq!(n.arithmetic_ids(), vec![NodeId(3)]);
    }

    #[test]
    fn eval_order_respects_dependencies() {
        let n = toy();
        let pos: Vec<usize> = {
            let mut p = vec![0; n.nodes().len()];
            for (rank, &i) in n.eval_order().iter().enumerate() {
                p[i as usize] = rank;
            }
            p
        };
        for (i, node) in n.nodes().iter().enumerate() {
            if matches!(node.kind, NodeKind::Register { .. }) {
                continue;
            }
            for op in node.kind.operands() {
                assert!(pos[op.index()] < pos[i], "node {i} evaluated before operand");
            }
        }
    }

    #[test]
    fn rejects_invalid_width() {
        assert!(NetlistBuilder::new(1).is_err());
        assert!(NetlistBuilder::new(64).is_err());
        assert!(NetlistBuilder::new(2).is_ok());
    }

    #[test]
    fn rejects_missing_ports() {
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        assert_eq!(b.clone().finish().unwrap_err(), RtlError::MissingPort { kind: "output" });
        b.output(x, "y");
        assert!(b.finish().is_ok());

        let mut b2 = NetlistBuilder::new(8).unwrap();
        let c = b2.constant(1);
        b2.output(c, "y");
        assert_eq!(b2.finish().unwrap_err(), RtlError::MissingPort { kind: "input" });
    }

    #[test]
    fn register_cycles_are_legal_combinational_are_not() {
        // Legal: feedback through a register (an IIR-style loop).
        let mut b = NetlistBuilder::new(8).unwrap();
        let x = b.input("x");
        // Create the register first referencing a later node: build the
        // adder, then a register on the adder, then rewire is impossible
        // with this builder; instead feed register of x and check a pure
        // combinational self-loop is impossible to express except via
        // operand ids, which always point backwards. Forward references
        // are rejected as unknown nodes.
        let fwd = NodeId(10);
        let bad = b.add(x, fwd);
        b.output(bad, "y");
        assert!(matches!(b.finish(), Err(RtlError::UnknownNode { .. })));
    }

    #[test]
    fn constants_wrap_into_width() {
        let mut b = NetlistBuilder::new(4).unwrap();
        let c = b.constant(9); // wraps to -7 in 4 bits
        let x = b.input("x");
        let s = b.add(c, x);
        b.output(s, "y");
        let n = b.finish().unwrap();
        match n.node(NodeId(0)).kind {
            NodeKind::Const { raw } => assert_eq!(raw, -7),
            _ => panic!("expected const"),
        }
    }
}
