//! Multiple-input signature register models: a scalar reference and a
//! 64-lane word-parallel bank for the bit-sliced simulator.
//!
//! A MISR is a linear-feedback shift register that XORs one response
//! word into its state every cycle. After the full test, the state (the
//! *signature*) stands in for the whole response stream: a fault is
//! "signature-detected" when its final signature differs from the
//! fault-free one. Because the compactor is linear over GF(2), a fault
//! escapes exactly when its error sequence is a codeword of the
//! polynomial's cyclic code — probability ≈ `2^-width` for a primitive
//! polynomial and an error sequence without structure (see
//! `DESIGN.md` §10 for the derivation and the paper-roster measurement).
//!
//! Both models here take the feedback polynomial as an explicit
//! parameter: this crate models hardware and does not choose
//! polynomials. The tabulated primitive polynomials live in the `tpg`
//! crate; `bist-core`'s session layer wires the two together.
//!
//! [`Misr`] is the scalar (one machine) register and the behavioural
//! reference. [`MisrBank`] is the same register replicated across the
//! 64 lanes of [`crate::sim::BitSlicedSim`], stored as bit-planes so
//! one `u64` operation advances all 64 machines — the good machine and
//! up to 63 faulty ones fold their output streams into per-lane
//! signatures inside the simulator's inner loop, with no per-lane
//! extraction until readout.

use crate::RtlError;

/// Number of lanes a [`MisrBank`] advances per absorb (one per bit of
/// the plane words — the same 64 as [`crate::sim::BitSlicedSim`]).
pub const LANES: u32 = 64;

fn check_width(width: u32) -> Result<(), RtlError> {
    // 1..=63 so `1u64 << width` and the state mask are well defined.
    if width == 0 || width > 63 {
        return Err(RtlError::InvalidMisrWidth { width });
    }
    Ok(())
}

/// A scalar Galois-feedback multiple-input signature register with an
/// explicit feedback polynomial.
///
/// The update per absorbed word `x` is
/// `state ← ((state << 1) ^ (msb ? poly : 0) ^ x) mod 2^width`,
/// i.e. multiplication by `x` in `GF(2)[x]/p(x)` followed by the input
/// XOR. `bist-core::misr::Misr` wraps this with the tabulated
/// primitive-polynomial lookup.
///
/// # Example
///
/// ```
/// use bist_rtl::misr::Misr;
///
/// // x^12 + x^6 + x^4 + x + 1, the workspace's tabulated 12-bit poly.
/// let mut m = Misr::with_polynomial(12, 0x1053)?;
/// for w in 0..100i64 {
///     m.absorb(w);
/// }
/// let clean = m.signature();
/// m.reset();
/// for w in 0..100i64 {
///     m.absorb(if w == 42 { w ^ 1 } else { w }); // one corrupted word
/// }
/// assert_ne!(m.signature(), clean);
/// # Ok::<(), bist_rtl::RtlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    width: u32,
    poly_low: u64,
    state: u64,
}

impl Misr {
    /// Creates a `width`-bit MISR (zero initial state) with the given
    /// feedback polynomial. The polynomial's `x^width` term, if
    /// present, is masked off — `0x1053` and `0x053` describe the same
    /// 12-bit register.
    ///
    /// # Errors
    ///
    /// [`RtlError::InvalidMisrWidth`] unless `1 <= width <= 63`.
    pub fn with_polynomial(width: u32, poly: u64) -> Result<Self, RtlError> {
        check_width(width)?;
        Ok(Misr { width, poly_low: poly & ((1u64 << width) - 1), state: 0 })
    }

    /// Absorbs one response word (its low `width` bits).
    pub fn absorb(&mut self, word: i64) {
        let mask = (1u64 << self.width) - 1;
        let msb = (self.state >> (self.width - 1)) & 1;
        self.state = ((self.state << 1) & mask) ^ if msb == 1 { self.poly_low } else { 0 };
        self.state ^= (word as u64) & mask;
    }

    /// Absorbs a whole response sequence.
    pub fn absorb_all(&mut self, words: &[i64]) {
        for &w in words {
            self.absorb(w);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Overwrites the state (used to resume a partially absorbed
    /// stream, e.g. across staged-simulation boundaries).
    pub fn set_signature(&mut self, state: u64) {
        self.state = state & ((1u64 << self.width) - 1);
    }

    /// Resets the signature to zero.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The feedback polynomial's low terms (the `x^width` term is
    /// implicit).
    pub fn poly_low(&self) -> u64 {
        self.poly_low
    }
}

/// 64 independent [`Misr`]s advanced word-parallel, one per simulator
/// lane.
///
/// State is stored as `width` bit-planes: bit `l` of plane `b` is bit
/// `b` of lane `l`'s register. [`MisrBank::absorb_planes`] takes a
/// node's bit-planes straight out of
/// [`crate::sim::BitSlicedSim`] (via
/// [`crate::sim::BitSlicedSim::fold_outputs`]) and performs the Galois
/// update for all lanes in `O(width)` word operations. Every lane sees
/// the same polynomial — the bank models 64 copies of one piece of
/// hardware, not 64 different compactors.
///
/// Lane-for-lane, the bank is bit-identical to running a scalar
/// [`Misr`] on that lane's sign-extended word stream (a unit test and
/// the session-level determinism tests pin this down).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisrBank {
    width: u32,
    poly_low: u64,
    planes: Vec<u64>,
}

impl MisrBank {
    /// Creates a bank of 64 zero-state `width`-bit MISRs sharing one
    /// feedback polynomial (the `x^width` term is masked off, as in
    /// [`Misr::with_polynomial`]).
    ///
    /// # Errors
    ///
    /// [`RtlError::InvalidMisrWidth`] unless `1 <= width <= 63`.
    pub fn with_polynomial(width: u32, poly: u64) -> Result<Self, RtlError> {
        check_width(width)?;
        Ok(MisrBank {
            width,
            poly_low: poly & ((1u64 << width) - 1),
            planes: vec![0; width as usize],
        })
    }

    /// Absorbs one cycle's response word into every lane at once.
    ///
    /// `word_planes` is the value of one node as bit-planes (least
    /// significant first), exactly as stored by the bit-sliced
    /// simulator. When the register is wider than the word, the word's
    /// top plane is replicated upward — the same sign extension a
    /// scalar [`Misr::absorb`] sees through its `i64` argument. When it
    /// is narrower, the word's high planes never enter the signature
    /// (the `L402` lint flags that configuration).
    ///
    /// # Panics
    ///
    /// Panics if `word_planes` is empty.
    pub fn absorb_planes(&mut self, word_planes: &[u64]) {
        assert!(!word_planes.is_empty(), "a response word has at least one bit-plane");
        let m = self.width as usize;
        let input = |b: usize| -> u64 { word_planes[b.min(word_planes.len() - 1)] };
        let msb = self.planes[m - 1];
        for b in (1..m).rev() {
            let feedback = if (self.poly_low >> b) & 1 == 1 { msb } else { 0 };
            self.planes[b] = self.planes[b - 1] ^ feedback ^ input(b);
        }
        let feedback = if self.poly_low & 1 == 1 { msb } else { 0 };
        self.planes[0] = feedback ^ input(0);
    }

    /// One lane's current signature.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn lane_signature(&self, lane: u32) -> u64 {
        assert!(lane < LANES, "lane out of range");
        let mut bits: u64 = 0;
        for (b, plane) in self.planes.iter().enumerate() {
            bits |= ((plane >> lane) & 1) << b;
        }
        bits
    }

    /// Overwrites one lane's state (the inverse of
    /// [`MisrBank::lane_signature`]); used when repacking faulty
    /// machines between staged passes without losing their partially
    /// accumulated signatures.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn set_lane_signature(&mut self, lane: u32, signature: u64) {
        assert!(lane < LANES, "lane out of range");
        let mask = 1u64 << lane;
        for (b, plane) in self.planes.iter_mut().enumerate() {
            if (signature >> b) & 1 == 1 {
                *plane |= mask;
            } else {
                *plane &= !mask;
            }
        }
    }

    /// Sets every lane to the same state (shards start all 64 lanes
    /// from the good machine's partial signature, then overlay the
    /// faulty lanes).
    pub fn fill(&mut self, signature: u64) {
        for (b, plane) in self.planes.iter_mut().enumerate() {
            *plane = if (signature >> b) & 1 == 1 { !0u64 } else { 0 };
        }
    }

    /// Resets every lane to zero.
    pub fn reset(&mut self) {
        self.planes.fill(0);
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLY12: u64 = 0x1053;
    const POLY16: u64 = 0x1100B;

    /// Packs 64 scalar words into `w` bit-planes (lane l = word l).
    fn planes_of(words: &[i64; 64], w: usize) -> Vec<u64> {
        let mut planes = vec![0u64; w];
        for (lane, &word) in words.iter().enumerate() {
            for (b, plane) in planes.iter_mut().enumerate() {
                *plane |= (((word as u64) >> b) & 1) << lane;
            }
        }
        planes
    }

    #[test]
    fn width_bounds_are_enforced() {
        assert!(Misr::with_polynomial(0, 1).is_err());
        assert!(Misr::with_polynomial(64, 1).is_err());
        assert!(MisrBank::with_polynomial(0, 1).is_err());
        assert!(MisrBank::with_polynomial(64, 1).is_err());
        assert!(Misr::with_polynomial(63, 1).is_ok());
        assert!(MisrBank::with_polynomial(1, 1).is_ok());
    }

    #[test]
    fn high_polynomial_term_is_masked() {
        let a = Misr::with_polynomial(12, POLY12).unwrap();
        let b = Misr::with_polynomial(12, POLY12 & 0xFFF).unwrap();
        assert_eq!(a.poly_low(), b.poly_low());
    }

    #[test]
    fn bank_matches_scalar_lane_for_lane() {
        // 16-bit word, 16-bit register: every lane of the bank must
        // track a scalar MISR fed that lane's word stream.
        let mut bank = MisrBank::with_polynomial(16, POLY16).unwrap();
        let mut scalars: Vec<Misr> =
            (0..64).map(|_| Misr::with_polynomial(16, POLY16).unwrap()).collect();
        let mut words = [0i64; 64];
        for cycle in 0..200i64 {
            for (lane, w) in words.iter_mut().enumerate() {
                // Sign-extended 16-bit values, different per lane.
                let raw = (cycle * 257 + lane as i64 * 8191) & 0xFFFF;
                *w = ((raw as u16) as i16) as i64;
            }
            bank.absorb_planes(&planes_of(&words, 16));
            for (lane, s) in scalars.iter_mut().enumerate() {
                s.absorb(words[lane]);
            }
        }
        for (lane, s) in scalars.iter().enumerate() {
            assert_eq!(bank.lane_signature(lane as u32), s.signature(), "lane {lane}");
        }
    }

    #[test]
    fn bank_sign_extends_narrow_words_like_the_scalar() {
        // 16-bit register fed a 12-bit word: the bank must replicate
        // the word's sign plane upward, exactly as the scalar sees
        // through sign-extended i64 values.
        let mut bank = MisrBank::with_polynomial(16, POLY16).unwrap();
        let mut scalar = Misr::with_polynomial(16, POLY16).unwrap();
        let mut words = [0i64; 64];
        for cycle in 0..100i64 {
            for (lane, w) in words.iter_mut().enumerate() {
                let raw = (cycle * 31 + lane as i64 * 97) & 0xFFF;
                // Sign-extend from 12 bits.
                *w = if raw & 0x800 != 0 { raw - 0x1000 } else { raw };
            }
            bank.absorb_planes(&planes_of(&words, 12));
            scalar.absorb(words[7]);
        }
        assert_eq!(bank.lane_signature(7), scalar.signature());
    }

    #[test]
    fn wide_words_truncate_to_register_width() {
        // 12-bit register fed a 16-bit word: only the low 12 planes
        // matter, matching the scalar's state mask.
        let mut bank = MisrBank::with_polynomial(12, POLY12).unwrap();
        let mut scalar = Misr::with_polynomial(12, POLY12).unwrap();
        let mut words = [0i64; 64];
        for cycle in 0..100i64 {
            for (lane, w) in words.iter_mut().enumerate() {
                let raw = (cycle * 1021 + lane as i64 * 577) & 0xFFFF;
                *w = ((raw as u16) as i16) as i64;
            }
            bank.absorb_planes(&planes_of(&words, 16));
            scalar.absorb(words[33]);
        }
        assert_eq!(bank.lane_signature(33), scalar.signature());
    }

    #[test]
    fn lane_signature_round_trips_through_set() {
        let mut bank = MisrBank::with_polynomial(16, POLY16).unwrap();
        bank.fill(0xBEEF);
        assert_eq!(bank.lane_signature(0), 0xBEEF);
        assert_eq!(bank.lane_signature(63), 0xBEEF);
        bank.set_lane_signature(5, 0x1234);
        assert_eq!(bank.lane_signature(5), 0x1234);
        assert_eq!(bank.lane_signature(4), 0xBEEF, "neighbours untouched");
        assert_eq!(bank.lane_signature(6), 0xBEEF, "neighbours untouched");
        bank.reset();
        assert_eq!(bank.lane_signature(5), 0);
    }

    #[test]
    fn set_lane_signature_masks_to_width() {
        let mut bank = MisrBank::with_polynomial(8, 0x11D).unwrap();
        bank.set_lane_signature(0, 0xFFFF);
        assert_eq!(bank.lane_signature(0), 0xFF);
        let mut m = Misr::with_polynomial(8, 0x11D).unwrap();
        m.set_signature(0xFFFF);
        assert_eq!(m.signature(), 0xFF);
    }
}
