use std::fmt;

/// Identifier of a node within its [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's position in the netlist's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The operator implemented by a node. All operands and results are
/// words of the netlist's datapath width, interpreted as two's-complement
/// fractions (the paper's convention: values in `[-1, 1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeKind {
    /// Externally driven input word.
    Input,
    /// Constant word (raw two's-complement value).
    Const {
        /// The constant's raw word.
        raw: i64,
    },
    /// Delay register (one-cycle delay of `src`; resets to zero).
    Register {
        /// The node whose value is latched each cycle.
        src: NodeId,
    },
    /// Ripple-carry adder `a + b` (modular, like the hardware).
    Add {
        /// Primary operand.
        a: NodeId,
        /// Secondary operand.
        b: NodeId,
    },
    /// Ripple-carry subtractor `a - b` (implemented as `a + !b + 1`).
    Sub {
        /// Primary operand (minuend).
        a: NodeId,
        /// Secondary operand (subtrahend).
        b: NodeId,
    },
    /// Hardwired arithmetic right shift by `amount` bits (sign-extending,
    /// truncating toward negative infinity) — one shifted term of a CSD
    /// multiplier.
    ShiftRight {
        /// The shifted operand.
        src: NodeId,
        /// Shift distance in bits.
        amount: u32,
    },
    /// Observable output port.
    Output {
        /// The node driven to the output.
        src: NodeId,
    },
    /// Bitwise inverter bank (`!src`). Used by carry-save subtraction
    /// (`a - b = a + !b + 1`, with the `+1` corrections folded into a
    /// constant carry-chain seed). Treated as wiring in the fault
    /// model: an inverter line fault is equivalent to a stuck line at
    /// the consuming cell's input.
    Not {
        /// The inverted operand.
        src: NodeId,
    },
    /// Ties bit 0 of `src` high (`src | 1`). Pure wiring: used to
    /// inject the `+1` of a carry-save subtraction into the carry
    /// word's structurally-zero LSB slot.
    SetLsb {
        /// The word whose LSB is tied high.
        src: NodeId,
    },
    /// Sum word of a carry-save (3:2 compressor) stage: bitwise
    /// `a ^ b ^ c`. Each bit is one full-adder cell shared with the
    /// matching [`NodeKind::CsaCarry`]; faults are injected on this
    /// node and affect both outputs.
    CsaSum {
        /// First operand.
        a: NodeId,
        /// Second operand.
        b: NodeId,
        /// Third operand.
        c: NodeId,
    },
    /// Carry word of a carry-save stage: bitwise majority of
    /// `(a, b, c)`, shifted up one position (bit 0 is zero). `sum`
    /// links to the [`NodeKind::CsaSum`] sharing the same physical
    /// cells.
    CsaCarry {
        /// First operand.
        a: NodeId,
        /// Second operand.
        b: NodeId,
        /// Third operand.
        c: NodeId,
        /// The paired sum node (fault-injection site for the shared
        /// cells).
        sum: NodeId,
    },
}

impl NodeKind {
    /// The operand node ids, in order.
    pub fn operands(&self) -> Vec<NodeId> {
        match *self {
            NodeKind::Input | NodeKind::Const { .. } => vec![],
            NodeKind::Register { src }
            | NodeKind::ShiftRight { src, .. }
            | NodeKind::Output { src }
            | NodeKind::Not { src }
            | NodeKind::SetLsb { src } => vec![src],
            NodeKind::Add { a, b } | NodeKind::Sub { a, b } => vec![a, b],
            NodeKind::CsaSum { a, b, c } => vec![a, b, c],
            // The pair link is not a data dependency; the carry output
            // depends only on the three operand words.
            NodeKind::CsaCarry { a, b, c, .. } => vec![a, b, c],
        }
    }

    /// `true` for the fault-bearing elements of the paper's fault
    /// model: ripple adders/subtractors and carry-save stages (whose
    /// shared cells are addressed through the [`NodeKind::CsaSum`]
    /// node).
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, NodeKind::Add { .. } | NodeKind::Sub { .. } | NodeKind::CsaSum { .. })
    }
}

/// A node: an operator plus a human-readable label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operator.
    pub kind: NodeKind,
    /// Debug label ("tap20.acc", "y", ...). Empty when unnamed.
    pub label: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operands_are_reported() {
        let a = NodeId(0);
        let b = NodeId(1);
        assert!(NodeKind::Input.operands().is_empty());
        assert_eq!(NodeKind::Add { a, b }.operands(), vec![a, b]);
        assert_eq!(NodeKind::Register { src: b }.operands(), vec![b]);
        assert_eq!(NodeKind::ShiftRight { src: a, amount: 3 }.operands(), vec![a]);
    }

    #[test]
    fn arithmetic_classification() {
        let a = NodeId(0);
        let b = NodeId(1);
        assert!(NodeKind::Add { a, b }.is_arithmetic());
        assert!(NodeKind::Sub { a, b }.is_arithmetic());
        assert!(!NodeKind::Register { src: a }.is_arithmetic());
        assert!(!NodeKind::Input.is_arithmetic());
    }

    #[test]
    fn id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
