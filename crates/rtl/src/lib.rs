//! Structural register-transfer-level model of high-performance digital
//! filter datapaths, plus a bit-sliced gate-level simulator.
//!
//! The paper's circuits-under-test are "networks of registers, adders,
//! subtractors, fixed-shift, and sign-extension operators" in which every
//! adder is a ripple-carry chain of full-adder cells (its Section 3).
//! This crate models exactly that:
//!
//! * [`Netlist`] / [`NetlistBuilder`] — a DAG of [`NodeKind`] operators on
//!   a fixed-width two's-complement datapath.
//! * [`range`] — value-range (conservative L1 scaling) and LSB-granularity
//!   analysis; identifies the *active* full-adder cells of every adder,
//!   i.e. those that are not redundant sign or known-zero positions.
//!   This mirrors the paper's "scaling techniques to identify and remove
//!   redundant sign bits".
//! * [`fulladder`] — the 5-gate full-adder decomposition, its stuck-at
//!   fault universe, truth-table equivalence collapsing, and the mapping
//!   from cell-level faults to the eight I/O tests `T0..T7` of the
//!   paper's Section 4.1.
//! * [`sim`] — a 64-lane bit-sliced simulator: one good machine plus up
//!   to 63 faulty machines evaluated word-parallel, with faults injected
//!   at full-adder gate granularity. This is the engine behind the
//!   fault-simulation experiments (paper Tables 4–6, Figs. 10–13).
//! * [`linear`] — exact linear (floating-point) evaluation of the same
//!   netlist, giving per-node impulse responses for the paper's Eq. 1
//!   variance analysis.
//! * [`misr`] — polynomial-configurable multiple-input signature
//!   registers: a scalar reference model plus a 64-lane word-parallel
//!   bank that folds every simulator lane's output stream into a
//!   per-lane signature inside the bit-sliced inner loop.
//!
//! # Example
//!
//! ```
//! use bist_rtl::{NetlistBuilder, RtlError};
//!
//! // y[n] = x[n]/2 + delay(x[n])/4, a toy 2-tap filter.
//! let mut b = NetlistBuilder::new(16)?;
//! let x = b.input("x");
//! let half = b.shift_right(x, 1);
//! let delayed = b.register(x);
//! let quarter = b.shift_right(delayed, 2);
//! let sum = b.add(half, quarter);
//! b.output(sum, "y");
//! let netlist = b.finish()?;
//! assert_eq!(netlist.stats().adders, 1);
//! assert_eq!(netlist.stats().registers, 1);
//! # Ok::<(), RtlError>(())
//! ```

#![forbid(unsafe_code)]

mod builder;
mod error;
mod node;

pub mod fulladder;
pub mod linear;
pub mod misr;
pub mod range;
pub mod reachability;
pub mod sim;

pub use builder::{Netlist, NetlistBuilder, NetlistStats};
pub use error::RtlError;
pub use node::{Node, NodeId, NodeKind};
