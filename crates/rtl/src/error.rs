use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced while constructing or analyzing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// Datapath width outside the supported `2..=63` bits.
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// A node referenced an id that does not exist in the netlist.
    UnknownNode {
        /// The dangling reference.
        node: NodeId,
    },
    /// The combinational part of the netlist contains a cycle
    /// (cycles are only legal through registers).
    CombinationalCycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// The netlist has no input or no output.
    MissingPort {
        /// `"input"` or `"output"`.
        kind: &'static str,
    },
    /// Signature-register width outside the supported `1..=63` bits.
    InvalidMisrWidth {
        /// The offending width.
        width: u32,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::InvalidWidth { width } => {
                write!(f, "datapath width {width} is not in 2..=63")
            }
            RtlError::UnknownNode { node } => write!(f, "reference to unknown node {node:?}"),
            RtlError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node:?}")
            }
            RtlError::MissingPort { kind } => write!(f, "netlist has no {kind}"),
            RtlError::InvalidMisrWidth { width } => {
                write!(f, "MISR width {width} is not in 1..=63")
            }
        }
    }
}

impl Error for RtlError {}
