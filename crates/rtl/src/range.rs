//! Value-range and granularity analysis: which full-adder cells of each
//! adder are *active*.
//!
//! The paper's designs are conservatively scaled: a worst-case (L1-norm)
//! bound guarantees no adder can overflow, and the bound also reveals
//! *redundant sign bits* — cell positions above the value range's MSB
//! where every bit always equals the sign. "The use of scaling techniques
//! to identify and remove redundant sign bits is the first step towards
//! obtaining a testable design" (paper Section 3); this module performs
//! that identification with interval arithmetic over the netlist, plus a
//! known-zero-LSB (granularity) analysis that finds cells whose inputs
//! are hardwired zero (e.g. below the shortest shift feeding a CSD tap).
//!
//! Only *active* cells enter the fault universe in `bist-faultsim`;
//! the excess headroom that remains — ranges much wider than typical
//! signal excursions — is exactly where the paper's difficult faults
//! live.

use crate::node::{NodeId, NodeKind};
use crate::Netlist;

/// Interval plus granularity information for one node's raw word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRange {
    /// Smallest reachable raw value.
    pub lo: i64,
    /// Largest reachable raw value.
    pub hi: i64,
    /// Number of low bits that are always zero.
    pub zero_lsbs: u32,
}

impl NodeRange {
    /// Joins two ranges (interval union, granularity minimum).
    fn join(self, other: NodeRange) -> NodeRange {
        NodeRange {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            zero_lsbs: self.zero_lsbs.min(other.zero_lsbs),
        }
    }

    /// Index of the highest cell that can differ from pure sign
    /// extension: the smallest `n` with `-2^n <= lo` and `hi < 2^n`.
    pub fn msb_cell(self) -> u32 {
        let mut n = 0u32;
        while self.lo < -(1i64 << n) || self.hi >= (1i64 << n) {
            n += 1;
            if n >= 63 {
                break;
            }
        }
        n
    }
}

/// Results of the range analysis over a whole netlist.
#[derive(Debug, Clone)]
pub struct RangeAnalysis {
    ranges: Vec<NodeRange>,
    width: u32,
}

impl RangeAnalysis {
    /// Runs the analysis. `input_range` describes every input port
    /// (the paper's designs: a 12-bit word left-aligned in the 16-bit
    /// datapath gives `lo = -2048 << 4`, `hi = 2047 << 4`,
    /// `zero_lsbs = 4`).
    ///
    /// Interval arithmetic is iterated to a fixpoint (register chains
    /// need one pass per pipeline stage); an iteration cap widens any
    /// non-converged node — e.g. inside an unstable feedback loop — to
    /// the full word range.
    pub fn analyze(netlist: &Netlist, input_range: NodeRange) -> RangeAnalysis {
        let width = netlist.width();
        let full =
            NodeRange { lo: -(1i64 << (width - 1)), hi: (1i64 << (width - 1)) - 1, zero_lsbs: 0 };
        let n = netlist.nodes().len();
        let mut ranges: Vec<Option<NodeRange>> = vec![None; n];

        // Registers start at their reset value (zero) so their range must
        // include 0 from the first cycle.
        let zero = NodeRange { lo: 0, hi: 0, zero_lsbs: width };

        let max_iters = 2 * netlist.register_indices().len() + 4;
        for _ in 0..max_iters {
            let mut changed = false;
            for &idx in netlist.eval_order() {
                let node = &netlist.nodes()[idx as usize];
                let computed = match node.kind {
                    NodeKind::Input => Some(input_range),
                    NodeKind::Const { raw } => Some(NodeRange {
                        lo: raw,
                        hi: raw,
                        zero_lsbs: if raw == 0 { width } else { raw.trailing_zeros().min(width) },
                    }),
                    NodeKind::Register { src } => {
                        Some(ranges[src.index()].map_or(zero, |r| r.join(zero)))
                    }
                    NodeKind::Output { src } => ranges[src.index()],
                    NodeKind::ShiftRight { src, amount } => {
                        ranges[src.index()].map(|r| NodeRange {
                            lo: r.lo >> amount.min(62),
                            hi: r.hi >> amount.min(62),
                            zero_lsbs: r.zero_lsbs.saturating_sub(amount),
                        })
                    }
                    NodeKind::Add { a, b } => {
                        combine(ranges[a.index()], ranges[b.index()], full, |x, y| {
                            (x.lo + y.lo, x.hi + y.hi)
                        })
                    }
                    NodeKind::Sub { a, b } => {
                        combine(ranges[a.index()], ranges[b.index()], full, |x, y| {
                            (x.lo - y.hi, x.hi - y.lo)
                        })
                    }
                    NodeKind::Not { src } => ranges[src.index()].map(|r| NodeRange {
                        lo: -r.hi - 1,
                        hi: -r.lo - 1,
                        zero_lsbs: 0,
                    }),
                    NodeKind::SetLsb { src } => ranges[src.index()].map(|r| NodeRange {
                        lo: r.lo,
                        hi: (r.hi + 1).min(full.hi),
                        zero_lsbs: 0,
                    }),
                    // Carry-save outputs are bitwise functions: only the
                    // granularity transfers; the value range is the full
                    // word (conservative).
                    NodeKind::CsaSum { a, b, c } => {
                        let g = [a, b, c]
                            .iter()
                            .filter_map(|op| ranges[op.index()].map(|r| r.zero_lsbs))
                            .min()
                            .unwrap_or(0);
                        Some(NodeRange { lo: full.lo, hi: full.hi, zero_lsbs: g })
                    }
                    NodeKind::CsaCarry { a, b, c, .. } => {
                        let g = [a, b, c]
                            .iter()
                            .filter_map(|op| ranges[op.index()].map(|r| r.zero_lsbs))
                            .min()
                            .unwrap_or(0);
                        Some(NodeRange { lo: full.lo, hi: full.hi, zero_lsbs: (g + 1).min(width) })
                    }
                };
                // Registers need their own pass ordering: evaluate after
                // the main loop below. Here registers read the current
                // estimate, which is fine for monotone iteration.
                if let Some(new) = computed {
                    let joined = ranges[idx as usize].map_or(new, |old| old.join(new));
                    if ranges[idx as usize] != Some(joined) {
                        ranges[idx as usize] = Some(joined);
                        changed = true;
                    }
                }
            }
            // Also propagate register sources (registers are not in
            // dependency order in eval_order).
            for &idx in netlist.register_indices() {
                if let NodeKind::Register { src } = netlist.nodes()[idx as usize].kind {
                    let new = ranges[src.index()].map_or(zero, |r| r.join(zero));
                    let joined = ranges[idx as usize].map_or(new, |old| old.join(new));
                    if ranges[idx as usize] != Some(joined) {
                        ranges[idx as usize] = Some(joined);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let ranges: Vec<NodeRange> =
            ranges.into_iter().map(|r| clamp(r.unwrap_or(full), full)).collect();
        RangeAnalysis { ranges, width }
    }

    /// The computed range of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn range(&self, id: NodeId) -> NodeRange {
        self.ranges[id.index()]
    }

    /// Replaces a node's range with its intersection with `[lo, hi]`.
    ///
    /// This encodes an *assumed* (e.g. statistical) bound tighter than
    /// the worst case — the paper's "more aggressive scaling
    /// techniques". The caller takes responsibility for the assumption:
    /// hardware trimmed to a tightened range misbehaves if the signal
    /// ever exceeds it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `lo > hi`.
    pub fn tighten(&mut self, id: NodeId, lo: i64, hi: i64) {
        assert!(lo <= hi, "empty tightening interval");
        let r = &mut self.ranges[id.index()];
        r.lo = r.lo.max(lo);
        r.hi = r.hi.min(hi);
        if r.lo > r.hi {
            // Keep at least one representable point to stay well-formed.
            r.lo = r.hi;
        }
    }

    /// The active full-adder cell span `(lsb, msb)` of an arithmetic
    /// node, or `None` for non-arithmetic nodes or fully degenerate
    /// (constant-zero) adders. Cells outside the span are redundant sign
    /// positions (above) or hardwired-zero positions (below).
    pub fn active_span(&self, netlist: &Netlist, id: NodeId) -> Option<(u32, u32)> {
        let node = netlist.node(id);
        let (a, b) = match node.kind {
            NodeKind::Add { a, b } | NodeKind::Sub { a, b } => (a, b),
            NodeKind::CsaSum { a, b, c } => {
                // A carry-save stage has one full-adder cell per bit;
                // cells above every operand's MSB all see the three sign
                // bits, so one representative sign cell is kept.
                let (ra, rb, rc) =
                    (self.ranges[a.index()], self.ranges[b.index()], self.ranges[c.index()]);
                let lsb = ra.zero_lsbs.min(rb.zero_lsbs).min(rc.zero_lsbs);
                let msb =
                    (ra.msb_cell().max(rb.msb_cell()).max(rc.msb_cell()) + 1).min(self.width - 1);
                return if lsb > msb { None } else { Some((lsb, msb)) };
            }
            _ => return None,
        };
        let ra = self.ranges[a.index()];
        let rb = self.ranges[b.index()];
        let rout = self.ranges[id.index()];
        let lsb = ra.zero_lsbs.min(rb.zero_lsbs);
        let msb = rout.msb_cell().max(ra.msb_cell()).max(rb.msb_cell()).min(self.width - 1);
        if lsb > msb {
            return None;
        }
        Some((lsb, msb))
    }

    /// Value range of a node in fractional units (`raw * 2^-(width-1)`).
    pub fn value_range(&self, id: NodeId) -> (f64, f64) {
        let r = self.ranges[id.index()];
        let lsb = 2f64.powi(-((self.width - 1) as i32));
        (r.lo as f64 * lsb, r.hi as f64 * lsb)
    }

    /// Headroom of a node in bits: how many cells sit above the value
    /// range's MSB — the paper's "redundant sign bits".
    pub fn headroom_bits(&self, id: NodeId) -> u32 {
        self.width - 1 - self.ranges[id.index()].msb_cell().min(self.width - 1)
    }
}

fn combine(
    a: Option<NodeRange>,
    b: Option<NodeRange>,
    full: NodeRange,
    f: impl Fn(NodeRange, NodeRange) -> (i64, i64),
) -> Option<NodeRange> {
    let (a, b) = (a?, b?);
    let (lo, hi) = f(a, b);
    let zero_lsbs = a.zero_lsbs.min(b.zero_lsbs);
    if lo < full.lo || hi > full.hi {
        // Overflow is representationally possible: the wrapped result can
        // be anywhere in the word.
        Some(NodeRange { lo: full.lo, hi: full.hi, zero_lsbs })
    } else {
        Some(NodeRange { lo, hi, zero_lsbs })
    }
}

fn clamp(r: NodeRange, full: NodeRange) -> NodeRange {
    NodeRange { lo: r.lo.max(full.lo), hi: r.hi.min(full.hi), zero_lsbs: r.zero_lsbs }
}

/// The input range of a `bits`-wide input left-aligned into a `width`
/// datapath (the paper's 12-bit input in a 16-bit path).
///
/// # Panics
///
/// Panics if `bits > width` or `bits == 0`.
pub fn aligned_input_range(bits: u32, width: u32) -> NodeRange {
    assert!(bits > 0 && bits <= width, "input bits must fit the datapath");
    let shift = width - bits;
    NodeRange {
        lo: -(1i64 << (bits - 1)) << shift,
        hi: ((1i64 << (bits - 1)) - 1) << shift,
        zero_lsbs: shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn msb_cell_examples() {
        assert_eq!(NodeRange { lo: 0, hi: 0, zero_lsbs: 0 }.msb_cell(), 0);
        assert_eq!(NodeRange { lo: -1, hi: 0, zero_lsbs: 0 }.msb_cell(), 0);
        assert_eq!(NodeRange { lo: -2, hi: 1, zero_lsbs: 0 }.msb_cell(), 1);
        assert_eq!(NodeRange { lo: 0, hi: 9830, zero_lsbs: 0 }.msb_cell(), 14);
        assert_eq!(NodeRange { lo: -32768, hi: 32767, zero_lsbs: 0 }.msb_cell(), 15);
    }

    #[test]
    fn aligned_input_matches_paper_designs() {
        let r = aligned_input_range(12, 16);
        assert_eq!(r.lo, -2048 << 4);
        assert_eq!(r.hi, 2047 << 4);
        assert_eq!(r.zero_lsbs, 4);
    }

    #[test]
    fn shift_narrows_range_and_consumes_granularity() {
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let s = b.shift_right(x, 2);
        b.output(s, "y");
        let n = b.finish().unwrap();
        let ra = RangeAnalysis::analyze(&n, aligned_input_range(12, 16));
        let r = ra.range(crate::NodeId(1));
        assert_eq!(r.lo, (-2048 << 4) >> 2);
        assert_eq!(r.hi, (2047 << 4) >> 2);
        assert_eq!(r.zero_lsbs, 2);
    }

    #[test]
    fn adder_of_shifted_terms_has_trimmed_span() {
        // x>>3 + x>>7: |result| < 2^15 (2^-3 + 2^-7) -> msb cell 12,
        // active lsb = 0 (x>>7 exhausts the 4 zero LSBs and more).
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let s3 = b.shift_right(x, 3);
        let s7 = b.shift_right(x, 7);
        let sum = b.add(s3, s7);
        b.output(sum, "y");
        let n = b.finish().unwrap();
        let ra = RangeAnalysis::analyze(&n, aligned_input_range(12, 16));
        let (lsb, msb) = ra.active_span(&n, crate::NodeId(3)).unwrap();
        assert_eq!(lsb, 0);
        // max = 2047*16 (>>3) + 2047*16 (>>7) = 4094 + 255 = 4349 < 2^13.
        assert_eq!(msb, 13);
        assert_eq!(ra.headroom_bits(crate::NodeId(3)), 2);
    }

    #[test]
    fn overflowable_adder_widens_to_full_range() {
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let sum = b.add(x, x); // can exceed the word
        b.output(sum, "y");
        let n = b.finish().unwrap();
        let full_input = NodeRange { lo: -32768, hi: 32767, zero_lsbs: 0 };
        let ra = RangeAnalysis::analyze(&n, full_input);
        let r = ra.range(crate::NodeId(1));
        assert_eq!((r.lo, r.hi), (-32768, 32767));
        assert_eq!(ra.active_span(&n, crate::NodeId(1)), Some((0, 15)));
    }

    #[test]
    fn register_chain_converges() {
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let mut v = x;
        for _ in 0..8 {
            v = b.register(v);
        }
        let s = b.shift_right(v, 1);
        b.output(s, "y");
        let n = b.finish().unwrap();
        let ra = RangeAnalysis::analyze(&n, aligned_input_range(12, 16));
        // The deepest register still carries the input range.
        let r = ra.range(crate::NodeId(8));
        assert_eq!(r.lo, -2048 << 4);
        assert_eq!(r.hi, 2047 << 4);
    }

    #[test]
    fn sub_range_is_difference() {
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let s2 = b.shift_right(x, 2);
        let s4 = b.shift_right(x, 4);
        let d = b.sub(s2, s4);
        b.output(d, "y");
        let n = b.finish().unwrap();
        let ra = RangeAnalysis::analyze(&n, aligned_input_range(12, 16));
        let r = ra.range(crate::NodeId(3));
        assert_eq!(r.lo, ((-2048 << 4) >> 2) - ((2047 << 4) >> 4));
        assert_eq!(r.hi, ((2047 << 4) >> 2) - ((-2048 << 4) >> 4));
    }

    #[test]
    fn non_arithmetic_nodes_have_no_span() {
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        b.output(x, "y");
        let n = b.finish().unwrap();
        let ra = RangeAnalysis::analyze(&n, aligned_input_range(12, 16));
        assert_eq!(ra.active_span(&n, crate::NodeId(0)), None);
    }

    /// Soundness of the interval/granularity analysis itself: on random
    /// small netlists, every value the gate-level simulator actually
    /// produces must lie inside the node's computed interval, and its
    /// claimed-zero low bits must really be zero. This is the contract
    /// the `L0xx` lints and the fault universe both build on.
    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use crate::sim::BitSlicedSim;
        use proptest::prelude::*;

        /// One construction step; operand indices pick among the nodes
        /// built so far (modulo), so every generated netlist is valid.
        #[derive(Debug, Clone)]
        enum Op {
            Shift { src: usize, amount: u32 },
            Add { a: usize, b: usize },
            Sub { a: usize, b: usize },
            Register { src: usize },
            NotWord { src: usize },
            SetLsb { src: usize },
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (any::<usize>(), 0u32..9).prop_map(|(src, amount)| Op::Shift { src, amount }),
                (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Add { a, b }),
                (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Sub { a, b }),
                any::<usize>().prop_map(|src| Op::Register { src }),
                any::<usize>().prop_map(|src| Op::NotWord { src }),
                any::<usize>().prop_map(|src| Op::SetLsb { src }),
            ]
        }

        fn build(ops: &[Op]) -> crate::Netlist {
            let mut b = NetlistBuilder::new(16).unwrap();
            let mut nodes = vec![b.input("x")];
            for op in ops {
                let pick = |i: usize| nodes[i % nodes.len()];
                let id = match *op {
                    Op::Shift { src, amount } => b.shift_right(pick(src), amount),
                    Op::Add { a, b: rhs } => b.add(pick(a), pick(rhs)),
                    Op::Sub { a, b: rhs } => b.sub(pick(a), pick(rhs)),
                    Op::Register { src } => b.register(pick(src)),
                    Op::NotWord { src } => b.not_word(pick(src)),
                    Op::SetLsb { src } => b.set_lsb(pick(src)),
                };
                nodes.push(id);
            }
            let last = *nodes.last().expect("at least the input");
            b.output(last, "y");
            b.finish().expect("random netlists are structurally valid")
        }

        proptest! {
            #[test]
            fn prop_intervals_contain_every_simulated_value(
                ops in proptest::collection::vec(op_strategy(), 1..12),
                words in proptest::collection::vec(-2048i64..=2047, 1..40),
            ) {
                let n = build(&ops);
                let ra = RangeAnalysis::analyze(&n, aligned_input_range(12, 16));
                let mut sim = BitSlicedSim::new(&n);
                for &w in &words {
                    // 12-bit words ride left-aligned in the 16-bit path,
                    // exactly as analyze() was told.
                    sim.step(w << 4);
                    for id in n.node_ids() {
                        let v = sim.lane_value(id, 0);
                        let r = ra.range(id);
                        prop_assert!(
                            r.lo <= v && v <= r.hi,
                            "node {id:?} ({:?}): {v} outside [{}, {}]",
                            n.node(id).kind, r.lo, r.hi
                        );
                        if r.zero_lsbs > 0 {
                            let mask = (1i64 << r.zero_lsbs.min(62)) - 1;
                            prop_assert_eq!(
                                v & mask, 0,
                                "node {:?}: {} has nonzero bits below claimed granularity {}",
                                id, v, r.zero_lsbs
                            );
                        }
                    }
                }
            }
        }
    }
}
