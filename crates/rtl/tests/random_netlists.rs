//! Property tests over randomly generated netlists: the bit-sliced
//! gate-level simulator must agree with a plain two's-complement
//! reference interpreter on every structure the builder can produce,
//! and the analyses must stay sound on arbitrary DAGs.
//!
//! Needs the `proptest` crate: the whole file is gated behind the
//! off-by-default `proptest` feature so the workspace builds offline
//! (see the workspace `Cargo.toml` for how to re-enable it).
#![cfg(feature = "proptest")]

use bist_rtl::range::{aligned_input_range, RangeAnalysis};
use bist_rtl::reachability::Reachability;
use bist_rtl::sim::BitSlicedSim;
use bist_rtl::{Netlist, NetlistBuilder, NodeId, NodeKind};
use proptest::prelude::*;

/// A recipe for one random netlist node.
#[derive(Debug, Clone)]
enum Op {
    Register(usize),
    ShiftRight(usize, u32),
    Add(usize, usize),
    Sub(usize, usize),
}

fn op_strategy(max_src: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_src).prop_map(Op::Register),
        (0..max_src, 0u32..6).prop_map(|(s, k)| Op::ShiftRight(s, k)),
        (0..max_src, 0..max_src).prop_map(|(a, b)| Op::Add(a, b)),
        (0..max_src, 0..max_src).prop_map(|(a, b)| Op::Sub(a, b)),
    ]
}

/// Builds a random netlist; node `i` may only reference nodes `< i`,
/// so the graph is always a DAG.
fn build(width: u32, ops: &[Op]) -> Netlist {
    let mut b = NetlistBuilder::new(width).expect("width valid");
    let mut ids: Vec<NodeId> = vec![b.input("x")];
    for op in ops {
        let pick = |i: usize| ids[i % ids.len()];
        let id = match *op {
            Op::Register(s) => b.register(pick(s)),
            Op::ShiftRight(s, k) => b.shift_right(pick(s), k),
            Op::Add(a, c) => b.add(pick(a), pick(c)),
            Op::Sub(a, c) => b.sub(pick(a), pick(c)),
        };
        ids.push(id);
    }
    let last = *ids.last().expect("nonempty");
    b.output(last, "y");
    b.finish().expect("DAG by construction")
}

/// Reference interpreter: straightforward wrapping two's-complement
/// evaluation with register state.
fn reference_run(netlist: &Netlist, inputs: &[i64]) -> Vec<i64> {
    let q = netlist.format();
    let n = netlist.nodes().len();
    let mut values = vec![0i64; n];
    let mut state = vec![0i64; n];
    let mut out = Vec::new();
    let out_id = netlist.output_ids()[0];
    for &x in inputs {
        for &idx in netlist.eval_order() {
            let i = idx as usize;
            values[i] = match netlist.nodes()[i].kind {
                NodeKind::Input => x,
                NodeKind::Const { raw } => raw,
                NodeKind::Register { .. } => state[i],
                NodeKind::Output { src } => values[src.index()],
                NodeKind::ShiftRight { src, amount } => values[src.index()] >> amount.min(62),
                NodeKind::Add { a, b } => q.wrap(values[a.index()] + values[b.index()]),
                NodeKind::Sub { a, b } => q.wrap(values[a.index()] - values[b.index()]),
                _ => unreachable!("builder never produces other kinds"),
            };
        }
        for &idx in netlist.register_indices() {
            let i = idx as usize;
            if let NodeKind::Register { src } = netlist.nodes()[i].kind {
                state[i] = values[src.index()];
            }
        }
        out.push(values[out_id.index()]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitsliced_matches_reference_interpreter(
        ops in proptest::collection::vec(op_strategy(16), 1..16),
        inputs in proptest::collection::vec(-128i64..=127, 1..24),
    ) {
        let netlist = build(8, &ops);
        let expect = reference_run(&netlist, &inputs);
        let mut sim = BitSlicedSim::new(&netlist);
        let out = netlist.output_ids()[0];
        for (t, &x) in inputs.iter().enumerate() {
            sim.step(x);
            prop_assert_eq!(sim.lane_value(out, 0), expect[t], "cycle {}", t);
            prop_assert_eq!(sim.lane_value(out, 17), expect[t], "lane disagreement");
        }
    }

    #[test]
    fn range_analysis_is_sound_on_random_netlists(
        ops in proptest::collection::vec(op_strategy(12), 1..12),
        inputs in proptest::collection::vec(-128i64..=127, 1..32),
    ) {
        // Every value the reference interpreter produces must lie inside
        // the analyzed range of its node.
        let netlist = build(8, &ops);
        let ranges = RangeAnalysis::analyze(&netlist, aligned_input_range(8, 8));
        let q = netlist.format();
        let n = netlist.nodes().len();
        let mut values = vec![0i64; n];
        let mut state = vec![0i64; n];
        for &x in &inputs {
            for &idx in netlist.eval_order() {
                let i = idx as usize;
                values[i] = match netlist.nodes()[i].kind {
                    NodeKind::Input => x,
                    NodeKind::Const { raw } => raw,
                    NodeKind::Register { .. } => state[i],
                    NodeKind::Output { src } => values[src.index()],
                    NodeKind::ShiftRight { src, amount } => values[src.index()] >> amount.min(62),
                    NodeKind::Add { a, b } => q.wrap(values[a.index()] + values[b.index()]),
                    NodeKind::Sub { a, b } => q.wrap(values[a.index()] - values[b.index()]),
                    _ => unreachable!("builder never produces other kinds"),
                };
                let r = ranges.range(netlist.node_id(i));
                prop_assert!(
                    values[i] >= r.lo && values[i] <= r.hi,
                    "node {} value {} outside [{}, {}]", idx, values[i], r.lo, r.hi
                );
                let g = r.zero_lsbs.min(62);
                prop_assert_eq!(
                    values[i] & ((1i64 << g) - 1), 0,
                    "node {} value {} violates {} zero LSBs", idx, values[i], g
                );
            }
            for &idx in netlist.register_indices() {
                let i = idx as usize;
                if let NodeKind::Register { src } = netlist.nodes()[i].kind {
                    state[i] = values[src.index()];
                }
            }
        }
    }

    #[test]
    fn reachability_is_sound_on_random_netlists(
        ops in proptest::collection::vec(op_strategy(10), 1..10),
        inputs in proptest::collection::vec(-128i64..=127, 1..40),
    ) {
        // Every (a, b, ci) combination observed in simulation must be
        // predicted reachable.
        let netlist = build(8, &ops);
        let reach = Reachability::analyze(&netlist, 8);
        let q = netlist.format();
        let n = netlist.nodes().len();
        let mut values = vec![0i64; n];
        let mut state = vec![0i64; n];
        for &x in &inputs {
            for &idx in netlist.eval_order() {
                let i = idx as usize;
                let kind = netlist.nodes()[i].kind;
                values[i] = match kind {
                    NodeKind::Input => x,
                    NodeKind::Const { raw } => raw,
                    NodeKind::Register { .. } => state[i],
                    NodeKind::Output { src } => values[src.index()],
                    NodeKind::ShiftRight { src, amount } => values[src.index()] >> amount.min(62),
                    NodeKind::Add { a, b } => q.wrap(values[a.index()] + values[b.index()]),
                    NodeKind::Sub { a, b } => q.wrap(values[a.index()] - values[b.index()]),
                    _ => unreachable!("builder never produces other kinds"),
                };
                if let NodeKind::Add { a, b } | NodeKind::Sub { a, b } = kind {
                    let is_sub = matches!(kind, NodeKind::Sub { .. });
                    let a_bits = q.to_bits(values[a.index()]);
                    let b_raw = q.to_bits(values[b.index()]);
                    let b_bits = if is_sub { !b_raw } else { b_raw };
                    let mut carry: u64 = u64::from(is_sub);
                    for cell in 0..8u32 {
                        let av = (a_bits >> cell) & 1;
                        let bv = (b_bits >> cell) & 1;
                        let combo = (av << 2) | (bv << 1) | carry;
                        let mask = reach.combo_mask(netlist.node_id(i), cell);
                        prop_assert!(
                            mask & (1 << combo) != 0,
                            "node {} cell {} observed combo {} not in mask {:08b}",
                            idx, cell, combo, mask
                        );
                        let x1 = av ^ bv;
                        carry = (av & bv) | (x1 & carry);
                    }
                }
            }
            for &idx in netlist.register_indices() {
                let i = idx as usize;
                if let NodeKind::Register { src } = netlist.nodes()[i].kind {
                    state[i] = values[src.index()];
                }
            }
        }
    }
}
