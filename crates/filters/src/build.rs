//! Mapping quantized CSD coefficients onto a transposed-direct-form
//! ripple-carry netlist.
//!
//! Transposed direct form computes `y[n] = sum_k c_k x[n-k]` as a chain
//! of partial sums: `s_k[n] = c_k x[n] + s_{k+1}[n-1]`, with `y = s_0`
//! (pipelined here by one extra output register). The partial sum at
//! "tap `k`" therefore sees the input filtered by the coefficient
//! *suffix* `c_k .. c_{N-1}` — the subfilters whose attenuation drives
//! the paper's testability analysis.
//!
//! Negative CSD digits and negative running signs are absorbed into
//! subtractors, exactly as a silicon compiler for multiplierless FIR
//! filters does; the netlist ends up with the mixed adder/subtractor
//! population of the paper's Table 1.

use csd::QuantizedCoefficient;
use rtl::{Netlist, NetlistBuilder, NodeId, RtlError};

/// Where one tap's pieces landed in the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapStructure {
    /// Tap index (0 = output-side tap).
    pub index: usize,
    /// Multiplier adder/subtractor nodes (empty when the coefficient has
    /// ≤ 1 nonzero digit).
    pub multiplier_nodes: Vec<NodeId>,
    /// The accumulation adder/subtractor, if this tap has one.
    pub accumulator: Option<NodeId>,
    /// The delay register carrying the partial sum out of this tap
    /// (`None` only for tap 0, which feeds the output register).
    pub register: Option<NodeId>,
}

/// Output of [`build_transposed_fir`].
#[derive(Debug, Clone)]
pub struct BuiltFilter {
    /// The hardware.
    pub netlist: Netlist,
    /// Per-tap structure records (index 0 first).
    pub taps: Vec<TapStructure>,
    /// The input node.
    pub input: NodeId,
    /// The output node.
    pub output: NodeId,
}

/// A value along the accumulation chain together with its pending sign.
#[derive(Clone, Copy)]
struct Signed {
    node: NodeId,
    negated: bool,
}

/// Builds the transposed-direct-form netlist for quantized coefficients
/// `coefficients[k]` (tap `k` multiplies the input by coefficient `k`).
///
/// # Errors
///
/// Propagates [`RtlError`] from netlist construction (e.g. an invalid
/// `width`).
pub fn build_transposed_fir(
    coefficients: &[QuantizedCoefficient],
    width: u32,
) -> Result<BuiltFilter, RtlError> {
    let mut b = NetlistBuilder::new(width)?;
    let input = b.input("x");
    let n = coefficients.len();
    let mut taps: Vec<TapStructure> = Vec::with_capacity(n);

    // Walk from the deepest tap (k = n-1) toward the output (k = 0).
    let mut chain: Option<Signed> = None;
    for k in (0..n).rev() {
        let mut tap = TapStructure {
            index: k,
            multiplier_nodes: Vec::new(),
            accumulator: None,
            register: None,
        };
        let product = build_multiplier(&mut b, input, &coefficients[k], k, &mut tap);

        // Delay the incoming partial sum (if any).
        let delayed = chain.map(|c| Signed {
            node: b.register_labeled(c.node, format!("tap{}.z", k + 1)),
            negated: c.negated,
        });
        if let Some(d) = delayed {
            if let Some(t) = taps.last_mut() {
                t.register = Some(d.node);
            }
        }

        chain = Some(match (product, delayed) {
            (None, None) => {
                // Leading zero coefficients: chain starts at zero.
                Signed { node: b.constant(0), negated: false }
            }
            (Some(p), None) => p,
            (None, Some(d)) => d,
            (Some(p), Some(d)) => {
                let label = format!("tap{k}.acc");
                let (node, negated) = match (p.negated, d.negated) {
                    (false, false) => (b.add_labeled(d.node, p.node, label), false),
                    (false, true) => (b.sub_labeled(p.node, d.node, label), false),
                    (true, false) => (b.sub_labeled(d.node, p.node, label), false),
                    (true, true) => (b.add_labeled(d.node, p.node, label), true),
                };
                tap.accumulator = Some(node);
                Signed { node, negated }
            }
        });
        taps.push(tap);
    }

    let mut last = chain.expect("at least one tap");
    if last.negated {
        // Residual sign: negate with a final subtractor from zero.
        let zero = b.constant(0);
        last = Signed { node: b.sub_labeled(zero, last.node, "negate"), negated: false };
    }
    // Output pipeline register (FIRGEN-style registered output).
    let out_reg = b.register_labeled(last.node, "tap0.z");
    if let Some(t) = taps.last_mut() {
        t.register = Some(out_reg);
    }
    let output = b.output(out_reg, "y");

    taps.reverse(); // index 0 first
    let netlist = b.finish()?;
    Ok(BuiltFilter { netlist, taps, input, output })
}

/// Builds the carry-save variant of the transposed form: the partial
/// sum travels as a `(sum, carry)` pair through 3:2 compressor stages,
/// with *two* delay registers per tap (the paper's Section 3: carry-save
/// arrays are "a higher-performance alternative that come at the cost of
/// doubling the number of registers"), and a final vector-merge ripple
/// adder. Negative tap products enter as inverted words with the `+1`
/// tied into the carry word's free LSB slot.
///
/// # Errors
///
/// Propagates [`RtlError`] from netlist construction.
pub fn build_csa_fir(
    coefficients: &[QuantizedCoefficient],
    width: u32,
) -> Result<BuiltFilter, RtlError> {
    let mut b = NetlistBuilder::new(width)?;
    let input = b.input("x");
    let n = coefficients.len();
    let mut taps: Vec<TapStructure> = Vec::with_capacity(n);

    // (sum, carry) pair carrying the partial result.
    let mut chain: Option<(NodeId, NodeId)> = None;
    for k in (0..n).rev() {
        let mut tap = TapStructure {
            index: k,
            multiplier_nodes: Vec::new(),
            accumulator: None,
            register: None,
        };
        let product = build_multiplier(&mut b, input, &coefficients[k], k, &mut tap);

        // Two pipeline registers per tap for the incoming pair.
        let delayed = chain.map(|(s, c)| {
            let rs = b.register_labeled(s, format!("tap{}.zs", k + 1));
            let rc = b.register_labeled(c, format!("tap{}.zc", k + 1));
            (rs, rc)
        });
        if let (Some((rs, _)), Some(t)) = (delayed, taps.last_mut()) {
            t.register = Some(rs);
        }

        chain = Some(match (product, delayed) {
            (None, None) => (b.constant(0), b.constant(0)),
            (Some(p), None) => {
                // Chain start: the pair is (operand, correction seed).
                if p.negated {
                    let inv = b.not_word(p.node);
                    (inv, b.constant(1))
                } else {
                    (p.node, b.constant(0))
                }
            }
            (None, Some(pair)) => pair,
            (Some(p), Some((ds, dc))) => {
                if p.negated {
                    // a - b = a + !b + 1: the +1 ties into THIS stage's
                    // carry output, whose LSB is structurally zero.
                    let inv = b.not_word(p.node);
                    let (s, c) = b.csa(ds, inv, dc, format!("tap{k}.csa"));
                    tap.accumulator = Some(s);
                    (s, b.set_lsb(c))
                } else {
                    let (s, c) = b.csa(ds, p.node, dc, format!("tap{k}.csa"));
                    tap.accumulator = Some(s);
                    (s, c)
                }
            }
        });
        taps.push(tap);
    }

    let (s0, c0) = chain.expect("at least one tap");
    // Vector merge: one ripple adder resolves the redundant pair.
    let merged = b.add_labeled(s0, c0, "merge");
    let out_reg = b.register_labeled(merged, "tap0.z");
    if let Some(t) = taps.last_mut() {
        t.register = Some(out_reg);
    }
    let output = b.output(out_reg, "y");

    taps.reverse();
    let netlist = b.finish()?;
    Ok(BuiltFilter { netlist, taps, input, output })
}

/// Builds the folded (symmetric) direct form, exploiting linear-phase
/// coefficient symmetry `c_k == c_{N-1-k}`: a delay line on the input,
/// *pre-adders* summing each mirrored sample pair (at half weight, so
/// the pair sum stays in range), one CSD multiplier per pair (half as
/// many as the transposed form), and a ripple accumulation chain. This
/// is the classic high-performance linear-phase FIR structure of
/// FIRGEN-class silicon compilers.
///
/// The implemented response is `sum_k c_k x[n-k]` with the same
/// coefficient values; each pre-add truncates one LSB of each operand
/// (the `>> 1` halving), so outputs may differ from the transposed form
/// by a few LSBs — exactly the truncation a real folded datapath has.
///
/// # Errors
///
/// Propagates [`RtlError`] from netlist construction, or
/// [`RtlError::InvalidWidth`]-class failures from the builder. Callers
/// must pass a symmetric coefficient set (asserted).
///
/// # Panics
///
/// Panics if the coefficients are not symmetric (`raw[k] !=
/// raw[N-1-k]`) — fold the design only when linear phase holds.
pub fn build_symmetric_fir(
    coefficients: &[QuantizedCoefficient],
    width: u32,
) -> Result<BuiltFilter, RtlError> {
    let n = coefficients.len();
    assert!(
        (0..n).all(|k| coefficients[k].raw == coefficients[n - 1 - k].raw),
        "folded form requires symmetric coefficients"
    );
    let mut b = NetlistBuilder::new(width)?;
    let input = b.input("x");
    let mut taps: Vec<TapStructure> = Vec::with_capacity(n);

    // Delay line: x[n], x[n-1], ..., x[n-(N-1)].
    let mut line = Vec::with_capacity(n);
    line.push(input);
    for k in 1..n {
        let prev = *line.last().expect("nonempty");
        line.push(b.register_labeled(prev, format!("x.z{k}")));
    }

    // One pre-added pair per coefficient pair; the middle tap of an odd
    // length passes through at half weight.
    let pairs = n / 2;
    let mut chain: Option<Signed> = None;
    for k in 0..pairs + (n % 2) {
        let mut tap = TapStructure {
            index: k,
            multiplier_nodes: Vec::new(),
            accumulator: None,
            register: None,
        };
        // Half-weight samples keep the pre-add inside [-1, 1).
        let half_a = b.shift_right(line[k], 1);
        let pre = if k < pairs {
            let half_b = b.shift_right(line[n - 1 - k], 1);
            let node = b.add_labeled(half_a, half_b, format!("pair{k}.pre"));
            tap.multiplier_nodes.push(node);
            node
        } else {
            half_a // middle sample of an odd-length filter
        };
        // Multiply the half-weight pair sum by 2*c_k: shift every CSD
        // digit up one position.
        let doubled = shifted_coefficient(&coefficients[k], 1);
        let product = build_multiplier(&mut b, pre, &doubled, k, &mut tap);

        chain = match (product, chain) {
            (None, prev) => prev,
            (Some(p), None) => Some(p),
            (Some(p), Some(acc)) => {
                let label = format!("pair{k}.acc");
                let (node, negated) = match (p.negated, acc.negated) {
                    (false, false) => (b.add_labeled(acc.node, p.node, label), false),
                    (false, true) => (b.sub_labeled(p.node, acc.node, label), false),
                    (true, false) => (b.sub_labeled(acc.node, p.node, label), false),
                    (true, true) => (b.add_labeled(acc.node, p.node, label), true),
                };
                tap.accumulator = Some(node);
                Some(Signed { node, negated })
            }
        };
        taps.push(tap);
    }

    let mut last = chain.unwrap_or_else(|| Signed { node: b.constant(0), negated: false });
    if last.negated {
        let zero = b.constant(0);
        last = Signed { node: b.sub_labeled(zero, last.node, "negate"), negated: false };
    }
    let out_reg = b.register_labeled(last.node, "y.z");
    if let Some(t) = taps.last_mut() {
        t.register = Some(out_reg);
    }
    let output = b.output(out_reg, "y");
    let netlist = b.finish()?;
    Ok(BuiltFilter { netlist, taps, input, output })
}

/// A copy of `coef` with every CSD digit moved `shift` positions up
/// (value multiplied by `2^shift`).
fn shifted_coefficient(coef: &QuantizedCoefficient, shift: i32) -> QuantizedCoefficient {
    QuantizedCoefficient {
        csd: coef.csd.shifted(shift),
        raw: coef.raw << shift,
        frac_bits: coef.frac_bits,
        value: coef.value * 2f64.powi(shift),
        error: coef.error * 2f64.powi(shift),
    }
}

/// Builds the shift-and-add multiplier for one coefficient. Returns the
/// product (with pending sign) or `None` for a zero coefficient.
fn build_multiplier(
    b: &mut NetlistBuilder,
    input: NodeId,
    coef: &QuantizedCoefficient,
    tap_index: usize,
    tap: &mut TapStructure,
) -> Option<Signed> {
    let digits = coef.fractional_digits();
    if digits.is_empty() {
        return None;
    }
    // Work with magnitudes: if the leading digit is negative, build the
    // negated coefficient and mark the product.
    let leading_negative = digits[0].negative;
    let mut acc: Option<NodeId> = None;
    for (j, d) in digits.iter().enumerate() {
        // digit value magnitude 2^power (power < 0): shift = -power.
        let shift = (-d.power) as u32;
        let term = b.shift_right(input, shift);
        let digit_negative = d.negative != leading_negative; // sign relative to leading
        acc = Some(match acc {
            None => term,
            Some(prev) => {
                let label = format!("tap{tap_index}.mul{j}");
                let node = if digit_negative {
                    b.sub_labeled(prev, term, label)
                } else {
                    b.add_labeled(prev, term, label)
                };
                tap.multiplier_nodes.push(node);
                node
            }
        });
    }
    Some(Signed { node: acc.expect("nonempty digits"), negated: leading_negative })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csd::quantize;
    use rtl::sim::BitSlicedSim;

    fn qc(v: f64) -> QuantizedCoefficient {
        quantize(v, 15, 4)
    }

    /// Reference FIR evaluation with the same truncation the hardware
    /// applies (shift-then-accumulate in raw units, exact because the
    /// adds cannot overflow for these small coefficients).
    fn reference(coeffs: &[QuantizedCoefficient], xs: &[i64]) -> Vec<i64> {
        let mut y = Vec::new();
        for n in 0..xs.len() {
            let mut acc: i64 = 0;
            for (k, c) in coeffs.iter().enumerate() {
                if n > k {
                    // +1: the output register delays everything by one.
                    let x = xs[n - k - 1] << 4;
                    for d in c.fractional_digits() {
                        let shift = (-d.power) as u32;
                        let term = x >> shift.min(63);
                        acc += if d.negative { -term } else { term };
                    }
                }
            }
            y.push(acc);
        }
        y
    }

    #[test]
    fn two_tap_filter_matches_reference() {
        let coeffs = vec![qc(0.25), qc(0.125)];
        let built = build_transposed_fir(&coeffs, 16).unwrap();
        let xs = [100i64, -500, 2047, -2048, 0, 77];
        let mut sim = BitSlicedSim::new(&built.netlist);
        let expect = reference(&coeffs, &xs);
        for (i, &x) in xs.iter().enumerate() {
            sim.step(x << 4);
            assert_eq!(sim.lane_value(built.output, 0), expect[i], "cycle {i}");
        }
    }

    #[test]
    fn negative_coefficients_use_subtractors() {
        let coeffs = vec![qc(0.25), qc(-0.25), qc(0.5)];
        let built = build_transposed_fir(&coeffs, 16).unwrap();
        let stats = built.netlist.stats();
        assert!(stats.subtractors >= 1, "negative coefficient should synthesize a subtractor");
        let xs = [1000i64, -100, 500, 250, -2048, 13];
        let expect = reference(&coeffs, &xs);
        let mut sim = BitSlicedSim::new(&built.netlist);
        for (i, &x) in xs.iter().enumerate() {
            sim.step(x << 4);
            assert_eq!(sim.lane_value(built.output, 0), expect[i], "cycle {i}");
        }
    }

    #[test]
    fn multi_digit_coefficient_matches_truncating_reference() {
        // 0.3 in CSD: several digits; hardware truncates each shift.
        let coeffs = vec![qc(0.3), qc(-0.147), qc(0.0625)];
        let built = build_transposed_fir(&coeffs, 16).unwrap();
        let xs = [2047i64, -2048, 1023, -7, 1, 0, 555];
        let expect = reference(&coeffs, &xs);
        let mut sim = BitSlicedSim::new(&built.netlist);
        for (i, &x) in xs.iter().enumerate() {
            sim.step(x << 4);
            assert_eq!(sim.lane_value(built.output, 0), expect[i], "cycle {i}");
        }
    }

    #[test]
    fn zero_coefficients_cost_nothing() {
        let coeffs = vec![qc(0.5), qc(0.0), qc(0.25)];
        let built = build_transposed_fir(&coeffs, 16).unwrap();
        assert!(built.taps[1].multiplier_nodes.is_empty());
        assert!(built.taps[1].accumulator.is_none());
        let xs = [64i64, 128, -256, 512, -1024];
        let expect = reference(&coeffs, &xs);
        let mut sim = BitSlicedSim::new(&built.netlist);
        for (i, &x) in xs.iter().enumerate() {
            sim.step(x << 4);
            assert_eq!(sim.lane_value(built.output, 0), expect[i], "cycle {i}");
        }
    }

    #[test]
    fn register_count_equals_tap_count() {
        let coeffs: Vec<_> = (0..10).map(|i| qc(0.02 * (i as f64 + 1.0))).collect();
        let built = build_transposed_fir(&coeffs, 16).unwrap();
        assert_eq!(built.netlist.stats().registers, 10);
        assert_eq!(built.taps.len(), 10);
    }

    #[test]
    fn leading_negative_coefficient_still_correct() {
        let coeffs = vec![qc(-0.5), qc(-0.25)];
        let built = build_transposed_fir(&coeffs, 16).unwrap();
        let xs = [100i64, 200, -300, 400];
        let expect = reference(&coeffs, &xs);
        let mut sim = BitSlicedSim::new(&built.netlist);
        for (i, &x) in xs.iter().enumerate() {
            sim.step(x << 4);
            assert_eq!(sim.lane_value(built.output, 0), expect[i], "cycle {i}");
        }
    }

    #[test]
    fn symmetric_form_tracks_transposed_form_within_truncation() {
        // Symmetric coefficients; the folded form's half-weight
        // pre-adds truncate one LSB per operand, so allow a small bound.
        let coeffs = vec![qc(0.1), qc(-0.25), qc(0.4), qc(-0.25), qc(0.1)];
        let folded = build_symmetric_fir(&coeffs, 16).unwrap();
        let ripple = build_transposed_fir(&coeffs, 16).unwrap();
        let mut sf = BitSlicedSim::new(&folded.netlist);
        let mut sr = BitSlicedSim::new(&ripple.netlist);
        let xs = [2047i64, -2048, 100, -500, 321, 0, 77, -1, 1, 1000, -3, 1500];
        // Bound: each of the 3 pairs contributes up to ~2 raw LSBs of
        // pre-add truncation scaled by its (doubled) coefficient, plus
        // multiplier truncation differences; 16 raw units is generous.
        for (t, &x) in xs.iter().enumerate() {
            sf.step(x << 4);
            sr.step(x << 4);
            let d = (sf.lane_value(folded.output, 0) - sr.lane_value(ripple.output, 0)).abs();
            assert!(d <= 16, "cycle {t}: divergence {d} raw units");
        }
    }

    #[test]
    fn symmetric_form_halves_the_multipliers() {
        let coeffs: Vec<_> = vec![qc(0.05), qc(-0.1), qc(0.3), qc(0.3), qc(-0.1), qc(0.05)];
        let folded = build_symmetric_fir(&coeffs, 16).unwrap();
        let ripple = build_transposed_fir(&coeffs, 16).unwrap();
        // The folded form's register count is dominated by the delay
        // line (N-1 + output), and its arithmetic should be no larger
        // than the unfolded form's despite the added pre-adders.
        assert!(
            folded.netlist.stats().arithmetic() <= ripple.netlist.stats().arithmetic(),
            "folded {} vs ripple {}",
            folded.netlist.stats().arithmetic(),
            ripple.netlist.stats().arithmetic()
        );
        assert_eq!(folded.netlist.stats().registers as usize, coeffs.len());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn symmetric_form_rejects_asymmetric_coefficients() {
        let coeffs = vec![qc(0.1), qc(0.2), qc(0.3)];
        let _ = build_symmetric_fir(&coeffs, 16);
    }

    #[test]
    fn csa_form_matches_ripple_form_functionally() {
        // Same quantized coefficients through both architectures: the
        // carry-save cascade plus vector merge must produce exactly the
        // ripple transposed form's output (same truncation points, same
        // alignment).
        let coeff_sets: Vec<Vec<QuantizedCoefficient>> = vec![
            vec![qc(0.25), qc(0.125)],
            vec![qc(0.25), qc(-0.25), qc(0.5)],
            vec![qc(-0.3), qc(0.0), qc(0.147), qc(-0.0625), qc(0.09)],
            vec![qc(-0.5), qc(-0.25)],
        ];
        for coeffs in coeff_sets {
            let ripple = build_transposed_fir(&coeffs, 16).unwrap();
            let csa = build_csa_fir(&coeffs, 16).unwrap();
            let mut sim_r = BitSlicedSim::new(&ripple.netlist);
            let mut sim_c = BitSlicedSim::new(&csa.netlist);
            let xs = [2047i64, -2048, 100, -500, 321, 0, 77, -1, 1, 1000];
            for (t, &x) in xs.iter().enumerate() {
                sim_r.step(x << 4);
                sim_c.step(x << 4);
                assert_eq!(
                    sim_r.lane_value(ripple.output, 0),
                    sim_c.lane_value(csa.output, 0),
                    "coeffs {:?} cycle {t}",
                    coeffs.iter().map(|q| q.value).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn csa_form_doubles_the_registers() {
        let coeffs: Vec<_> = (0..8).map(|i| qc(0.05 * (i as f64 + 1.0) - 0.2)).collect();
        let ripple = build_transposed_fir(&coeffs, 16).unwrap();
        let csa = build_csa_fir(&coeffs, 16).unwrap();
        let r = ripple.netlist.stats().registers;
        let c = csa.netlist.stats().registers;
        assert!(c >= 2 * r - 2, "carry-save should roughly double the registers: {c} vs {r}");
        assert!(csa.netlist.stats().csa_stages > 0);
    }

    #[test]
    fn csa_fault_injection_affects_both_outputs_consistently() {
        use rtl::fulladder::{FaFault, Line};
        use rtl::sim::CellFault;
        let coeffs = vec![qc(0.25), qc(0.25), qc(0.25)];
        let csa = build_csa_fir(&coeffs, 16).unwrap();
        let stage = csa.taps.iter().find_map(|t| t.accumulator).expect("a CSA stage exists");
        let mut sim = BitSlicedSim::new(&csa.netlist);
        // AStem stuck-at-1 at cell 5 must perturb sum and carry words
        // coherently: the faulty lane's (sum + carry) changes by the
        // effect of a single flipped operand bit, not by two unrelated
        // corruptions.
        sim.set_faults(
            stage,
            vec![CellFault {
                cell: 5,
                fault: FaFault { line: Line::AStem, stuck_one: true },
                lanes: 0b10,
            }],
        );
        let mut diverged = false;
        for x in [100i64, -2000, 1500, -37, 800, 41, -1024, 2000] {
            sim.step(x << 4);
            let good = sim.lane_value(csa.output, 0);
            let bad = sim.lane_value(csa.output, 1);
            if good != bad {
                diverged = true;
                // A single A-input flip at cell 5 changes the pair sum
                // by exactly +-2^5 (the cell re-encodes a+b+c exactly).
                let delta = (bad - good).rem_euclid(1 << 16);
                assert!(
                    delta == 32 || delta == (1 << 16) - 32,
                    "incoherent fault effect: delta {delta}"
                );
            }
        }
        assert!(diverged, "fault never propagated");
    }

    #[test]
    fn tap_records_point_at_real_nodes() {
        let coeffs = vec![qc(0.25), qc(0.3), qc(-0.125)];
        let built = build_transposed_fir(&coeffs, 16).unwrap();
        for tap in &built.taps {
            if let Some(acc) = tap.accumulator {
                assert!(built.netlist.node(acc).kind.is_arithmetic());
                assert_eq!(built.netlist.node(acc).label, format!("tap{}.acc", tap.index));
            }
            for &m in &tap.multiplier_nodes {
                assert!(built.netlist.node(m).kind.is_arithmetic());
            }
        }
    }
}
