//! The three circuits-under-test of the paper's Table 1.
//!
//! The paper's exact coefficient sets are unpublished; these designs are
//! re-derived from its published parameters — ~60 tap structures,
//! 12-bit input, 14–15-bit coefficients, 16-bit output datapath,
//! canonic-signed-digit multipliers — and its qualitative descriptions:
//! a *narrowband* lowpass (low cutoff, so a Type 1 LFSR's low-frequency
//! null starves its passband), a bandpass with a *wider* passband than
//! the other two designs, and a highpass.
//!
//! | design | taps | coef. bits | band (×fs)      |
//! |--------|------|-----------|------------------|
//! | LP     | 60   | 15        | 0 – 0.04         |
//! | BP     | 58   | 14        | 0.15 – 0.35      |
//! | HP     | 59   | 15        | 0.38 – 0.5       |

use crate::{FilterDesign, FilterError, FilterSpec};
use dsp::firdesign::BandKind;

/// The paper's 60-tap narrowband lowpass design ("LP").
///
/// # Errors
///
/// Propagates [`FilterError`] from elaboration (does not fail for the
/// built-in parameters).
pub fn lowpass() -> Result<FilterDesign, FilterError> {
    FilterDesign::elaborate(FilterSpec {
        name: "LP".into(),
        band: BandKind::Lowpass { cutoff: 0.04 },
        taps: 60,
        input_bits: 12,
        coef_frac_bits: 15,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.5,
    })
}

/// The paper's bandpass design ("BP") — wider passband than LP/HP.
///
/// # Errors
///
/// Propagates [`FilterError`] from elaboration.
pub fn bandpass() -> Result<FilterDesign, FilterError> {
    FilterDesign::elaborate(FilterSpec {
        name: "BP".into(),
        band: BandKind::Bandpass { low: 0.15, high: 0.35 },
        taps: 58,
        input_bits: 12,
        coef_frac_bits: 14,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.5,
    })
}

/// The paper's highpass design ("HP").
///
/// # Errors
///
/// Propagates [`FilterError`] from elaboration.
pub fn highpass() -> Result<FilterDesign, FilterError> {
    FilterDesign::elaborate(FilterSpec {
        name: "HP".into(),
        band: BandKind::Highpass { cutoff: 0.38 },
        taps: 59,
        input_bits: 12,
        coef_frac_bits: 15,
        max_csd_digits: 4,
        width: 16,
        kaiser_beta: 5.5,
    })
}

/// All three Table 1 designs, in paper order (LP, BP, HP).
///
/// # Errors
///
/// Propagates [`FilterError`] from elaboration.
pub fn paper_designs() -> Result<Vec<FilterDesign>, FilterError> {
    Ok(vec![lowpass()?, bandpass()?, highpass()?])
}

/// A 16-tap miniature of the LP design: same 12-bit input and 16-bit
/// datapath, an order of magnitude fewer faults. Not a paper circuit —
/// it exists so service smoke tests and CI can run a complete campaign
/// in milliseconds instead of seconds.
///
/// # Errors
///
/// Propagates [`FilterError`] from elaboration.
pub fn lowpass_mini() -> Result<FilterDesign, FilterError> {
    FilterDesign::elaborate(FilterSpec {
        name: "LP-MINI".into(),
        band: BandKind::Lowpass { cutoff: 0.1 },
        taps: 16,
        input_bits: 12,
        coef_frac_bits: 14,
        max_csd_digits: 3,
        width: 16,
        kaiser_beta: 4.0,
    })
}

/// The LP design rebuilt in folded (symmetric, linear-phase) direct
/// form: half the multipliers, a delay line on the input.
///
/// # Errors
///
/// Propagates [`FilterError`] from elaboration.
pub fn lowpass_symmetric() -> Result<FilterDesign, FilterError> {
    FilterDesign::elaborate_full(
        FilterSpec {
            name: "LP-SYM".into(),
            band: BandKind::Lowpass { cutoff: 0.04 },
            taps: 60,
            input_bits: 12,
            coef_frac_bits: 15,
            max_csd_digits: 4,
            width: 16,
            kaiser_beta: 5.5,
        },
        crate::ScalingPolicy::WorstCase,
        crate::Architecture::Symmetric,
    )
}

/// The LP design rebuilt with carry-save accumulation — the paper's
/// "higher-performance alternative" with twice the registers.
///
/// # Errors
///
/// Propagates [`FilterError`] from elaboration.
pub fn lowpass_carry_save() -> Result<FilterDesign, FilterError> {
    FilterDesign::elaborate_full(
        FilterSpec {
            name: "LP-CSA".into(),
            band: BandKind::Lowpass { cutoff: 0.04 },
            taps: 60,
            input_bits: 12,
            coef_frac_bits: 15,
            max_csd_digits: 4,
            width: 16,
            kaiser_beta: 5.5,
        },
        crate::ScalingPolicy::WorstCase,
        crate::Architecture::CarrySave,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::response::magnitude_at;

    #[test]
    fn lp_is_narrowband_lowpass() {
        let d = lowpass().unwrap();
        let c = d.coefficients();
        assert!(magnitude_at(&c, 0.01) > 0.5);
        assert!(magnitude_at(&c, 0.2) < 0.02);
        assert!(magnitude_at(&c, 0.45) < 0.02);
        assert_eq!(d.netlist().stats().registers, 60);
    }

    #[test]
    fn bp_passes_midband_only() {
        // Conservative L1 scaling holds the passband gain below unity
        // (BP has the largest L1/gain ratio); the band shape is what
        // matters: midband passes, both skirts are deeply attenuated.
        let d = bandpass().unwrap();
        let c = d.coefficients();
        let pass = magnitude_at(&c, 0.25);
        assert!(pass > 0.3);
        assert!(magnitude_at(&c, 0.02) < 0.01 * pass);
        assert!(magnitude_at(&c, 0.48) < 0.01 * pass);
        assert_eq!(d.netlist().stats().registers, 58);
    }

    #[test]
    fn hp_passes_top_band_only() {
        let d = highpass().unwrap();
        let c = d.coefficients();
        let pass = magnitude_at(&c, 0.48);
        assert!(pass > 0.3);
        assert!(magnitude_at(&c, 0.05) < 0.01 * pass);
        assert!(magnitude_at(&c, 0.2) < 0.01 * pass);
        assert_eq!(d.netlist().stats().registers, 59);
    }

    #[test]
    fn design_complexity_matches_table1_regime() {
        for d in paper_designs().unwrap() {
            let s = d.netlist().stats();
            assert!(
                (100..=260).contains(&s.arithmetic()),
                "{}: {} adders/subtractors",
                d.name(),
                s.arithmetic()
            );
            assert!((55..=62).contains(&s.registers), "{}: {} registers", d.name(), s.registers);
            assert_eq!(s.width, 16);
        }
    }

    #[test]
    fn carry_save_variant_matches_ripple_functionally_and_doubles_registers() {
        let ripple = lowpass().unwrap();
        let csa = lowpass_carry_save().unwrap();
        assert!(
            csa.netlist().stats().registers >= 2 * ripple.netlist().stats().registers - 4,
            "CSA registers {} vs ripple {}",
            csa.netlist().stats().registers,
            ripple.netlist().stats().registers
        );
        assert!(csa.netlist().stats().csa_stages > 40);
        // Functional equivalence on a pseudo-random burst.
        let mut sr = rtl::sim::BitSlicedSim::new(ripple.netlist());
        let mut sc = rtl::sim::BitSlicedSim::new(csa.netlist());
        let mut state = 0xC0FFEEu64;
        for t in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let w = ((state >> 52) as i64) - 2048;
            sr.step(ripple.align_input(w));
            sc.step(csa.align_input(w));
            assert_eq!(
                sr.lane_value(ripple.output(), 0),
                sc.lane_value(csa.output(), 0),
                "cycle {t}"
            );
        }
    }

    #[test]
    fn mini_design_is_small_and_lowpass() {
        let d = lowpass_mini().unwrap();
        assert_eq!(d.name(), "LP-MINI");
        assert_eq!(d.netlist().stats().registers, 16);
        assert!(
            d.netlist().stats().arithmetic() < lowpass().unwrap().netlist().stats().arithmetic()
        );
        let c = d.coefficients();
        assert!(magnitude_at(&c, 0.02) > 0.3);
        assert!(magnitude_at(&c, 0.4) < 0.05);
    }

    #[test]
    fn designs_never_overflow_internally() {
        // L1-scaling guarantee: drive with worst-case ±full-scale input
        // and check the output register never wraps, via range analysis.
        use rtl::range::{aligned_input_range, RangeAnalysis};
        for d in paper_designs().unwrap() {
            let ra = RangeAnalysis::analyze(d.netlist(), aligned_input_range(12, 16));
            let (lo, hi) = ra.value_range(d.output());
            assert!(lo >= -1.0 && hi < 1.0, "{}: output range [{lo}, {hi}]", d.name());
        }
    }
}
