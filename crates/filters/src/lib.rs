//! The paper's circuits-under-test: high-performance, reduced-complexity
//! FIR digital filters, designed in floating point, quantized to
//! canonic-signed-digit coefficients, and mapped onto a structural
//! ripple-carry netlist.
//!
//! The architecture follows the paper's Section 3 (and its FIRGEN
//! lineage): a cascade of *tap* structures in transposed direct form,
//! each tap being a hardwired shift-and-add constant multiplier feeding
//! an accumulation adder and a delay register. Conservative L1-norm
//! scaling guarantees no internal overflow and identifies redundant sign
//! bits (see `bist_rtl::range`).
//!
//! [`designs::paper_designs`] instantiates the three Table 1 designs:
//! a narrowband lowpass (LP), a mid-band bandpass (BP) and a highpass
//! (HP), each with a 12-bit input, ≤15-bit coefficients and a 16-bit
//! datapath.
//!
//! # Example
//!
//! ```
//! use bist_filters::designs::lowpass;
//!
//! let design = lowpass()?;
//! let stats = design.netlist().stats();
//! assert!(stats.arithmetic() > 100);     // ~180 adders/subtractors
//! assert_eq!(stats.registers as usize, design.taps());
//! # Ok::<(), bist_filters::FilterError>(())
//! ```

#![forbid(unsafe_code)]

mod build;
mod design;
mod error;

pub mod designs;

pub use build::TapStructure;
pub use design::{Architecture, FilterDesign, FilterSpec, ScalingPolicy};
pub use error::FilterError;
