use std::error::Error;
use std::fmt;

/// Errors produced while designing or building a filter.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FilterError {
    /// The floating-point prototype design failed.
    Design(dsp::DspError),
    /// Netlist construction failed.
    Rtl(rtl::RtlError),
    /// Coefficient quantization could not reach an L1 norm ≤ 1 within
    /// the iteration budget.
    ScalingDiverged {
        /// The L1 norm reached when iteration stopped.
        l1: f64,
    },
    /// A spec parameter was invalid.
    InvalidSpec {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::Design(e) => write!(f, "prototype design failed: {e}"),
            FilterError::Rtl(e) => write!(f, "netlist construction failed: {e}"),
            FilterError::ScalingDiverged { l1 } => {
                write!(f, "coefficient scaling did not converge (L1 = {l1})")
            }
            FilterError::InvalidSpec { reason } => write!(f, "invalid filter spec: {reason}"),
        }
    }
}

impl Error for FilterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FilterError::Design(e) => Some(e),
            FilterError::Rtl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dsp::DspError> for FilterError {
    fn from(e: dsp::DspError) -> Self {
        FilterError::Design(e)
    }
}

impl From<rtl::RtlError> for FilterError {
    fn from(e: rtl::RtlError) -> Self {
        FilterError::Rtl(e)
    }
}
