use crate::build::{
    build_csa_fir, build_symmetric_fir, build_transposed_fir, BuiltFilter, TapStructure,
};
use crate::FilterError;
use csd::QuantizedCoefficient;
use dsp::firdesign::{BandKind, FirSpec};
use rtl::{Netlist, NodeId};

/// Parameters of one circuit-under-test.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    /// Short name ("LP", "BP", "HP").
    pub name: String,
    /// Band shape and edges.
    pub band: BandKind,
    /// Number of taps (= registers in the built design).
    pub taps: usize,
    /// Input word width in bits (left-aligned into the datapath).
    pub input_bits: u32,
    /// Coefficient fractional precision in bits.
    pub coef_frac_bits: u32,
    /// Maximum CSD digits per coefficient (adder budget per multiplier).
    pub max_csd_digits: usize,
    /// Datapath width in bits.
    pub width: u32,
    /// Kaiser window beta of the prototype design.
    pub kaiser_beta: f64,
}

/// Datapath architecture of the accumulation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Architecture {
    /// Ripple-carry accumulation (the paper's focus).
    RippleCarry,
    /// Carry-save accumulation: 3:2 compressor stages, two registers
    /// per tap, vector merge at the output — the paper's
    /// "higher-performance alternative".
    CarrySave,
    /// Folded direct form exploiting linear-phase coefficient symmetry:
    /// half-weight pre-adders on mirrored delay-line taps, one CSD
    /// multiplier per coefficient *pair* (requires a symmetric design).
    Symmetric,
}

/// How node ranges are claimed for sign trimming and fault-universe
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ScalingPolicy {
    /// Worst-case (L1-norm) interval analysis: no node can ever exceed
    /// its claimed range. The paper's designs use this — it is what
    /// leaves the excess headroom that breeds near-redundant faults.
    WorstCase,
    /// Statistical bounds: each node's claimed range is additionally
    /// capped at `k_rms` times its RMS response to a full-scale white
    /// input. Tighter ranges trim more sign cells (fewer near-redundant
    /// faults) but a signal beyond the claim corrupts the output — the
    /// paper's "more aggressive scaling techniques, when appropriate".
    Statistical {
        /// Multiple of the node's RMS used as the claimed bound.
        k_rms: f64,
    },
}

/// A fully elaborated design: float prototype, quantized coefficients,
/// and structural netlist.
#[derive(Debug, Clone)]
pub struct FilterDesign {
    spec: FilterSpec,
    prototype: Vec<f64>,
    quantized: Vec<QuantizedCoefficient>,
    built: BuiltFilter,
    scaling: ScalingPolicy,
    architecture: Architecture,
    claimed_ranges: rtl::range::RangeAnalysis,
}

impl FilterDesign {
    /// Designs, scales, quantizes and builds the filter.
    ///
    /// Conservative scaling: the prototype is scaled so the *quantized*
    /// coefficient set has L1 norm ≤ 1, guaranteeing (worst case) that no
    /// node of the transposed-form netlist can overflow. The scaling
    /// loop shrinks the prototype and re-quantizes until the bound holds.
    ///
    /// # Errors
    ///
    /// * [`FilterError::Design`] if the prototype design fails.
    /// * [`FilterError::InvalidSpec`] for inconsistent widths.
    /// * [`FilterError::ScalingDiverged`] if the L1 bound cannot be met.
    /// * [`FilterError::Rtl`] if netlist construction fails.
    pub fn elaborate(spec: FilterSpec) -> Result<FilterDesign, FilterError> {
        Self::elaborate_with(spec, ScalingPolicy::WorstCase)
    }

    /// Like [`FilterDesign::elaborate`] with an explicit scaling policy
    /// for the sign-trimming / fault-universe ranges.
    ///
    /// # Errors
    ///
    /// Same as [`FilterDesign::elaborate`]; additionally rejects a
    /// non-positive `k_rms`.
    pub fn elaborate_with(
        spec: FilterSpec,
        scaling: ScalingPolicy,
    ) -> Result<FilterDesign, FilterError> {
        Self::elaborate_full(spec, scaling, Architecture::RippleCarry)
    }

    /// Full elaboration control: scaling policy and accumulation
    /// architecture.
    ///
    /// # Errors
    ///
    /// Same as [`FilterDesign::elaborate_with`].
    pub fn elaborate_full(
        spec: FilterSpec,
        scaling: ScalingPolicy,
        architecture: Architecture,
    ) -> Result<FilterDesign, FilterError> {
        if let ScalingPolicy::Statistical { k_rms } = scaling {
            // partial_cmp so NaN is rejected along with non-positives.
            let positive = k_rms.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
            if !positive {
                return Err(FilterError::InvalidSpec {
                    reason: format!("k_rms {k_rms} must be positive"),
                });
            }
        }
        if spec.input_bits == 0 || spec.input_bits > spec.width {
            return Err(FilterError::InvalidSpec {
                reason: format!("input bits {} must be in 1..={}", spec.input_bits, spec.width),
            });
        }
        if spec.coef_frac_bits >= spec.width {
            return Err(FilterError::InvalidSpec {
                reason: format!(
                    "coefficient precision {} must be below the datapath width {}",
                    spec.coef_frac_bits, spec.width
                ),
            });
        }
        let prototype = FirSpec::new(spec.band, spec.taps)
            .kaiser_beta(spec.kaiser_beta)
            .l1_bound(0.995)
            .design()?;

        let mut scale = 1.0f64;
        let mut quantized = quantize_all(&prototype, scale, &spec);
        for _ in 0..16 {
            let l1: f64 = quantized.iter().map(|q| q.value.abs()).sum();
            if l1 <= 1.0 {
                break;
            }
            scale *= 0.999 / l1;
            quantized = quantize_all(&prototype, scale, &spec);
        }
        let l1: f64 = quantized.iter().map(|q| q.value.abs()).sum();
        if l1 > 1.0 {
            return Err(FilterError::ScalingDiverged { l1 });
        }

        let n_taps = quantized.len();
        if architecture == Architecture::Symmetric
            && !(0..n_taps).all(|k| quantized[k].raw == quantized[n_taps - 1 - k].raw)
        {
            return Err(FilterError::InvalidSpec {
                reason: "the folded form requires a symmetric (linear-phase) design".into(),
            });
        }
        let mut built = match architecture {
            Architecture::RippleCarry => build_transposed_fir(&quantized, spec.width)?,
            Architecture::CarrySave => build_csa_fir(&quantized, spec.width)?,
            Architecture::Symmetric => build_symmetric_fir(&quantized, spec.width)?,
        };
        // Sign-extension optimization: remove redundant sign cells (and
        // the top cells' carry logic) identified by the range analysis —
        // the paper's first step toward a testable design.
        let mut ranges = rtl::range::RangeAnalysis::analyze(
            &built.netlist,
            rtl::range::aligned_input_range(spec.input_bits, spec.width),
        );
        if let ScalingPolicy::Statistical { k_rms } = scaling {
            // Cap each ripple adder's claimed range at k_rms times its
            // RMS response to full-scale white input
            // (sigma_x = 1/sqrt(3)). Carry-save nodes are excluded:
            // their words are bitwise re-encodings whose individual
            // ranges are not bounded by the (linear) pair sum.
            let nodes: Vec<NodeId> = built
                .netlist
                .arithmetic_ids()
                .into_iter()
                .filter(|&id| {
                    matches!(
                        built.netlist.node(id).kind,
                        rtl::NodeKind::Add { .. } | rtl::NodeKind::Sub { .. }
                    )
                })
                .collect();
            let len = built.netlist.register_indices().len() + 2;
            let responses = rtl::linear::impulse_responses(&built.netlist, &nodes, len);
            let scale = 2f64.powi(spec.width as i32 - 1);
            for (id, h) in nodes.into_iter().zip(responses) {
                let rms = (h.iter().map(|c| c * c).sum::<f64>() / 3.0).sqrt();
                let bound = ((k_rms * rms * scale).ceil() as i64).max(1);
                ranges.tighten(id, -bound, bound);
            }
        }
        built.netlist = built.netlist.with_sign_trimming(&ranges);
        Ok(FilterDesign {
            spec,
            prototype,
            quantized,
            built,
            scaling,
            architecture,
            claimed_ranges: ranges,
        })
    }

    /// The design parameters.
    pub fn spec(&self) -> &FilterSpec {
        &self.spec
    }

    /// Short name of the design.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of taps.
    pub fn taps(&self) -> usize {
        self.spec.taps
    }

    /// The floating-point prototype coefficients (pre-quantization).
    pub fn prototype(&self) -> &[f64] {
        &self.prototype
    }

    /// The quantized CSD coefficients actually implemented.
    pub fn quantized(&self) -> &[QuantizedCoefficient] {
        &self.quantized
    }

    /// The implemented coefficient values as floats.
    pub fn coefficients(&self) -> Vec<f64> {
        self.quantized.iter().map(|q| q.value).collect()
    }

    /// The structural netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.built.netlist
    }

    /// The scaling policy the design was elaborated with.
    pub fn scaling(&self) -> ScalingPolicy {
        self.scaling
    }

    /// The accumulation architecture.
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// The claimed node ranges (worst-case intervals, tightened by the
    /// statistical bound under [`ScalingPolicy::Statistical`]); these
    /// drive the sign trimming and must drive the fault universe.
    pub fn claimed_ranges(&self) -> &rtl::range::RangeAnalysis {
        &self.claimed_ranges
    }

    /// The input node (drive with words left-aligned via
    /// [`FilterDesign::align_input`]).
    pub fn input(&self) -> NodeId {
        self.built.input
    }

    /// The output node.
    pub fn output(&self) -> NodeId {
        self.built.output
    }

    /// Per-tap structure records.
    pub fn tap_structures(&self) -> &[TapStructure] {
        &self.built.taps
    }

    /// The accumulation adder of tap `k`, if it has one.
    pub fn tap_accumulator(&self, k: usize) -> Option<NodeId> {
        self.built.taps.get(k).and_then(|t| t.accumulator)
    }

    /// Aligns a `input_bits`-wide raw word into the datapath (left
    /// justification, zero fill), e.g. a 12-bit generator word into the
    /// 16-bit filter input.
    pub fn align_input(&self, raw: i64) -> i64 {
        raw << (self.spec.width - self.spec.input_bits)
    }

    /// The ideal-arithmetic impulse response of the subfilter driving
    /// `node` (see [`rtl::linear::impulse_response`]); length covers the
    /// full pipeline plus one output delay.
    pub fn subfilter_impulse_response(&self, node: NodeId) -> Vec<f64> {
        rtl::linear::impulse_response(self.netlist(), node, self.spec.taps + 2)
    }

    /// Impulse response at the filter output (ideal arithmetic; equals
    /// the quantized coefficients delayed by the output register).
    pub fn impulse_response(&self) -> Vec<f64> {
        self.subfilter_impulse_response(self.output())
    }
}

fn quantize_all(prototype: &[f64], scale: f64, spec: &FilterSpec) -> Vec<QuantizedCoefficient> {
    prototype
        .iter()
        .map(|&c| csd::quantize(c * scale, spec.coef_frac_bits, spec.max_csd_digits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::response::magnitude_at;

    fn small_spec() -> FilterSpec {
        FilterSpec {
            name: "TEST".into(),
            band: BandKind::Lowpass { cutoff: 0.15 },
            taps: 15,
            input_bits: 12,
            coef_frac_bits: 14,
            max_csd_digits: 4,
            width: 16,
            kaiser_beta: 5.0,
        }
    }

    #[test]
    fn elaboration_produces_consistent_design() {
        let d = FilterDesign::elaborate(small_spec()).unwrap();
        assert_eq!(d.taps(), 15);
        assert_eq!(d.quantized().len(), 15);
        assert_eq!(d.netlist().stats().registers, 15);
        let l1: f64 = d.coefficients().iter().map(|c| c.abs()).sum();
        assert!(l1 <= 1.0, "L1 = {l1}");
    }

    #[test]
    fn quantized_response_tracks_prototype() {
        let d = FilterDesign::elaborate(small_spec()).unwrap();
        let c = d.coefficients();
        // Passband/stopband shape preserved after quantization.
        let pass = magnitude_at(&c, 0.02);
        let stop = magnitude_at(&c, 0.4);
        assert!(pass > 10.0 * stop, "pass {pass} stop {stop}");
    }

    #[test]
    fn impulse_response_equals_coefficients_with_delay() {
        let d = FilterDesign::elaborate(small_spec()).unwrap();
        let h = d.impulse_response();
        assert!(h[0].abs() < 1e-12, "output register delays by one");
        for (k, q) in d.quantized().iter().enumerate() {
            assert!((h[k + 1] - q.value).abs() < 1e-9, "tap {k}");
        }
    }

    #[test]
    fn align_input_left_justifies() {
        let d = FilterDesign::elaborate(small_spec()).unwrap();
        assert_eq!(d.align_input(1), 16);
        assert_eq!(d.align_input(-2048), -32768);
    }

    #[test]
    fn rejects_bad_spec() {
        let mut s = small_spec();
        s.input_bits = 20;
        assert!(matches!(FilterDesign::elaborate(s), Err(FilterError::InvalidSpec { .. })));
        let mut s2 = small_spec();
        s2.coef_frac_bits = 16;
        assert!(matches!(FilterDesign::elaborate(s2), Err(FilterError::InvalidSpec { .. })));
    }

    fn white_words(n: usize) -> Vec<i64> {
        let mut state = 0x5DEECE66Du64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 52) as i64) - 2048
            })
            .collect()
    }

    #[test]
    fn statistical_scaling_trims_more_headroom() {
        // Use a narrowband design: its L1 (worst-case) bounds sit far
        // above the RMS excursions, so the statistical cap bites.
        let spec = FilterSpec {
            name: "narrow".into(),
            band: BandKind::Lowpass { cutoff: 0.05 },
            taps: 40,
            input_bits: 12,
            coef_frac_bits: 15,
            max_csd_digits: 4,
            width: 16,
            kaiser_beta: 5.5,
        };
        let wc = FilterDesign::elaborate(spec.clone()).unwrap();
        let stat =
            FilterDesign::elaborate_with(spec, ScalingPolicy::Statistical { k_rms: 2.5 }).unwrap();
        let trim_total = |d: &FilterDesign| -> u32 {
            d.netlist().arithmetic_ids().iter().map(|&id| d.netlist().msb_trim(id)).sum()
        };
        assert!(
            trim_total(&stat) < trim_total(&wc),
            "statistical scaling should trim at least one more sign cell"
        );
        assert_eq!(stat.scaling(), ScalingPolicy::Statistical { k_rms: 2.5 });
        assert_eq!(wc.scaling(), ScalingPolicy::WorstCase);
    }

    #[test]
    fn generous_statistical_bound_preserves_behaviour() {
        // With a huge k_rms the statistical cap never binds, so the
        // trimmed hardware behaves identically to the worst-case design.
        let wc = FilterDesign::elaborate(small_spec()).unwrap();
        let stat =
            FilterDesign::elaborate_with(small_spec(), ScalingPolicy::Statistical { k_rms: 100.0 })
                .unwrap();
        let inputs = white_words(300);
        let out_wc = faultsim_free_run(&wc, &inputs);
        let out_stat = faultsim_free_run(&stat, &inputs);
        assert_eq!(out_wc, out_stat);
    }

    #[test]
    fn reckless_statistical_bound_corrupts_output() {
        // k_rms far below the real excursions: trimmed sign cells lie,
        // and a full-scale white input exposes it.
        let wc = FilterDesign::elaborate(small_spec()).unwrap();
        let stat =
            FilterDesign::elaborate_with(small_spec(), ScalingPolicy::Statistical { k_rms: 0.3 })
                .unwrap();
        let inputs = white_words(500);
        let out_wc = faultsim_free_run(&wc, &inputs);
        let out_stat = faultsim_free_run(&stat, &inputs);
        assert_ne!(out_wc, out_stat, "over-aggressive trimming should corrupt the output");
    }

    #[test]
    fn rejects_nonpositive_k_rms() {
        assert!(matches!(
            FilterDesign::elaborate_with(small_spec(), ScalingPolicy::Statistical { k_rms: 0.0 }),
            Err(FilterError::InvalidSpec { .. })
        ));
    }

    /// Fault-free run through the bit-sliced simulator.
    fn faultsim_free_run(d: &FilterDesign, inputs: &[i64]) -> Vec<i64> {
        let mut sim = rtl::sim::BitSlicedSim::new(d.netlist());
        inputs
            .iter()
            .map(|&w| {
                sim.step(d.align_input(w));
                sim.lane_value(d.output(), 0)
            })
            .collect()
    }

    #[test]
    fn tap_accumulator_lookup() {
        let d = FilterDesign::elaborate(small_spec()).unwrap();
        // Middle taps of a 15-tap lowpass have nonzero coefficients.
        assert!(d.tap_accumulator(7).is_some());
        assert!(d.tap_accumulator(99).is_none());
    }
}
