use crate::FixedPointError;
use std::fmt;

/// Describes a two's-complement word format: total width and fraction bits.
///
/// A `QFormat` with width `N` and `F` fraction bits represents values
/// `raw / 2^F` where `raw` is an `N`-bit two's-complement integer. The
/// paper's convention (all signals interpreted relative to the local bit
/// width, values in `[-1, 1)`) corresponds to `F = N - 1`.
///
/// # Example
///
/// ```
/// use bist_fixedpoint::QFormat;
///
/// let q = QFormat::new(12, 11)?;
/// assert_eq!(q.min_value(), -1.0);
/// assert_eq!(q.max_value(), 1.0 - 2f64.powi(-11));
/// assert_eq!(q.lsb(), 2f64.powi(-11));
/// # Ok::<(), bist_fixedpoint::FixedPointError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    width: u32,
    frac_bits: u32,
}

impl QFormat {
    /// Creates a format with `width` total bits, of which `frac_bits` are
    /// fractional.
    ///
    /// # Errors
    ///
    /// Returns [`FixedPointError::InvalidWidth`] if `width` is not in
    /// `1..=63`, or [`FixedPointError::InvalidFracBits`] if `frac_bits >= width`
    /// (at least one bit must remain for the sign).
    pub fn new(width: u32, frac_bits: u32) -> Result<Self, FixedPointError> {
        if width == 0 || width > 63 {
            return Err(FixedPointError::InvalidWidth { width });
        }
        if frac_bits >= width {
            return Err(FixedPointError::InvalidFracBits { frac_bits, width });
        }
        Ok(QFormat { width, frac_bits })
    }

    /// Total word width in bits (including the sign bit).
    pub fn width(self) -> u32 {
        self.width
    }

    /// Number of fraction bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Number of integer bits excluding the sign bit.
    pub fn int_bits(self) -> u32 {
        self.width - 1 - self.frac_bits
    }

    /// Smallest representable raw word (`-2^(width-1)`).
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.width - 1))
    }

    /// Largest representable raw word (`2^(width-1) - 1`).
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.width - 1)) - 1
    }

    /// Smallest representable value.
    pub fn min_value(self) -> f64 {
        self.min_raw() as f64 * self.lsb()
    }

    /// Largest representable value.
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 * self.lsb()
    }

    /// Weight of the least-significant bit (`2^-frac_bits`).
    pub fn lsb(self) -> f64 {
        (2f64).powi(-(self.frac_bits as i32))
    }

    /// Wraps an arbitrary integer into this format's two's-complement range,
    /// exactly as a hardware adder of this width would.
    ///
    /// # Example
    ///
    /// ```
    /// use bist_fixedpoint::QFormat;
    ///
    /// let q = QFormat::new(4, 3)?; // raws in -8..=7
    /// assert_eq!(q.wrap(8), -8);
    /// assert_eq!(q.wrap(-9), 7);
    /// assert_eq!(q.wrap(3), 3);
    /// # Ok::<(), bist_fixedpoint::FixedPointError>(())
    /// ```
    pub fn wrap(self, raw: i64) -> i64 {
        let m = 1i64 << self.width;
        let x = raw.rem_euclid(m);
        if x >= m / 2 {
            x - m
        } else {
            x
        }
    }

    /// Returns `true` if `raw` is representable without wrapping.
    pub fn contains_raw(self, raw: i64) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }

    /// Sign-extends the low `width` bits of `bits` into an `i64`.
    ///
    /// # Example
    ///
    /// ```
    /// use bist_fixedpoint::QFormat;
    ///
    /// let q = QFormat::new(4, 3)?;
    /// assert_eq!(q.sign_extend(0b1111), -1);
    /// assert_eq!(q.sign_extend(0b0111), 7);
    /// # Ok::<(), bist_fixedpoint::FixedPointError>(())
    /// ```
    pub fn sign_extend(self, bits: u64) -> i64 {
        let shift = 64 - self.width;
        ((bits << shift) as i64) >> shift
    }

    /// The low `width` bits of a raw word, as an unsigned pattern.
    pub fn to_bits(self, raw: i64) -> u64 {
        (raw as u64) & ((1u64 << self.width) - 1)
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.width - self.frac_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_widths() {
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(64, 10).is_err());
        assert!(QFormat::new(8, 8).is_err());
        assert!(QFormat::new(8, 9).is_err());
    }

    #[test]
    fn q1_15_range() {
        let q = QFormat::new(16, 15).unwrap();
        assert_eq!(q.min_raw(), -32768);
        assert_eq!(q.max_raw(), 32767);
        assert_eq!(q.min_value(), -1.0);
        assert!((q.max_value() - (1.0 - 2f64.powi(-15))).abs() < 1e-12);
        assert_eq!(q.int_bits(), 0);
    }

    #[test]
    fn wrap_matches_modular_arithmetic() {
        let q = QFormat::new(6, 5).unwrap();
        for raw in -200..200 {
            let w = q.wrap(raw);
            assert!(q.contains_raw(w));
            assert_eq!((w - raw).rem_euclid(64), 0, "raw={raw} wrapped={w}");
        }
    }

    #[test]
    fn sign_extend_round_trips_to_bits() {
        let q = QFormat::new(12, 11).unwrap();
        for raw in q.min_raw()..=q.max_raw() {
            assert_eq!(q.sign_extend(q.to_bits(raw)), raw);
        }
    }

    #[test]
    fn display_shows_q_notation() {
        let q = QFormat::new(16, 15).unwrap();
        assert_eq!(q.to_string(), "Q1.15");
    }
}
