use std::error::Error;
use std::fmt;

/// Errors produced when constructing fixed-point formats or values.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FixedPointError {
    /// The requested word width is outside the supported `1..=63` range.
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// The number of fraction bits does not fit in the word
    /// (`frac_bits` must be `< width`... it must leave room for the sign).
    InvalidFracBits {
        /// The offending fraction-bit count.
        frac_bits: u32,
        /// The word width it was paired with.
        width: u32,
    },
    /// A value does not fit in the requested format.
    OutOfRange {
        /// The value that failed to convert.
        value: f64,
        /// Low end of the representable range.
        min: f64,
        /// High end (exclusive) of the representable range.
        max: f64,
    },
    /// A raw bit pattern had bits set above the format's width.
    RawOverflow {
        /// The offending raw word.
        raw: i64,
        /// The format width it was paired with.
        width: u32,
    },
}

impl fmt::Display for FixedPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedPointError::InvalidWidth { width } => {
                write!(f, "word width {width} is not in 1..=63")
            }
            FixedPointError::InvalidFracBits { frac_bits, width } => {
                write!(f, "{frac_bits} fraction bits do not fit in a {width}-bit word")
            }
            FixedPointError::OutOfRange { value, min, max } => {
                write!(f, "value {value} is outside the representable range [{min}, {max})")
            }
            FixedPointError::RawOverflow { raw, width } => {
                write!(f, "raw word {raw:#x} does not fit in {width} bits")
            }
        }
    }
}

impl Error for FixedPointError {}
