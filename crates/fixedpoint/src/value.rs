use crate::{FixedPointError, QFormat};
use std::cmp::Ordering;
use std::fmt;

/// A fixed-point value: a raw two's-complement word paired with its format.
///
/// Arithmetic mirrors what the hardware in `bist-rtl` does: additions either
/// wrap (like a plain ripple-carry adder) or saturate, and right shifts are
/// arithmetic with truncation toward negative infinity — exactly the
/// behaviour of a hardwired shift in a CSD multiplier.
///
/// # Example
///
/// ```
/// use bist_fixedpoint::{Fx, QFormat};
///
/// let q = QFormat::new(8, 7)?;
/// let x = Fx::from_f64(-0.75, q)?;
/// assert_eq!(x.shifted_right(1).to_f64(), -0.375);
/// assert_eq!(x.wrapping_neg().to_f64(), 0.75);
/// # Ok::<(), bist_fixedpoint::FixedPointError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fx {
    raw: i64,
    format: QFormat,
}

impl Fx {
    /// Builds a value from a raw two's-complement word.
    ///
    /// # Errors
    ///
    /// Returns [`FixedPointError::RawOverflow`] if `raw` does not fit in the
    /// format's width.
    pub fn from_raw(raw: i64, format: QFormat) -> Result<Self, FixedPointError> {
        if !format.contains_raw(raw) {
            return Err(FixedPointError::RawOverflow { raw, width: format.width() });
        }
        Ok(Fx { raw, format })
    }

    /// Builds a value from a raw word, wrapping it into range first.
    pub fn from_raw_wrapped(raw: i64, format: QFormat) -> Self {
        Fx { raw: format.wrap(raw), format }
    }

    /// Quantizes `value` to the nearest representable point (ties to even raw).
    ///
    /// # Errors
    ///
    /// Returns [`FixedPointError::OutOfRange`] if `value` rounds outside the
    /// representable range.
    pub fn from_f64(value: f64, format: QFormat) -> Result<Self, FixedPointError> {
        let scaled = value / format.lsb();
        let raw = round_half_even(scaled);
        if !format.contains_raw(raw) || !scaled.is_finite() {
            return Err(FixedPointError::OutOfRange {
                value,
                min: format.min_value(),
                max: format.max_value() + format.lsb(),
            });
        }
        Ok(Fx { raw, format })
    }

    /// The zero value in `format`.
    pub fn zero(format: QFormat) -> Self {
        Fx { raw: 0, format }
    }

    /// The most positive representable value.
    pub fn max(format: QFormat) -> Self {
        Fx { raw: format.max_raw(), format }
    }

    /// The most negative representable value.
    pub fn min(format: QFormat) -> Self {
        Fx { raw: format.min_raw(), format }
    }

    /// The raw two's-complement word.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The word format.
    pub fn format(self) -> QFormat {
        self.format
    }

    /// The value as a float (`raw * 2^-frac_bits`); exact for widths ≤ 53.
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * self.format.lsb()
    }

    /// The unsigned bit pattern of the word.
    pub fn to_bits(self) -> u64 {
        self.format.to_bits(self.raw)
    }

    /// Value of a single bit (`0` = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width`.
    pub fn bit(self, bit: u32) -> bool {
        assert!(bit < self.format.width(), "bit {bit} out of range");
        (self.to_bits() >> bit) & 1 == 1
    }

    /// Modular (wrap-around) addition, like a bare ripple-carry adder.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn wrapping_add(self, rhs: Fx) -> Fx {
        assert_eq!(self.format, rhs.format, "format mismatch in add");
        Fx::from_raw_wrapped(self.raw + rhs.raw, self.format)
    }

    /// Modular subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn wrapping_sub(self, rhs: Fx) -> Fx {
        assert_eq!(self.format, rhs.format, "format mismatch in sub");
        Fx::from_raw_wrapped(self.raw - rhs.raw, self.format)
    }

    /// Modular negation (note `-min == min`, as in real hardware).
    pub fn wrapping_neg(self) -> Fx {
        Fx::from_raw_wrapped(-self.raw, self.format)
    }

    /// Saturating addition (clamps at the format's extremes).
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn saturating_add(self, rhs: Fx) -> Fx {
        assert_eq!(self.format, rhs.format, "format mismatch in add");
        let sum = (self.raw + rhs.raw).clamp(self.format.min_raw(), self.format.max_raw());
        Fx { raw: sum, format: self.format }
    }

    /// Returns `(sum, overflowed)` for a wrap-around addition.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn overflowing_add(self, rhs: Fx) -> (Fx, bool) {
        assert_eq!(self.format, rhs.format, "format mismatch in add");
        let exact = self.raw + rhs.raw;
        let wrapped = self.format.wrap(exact);
        (Fx { raw: wrapped, format: self.format }, wrapped != exact)
    }

    /// Arithmetic right shift by `n` (truncation toward negative infinity),
    /// as performed by a hardwired shift in a CSD multiplier.
    pub fn shifted_right(self, n: u32) -> Fx {
        let n = n.min(63);
        Fx { raw: self.raw >> n, format: self.format }
    }

    /// Absolute value as a float (useful for range analysis).
    pub fn abs_value(self) -> f64 {
        self.to_f64().abs()
    }
}

impl PartialOrd for Fx {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.format == other.format {
            Some(self.raw.cmp(&other.raw))
        } else {
            self.to_f64().partial_cmp(&other.to_f64())
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

fn round_half_even(x: f64) -> i64 {
    let floor = x.floor();
    let frac = x - floor;
    let base = floor as i64;
    match frac.partial_cmp(&0.5) {
        Some(Ordering::Less) => base,
        Some(Ordering::Greater) => base + 1,
        _ => {
            if base % 2 == 0 {
                base
            } else {
                base + 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(w: u32, f: u32) -> QFormat {
        QFormat::new(w, f).unwrap()
    }

    #[test]
    fn from_f64_quantizes_to_nearest() {
        let fmt = q(8, 7);
        let x = Fx::from_f64(0.5 + 0.4 * fmt.lsb(), fmt).unwrap();
        assert_eq!(x.raw(), 64);
        let y = Fx::from_f64(0.5 + 0.6 * fmt.lsb(), fmt).unwrap();
        assert_eq!(y.raw(), 65);
    }

    #[test]
    fn from_f64_rejects_out_of_range() {
        let fmt = q(8, 7);
        assert!(Fx::from_f64(1.0, fmt).is_err());
        assert!(Fx::from_f64(-1.01, fmt).is_err());
        assert!(Fx::from_f64(f64::NAN, fmt).is_err());
        assert!(Fx::from_f64(-1.0, fmt).is_ok());
    }

    #[test]
    fn wrapping_add_overflows_like_hardware() {
        let fmt = q(16, 15);
        let a = Fx::from_f64(0.75, fmt).unwrap();
        let (sum, ovf) = a.overflowing_add(a);
        assert!(ovf);
        assert_eq!(sum.to_f64(), 0.75 + 0.75 - 2.0);
    }

    #[test]
    fn saturating_add_clamps() {
        let fmt = q(8, 7);
        let a = Fx::from_f64(0.75, fmt).unwrap();
        assert_eq!(a.saturating_add(a), Fx::max(fmt));
        let b = Fx::min(fmt);
        assert_eq!(b.saturating_add(b), Fx::min(fmt));
    }

    #[test]
    fn shift_truncates_toward_negative_infinity() {
        let fmt = q(8, 7);
        let x = Fx::from_raw(-3, fmt).unwrap();
        assert_eq!(x.shifted_right(1).raw(), -2);
        let y = Fx::from_raw(3, fmt).unwrap();
        assert_eq!(y.shifted_right(1).raw(), 1);
    }

    #[test]
    fn neg_of_min_is_min() {
        let fmt = q(8, 7);
        assert_eq!(Fx::min(fmt).wrapping_neg(), Fx::min(fmt));
    }

    #[test]
    fn bit_access_matches_pattern() {
        let fmt = q(4, 3);
        let x = Fx::from_raw(-3, fmt).unwrap(); // 1101
        assert!(x.bit(0));
        assert!(!x.bit(1));
        assert!(x.bit(2));
        assert!(x.bit(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let fmt = q(4, 3);
        Fx::zero(fmt).bit(4);
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_round_trip_raw(raw in -32768i64..=32767) {
                let fmt = q(16, 15);
                let x = Fx::from_raw(raw, fmt).unwrap();
                prop_assert_eq!(Fx::from_f64(x.to_f64(), fmt).unwrap(), x);
            }

            #[test]
            fn prop_wrapping_add_is_modular(a in -128i64..=127, b in -128i64..=127) {
                let fmt = q(8, 7);
                let x = Fx::from_raw(a, fmt).unwrap();
                let y = Fx::from_raw(b, fmt).unwrap();
                let s = x.wrapping_add(y);
                prop_assert_eq!((s.raw() - (a + b)).rem_euclid(256), 0);
                prop_assert!(fmt.contains_raw(s.raw()));
            }

            #[test]
            fn prop_add_commutes(a in -128i64..=127, b in -128i64..=127) {
                let fmt = q(8, 7);
                let x = Fx::from_raw(a, fmt).unwrap();
                let y = Fx::from_raw(b, fmt).unwrap();
                prop_assert_eq!(x.wrapping_add(y), y.wrapping_add(x));
            }

            #[test]
            fn prop_sub_is_add_neg(a in -128i64..=127, b in -128i64..=127) {
                let fmt = q(8, 7);
                let x = Fx::from_raw(a, fmt).unwrap();
                let y = Fx::from_raw(b, fmt).unwrap();
                prop_assert_eq!(x.wrapping_sub(y), x.wrapping_add(y.wrapping_neg()));
            }

            #[test]
            fn prop_shift_halves(raw in -32768i64..=32767, n in 0u32..8) {
                let fmt = q(16, 15);
                let x = Fx::from_raw(raw, fmt).unwrap();
                let shifted = x.shifted_right(n);
                let exact = x.to_f64() / 2f64.powi(n as i32);
                // Truncation error is bounded by one LSB, always toward -inf.
                prop_assert!(shifted.to_f64() <= exact + 1e-12);
                prop_assert!(shifted.to_f64() > exact - fmt.lsb() - 1e-12);
            }

            #[test]
            fn prop_sign_extension_consistent(raw in -2048i64..=2047) {
                let fmt = q(12, 11);
                let x = Fx::from_raw(raw, fmt).unwrap();
                prop_assert_eq!(fmt.sign_extend(x.to_bits()), raw);
            }
        }
    }
}
