//! Two's-complement fixed-point arithmetic for digital-filter BIST.
//!
//! The paper ("Frequency-Domain Compatibility in Digital Filter BIST",
//! DAC 1997) represents every signal as an `N`-bit two's-complement word
//! whose value is `-b0 + sum(b_i * 2^-i)` — i.e. a fraction in `[-1, 1)`.
//! This crate provides the [`QFormat`] word-format descriptor and the
//! [`Fx`] fixed-point value type used throughout the workspace: by the
//! structural netlist in `bist-rtl`, the test-pattern generators in
//! `bist-tpg`, and the analysis code in `bist-core`.
//!
//! # Example
//!
//! ```
//! use bist_fixedpoint::{Fx, QFormat};
//!
//! // The paper's filter datapath: 16-bit words, 15 fraction bits.
//! let q = QFormat::new(16, 15)?;
//! let half = Fx::from_f64(0.5, q)?;
//! let quarter = Fx::from_f64(0.25, q)?;
//! assert_eq!((half.wrapping_add(quarter)).to_f64(), 0.75);
//!
//! // Wrap-around (overflow) behaviour of a real ripple-carry adder:
//! let big = Fx::from_f64(0.75, q)?;
//! assert!(big.wrapping_add(big).to_f64() < 0.0);
//! # Ok::<(), bist_fixedpoint::FixedPointError>(())
//! ```

#![forbid(unsafe_code)]

mod error;
mod format;
mod value;

pub use error::FixedPointError;
pub use format::QFormat;
pub use value::Fx;

/// Convenience: the 16-bit Q1.15 datapath format used by the paper's filters.
///
/// # Example
///
/// ```
/// let q = bist_fixedpoint::q1_15();
/// assert_eq!(q.width(), 16);
/// assert_eq!(q.frac_bits(), 15);
/// ```
pub fn q1_15() -> QFormat {
    QFormat::new(16, 15).expect("static format is valid")
}

/// Convenience: the 12-bit Q1.11 input format used by the paper's filters.
///
/// # Example
///
/// ```
/// let q = bist_fixedpoint::q1_11();
/// assert_eq!(q.width(), 12);
/// ```
pub fn q1_11() -> QFormat {
    QFormat::new(12, 11).expect("static format is valid")
}
