//! Discrete amplitude-distribution arithmetic.
//!
//! The paper predicts the amplitude distribution of the test signal at an
//! internal filter tap by treating the signal as a sum of independent
//! terms — Bernoulli bits through the LFSR linear model, or uniform words
//! through an idealized generator — and the distribution of a sum of
//! independent terms is the convolution of their distributions
//! (its Figs. 8–9 "theory" curves). [`Distribution`] is a probability
//! mass function on a uniform grid supporting exactly that convolution,
//! plus the zone-probability queries used by the test-zone model.

/// A probability mass function sampled on a uniform grid.
///
/// Grid points are `lo + i * step`; `pmf[i]` is the probability mass at
/// that point. All constructors produce unit total mass.
///
/// # Example
///
/// ```
/// use bist_dsp::dist::Distribution;
///
/// // Sum of two fair ±0.25 coin flips.
/// let step = 1.0 / 64.0;
/// let d = Distribution::bernoulli_pm(0.25, step)
///     .convolve(&Distribution::bernoulli_pm(0.25, step));
/// assert!((d.mean()).abs() < 1e-12);
/// assert!((d.variance() - 2.0 * 0.25 * 0.25).abs() < 1e-9);
/// assert!((d.prob_at_least(0.5) - 0.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    lo: f64,
    step: f64,
    pmf: Vec<f64>,
}

impl Distribution {
    /// A point mass at `value`, snapped to the nearest grid point.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn delta(value: f64, step: f64) -> Self {
        assert!(step > 0.0, "grid step must be positive");
        let i = (value / step).round();
        Distribution { lo: i * step, step, pmf: vec![1.0] }
    }

    /// A fair Bernoulli term taking values `0` or `weight`.
    ///
    /// This is one tap of the paper's LFSR linear model: a 0/1 white-noise
    /// bit scaled by an impulse-response coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn bernoulli_scaled(weight: f64, step: f64) -> Self {
        assert!(step > 0.0, "grid step must be positive");
        let a = Distribution::delta(0.0, step);
        let b = Distribution::delta(weight, step);
        a.mix(&b, 0.5)
    }

    /// A fair ±`amplitude` coin (zero mean).
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn bernoulli_pm(amplitude: f64, step: f64) -> Self {
        assert!(step > 0.0, "grid step must be positive");
        Distribution::delta(-amplitude, step).mix(&Distribution::delta(amplitude, step), 0.5)
    }

    /// A uniform distribution over `[a, b)`, discretized on the grid.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or `a >= b`.
    pub fn uniform(a: f64, b: f64, step: f64) -> Self {
        assert!(step > 0.0, "grid step must be positive");
        assert!(a < b, "uniform range is empty");
        let i0 = (a / step).round() as i64;
        let i1 = ((b / step).round() as i64).max(i0 + 1);
        let n = (i1 - i0) as usize;
        Distribution { lo: i0 as f64 * step, step, pmf: vec![1.0 / n as f64; n] }
    }

    /// Mixture: `p * self + (1 - p) * other` (both on the same step).
    ///
    /// # Panics
    ///
    /// Panics if the grid steps differ or `p` is outside `[0, 1]`.
    pub fn mix(&self, other: &Distribution, p: f64) -> Distribution {
        assert!((self.step - other.step).abs() < 1e-15, "grid step mismatch");
        assert!((0.0..=1.0).contains(&p), "mixture weight must be in [0,1]");
        let i_self = (self.lo / self.step).round() as i64;
        let i_other = (other.lo / other.step).round() as i64;
        let lo_i = i_self.min(i_other);
        let hi_i = (i_self + self.pmf.len() as i64).max(i_other + other.pmf.len() as i64);
        let mut pmf = vec![0.0; (hi_i - lo_i) as usize];
        for (k, &m) in self.pmf.iter().enumerate() {
            pmf[(i_self - lo_i) as usize + k] += p * m;
        }
        for (k, &m) in other.pmf.iter().enumerate() {
            pmf[(i_other - lo_i) as usize + k] += (1.0 - p) * m;
        }
        Distribution { lo: lo_i as f64 * self.step, step: self.step, pmf }
    }

    /// Distribution of the sum of two independent variables (full
    /// convolution).
    ///
    /// # Panics
    ///
    /// Panics if the grid steps differ.
    pub fn convolve(&self, other: &Distribution) -> Distribution {
        assert!((self.step - other.step).abs() < 1e-15, "grid step mismatch");
        let mut pmf = vec![0.0; self.pmf.len() + other.pmf.len() - 1];
        for (i, &a) in self.pmf.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.pmf.iter().enumerate() {
                pmf[i + j] += a * b;
            }
        }
        Distribution { lo: self.lo + other.lo, step: self.step, pmf }
    }

    /// Distribution of the sum of independent scaled fair bits
    /// `sum_i w_i B_i`, `B_i ~ Bernoulli(1/2)` — the paper's linear-model
    /// prediction for an internal node driven by an LFSR.
    ///
    /// Weights with `|w| < step/2` are treated as a single merged residual
    /// term to keep the grid small.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn sum_of_bernoulli(weights: &[f64], step: f64) -> Distribution {
        assert!(step > 0.0, "grid step must be positive");
        let mut acc = Distribution::delta(0.0, step);
        let mut residual = 0.0;
        for &w in weights {
            if w.abs() < step / 2.0 {
                residual += w;
            } else {
                acc = acc.convolve(&Distribution::bernoulli_scaled(w, step));
            }
        }
        if residual.abs() >= step / 2.0 {
            acc = acc.convolve(&Distribution::bernoulli_scaled(residual, step));
        }
        acc
    }

    /// Distribution of `sum_i c_i U_i` with independent `U_i` uniform on
    /// `[-1, 1)` — the idealized-generator prediction (paper Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn sum_of_uniform(coefficients: &[f64], step: f64) -> Distribution {
        assert!(step > 0.0, "grid step must be positive");
        let mut acc = Distribution::delta(0.0, step);
        for &c in coefficients {
            let a = c.abs();
            if a < step {
                continue;
            }
            acc = acc.convolve(&Distribution::uniform(-a, a, step));
        }
        acc
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.pmf.iter().enumerate().map(|(i, &m)| m * (self.lo + i as f64 * self.step)).sum()
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        let mu = self.mean();
        self.pmf
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let x = self.lo + i as f64 * self.step - mu;
                m * x * x
            })
            .sum()
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Total mass (should be 1 up to rounding).
    pub fn total_mass(&self) -> f64 {
        self.pmf.iter().sum()
    }

    /// `P[X >= x]`.
    pub fn prob_at_least(&self, x: f64) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .filter(|(i, _)| self.lo + *i as f64 * self.step >= x - 1e-12)
            .map(|(_, &m)| m)
            .sum()
    }

    /// `P[a <= X < b]`.
    pub fn prob_in(&self, a: f64, b: f64) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let x = self.lo + *i as f64 * self.step;
                x >= a - 1e-12 && x < b - 1e-12
            })
            .map(|(_, &m)| m)
            .sum()
    }

    /// Grid step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Lowest grid point with nonzero support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The PMF values.
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// Resamples the PMF into a probability-density estimate over
    /// `[lo, hi)` with `bins` uniform bins (for histogram overlay plots).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn density_on(&self, lo: f64, hi: f64, bins: usize) -> Vec<f64> {
        assert!(bins > 0 && lo < hi, "invalid density grid");
        let w = (hi - lo) / bins as f64;
        let mut out = vec![0.0; bins];
        for (i, &m) in self.pmf.iter().enumerate() {
            let x = self.lo + i as f64 * self.step;
            if x >= lo && x < hi {
                let b = (((x - lo) / w) as usize).min(bins - 1);
                out[b] += m / w;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STEP: f64 = 1.0 / 256.0;

    #[test]
    fn delta_has_zero_variance() {
        let d = Distribution::delta(0.5, STEP);
        assert_eq!(d.total_mass(), 1.0);
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn uniform_moments() {
        let d = Distribution::uniform(-1.0, 1.0, STEP);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert!(d.mean().abs() < STEP);
        assert!((d.variance() - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn convolution_adds_means_and_variances() {
        let a = Distribution::uniform(-0.5, 0.5, STEP);
        let b = Distribution::bernoulli_pm(0.25, STEP);
        let s = a.convolve(&b);
        assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-9);
        assert!((s.variance() - (a.variance() + b.variance())).abs() < 1e-9);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_bernoulli_matches_lfsr_model_variance() {
        // Variance of sum w_i B_i is sum w_i^2 / 4.
        let weights = [-1.0, 0.5, 0.25, 0.125, 0.0625];
        let d = Distribution::sum_of_bernoulli(&weights, STEP);
        let expect: f64 = weights.iter().map(|w| w * w / 4.0).sum();
        assert!((d.variance() - expect).abs() < 0.01 * expect);
    }

    #[test]
    fn sum_of_uniform_variance() {
        let coeffs = [0.5, -0.25];
        let d = Distribution::sum_of_uniform(&coeffs, STEP);
        let expect: f64 = coeffs.iter().map(|c| c * c / 3.0).sum();
        assert!((d.variance() - expect).abs() < 0.02 * expect);
    }

    #[test]
    fn zone_probabilities() {
        let d = Distribution::uniform(-1.0, 1.0, STEP);
        assert!((d.prob_at_least(0.5) - 0.25).abs() < 0.01);
        assert!((d.prob_in(-0.5, 0.0) - 0.25).abs() < 0.01);
    }

    #[test]
    fn density_resampling_integrates_to_mass() {
        let d = Distribution::sum_of_bernoulli(&[0.5, 0.25, 0.125], STEP);
        let bins = 64;
        let density = d.density_on(-1.0, 1.0, bins);
        let integral: f64 = density.iter().map(|p| p * 2.0 / bins as f64).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "grid step mismatch")]
    fn convolve_mismatched_steps_panics() {
        let a = Distribution::delta(0.0, 0.01);
        let b = Distribution::delta(0.0, 0.02);
        let _ = a.convolve(&b);
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_convolution_conserves_mass(
                w in proptest::collection::vec(-0.9..0.9f64, 1..8)
            ) {
                let d = Distribution::sum_of_bernoulli(&w, STEP);
                prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
            }

            #[test]
            fn prop_mix_interpolates_mean(p in 0.0..1.0f64) {
                let a = Distribution::delta(-0.5, STEP);
                let b = Distribution::delta(0.5, STEP);
                let m = a.mix(&b, p);
                prop_assert!((m.mean() - (p * -0.5 + (1.0 - p) * 0.5)).abs() < 1e-9);
            }
        }
    }
}
