//! Convolution and correlation.
//!
//! The paper's Section 7 cascades a linear model of the LFSR with each
//! subfilter — a convolution `h'_k = h_k * g` — and derives generator
//! power spectra from the aperiodic autocorrelation of the model's
//! impulse response. Both primitives live here.

/// Full linear convolution; the result has length `a.len() + b.len() - 1`.
///
/// Returns an empty vector if either input is empty.
///
/// # Example
///
/// ```
/// use bist_dsp::conv::convolve;
/// assert_eq!(convolve(&[1.0, 2.0], &[1.0, 0.0, -1.0]),
///            vec![1.0, 2.0, -1.0, -2.0]);
/// ```
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Aperiodic (linear) autocorrelation `r[k] = sum_n h[n] h[n+k]` for
/// `k` in `-(N-1)..=N-1`, returned with lag 0 at index `N-1`.
///
/// The generator power spectrum in the paper's Section 7 is the DFT of
/// exactly this sequence (`h[n] * h[-n]`).
///
/// # Example
///
/// ```
/// use bist_dsp::conv::autocorrelate;
/// let r = autocorrelate(&[1.0, 0.5]);
/// assert_eq!(r, vec![0.5, 1.25, 0.5]);
/// ```
pub fn autocorrelate(h: &[f64]) -> Vec<f64> {
    if h.is_empty() {
        return Vec::new();
    }
    let reversed: Vec<f64> = h.iter().rev().copied().collect();
    convolve(h, &reversed)
}

/// Biased sample autocorrelation of a data sequence at lags `0..max_lag`:
/// `r[k] = (1/N) sum_{n} (x[n]-mean)(x[n+k]-mean)`.
///
/// Returns an empty vector when `x` is empty.
pub fn sample_autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let n = x.len();
    let mean = x.iter().sum::<f64>() / n as f64;
    let mut out = Vec::with_capacity(max_lag.min(n));
    for k in 0..max_lag.min(n) {
        let mut acc = 0.0;
        for i in 0..n - k {
            acc += (x[i] - mean) * (x[i + k] - mean);
        }
        out.push(acc / n as f64);
    }
    out
}

/// Filters a signal through an FIR (direct convolution, same length as
/// input — the transient tail is truncated).
pub fn filter(h: &[f64], x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; x.len()];
    for (n, item) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &c) in h.iter().enumerate() {
            if n >= k {
                acc += c * x[n - k];
            }
        }
        *item = acc;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolve_with_impulse_is_identity() {
        let a = [3.0, -1.0, 2.0];
        assert_eq!(convolve(&a, &[1.0]), a.to_vec());
    }

    #[test]
    fn convolve_empty_is_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn autocorrelation_is_symmetric_with_peak_at_zero_lag() {
        let r = autocorrelate(&[0.3, -0.7, 1.2, 0.1]);
        let n = 4;
        assert_eq!(r.len(), 2 * n - 1);
        for k in 0..r.len() {
            assert!((r[k] - r[r.len() - 1 - k]).abs() < 1e-12);
            assert!(r[k] <= r[n - 1] + 1e-12);
        }
    }

    #[test]
    fn sample_autocorrelation_of_constant_is_zero() {
        let x = vec![2.5; 100];
        let r = sample_autocorrelation(&x, 5);
        for &v in &r {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn filter_matches_convolution_head() {
        let h = [0.5, 0.25, -0.125];
        let x = [1.0, 0.0, 2.0, -1.0, 0.5];
        let full = convolve(&h, &x);
        let trunc = filter(&h, &x);
        assert_eq!(trunc.len(), x.len());
        for i in 0..x.len() {
            assert!((full[i] - trunc[i]).abs() < 1e-12);
        }
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_convolution_commutes(a in proptest::collection::vec(-5.0..5.0f64, 1..10),
                                         b in proptest::collection::vec(-5.0..5.0f64, 1..10)) {
                let ab = convolve(&a, &b);
                let ba = convolve(&b, &a);
                prop_assert_eq!(ab.len(), ba.len());
                for i in 0..ab.len() {
                    prop_assert!((ab[i] - ba[i]).abs() < 1e-9);
                }
            }

            #[test]
            fn prop_zero_lag_autocorrelation_is_energy(
                h in proptest::collection::vec(-5.0..5.0f64, 1..16)
            ) {
                let r = autocorrelate(&h);
                let energy: f64 = h.iter().map(|x| x * x).sum();
                prop_assert!((r[h.len() - 1] - energy).abs() < 1e-9);
            }
        }
    }
}
