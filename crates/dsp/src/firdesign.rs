//! Windowed-sinc FIR filter design.
//!
//! The paper's three circuits-under-test are a narrowband lowpass, a
//! mid-band bandpass and a highpass FIR filter of ~60 taps each
//! (its Table 1). This module designs the floating-point prototypes;
//! `bist-csd`/`bist-filters` then quantize the coefficients to
//! canonic-signed-digit form and map them onto hardware.
//!
//! All band edges are normalized to the sample rate (Nyquist = 0.5).

use crate::window::Window;
use crate::DspError;
use std::f64::consts::PI;

/// The classic four FIR band shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum BandKind {
    /// Passband `[0, cutoff]`.
    Lowpass {
        /// Cutoff frequency, in `(0, 0.5)`.
        cutoff: f64,
    },
    /// Passband `[cutoff, 0.5]`.
    Highpass {
        /// Cutoff frequency, in `(0, 0.5)`.
        cutoff: f64,
    },
    /// Passband `[low, high]`.
    Bandpass {
        /// Lower band edge, in `(0, high)`.
        low: f64,
        /// Upper band edge, in `(low, 0.5)`.
        high: f64,
    },
    /// Stopband `[low, high]`.
    Bandstop {
        /// Lower band edge, in `(0, high)`.
        low: f64,
        /// Upper band edge, in `(low, 0.5)`.
        high: f64,
    },
}

impl BandKind {
    fn validate(&self) -> Result<(), DspError> {
        let bad = |reason: String| Err(DspError::InvalidDesign { reason });
        match *self {
            BandKind::Lowpass { cutoff } | BandKind::Highpass { cutoff } => {
                if !(cutoff > 0.0 && cutoff < 0.5) {
                    return bad(format!("cutoff {cutoff} must lie in (0, 0.5)"));
                }
            }
            BandKind::Bandpass { low, high } | BandKind::Bandstop { low, high } => {
                if !(low > 0.0 && low < high && high < 0.5) {
                    return bad(format!(
                        "band edges ({low}, {high}) must satisfy 0 < low < high < 0.5"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Ideal (infinite) impulse response sampled at offset `t` from the
    /// filter center.
    fn ideal_at(&self, t: f64) -> f64 {
        match *self {
            BandKind::Lowpass { cutoff } => 2.0 * cutoff * sinc(2.0 * cutoff * t),
            BandKind::Highpass { cutoff } => sinc(t) - 2.0 * cutoff * sinc(2.0 * cutoff * t),
            BandKind::Bandpass { low, high } => {
                2.0 * high * sinc(2.0 * high * t) - 2.0 * low * sinc(2.0 * low * t)
            }
            BandKind::Bandstop { low, high } => {
                sinc(t) - 2.0 * high * sinc(2.0 * high * t) + 2.0 * low * sinc(2.0 * low * t)
            }
        }
    }

    /// A frequency inside the nominal passband, used for gain
    /// normalization.
    pub fn passband_reference(&self) -> f64 {
        match *self {
            BandKind::Lowpass { .. } => 0.0,
            BandKind::Highpass { .. } => 0.5,
            BandKind::Bandpass { low, high } => 0.5 * (low + high),
            BandKind::Bandstop { .. } => 0.0,
        }
    }
}

/// Builder for a windowed-sinc FIR design.
///
/// # Example
///
/// ```
/// use bist_dsp::firdesign::{BandKind, FirSpec};
///
/// let h = FirSpec::new(BandKind::Bandpass { low: 0.15, high: 0.35 }, 61)
///     .window(bist_dsp::window::Window::Hamming)
///     .design()?;
/// assert_eq!(h.len(), 61);
/// # Ok::<(), bist_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FirSpec {
    kind: BandKind,
    taps: usize,
    window: Window,
    normalize_l1: Option<f64>,
}

impl FirSpec {
    /// Starts a design of `taps` coefficients with the given band shape.
    pub fn new(kind: BandKind, taps: usize) -> Self {
        FirSpec { kind, taps, window: Window::Kaiser { beta: 6.0 }, normalize_l1: None }
    }

    /// Selects the window (default: Kaiser with `beta = 6`).
    pub fn window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Shortcut for a Kaiser window with the given `beta`.
    pub fn kaiser_beta(mut self, beta: f64) -> Self {
        self.window = Window::Kaiser { beta };
        self
    }

    /// Scales the design so that `sum |h[n]| == bound`.
    ///
    /// This is the conservative (worst-case, L1-norm) scaling the paper
    /// attributes its excess-headroom faults to: with `bound <= 1`, no
    /// internal adder of the transposed-form implementation can ever
    /// overflow, but typical signals use only a fraction of the range.
    pub fn l1_bound(mut self, bound: f64) -> Self {
        self.normalize_l1 = Some(bound);
        self
    }

    /// Runs the design and returns the coefficient vector.
    ///
    /// Even-length highpass/bandstop designs are rejected (a type-II
    /// linear-phase FIR has a forced zero at Nyquist, making those shapes
    /// unrealizable).
    ///
    /// # Errors
    ///
    /// [`DspError::InvalidDesign`] for invalid band edges, zero taps, or
    /// an unrealizable shape/length combination.
    pub fn design(&self) -> Result<Vec<f64>, DspError> {
        self.kind.validate()?;
        if self.taps == 0 {
            return Err(DspError::InvalidDesign { reason: "taps must be nonzero".into() });
        }
        if self.taps.is_multiple_of(2) {
            if let BandKind::Highpass { .. } | BandKind::Bandstop { .. } = self.kind {
                return Err(DspError::InvalidDesign {
                    reason: format!(
                        "{:?} with even length {} has a forced null at Nyquist",
                        self.kind, self.taps
                    ),
                });
            }
        }
        let n = self.taps;
        let center = (n - 1) as f64 / 2.0;
        let w = self.window.coefficients(n);
        let mut h: Vec<f64> =
            (0..n).map(|i| self.kind.ideal_at(i as f64 - center) * w[i]).collect();

        // Normalize passband gain to 1 at the reference frequency.
        let f0 = self.kind.passband_reference();
        let gain: f64 = h
            .iter()
            .enumerate()
            .map(|(i, &c)| c * (2.0 * PI * f0 * (i as f64 - center)).cos())
            .sum();
        if gain.abs() > 1e-12 {
            for c in h.iter_mut() {
                *c /= gain;
            }
        }

        if let Some(bound) = self.normalize_l1 {
            let l1: f64 = h.iter().map(|c| c.abs()).sum();
            if l1 > 0.0 {
                let k = bound / l1;
                for c in h.iter_mut() {
                    *c *= k;
                }
            }
        }
        Ok(h)
    }
}

fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::magnitude_at;

    #[test]
    fn rejects_bad_edges() {
        assert!(FirSpec::new(BandKind::Lowpass { cutoff: 0.0 }, 31).design().is_err());
        assert!(FirSpec::new(BandKind::Lowpass { cutoff: 0.5 }, 31).design().is_err());
        assert!(FirSpec::new(BandKind::Bandpass { low: 0.3, high: 0.2 }, 31).design().is_err());
        assert!(FirSpec::new(BandKind::Lowpass { cutoff: 0.1 }, 0).design().is_err());
    }

    #[test]
    fn rejects_even_highpass() {
        assert!(FirSpec::new(BandKind::Highpass { cutoff: 0.3 }, 30).design().is_err());
        assert!(FirSpec::new(BandKind::Highpass { cutoff: 0.3 }, 31).design().is_ok());
    }

    #[test]
    fn lowpass_response_shape() {
        let h =
            FirSpec::new(BandKind::Lowpass { cutoff: 0.1 }, 61).kaiser_beta(7.0).design().unwrap();
        assert!((magnitude_at(&h, 0.0) - 1.0).abs() < 1e-6);
        assert!(magnitude_at(&h, 0.05) > 0.9);
        assert!(magnitude_at(&h, 0.25) < 1e-3);
        assert!(magnitude_at(&h, 0.45) < 1e-3);
    }

    #[test]
    fn highpass_response_shape() {
        let h = FirSpec::new(BandKind::Highpass { cutoff: 0.35 }, 61)
            .kaiser_beta(7.0)
            .design()
            .unwrap();
        assert!((magnitude_at(&h, 0.5) - 1.0).abs() < 1e-6);
        assert!(magnitude_at(&h, 0.45) > 0.9);
        assert!(magnitude_at(&h, 0.1) < 1e-3);
    }

    #[test]
    fn bandpass_response_shape() {
        let h = FirSpec::new(BandKind::Bandpass { low: 0.15, high: 0.35 }, 61)
            .kaiser_beta(7.0)
            .design()
            .unwrap();
        assert!((magnitude_at(&h, 0.25) - 1.0).abs() < 1e-6);
        assert!(magnitude_at(&h, 0.02) < 1e-3);
        assert!(magnitude_at(&h, 0.48) < 1e-3);
    }

    #[test]
    fn bandstop_response_shape() {
        let h = FirSpec::new(BandKind::Bandstop { low: 0.2, high: 0.3 }, 61)
            .kaiser_beta(6.0)
            .design()
            .unwrap();
        assert!((magnitude_at(&h, 0.0) - 1.0).abs() < 1e-6);
        assert!(magnitude_at(&h, 0.25) < 1e-3);
        assert!(magnitude_at(&h, 0.45) > 0.9);
    }

    #[test]
    fn l1_bound_is_honored() {
        let h =
            FirSpec::new(BandKind::Lowpass { cutoff: 0.06 }, 60).l1_bound(0.999).design().unwrap();
        let l1: f64 = h.iter().map(|c| c.abs()).sum();
        assert!((l1 - 0.999).abs() < 1e-9);
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_designs_are_symmetric(taps in 3usize..80, cutoff in 0.05..0.45f64) {
                let h = FirSpec::new(BandKind::Lowpass { cutoff }, taps).design().unwrap();
                for i in 0..taps {
                    prop_assert!((h[i] - h[taps - 1 - i]).abs() < 1e-12);
                }
            }

            #[test]
            fn prop_dc_gain_is_unity(taps in 9usize..80, cutoff in 0.05..0.45f64) {
                let h = FirSpec::new(BandKind::Lowpass { cutoff }, taps).design().unwrap();
                let dc: f64 = h.iter().sum();
                prop_assert!((dc - 1.0).abs() < 1e-9);
            }
        }
    }
}
