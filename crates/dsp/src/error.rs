use std::error::Error;
use std::fmt;

/// Errors produced by the DSP substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// An FFT length was not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// A filter-design parameter was invalid (frequency out of `(0, 0.5)`,
    /// inverted band edges, zero taps, ...). The message explains which.
    InvalidDesign {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An input slice was empty where data was required.
    EmptyInput,
    /// A spectrum-estimation segmentation did not fit the data.
    BadSegmentation {
        /// Requested segment length.
        segment: usize,
        /// Available samples.
        available: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::NotPowerOfTwo { len } => {
                write!(f, "length {len} is not a power of two")
            }
            DspError::InvalidDesign { reason } => {
                write!(f, "invalid filter design: {reason}")
            }
            DspError::EmptyInput => write!(f, "input is empty"),
            DspError::BadSegmentation { segment, available } => {
                write!(f, "segment length {segment} exceeds available {available} samples")
            }
        }
    }
}

impl Error for DspError {}
