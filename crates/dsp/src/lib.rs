//! Digital-signal-processing substrate for the filter-BIST workspace.
//!
//! The DAC'97 paper this workspace reproduces leans on a standard DSP
//! toolbox: FIR filter design (the lowpass/bandpass/highpass CUTs of its
//! Table 1), discrete Fourier transforms and power-spectrum estimation
//! (its Fig. 4 generator spectra), impulse-response variance analysis
//! (its Eq. 1), and amplitude-distribution prediction (its Figs. 8–9).
//! Rather than pulling in an external DSP stack, this crate implements
//! that toolbox from scratch:
//!
//! * [`Complex`] — minimal complex arithmetic.
//! * [`fft`] — iterative radix-2 FFT/IFFT plus a direct DFT fallback.
//! * [`window`] — rectangular/Hann/Hamming/Blackman/Kaiser windows.
//! * [`firdesign`] — windowed-sinc FIR design for the four classic
//!   band shapes.
//! * [`response`] — frequency-response evaluation of FIR filters.
//! * [`conv`] — convolution, correlation and aperiodic autocorrelation.
//! * [`spectrum`] — periodogram and Welch power-spectrum estimation.
//! * [`stats`] — running statistics and histograms.
//! * [`dist`] — discrete amplitude-distribution arithmetic (convolution
//!   of independent terms), used for the paper's "theory" curves.
//!
//! All frequencies in this crate are normalized to the sample rate:
//! `0.5` is the Nyquist frequency.
//!
//! # Example
//!
//! ```
//! use bist_dsp::firdesign::{FirSpec, BandKind};
//! use bist_dsp::response::magnitude_at;
//!
//! // A 60-tap narrowband lowpass like the paper's "LP" design.
//! let h = FirSpec::new(BandKind::Lowpass { cutoff: 0.06 }, 60)
//!     .kaiser_beta(7.0)
//!     .design()?;
//! assert_eq!(h.len(), 60);
//! // Passband gain near 1, stopband strongly attenuated:
//! assert!(magnitude_at(&h, 0.01) > 0.9);
//! assert!(magnitude_at(&h, 0.25) < 1e-2);
//! # Ok::<(), bist_dsp::DspError>(())
//! ```

#![forbid(unsafe_code)]

mod complex;
mod error;

pub mod conv;
pub mod dist;
pub mod fft;
pub mod firdesign;
pub mod response;
pub mod spectrum;
pub mod stats;
pub mod window;

pub use complex::Complex;
pub use error::DspError;
