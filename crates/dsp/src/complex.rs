use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number over `f64`, sufficient for FFT and frequency-response
/// work.
///
/// # Example
///
/// ```
/// use bist_dsp::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + i*im`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Complex { re: 1.0, im: 0.0 }
    }

    /// A purely real number.
    pub fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^(i*theta)` — a point on the unit circle.
    ///
    /// # Example
    ///
    /// ```
    /// use bist_dsp::Complex;
    /// let z = Complex::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15);
    /// ```
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|^2` (cheaper than [`Complex::norm`]).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = (a / b) * b;
        assert!((q - a).norm() < 1e-12);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.5);
            assert!((z.norm() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn display_formats_both_signs() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_mul_conj_is_norm_sqr(re in -100.0..100.0f64, im in -100.0..100.0f64) {
                let z = Complex::new(re, im);
                let p = z * z.conj();
                prop_assert!((p.re - z.norm_sqr()).abs() < 1e-9 * (1.0 + z.norm_sqr()));
                prop_assert!(p.im.abs() < 1e-9 * (1.0 + z.norm_sqr()));
            }

            #[test]
            fn prop_mul_distributes(a in -10.0..10.0f64, b in -10.0..10.0f64,
                                    c in -10.0..10.0f64, d in -10.0..10.0f64) {
                let x = Complex::new(a, b);
                let y = Complex::new(c, d);
                let z = Complex::new(d, a);
                let lhs = x * (y + z);
                let rhs = x * y + x * z;
                prop_assert!((lhs - rhs).norm() < 1e-9);
            }
        }
    }
}
