//! Signal statistics: moments and histograms.
//!
//! Signal variance is the paper's central testability measure (its Eq. 1
//! relates test-signal variance at an adder to fault detectability), and
//! histograms underpin its amplitude-distribution figures (Figs. 8–9).

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population variance (divides by `N`).
    pub variance: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for empty input.
    ///
    /// # Example
    ///
    /// ```
    /// use bist_dsp::stats::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
    /// assert_eq!(s.mean, 2.0);
    /// assert!((s.variance - 2.0 / 3.0).abs() < 1e-12);
    /// ```
    pub fn of(x: &[f64]) -> Option<Summary> {
        if x.is_empty() {
            return None;
        }
        let n = x.len() as f64;
        let mean = x.iter().sum::<f64>() / n;
        let variance = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = x.iter().copied().fold(f64::INFINITY, f64::min);
        let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary { count: x.len(), mean, variance, min, max })
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Root-mean-square value.
    pub fn rms(&self) -> f64 {
        (self.variance + self.mean * self.mean).sqrt()
    }
}

/// A fixed-range histogram with uniform bins.
///
/// # Example
///
/// ```
/// use bist_dsp::stats::Histogram;
///
/// let mut h = Histogram::new(-1.0, 1.0, 4);
/// for &v in &[-0.9, -0.1, 0.1, 0.9, 2.0] {
///     h.add(v);
/// }
/// assert_eq!(h.counts(), &[1, 1, 1, 1]);
/// assert_eq!(h.outliers(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    outliers: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range is empty");
        Histogram { lo, hi, counts: vec![0; bins], outliers: 0, total: 0 }
    }

    /// Adds one sample; values outside `[lo, hi)` count as outliers.
    pub fn add(&mut self, v: f64) {
        self.total += 1;
        if v < self.lo || v >= self.hi || !v.is_finite() {
            self.outliers += 1;
            return;
        }
        let idx = ((v - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every sample of a slice.
    pub fn extend_from(&mut self, values: &[f64]) {
        for &v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total samples added (in-range + outliers).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Probability-density estimate per bin (integrates to the in-range
    /// fraction of the data).
    pub fn density(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let n = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / (n * w)).collect()
    }

    /// Probability mass per bin.
    pub fn pmf(&self) -> Vec<f64> {
        let n = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[5.0; 10]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.rms(), 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn uniform_word_variance_is_one_third() {
        // The paper: a uniform signal over [-1, 1) has variance 1/3
        // (the "0.3333" of its LFSR characterization).
        let n = 4096;
        let x: Vec<f64> = (0..n).map(|i| -1.0 + 2.0 * (i as f64 + 0.5) / n as f64).collect();
        let s = Summary::of(&x).unwrap();
        assert!(s.mean.abs() < 1e-9);
        assert!((s.variance - 1.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend_from(&[0.05, 0.15, 0.95, 1.0, -0.001, f64::NAN]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let mut h = Histogram::new(-1.0, 1.0, 64);
        for i in 0..1000 {
            h.add(-0.999 + 1.99 * (i as f64 / 1000.0));
        }
        let w = 2.0 / 64.0;
        let integral: f64 = h.density().iter().map(|d| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_variance_nonnegative_and_shift_invariant(
                x in proptest::collection::vec(-100.0..100.0f64, 1..50),
                shift in -10.0..10.0f64,
            ) {
                let s1 = Summary::of(&x).unwrap();
                let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
                let s2 = Summary::of(&shifted).unwrap();
                prop_assert!(s1.variance >= 0.0);
                prop_assert!((s1.variance - s2.variance).abs() < 1e-6 * (1.0 + s1.variance));
            }

            #[test]
            fn prop_histogram_conserves_samples(
                x in proptest::collection::vec(-2.0..2.0f64, 0..200)
            ) {
                let mut h = Histogram::new(-1.0, 1.0, 16);
                h.extend_from(&x);
                let binned: u64 = h.counts().iter().sum();
                prop_assert_eq!(binned + h.outliers(), x.len() as u64);
            }
        }
    }
}
