//! Window functions for FIR design and spectrum estimation.
//!
//! The filter designs in `bist-filters` use Kaiser windows (adjustable
//! stopband attenuation — important because coefficient quantization to
//! CSD limits the achievable stopband anyway), and the Welch spectrum
//! estimator in [`crate::spectrum`] uses Hann windows by default.

use std::f64::consts::PI;

/// The supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Window {
    /// All-ones window.
    Rectangular,
    /// Raised cosine, zero at both ends.
    Hann,
    /// Raised cosine on a pedestal.
    Hamming,
    /// Three-term Blackman window.
    Blackman,
    /// Kaiser window with shape parameter `beta`.
    Kaiser {
        /// Shape parameter; larger means more sidelobe attenuation.
        beta: f64,
    },
}

impl Window {
    /// Samples the window at `n` symmetric points.
    ///
    /// Returns an empty vector for `n == 0` and `[1.0]` for `n == 1`.
    ///
    /// # Example
    ///
    /// ```
    /// use bist_dsp::window::Window;
    ///
    /// let w = Window::Hann.coefficients(5);
    /// assert_eq!(w.len(), 5);
    /// assert!((w[2] - 1.0).abs() < 1e-12); // symmetric peak
    /// assert!(w[0].abs() < 1e-12);
    /// ```
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / m; // 0..=1
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
                    Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
                    Window::Blackman => {
                        0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
                    }
                    Window::Kaiser { beta } => {
                        let t = 2.0 * x - 1.0; // -1..=1
                        bessel_i0(beta * (1.0 - t * t).max(0.0).sqrt()) / bessel_i0(beta)
                    }
                }
            })
            .collect()
    }

    /// Kaiser `beta` giving approximately `atten_db` of stopband
    /// attenuation (Kaiser's empirical formula).
    ///
    /// # Example
    ///
    /// ```
    /// use bist_dsp::window::Window;
    /// let beta = Window::kaiser_beta_for_attenuation(60.0);
    /// assert!(beta > 5.0 && beta < 6.0);
    /// ```
    pub fn kaiser_beta_for_attenuation(atten_db: f64) -> f64 {
        if atten_db > 50.0 {
            0.1102 * (atten_db - 8.7)
        } else if atten_db >= 21.0 {
            0.5842 * (atten_db - 21.0).powf(0.4) + 0.07886 * (atten_db - 21.0)
        } else {
            0.0
        }
    }
}

/// Modified Bessel function of the first kind, order zero, via its power
/// series. Accurate to ~1e-15 for the argument range used by Kaiser
/// windows (|x| < ~30).
pub fn bessel_i0(x: f64) -> f64 {
    let half = x / 2.0;
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..64 {
        term *= (half / k as f64) * (half / k as f64);
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Kaiser { beta: 5.0 }.coefficients(1), vec![1.0]);
    }

    #[test]
    fn hamming_endpoints_are_pedestal() {
        let w = Window::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_near_zero_at_ends() {
        let w = Window::Blackman.coefficients(33);
        assert!(w[0].abs() < 1e-12);
        assert!((w[16] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let k = Window::Kaiser { beta: 0.0 }.coefficients(9);
        for &v in &k {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bessel_i0_reference_values() {
        // Abramowitz & Stegun table values.
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        assert!((bessel_i0(2.0) - 2.2795853023360673).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn attenuation_formula_regions() {
        assert_eq!(Window::kaiser_beta_for_attenuation(10.0), 0.0);
        let mid = Window::kaiser_beta_for_attenuation(40.0);
        assert!(mid > 3.0 && mid < 4.0);
        let high = Window::kaiser_beta_for_attenuation(80.0);
        assert!((high - 0.1102 * 71.3).abs() < 1e-12);
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_windows_symmetric_and_bounded(n in 2usize..64, which in 0usize..5) {
                let w = match which {
                    0 => Window::Rectangular,
                    1 => Window::Hann,
                    2 => Window::Hamming,
                    3 => Window::Blackman,
                    _ => Window::Kaiser { beta: 6.0 },
                };
                let c = w.coefficients(n);
                prop_assert_eq!(c.len(), n);
                for i in 0..n {
                    prop_assert!(c[i] <= 1.0 + 1e-12);
                    prop_assert!(c[i] >= -1e-12);
                    prop_assert!((c[i] - c[n - 1 - i]).abs() < 1e-12, "asymmetric at {}", i);
                }
            }
        }
    }
}
