//! Discrete Fourier transforms: an iterative radix-2 FFT and a direct DFT.
//!
//! The paper's spectral characterization of test generators (its Fig. 4)
//! and its compatibility metric (`sigma_y^2 = (1/L) sum |G|^2 |H|^2`)
//! both need DFTs of a few thousand points; the radix-2 FFT here covers
//! that comfortably. [`dft`] is a direct O(n^2) evaluation used for
//! odd lengths and as a cross-check in tests.

use crate::{Complex, DspError};
use std::f64::consts::PI;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `data.len()` is not a power of
/// two (zero length included).
///
/// # Example
///
/// ```
/// use bist_dsp::{fft, Complex};
///
/// let mut data = vec![Complex::one(); 8];
/// fft::fft(&mut data)?;
/// assert!((data[0].re - 8.0).abs() < 1e-12); // DC bin
/// assert!(data[1].norm() < 1e-12);           // all others zero
/// # Ok::<(), bist_dsp::DspError>(())
/// ```
pub fn fft(data: &mut [Complex]) -> Result<(), DspError> {
    transform(data, -1.0)
}

/// In-place inverse FFT (includes the `1/N` normalization).
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) -> Result<(), DspError> {
    transform(data, 1.0)?;
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(1.0 / n);
    }
    Ok(())
}

/// FFT of a real signal, returned as a full complex spectrum.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `signal.len()` is not a power of
/// two.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>, DspError> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_re(x)).collect();
    fft(&mut data)?;
    Ok(data)
}

/// Direct O(n^2) DFT; works for any length. `sign = -1` is the forward
/// transform convention used by [`fft`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn dft(data: &[Complex], sign: f64) -> Result<Vec<Complex>, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = data.len();
    let mut out = vec![Complex::zero(); n];
    for (k, item) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &x) in data.iter().enumerate() {
            let theta = sign * 2.0 * PI * (k as f64) * (j as f64) / (n as f64);
            acc += x * Complex::cis(theta);
        }
        *item = acc;
    }
    Ok(out)
}

/// The squared-magnitude spectrum `|X[k]|^2` of a real signal, zero-padded
/// up to the next power of two of `min_len.max(signal.len())`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
pub fn power_spectrum_padded(signal: &[f64], min_len: usize) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len().max(min_len).next_power_of_two();
    let mut data = vec![Complex::zero(); n];
    for (d, &x) in data.iter_mut().zip(signal) {
        *d = Complex::from_re(x);
    }
    fft(&mut data)?;
    Ok(data.iter().map(|z| z.norm_sqr()).collect())
}

fn transform(data: &mut [Complex], sign: f64) -> Result<(), DspError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(DspError::NotPowerOfTwo { len: n });
    }
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / (len as f64);
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::one();
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).norm() < tol
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![Complex::zero(); 6];
        assert_eq!(fft(&mut data), Err(DspError::NotPowerOfTwo { len: 6 }));
        let mut empty: Vec<Complex> = vec![];
        assert!(fft(&mut empty).is_err());
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::zero(); 16];
        data[0] = Complex::one();
        fft(&mut data).unwrap();
        for z in &data {
            assert!(close(*z, Complex::one(), 1e-12));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let signal: Vec<f64> =
            (0..n).map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos()).collect();
        let spec = fft_real(&signal).unwrap();
        for (k, z) in spec.iter().enumerate() {
            let expected = if k == k0 || k == n - k0 { n as f64 / 2.0 } else { 0.0 };
            assert!((z.norm() - expected).abs() < 1e-9, "bin {k}: {} vs {expected}", z.norm());
        }
    }

    #[test]
    fn fft_matches_direct_dft() {
        let n = 32;
        let signal: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos())).collect();
        let reference = dft(&signal, -1.0).unwrap();
        let mut fast = signal;
        fft(&mut fast).unwrap();
        for (a, b) in fast.iter().zip(&reference) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn power_spectrum_pads_to_power_of_two() {
        let spec = power_spectrum_padded(&[1.0, 0.0, 0.0], 5).unwrap();
        assert_eq!(spec.len(), 8);
        for &p in &spec {
            assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[cfg(feature = "proptest")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_ifft_inverts_fft(values in proptest::collection::vec(-10.0..10.0f64, 16)) {
                let mut data: Vec<Complex> = values.iter().map(|&x| Complex::from_re(x)).collect();
                fft(&mut data).unwrap();
                ifft(&mut data).unwrap();
                for (z, &x) in data.iter().zip(&values) {
                    prop_assert!((z.re - x).abs() < 1e-9);
                    prop_assert!(z.im.abs() < 1e-9);
                }
            }

            #[test]
            fn prop_parseval(values in proptest::collection::vec(-10.0..10.0f64, 32)) {
                let time_energy: f64 = values.iter().map(|x| x * x).sum();
                let spec = fft_real(&values).unwrap();
                let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
                prop_assert!((time_energy - freq_energy).abs() < 1e-7 * (1.0 + time_energy));
            }

            #[test]
            fn prop_linearity(a in proptest::collection::vec(-5.0..5.0f64, 16),
                              b in proptest::collection::vec(-5.0..5.0f64, 16)) {
                let fa = fft_real(&a).unwrap();
                let fb = fft_real(&b).unwrap();
                let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
                let fsum = fft_real(&sum).unwrap();
                for i in 0..16 {
                    prop_assert!(close(fsum[i], fa[i] + fb[i], 1e-9));
                }
            }
        }
    }
}
