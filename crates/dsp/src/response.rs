//! Frequency-response evaluation of FIR filters.
//!
//! Used to compare a filter's transfer function `H[k]` against a test
//! generator's power spectrum `G[k]` — the heart of the paper's
//! compatibility check.

use crate::{fft, Complex, DspError};
use std::f64::consts::PI;

/// Complex frequency response `H(e^{j 2 pi f})` of an FIR filter at a
/// single normalized frequency `f` (Nyquist = 0.5).
///
/// # Example
///
/// ```
/// use bist_dsp::response::response_at;
///
/// // Two-tap averager: null at Nyquist.
/// let h = [0.5, 0.5];
/// assert!(response_at(&h, 0.5).norm() < 1e-15);
/// assert!((response_at(&h, 0.0).re - 1.0).abs() < 1e-15);
/// ```
pub fn response_at(h: &[f64], f: f64) -> Complex {
    let mut acc = Complex::zero();
    for (n, &c) in h.iter().enumerate() {
        acc += Complex::cis(-2.0 * PI * f * n as f64).scale(c);
    }
    acc
}

/// Magnitude response `|H|` at a single normalized frequency.
pub fn magnitude_at(h: &[f64], f: f64) -> f64 {
    response_at(h, f).norm()
}

/// Magnitude response in decibels at a single normalized frequency.
/// Returns `-inf` dB floor-clamped at `-400` for exact nulls.
pub fn magnitude_db_at(h: &[f64], f: f64) -> f64 {
    let m = magnitude_at(h, f);
    if m <= 0.0 {
        -400.0
    } else {
        (20.0 * m.log10()).max(-400.0)
    }
}

/// Squared-magnitude response `|H[k]|^2` on an `len`-point DFT grid
/// (frequencies `k/len` for `k` in `0..len`), computed by zero-padded FFT.
///
/// # Errors
///
/// Returns [`DspError::NotPowerOfTwo`] if `len` is not a power of two,
/// or [`DspError::EmptyInput`] if `h` is empty. `len` must also be at
/// least `h.len()`; shorter grids would alias the impulse response and
/// are reported as [`DspError::BadSegmentation`].
pub fn power_response(h: &[f64], len: usize) -> Result<Vec<f64>, DspError> {
    if h.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if len < h.len() {
        return Err(DspError::BadSegmentation { segment: len, available: h.len() });
    }
    if !len.is_power_of_two() {
        return Err(DspError::NotPowerOfTwo { len });
    }
    let mut data = vec![Complex::zero(); len];
    for (d, &c) in data.iter_mut().zip(h) {
        *d = Complex::from_re(c);
    }
    fft::fft(&mut data)?;
    Ok(data.iter().map(|z| z.norm_sqr()).collect())
}

/// Sum of squared impulse-response samples, `sum h[n]^2`.
///
/// This is the noise gain of the paper's Eq. 1: the output variance of a
/// filter driven by unit-variance white noise.
pub fn noise_gain(h: &[f64]) -> f64 {
    h.iter().map(|c| c * c).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_response_matches_pointwise_eval() {
        let h = [0.25, 0.5, 0.25, -0.1];
        let grid = power_response(&h, 16).unwrap();
        for (k, &p) in grid.iter().enumerate() {
            let direct = magnitude_at(&h, k as f64 / 16.0).powi(2);
            assert!((p - direct).abs() < 1e-12, "bin {k}");
        }
    }

    #[test]
    fn power_response_rejects_short_grid() {
        let h = [1.0; 20];
        assert!(matches!(power_response(&h, 16), Err(DspError::BadSegmentation { .. })));
        assert!(matches!(power_response(&h, 24), Err(DspError::NotPowerOfTwo { .. })));
        assert!(power_response(&h, 32).is_ok());
        assert!(power_response(&[], 16).is_err());
    }

    #[test]
    fn db_conversion_clamps_nulls() {
        let h = [0.5, 0.5];
        assert!(magnitude_db_at(&h, 0.5) <= -300.0);
        assert!(magnitude_db_at(&h, 0.0).abs() < 1e-9);
    }

    #[test]
    fn noise_gain_of_impulse_is_one() {
        assert_eq!(noise_gain(&[1.0]), 1.0);
        assert!((noise_gain(&[0.6, 0.8]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_gain_equals_mean_power_response() {
        // Parseval: sum h^2 == (1/L) sum |H[k]|^2.
        let h = [0.3, -0.2, 0.5, 0.1, -0.4];
        let grid = power_response(&h, 64).unwrap();
        let mean: f64 = grid.iter().sum::<f64>() / 64.0;
        assert!((mean - noise_gain(&h)).abs() < 1e-12);
    }
}
