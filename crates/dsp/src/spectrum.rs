//! Power-spectrum estimation: periodogram and Welch's method.
//!
//! Used to reproduce the paper's Fig. 4 (power spectra of BIST test
//! pattern generators) from actual generated sequences, cross-checking
//! the analytic linear-model spectra in `bist-tpg`.

use crate::window::Window;
use crate::{fft, Complex, DspError};

/// A one-sided power-spectral-density estimate on `bins` uniformly spaced
/// frequencies `k / (2 * bins)` for `k in 0..bins` (DC up to just below
/// Nyquist).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpectrum {
    psd: Vec<f64>,
}

impl PowerSpectrum {
    /// The PSD values (linear power per bin, normalized so that the mean
    /// over all bins equals the signal variance — Parseval).
    pub fn values(&self) -> &[f64] {
        &self.psd
    }

    /// Number of frequency bins.
    pub fn len(&self) -> usize {
        self.psd.len()
    }

    /// `true` if the spectrum has no bins.
    pub fn is_empty(&self) -> bool {
        self.psd.is_empty()
    }

    /// Normalized frequency of bin `k` (Nyquist = 0.5).
    pub fn frequency(&self, k: usize) -> f64 {
        k as f64 / (2.0 * self.psd.len() as f64)
    }

    /// PSD in decibels, clamped at a `-200` dB floor.
    pub fn values_db(&self) -> Vec<f64> {
        self.psd
            .iter()
            .map(|&p| if p <= 0.0 { -200.0 } else { (10.0 * p.log10()).max(-200.0) })
            .collect()
    }

    /// Mean power (equals the signal variance for a zero-mean signal).
    pub fn mean_power(&self) -> f64 {
        if self.psd.is_empty() {
            0.0
        } else {
            self.psd.iter().sum::<f64>() / self.psd.len() as f64
        }
    }

    /// Fraction of total power at frequencies below `f`.
    pub fn power_fraction_below(&self, f: f64) -> f64 {
        let total: f64 = self.psd.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let below: f64 = self
            .psd
            .iter()
            .enumerate()
            .filter(|(k, _)| self.frequency(*k) < f)
            .map(|(_, &p)| p)
            .sum();
        below / total
    }

    /// Builds a spectrum directly from per-bin power values (used by the
    /// analytic generator models in `bist-tpg`).
    pub fn from_values(psd: Vec<f64>) -> Self {
        PowerSpectrum { psd }
    }
}

/// Simple periodogram of one segment: `|FFT(x - mean)|^2 / N`, one-sided.
///
/// # Errors
///
/// [`DspError::NotPowerOfTwo`] if `x.len()` is not a power of two;
/// [`DspError::EmptyInput`] if `x` is empty.
pub fn periodogram(x: &[f64]) -> Result<PowerSpectrum, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = x.len();
    if !n.is_power_of_two() {
        return Err(DspError::NotPowerOfTwo { len: n });
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let mut data: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v - mean)).collect();
    fft::fft(&mut data)?;
    let psd: Vec<f64> = data[..n / 2].iter().map(|z| z.norm_sqr() / n as f64).collect();
    Ok(PowerSpectrum { psd })
}

/// Welch's averaged, windowed periodogram.
///
/// The signal is split into 50%-overlapping segments of `segment_len`
/// samples, each windowed and transformed; the squared magnitudes are
/// averaged and normalized by the window energy so the mean power equals
/// the signal variance.
///
/// # Errors
///
/// [`DspError::NotPowerOfTwo`] if `segment_len` is not a power of two;
/// [`DspError::BadSegmentation`] if `x` is shorter than one segment;
/// [`DspError::EmptyInput`] if `x` is empty.
///
/// # Example
///
/// ```
/// use bist_dsp::spectrum::welch;
/// use bist_dsp::window::Window;
///
/// // A white-ish ±1 square sequence has a flat-ish spectrum.
/// let x: Vec<f64> = (0..4096).map(|i| if (i * 2654435761u64 as usize) & 64 == 0 { 1.0 } else { -1.0 }).collect();
/// let s = welch(&x, 256, Window::Hann)?;
/// assert_eq!(s.len(), 128);
/// # Ok::<(), bist_dsp::DspError>(())
/// ```
pub fn welch(x: &[f64], segment_len: usize, window: Window) -> Result<PowerSpectrum, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !segment_len.is_power_of_two() || segment_len == 0 {
        return Err(DspError::NotPowerOfTwo { len: segment_len });
    }
    if x.len() < segment_len {
        return Err(DspError::BadSegmentation { segment: segment_len, available: x.len() });
    }
    let w = window.coefficients(segment_len);
    let w_energy: f64 = w.iter().map(|v| v * v).sum();
    let hop = (segment_len / 2).max(1);
    let mean = x.iter().sum::<f64>() / x.len() as f64;

    let mut acc = vec![0.0; segment_len / 2];
    let mut count = 0usize;
    let mut start = 0usize;
    let mut data = vec![Complex::zero(); segment_len];
    while start + segment_len <= x.len() {
        for i in 0..segment_len {
            data[i] = Complex::from_re((x[start + i] - mean) * w[i]);
        }
        fft::fft(&mut data)?;
        for (a, z) in acc.iter_mut().zip(&data[..segment_len / 2]) {
            *a += z.norm_sqr() / w_energy;
        }
        count += 1;
        start += hop;
    }
    for a in acc.iter_mut() {
        *a /= count as f64;
    }
    Ok(PowerSpectrum { psd: acc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn periodogram_of_tone_peaks_at_tone() {
        let n = 1024;
        let f0 = 0.125;
        let x: Vec<f64> = (0..n).map(|i| (2.0 * PI * f0 * i as f64).sin()).collect();
        let s = periodogram(&x).unwrap();
        let peak = s.values().iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!((s.frequency(peak) - f0).abs() < 1.0 / n as f64);
    }

    #[test]
    fn welch_mean_power_tracks_variance() {
        // Deterministic pseudo-noise via an xorshift-style recurrence.
        let mut state = 0x2545F4914F6CDD1Du64;
        let x: Vec<f64> = (0..8192)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
        let s = welch(&x, 512, Window::Hann).unwrap();
        assert!((s.mean_power() - var).abs() < 0.05 * var, "{} vs {var}", s.mean_power());
    }

    #[test]
    fn welch_rejects_bad_segmentation() {
        let x = vec![0.0; 100];
        assert!(matches!(welch(&x, 128, Window::Hann), Err(DspError::BadSegmentation { .. })));
        assert!(matches!(welch(&x, 48, Window::Hann), Err(DspError::NotPowerOfTwo { .. })));
        assert!(matches!(welch(&[], 16, Window::Hann), Err(DspError::EmptyInput)));
    }

    #[test]
    fn power_fraction_splits_spectrum() {
        let s = PowerSpectrum::from_values(vec![1.0; 100]);
        assert!((s.power_fraction_below(0.25) - 0.5).abs() < 0.02);
        assert_eq!(s.power_fraction_below(0.5), 1.0);
        assert_eq!(s.power_fraction_below(0.0), 0.0);
    }

    #[test]
    fn db_floor_is_applied() {
        let s = PowerSpectrum::from_values(vec![0.0, 1.0]);
        let db = s.values_db();
        assert_eq!(db[0], -200.0);
        assert_eq!(db[1], 0.0);
    }
}
