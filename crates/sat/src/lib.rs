//! # bist-sat — CDCL equivalence checking and redundant-fault proving
//!
//! A zero-dependency SAT subsystem for the filter-BIST stack:
//!
//! - [`solver`] — a compact CDCL solver (watched literals, first-UIP
//!   learning, VSIDS activity, Luby restarts, incremental assumptions,
//!   conflict budgets, DIMACS dump).
//! - [`circuit`] — a hash-consed AND/XOR gate graph with lazy Tseitin
//!   emission, shared between fault-free and faulty netlist copies.
//! - [`encode`] — the Tseitin encoder from the `rtl` netlist (including the
//!   sixteen injectable full-adder lines) to the gate graph, with frame
//!   unrolling for the feed-forward filter pipelines.
//! - [`redundancy`] — the per-fault miter: UNSAT at every reachable frame is
//!   a machine-checked proof of redundancy; SAT yields a witness vector that
//!   must replay through `faultsim` as a detection.
//! - [`equiv`] — the combinational-equivalence checker tying each
//!   CSD-synthesized netlist to its behavioral fixed-point model via
//!   SAT-certified range/trim lemmas plus an exact affine normal form.
//!
//! The solver and encoder are deliberately `std`-only: the workspace builds
//! offline and the prover must be embeddable in the campaign pipeline
//! (`bist-core`) without pulling in external solvers.

#![forbid(unsafe_code)]

pub mod circuit;
pub mod encode;
pub mod equiv;
pub mod redundancy;
pub mod solver;

pub use circuit::{Circuit, GLit};
pub use encode::{FaultSpec, FrameCone, NetlistEncoder};
pub use equiv::{check_equivalence, EquivReport};
pub use redundancy::{
    prove_faults, replay_detects, FaultVerdict, PruneConfig, PruneOutcome, RedundancyProver,
};
pub use solver::{Lit, SolveResult, Solver, SolverStats};
