//! Tseitin encoding of the `rtl` netlist into the gate graph, with frame
//! unrolling for the feed-forward filter pipelines.
//!
//! The encoder mirrors [`rtl::sim::BitSlicedSim`] gate for gate: sign-trimmed
//! ripple adders (full five-gate cells below the trim, a carry-less sum cell
//! at the trim, sign-copy wiring above), carry-save compressor pairs with a
//! structurally-zero carry LSB and a discarded top majority bit, and the
//! sixteen injectable full-adder lines of [`rtl::fulladder`]. Any divergence
//! between the encoder and the simulator is a soundness bug; the crate's
//! tests sweep random vectors comparing both engines word for word.
//!
//! Time is handled by *unrolling*: frame `t` holds every node's value at
//! simulator step `t` from reset (frame-0 registers are constant false).
//! Because the builder API only produces feed-forward netlists, a netlist
//! with memory depth `D` (the maximum number of registers on any path to an
//! output) computes a fixed function of the last `D+1` input words once
//! `t >= D` — the basis for the redundancy prover's completeness argument.
//!
//! The [`Circuit`] is passed in rather than owned: the redundancy prover
//! builds the good-machine frames once into a base circuit/solver pair,
//! then clones that pair per fault so each faulty delta lives in a
//! throwaway copy while the shared cone is paid for exactly once.

use crate::circuit::{Circuit, GLit};
use crate::solver::Solver;
use rtl::fulladder::{FaFault, Line};
use rtl::NodeKind;
use rtl::{Netlist, NodeId};

/// One stuck-at fault to inject while unrolling: the arithmetic node, the
/// cell (bit) position, and the faulty line/polarity.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// The adder, subtractor or carry-save sum node carrying the fault.
    pub node: NodeId,
    /// Cell (bit) position within the datapath.
    pub cell: u32,
    /// The stuck-at fault to force.
    pub fault: FaFault,
}

/// A per-frame view of one unrolled machine: `cone[t]` holds
/// `node_count * width` edges, node-major, LSB first.
pub type FrameCone = Vec<Vec<GLit>>;

/// Frame-unrolled encoder for one netlist.
pub struct NetlistEncoder<'n> {
    netlist: &'n Netlist,
    input_bits: u32,
    align: u32,
    w: usize,
    depth: u32,
    /// `frames[t][node_index * w + bit]` — the good machine.
    frames: FrameCone,
    /// `inputs[t][k]` — free literal for bit `k` of the input's active
    /// window at frame `t`, LSB of the window first.
    inputs: Vec<Vec<GLit>>,
}

impl<'n> NetlistEncoder<'n> {
    /// Creates an encoder. `input_bits` is the width of the input's active
    /// window; the low `width - input_bits` bits are constant zero, matching
    /// the left-aligned drive of `FilterDesign::align_input`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist does not have exactly one input or
    /// `input_bits` is zero or exceeds the datapath width.
    #[must_use]
    pub fn new(netlist: &'n Netlist, input_bits: u32) -> Self {
        let w = netlist.width();
        assert!(input_bits >= 1 && input_bits <= w, "bad input window");
        assert_eq!(netlist.input_ids().len(), 1, "single-input netlists only");
        let depth = memory_depth(netlist);
        NetlistEncoder {
            netlist,
            input_bits,
            align: w - input_bits,
            w: w as usize,
            depth,
            frames: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// The encoded netlist.
    #[must_use]
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// Width of the input's active window.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Maximum number of registers on any source-to-output path. Outputs at
    /// frame `t >= memory_depth()` are a fixed function of the last
    /// `memory_depth() + 1` input words.
    #[must_use]
    pub fn memory_depth(&self) -> u32 {
        self.depth
    }

    /// Number of good-machine frames built so far.
    #[must_use]
    pub fn frames_built(&self) -> usize {
        self.frames.len()
    }

    /// Free input-window literals of frame `t` (LSB of the window first).
    #[must_use]
    pub fn input_lits(&self, frame: usize) -> &[GLit] {
        &self.inputs[frame]
    }

    /// Good-machine bits of `node` at `frame`, LSB first.
    #[must_use]
    pub fn good(&self, frame: usize, node: NodeId) -> &[GLit] {
        let base = node.index() * self.w;
        &self.frames[frame][base..base + self.w]
    }

    /// Builds good-machine frames `0..=upto` into `circuit` (idempotent).
    /// Every call must pass the same circuit (or a clone of it).
    pub fn ensure_frames(&mut self, circuit: &mut Circuit, upto: usize) {
        while self.frames.len() <= upto {
            let input_lits: Vec<GLit> = (0..self.input_bits).map(|_| circuit.input()).collect();
            let mut plane = vec![GLit::FALSE; self.netlist.nodes().len() * self.w];
            self.seed_frame(&mut plane, &input_lits, self.frames.last());
            let all = vec![true; self.netlist.nodes().len()];
            self.eval_frame(circuit, &mut plane, None, &all);
            self.frames.push(plane);
            self.inputs.push(input_lits);
        }
    }

    /// Fills inputs, constants and register values (from the previous
    /// frame, or reset-zero at frame 0) into a fresh frame plane.
    fn seed_frame(&self, plane: &mut [GLit], input_lits: &[GLit], prev: Option<&Vec<GLit>>) {
        let w = self.w;
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            match node.kind {
                NodeKind::Const { raw } => {
                    for b in 0..w {
                        plane[i * w + b] = const_bit(raw, b);
                    }
                }
                NodeKind::Register { src } => {
                    if let Some(prev) = prev {
                        let s = src.index() * w;
                        plane[i * w..i * w + w].copy_from_slice(&prev[s..s + w]);
                    } // frame 0: reset, already constant false
                }
                NodeKind::Input => {
                    for (k, &l) in input_lits.iter().enumerate() {
                        plane[i * w + self.align as usize + k] = l;
                    }
                }
                _ => {}
            }
        }
    }

    /// The structural fanout of `node` (register edges included; the carry
    /// half of a carry-save pair follows its sum node): `true` for every
    /// node whose value can differ from the good machine under a fault at
    /// `node`.
    #[must_use]
    pub fn fanout_set(&self, node: NodeId) -> Vec<bool> {
        let nodes = self.netlist.nodes();
        let mut tainted = vec![false; nodes.len()];
        tainted[node.index()] = true;
        // Operands (and register sources) always have smaller indices, so
        // one ascending pass reaches the fixed point of the static graph
        // with register edges folded in.
        for (i, n) in nodes.iter().enumerate() {
            if tainted[i] {
                continue;
            }
            tainted[i] = match n.kind {
                NodeKind::Input | NodeKind::Const { .. } => false,
                NodeKind::Register { src }
                | NodeKind::Output { src }
                | NodeKind::ShiftRight { src, .. }
                | NodeKind::Not { src }
                | NodeKind::SetLsb { src } => tainted[src.index()],
                NodeKind::Add { a, b } | NodeKind::Sub { a, b } => {
                    tainted[a.index()] || tainted[b.index()]
                }
                NodeKind::CsaSum { a, b, c } => {
                    tainted[a.index()] || tainted[b.index()] || tainted[c.index()]
                }
                NodeKind::CsaCarry { a, b, c, sum } => {
                    // The pair shares one faulty gate network: a fault on
                    // the sum node corrupts the carry output too.
                    tainted[a.index()]
                        || tainted[b.index()]
                        || tainted[c.index()]
                        || tainted[sum.index()]
                }
                _ => false,
            };
        }
        tainted
    }

    /// Unrolls the faulty machine over frames `0..=upto`, sharing every
    /// gate outside the fault's structural fanout with the good machine.
    /// Good frames `0..=upto` must already be built.
    #[must_use]
    pub fn faulty_frames(
        &self,
        circuit: &mut Circuit,
        fault: &FaultSpec,
        upto: usize,
    ) -> FrameCone {
        assert!(self.frames.len() > upto, "good frames not built");
        let tainted = self.fanout_set(fault.node);
        let w = self.w;
        let mut out: FrameCone = Vec::with_capacity(upto + 1);
        for t in 0..=upto {
            let mut plane = self.frames[t].clone();
            // Re-seed tainted registers from the faulty previous frame.
            for (i, node) in self.netlist.nodes().iter().enumerate() {
                if !tainted[i] {
                    continue;
                }
                if let NodeKind::Register { src } = node.kind {
                    if t == 0 {
                        for b in 0..w {
                            plane[i * w + b] = GLit::FALSE;
                        }
                    } else {
                        let prev: &Vec<GLit> = &out[t - 1];
                        let s = src.index() * w;
                        let row: Vec<GLit> = prev[s..s + w].to_vec();
                        plane[i * w..i * w + w].copy_from_slice(&row);
                    }
                }
            }
            self.eval_frame(circuit, &mut plane, Some(fault), &tainted);
            out.push(plane);
        }
        out
    }

    /// Evaluates the masked combinational nodes of one frame in place,
    /// optionally with a stuck-at fault injected.
    fn eval_frame(
        &self,
        circuit: &mut Circuit,
        plane: &mut [GLit],
        fault: Option<&FaultSpec>,
        mask: &[bool],
    ) {
        let w = self.w;
        for &idx in self.netlist.eval_order() {
            let i = idx as usize;
            if !mask[i] {
                continue;
            }
            match self.netlist.nodes()[i].kind {
                NodeKind::Input | NodeKind::Const { .. } | NodeKind::Register { .. } => {}
                NodeKind::Output { src } => {
                    let s = src.index() * w;
                    let row: Vec<GLit> = plane[s..s + w].to_vec();
                    plane[i * w..i * w + w].copy_from_slice(&row);
                }
                NodeKind::ShiftRight { src, amount } => {
                    let s = src.index() * w;
                    let amount = amount as usize;
                    for b in 0..w {
                        let from = b + amount;
                        plane[i * w + b] =
                            if from < w { plane[s + from] } else { plane[s + w - 1] };
                    }
                }
                NodeKind::Not { src } => {
                    let s = src.index() * w;
                    for b in 0..w {
                        plane[i * w + b] = plane[s + b].not();
                    }
                }
                NodeKind::SetLsb { src } => {
                    let s = src.index() * w;
                    plane[i * w] = GLit::TRUE;
                    for b in 1..w {
                        plane[i * w + b] = plane[s + b];
                    }
                }
                NodeKind::Add { a, b } => self.eval_arith(circuit, plane, i, a, b, false, fault),
                NodeKind::Sub { a, b } => self.eval_arith(circuit, plane, i, a, b, true, fault),
                NodeKind::CsaSum { a, b, c } => {
                    self.eval_csa(circuit, plane, i, a, b, c, i, false, fault);
                }
                NodeKind::CsaCarry { a, b, c, sum } => {
                    self.eval_csa(circuit, plane, i, a, b, c, sum.index(), true, fault);
                }
                _ => unreachable!("unhandled node kind"),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_csa(
        &self,
        circuit: &mut Circuit,
        plane: &mut [GLit],
        i: usize,
        a: NodeId,
        b: NodeId,
        c: NodeId,
        fault_node: usize,
        carry_out: bool,
        fault: Option<&FaultSpec>,
    ) {
        let w = self.w;
        let (pa, pb, pc) = (a.index() * w, b.index() * w, c.index() * w);
        let active = fault.filter(|f| f.node.index() == fault_node);
        if active.is_none() {
            // Fault-free: the shared constructor (hash-consing dedups the
            // second half of the pair when its sibling already ran).
            let av: Vec<GLit> = plane[pa..pa + w].to_vec();
            let bv: Vec<GLit> = plane[pb..pb + w].to_vec();
            let cv: Vec<GLit> = plane[pc..pc + w].to_vec();
            let (sum, carry) = csa_words(circuit, &av, &bv, &cv);
            let row = if carry_out { carry } else { sum };
            plane[i * w..i * w + w].copy_from_slice(&row);
            return;
        }
        if carry_out {
            plane[i * w] = GLit::FALSE;
            for bit in 0..w - 1 {
                let (av, bv, cv) = (plane[pa + bit], plane[pb + bit], plane[pc + bit]);
                plane[i * w + bit + 1] = match active {
                    Some(f) if f.cell as usize == bit => {
                        faulty_cell(circuit, av, bv, cv, f.fault).1
                    }
                    _ => {
                        let ab = circuit.and(av, bv);
                        let x = circuit.xor(av, bv);
                        let xc = circuit.and(x, cv);
                        circuit.or(ab, xc)
                    }
                };
            }
        } else {
            for bit in 0..w {
                let (av, bv, cv) = (plane[pa + bit], plane[pb + bit], plane[pc + bit]);
                plane[i * w + bit] = match active {
                    Some(f) if f.cell as usize == bit => {
                        faulty_cell(circuit, av, bv, cv, f.fault).0
                    }
                    _ => {
                        let x = circuit.xor(av, bv);
                        circuit.xor(x, cv)
                    }
                };
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_arith(
        &self,
        circuit: &mut Circuit,
        plane: &mut [GLit],
        i: usize,
        a: NodeId,
        b: NodeId,
        subtract: bool,
        fault: Option<&FaultSpec>,
    ) {
        let w = self.w;
        let (pa, pb) = (a.index() * w, b.index() * w);
        let top = self.netlist.msb_trim(self.netlist.node_id(i)) as usize;
        let active = fault.filter(|f| f.node.index() == i);
        if active.is_none() {
            // Fault-free: delegate to the shared constructor so the
            // equivalence lemmas certify the exact gate network the encoder
            // emits (hash-consing makes them literally the same edges).
            let av: Vec<GLit> = plane[pa..pa + w].to_vec();
            let bv: Vec<GLit> = plane[pb..pb + w].to_vec();
            let row = ripple_word(circuit, &av, &bv, subtract, top);
            plane[i * w..i * w + w].copy_from_slice(&row);
            return;
        }
        let mut carry = if subtract { GLit::TRUE } else { GLit::FALSE };
        for bit in 0..top {
            let av = plane[pa + bit];
            let bv = if subtract { plane[pb + bit].not() } else { plane[pb + bit] };
            match active {
                Some(f) if f.cell as usize == bit => {
                    let (s, co) = faulty_cell(circuit, av, bv, carry, f.fault);
                    plane[i * w + bit] = s;
                    carry = co;
                }
                _ => {
                    let x1 = circuit.xor(av, bv);
                    plane[i * w + bit] = circuit.xor(x1, carry);
                    let ab = circuit.and(av, bv);
                    let xc = circuit.and(x1, carry);
                    carry = circuit.or(ab, xc);
                }
            }
        }
        let av = plane[pa + top];
        let bv = if subtract { plane[pb + top].not() } else { plane[pb + top] };
        let sign = match active {
            Some(f) if f.cell as usize == top => {
                faulty_sum_only_cell(circuit, av, bv, carry, f.fault)
            }
            _ => {
                let x1 = circuit.xor(av, bv);
                circuit.xor(x1, carry)
            }
        };
        plane[i * w + top] = sign;
        for bit in top + 1..w {
            plane[i * w + bit] = sign;
        }
    }

    /// Per-bit miter edges (`good XOR faulty` over every output bit) at
    /// `frame`.
    #[must_use]
    pub fn output_diff(
        &self,
        circuit: &mut Circuit,
        frame: usize,
        faulty: &FrameCone,
    ) -> Vec<GLit> {
        let w = self.w;
        let mut diffs = Vec::new();
        for out in self.netlist.output_ids() {
            let base = out.index() * w;
            for b in 0..w {
                diffs.push(circuit.xor(self.frames[frame][base + b], faulty[frame][base + b]));
            }
        }
        diffs
    }

    /// Reads the witness input word of `frame` from a SAT model: the free
    /// window bits, left-aligned and sign-extended — directly steppable
    /// through [`rtl::sim::BitSlicedSim::step`].
    #[must_use]
    pub fn witness_word(&self, circuit: &Circuit, solver: &Solver, frame: usize) -> i64 {
        let mut bits: u64 = 0;
        for (k, &l) in self.inputs[frame].iter().enumerate() {
            if circuit.model_value(solver, l) {
                bits |= 1 << (self.align as usize + k);
            }
        }
        self.netlist.format().sign_extend(bits)
    }
}

/// The fault-free trimmed ripple adder/subtractor over word edges: full
/// cells up to `top - 1`, a sum-only cell at `top`, sign copies above.
/// This is the exact network [`NetlistEncoder`] emits for `Add`/`Sub`
/// nodes; [`crate::equiv`] proves SAT lemmas against it directly.
pub(crate) fn ripple_word(
    circuit: &mut Circuit,
    a: &[GLit],
    b: &[GLit],
    subtract: bool,
    top: usize,
) -> Vec<GLit> {
    let w = a.len();
    debug_assert_eq!(b.len(), w);
    debug_assert!(top < w);
    let mut out = vec![GLit::FALSE; w];
    let mut carry = if subtract { GLit::TRUE } else { GLit::FALSE };
    for bit in 0..top {
        let av = a[bit];
        let bv = if subtract { b[bit].not() } else { b[bit] };
        let x1 = circuit.xor(av, bv);
        out[bit] = circuit.xor(x1, carry);
        let ab = circuit.and(av, bv);
        let xc = circuit.and(x1, carry);
        carry = circuit.or(ab, xc);
    }
    let av = a[top];
    let bv = if subtract { b[top].not() } else { b[top] };
    let x1 = circuit.xor(av, bv);
    let sign = circuit.xor(x1, carry);
    for slot in out.iter_mut().skip(top) {
        *slot = sign;
    }
    out
}

/// The fault-free carry-save pair over word edges: `(sum, carry)` with the
/// carry column shifted up one bit (LSB zero, top majority bit dropped).
/// Matches the encoder's `CsaSum`/`CsaCarry` networks edge-for-edge.
pub(crate) fn csa_words(
    circuit: &mut Circuit,
    a: &[GLit],
    b: &[GLit],
    c: &[GLit],
) -> (Vec<GLit>, Vec<GLit>) {
    let w = a.len();
    debug_assert_eq!(b.len(), w);
    debug_assert_eq!(c.len(), w);
    let mut sum = vec![GLit::FALSE; w];
    let mut carry = vec![GLit::FALSE; w];
    for bit in 0..w {
        let x = circuit.xor(a[bit], b[bit]);
        sum[bit] = circuit.xor(x, c[bit]);
        if bit + 1 < w {
            let ab = circuit.and(a[bit], b[bit]);
            let xc = circuit.and(x, c[bit]);
            carry[bit + 1] = circuit.or(ab, xc);
        }
    }
    (sum, carry)
}

/// Constant bit `b` of a raw word as a gate edge.
fn const_bit(raw: i64, b: usize) -> GLit {
    if (raw as u64 >> b) & 1 == 1 {
        GLit::TRUE
    } else {
        GLit::FALSE
    }
}

/// Maximum number of registers on any source-to-output path.
fn memory_depth(netlist: &Netlist) -> u32 {
    let nodes = netlist.nodes();
    let mut d = vec![0u32; nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        d[i] = match n.kind {
            NodeKind::Input | NodeKind::Const { .. } => 0,
            NodeKind::Register { src } => d[src.index()] + 1,
            NodeKind::Output { src }
            | NodeKind::ShiftRight { src, .. }
            | NodeKind::Not { src }
            | NodeKind::SetLsb { src } => d[src.index()],
            NodeKind::Add { a, b } | NodeKind::Sub { a, b } => d[a.index()].max(d[b.index()]),
            NodeKind::CsaSum { a, b, c } | NodeKind::CsaCarry { a, b, c, .. } => {
                d[a.index()].max(d[b.index()]).max(d[c.index()])
            }
            _ => 0,
        };
    }
    netlist.output_ids().iter().map(|o| d[o.index()]).max().unwrap_or(0)
}

/// The five-gate full-adder cell with one stuck line, mirroring
/// [`rtl::fulladder::eval_word`]. Returns `(sum, cout)`.
pub(crate) fn faulty_cell(
    c: &mut Circuit,
    a: GLit,
    b: GLit,
    ci: GLit,
    fault: FaFault,
) -> (GLit, GLit) {
    let stuck = if fault.stuck_one { GLit::TRUE } else { GLit::FALSE };
    let f = |line: Line, v: GLit| if line == fault.line { stuck } else { v };
    let a_stem = f(Line::AStem, a);
    let a_xor = f(Line::AXor, a_stem);
    let a_and = f(Line::AAnd, a_stem);
    let b_stem = f(Line::BStem, b);
    let b_xor = f(Line::BXor, b_stem);
    let b_and = f(Line::BAnd, b_stem);
    let ci_stem = f(Line::CiStem, ci);
    let ci_xor = f(Line::CiXor, ci_stem);
    let ci_and = f(Line::CiAnd, ci_stem);
    let x1 = c.xor(a_xor, b_xor);
    let x1_stem = f(Line::X1Stem, x1);
    let x1_xor = f(Line::X1Xor, x1_stem);
    let x1_and = f(Line::X1And, x1_stem);
    let and1 = f(Line::And1, c.and(a_and, b_and));
    let and2 = f(Line::And2, c.and(x1_and, ci_and));
    let sum_raw = c.xor(x1_xor, ci_xor);
    let sum = f(Line::Sum, sum_raw);
    let cout_raw = c.or(and1, and2);
    let cout = f(Line::Cout, cout_raw);
    (sum, cout)
}

/// The sum-only (trimmed MSB) cell with one stuck line, mirroring
/// [`rtl::fulladder::eval_word_sum_only`]: stems and their single XOR
/// branches coincide; carry-path faults have no hardware to sit on.
pub(crate) fn faulty_sum_only_cell(
    c: &mut Circuit,
    a: GLit,
    b: GLit,
    ci: GLit,
    fault: FaFault,
) -> GLit {
    let stuck = if fault.stuck_one { GLit::TRUE } else { GLit::FALSE };
    let f = |line: Line, v: GLit| if line == fault.line { stuck } else { v };
    let av = f(Line::AXor, f(Line::AStem, a));
    let bv = f(Line::BXor, f(Line::BStem, b));
    let civ = f(Line::CiXor, f(Line::CiStem, ci));
    let x1_raw = c.xor(av, bv);
    let x1 = f(Line::X1Xor, f(Line::X1Stem, x1_raw));
    let sum_raw = c.xor(x1, civ);
    f(Line::Sum, sum_raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;
    use rtl::sim::{BitSlicedSim, CellFault};
    use rtl::NetlistBuilder;

    /// A small feed-forward netlist exercising every node kind except CSA.
    fn mixed_netlist(width: u32) -> Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d1 = b.register(x);
        let d2 = b.register(d1);
        let s = b.shift_right(d1, 2);
        let a = b.add_labeled(x, s, "a");
        let n = b.not_word(d2);
        let sub = b.sub_labeled(a, n, "s");
        b.output(sub, "y");
        b.finish().unwrap()
    }

    /// A CSA pair netlist (sum/carry compressors plus a merge adder).
    fn csa_netlist(width: u32) -> Netlist {
        let mut b = NetlistBuilder::new(width).unwrap();
        let x = b.input("x");
        let d1 = b.register(x);
        let d2 = b.register(d1);
        let (s, c) = b.csa(x, d1, d2, "csa0");
        let sl = b.set_lsb(c);
        let m = b.add_labeled(s, sl, "merge");
        b.output(m, "y");
        b.finish().unwrap()
    }

    /// Drives the simulator with `seq` and returns the final-step output
    /// word of lane `lane`.
    fn sim_run(netlist: &Netlist, seq: &[i64], fault: Option<&FaultSpec>, lane: u32) -> i64 {
        let mut sim = BitSlicedSim::new(netlist);
        if let Some(f) = fault {
            sim.set_faults(
                f.node,
                vec![CellFault { cell: f.cell, fault: f.fault, lanes: 1 << lane }],
            );
        }
        for &v in seq {
            sim.step(v);
        }
        sim.lane_value(netlist.output_ids()[0], lane)
    }

    /// Forces the encoder's input literals to `seq` and reads the output
    /// word at the last frame via the SAT model.
    fn encoded_run(netlist: &Netlist, seq: &[i64], fault: Option<&FaultSpec>) -> i64 {
        let w = netlist.width();
        let mut enc = NetlistEncoder::new(netlist, w);
        let mut circuit = Circuit::new();
        let last = seq.len() - 1;
        enc.ensure_frames(&mut circuit, last);
        let cone = match fault {
            Some(f) => enc.faulty_frames(&mut circuit, f, last),
            None => (0..=last).map(|t| enc.good(t, netlist.output_ids()[0]).to_vec()).collect(),
        };
        let mut solver = Solver::new();
        for (t, &v) in seq.iter().enumerate() {
            for (k, &l) in enc.input_lits(t).iter().enumerate() {
                let want = (v as u64 >> k) & 1 == 1;
                let edge = if want { l } else { l.not() };
                assert!(circuit.assert_true(&mut solver, edge));
            }
        }
        assert_eq!(solver.solve(), SolveResult::Sat);
        let out = netlist.output_ids()[0];
        let bits: u64 = (0..w as usize)
            .map(|b| {
                let edge = match fault {
                    Some(_) => cone[last][out.index() * w as usize + b],
                    None => enc.good(last, out)[b],
                };
                u64::from(circuit.model_value(&solver, edge)) << b
            })
            .fold(0, |acc, x| acc | x);
        netlist.format().sign_extend(bits)
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn good_machine_matches_simulator_on_random_vectors() {
        for netlist in [mixed_netlist(10), csa_netlist(10)] {
            let mut rng = 0xDEAD_BEEF_u64;
            for round in 0..12 {
                let len = 1 + (round % 5);
                let seq: Vec<i64> = (0..len)
                    .map(|_| {
                        let raw = xorshift(&mut rng) % (1 << 10);
                        netlist.format().sign_extend(raw)
                    })
                    .collect();
                assert_eq!(
                    encoded_run(&netlist, &seq, None),
                    sim_run(&netlist, &seq, None, 0),
                    "round {round}"
                );
            }
        }
    }

    #[test]
    fn faulty_machine_matches_simulator_on_every_line() {
        let netlist = mixed_netlist(8);
        let node = netlist.find_label("s").unwrap();
        let mut rng = 0x1234_5678_u64;
        for line in rtl::fulladder::ALL_LINES {
            for stuck_one in [false, true] {
                let f = FaultSpec { node, cell: 1, fault: FaFault { line, stuck_one } };
                let seq: Vec<i64> = (0..3)
                    .map(|_| {
                        let raw = xorshift(&mut rng) % (1 << 8);
                        netlist.format().sign_extend(raw)
                    })
                    .collect();
                assert_eq!(
                    encoded_run(&netlist, &seq, Some(&f)),
                    sim_run(&netlist, &seq, Some(&f), 1),
                    "{line:?} s-a-{}",
                    u8::from(stuck_one)
                );
            }
        }
    }

    #[test]
    fn faulty_csa_pair_matches_simulator() {
        let netlist = csa_netlist(8);
        let sum_node = netlist.find_label("csa0").unwrap();
        let mut rng = 0x0BAD_CAFE_u64;
        for cell in [0u32, 3, 7] {
            for line in [Line::Sum, Line::Cout, Line::AStem, Line::X1And] {
                let f =
                    FaultSpec { node: sum_node, cell, fault: FaFault { line, stuck_one: true } };
                let seq: Vec<i64> = (0..4)
                    .map(|_| {
                        let raw = xorshift(&mut rng) % (1 << 8);
                        netlist.format().sign_extend(raw)
                    })
                    .collect();
                assert_eq!(
                    encoded_run(&netlist, &seq, Some(&f)),
                    sim_run(&netlist, &seq, Some(&f), 1),
                    "cell {cell} {line:?}"
                );
            }
        }
    }

    #[test]
    fn memory_depth_counts_register_chains() {
        let n = mixed_netlist(8);
        assert_eq!(memory_depth(&n), 2);
        let c = csa_netlist(8);
        assert_eq!(memory_depth(&c), 2);
    }

    #[test]
    fn fanout_set_is_monotone_downstream() {
        let n = mixed_netlist(8);
        let a = n.find_label("a").unwrap();
        let tainted = NetlistEncoder::new(&n, 8).fanout_set(a);
        assert!(tainted[a.index()]);
        assert!(tainted[n.find_label("s").unwrap().index()]);
        assert!(tainted[n.output_ids()[0].index()]);
        assert!(!tainted[n.input_ids()[0].index()]);
    }

    #[test]
    fn input_window_pins_low_bits_to_zero() {
        let netlist = mixed_netlist(8);
        let mut enc = NetlistEncoder::new(&netlist, 5);
        let mut circuit = Circuit::new();
        enc.ensure_frames(&mut circuit, 0);
        let x = netlist.input_ids()[0];
        let bits = enc.good(0, x);
        for (b, &bit) in bits.iter().enumerate().take(3) {
            assert_eq!(bit, GLit::FALSE, "aligned low bit {b}");
        }
        assert_eq!(enc.input_lits(0).len(), 5);
        // Witness with no constraints decodes to an aligned word.
        let solver = Solver::new();
        assert_eq!(enc.witness_word(&circuit, &solver, 0) & 0b111, 0);
    }
}
