//! Combinational-equivalence certificates: every CSD-synthesized filter
//! netlist against its behavioral fixed-point model, over the *full*
//! aligned input range.
//!
//! A monolithic miter between the unrolled netlist and a behavioral
//! reference would be both slow and circular (the reference would be
//! built by the same encoder). Instead the checker assembles a
//! four-layer certificate whose pieces compose into a proof:
//!
//! 1. **Affine normal form** — every node's ideal (infinite-precision)
//!    value is folded into an exact affine combination of *shift atoms*
//!    (`x[t-d] >> s`, plus nested floor-shifts of multi-term sums for
//!    the folded architecture). The output's normal form must equal the
//!    form derived independently from the quantized CSD coefficients.
//!    This step is exact symbolic arithmetic, not an approximation.
//! 2. **Range obligations** — the ideal value of every trimmed
//!    adder/subtractor must fit its trimmed cell span: a worst-case
//!    interval propagation (in `i128`, mirroring `rtl::range` rule for
//!    rule, with registers zero-hulled for the reset transient) shows
//!    `wrap_{top+1}(ideal) == ideal` at each trim, so no word ever
//!    wraps. The intervals are recomputed here from scratch — using the
//!    design's own claimed ranges would be circular for statistically
//!    scaled netlists, which deliberately under-provision and must fail
//!    this check honestly.
//! 3. **SAT cell lemmas** — the word-level reading of each gate network
//!    is discharged by CDCL proofs over fresh inputs: the encoder's
//!    trimmed ripple chain (`encode::ripple_word`, the literal network
//!    the netlist nodes lower to) is mitered against an independent
//!    mux/majority formulation for every `(subtract, trim)`
//!    configuration in the netlist, the carry-save pair is proved to
//!    satisfy `s + c == a + b + c (mod 2^w)`, `SetLsb` is proved to be
//!    `+1` on an even word, and `Not` to be exact two's-complement
//!    negation minus one.
//! 4. **Simulation cross-check** — the affine model is evaluated
//!    numerically against `rtl::sim::BitSlicedSim` on deterministic
//!    pseudo-random input sequences, guarding the glue between layers.
//!
//! Together: the lemmas certify each word operator computes
//! `wrap_{top+1}` of its ideal operand sum, the obligations certify the
//! wrap is the identity on the reachable range, and the normal form
//! certifies the composition of ideals equals the behavioral model.
//! Any gap — a reckless scaling policy, a miswired tap, a bad trim —
//! surfaces as `proved: false` with a concrete failure message.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use filters::{Architecture, FilterDesign};
use rtl::sim::BitSlicedSim;
use rtl::{Netlist, NodeKind};

use crate::circuit::{Circuit, GLit};
use crate::encode::{csa_words, ripple_word};
use crate::solver::{SolveResult, Solver, SolverStats};

/// One term of the affine normal form.
///
/// `In { delay, shift }` is `x[t - delay] >> shift` (zero before the
/// first sample, matching register reset); `Shift` is an arithmetic
/// right shift of a nested multi-term sum — floor shifts do not
/// distribute over addition, so the folded architecture's pre-adder
/// shifts must stay symbolic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum Atom {
    /// A delayed, shifted input sample.
    In {
        /// Samples of delay relative to the current step.
        delay: u32,
        /// Arithmetic right shift applied to the sample.
        shift: u32,
    },
    /// An arithmetic right shift of a nested affine sum.
    Shift {
        /// The shifted sum.
        inner: Box<Affine>,
        /// Shift distance (always positive; zero shifts collapse).
        amount: u32,
    },
}

impl Atom {
    fn delayed(&self, by: u32) -> Atom {
        match self {
            Atom::In { delay, shift } => Atom::In { delay: delay + by, shift: *shift },
            Atom::Shift { inner, amount } => {
                Atom::Shift { inner: Box::new(inner.delayed(by)), amount: *amount }
            }
        }
    }

    fn eval(&self, xs: &[i64], t: usize) -> i128 {
        match self {
            Atom::In { delay, shift } => match t.checked_sub(*delay as usize) {
                Some(idx) => (xs[idx] as i128) >> shift,
                None => 0,
            },
            Atom::Shift { inner, amount } => inner.eval(xs, t) >> amount,
        }
    }
}

/// An exact integer-affine combination of shift atoms. Equality of two
/// normal forms is structural (`BTreeMap` equality), which is why every
/// constructor canonicalizes: zero coefficients are dropped, shifts of
/// single unit atoms fold into the atom, and shift-of-shift composes.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Affine {
    terms: BTreeMap<Atom, i64>,
    constant: i64,
}

impl Affine {
    fn constant(c: i64) -> Affine {
        Affine { terms: BTreeMap::new(), constant: c }
    }

    fn atom(a: Atom) -> Affine {
        let mut f = Affine::default();
        f.add_term(a, 1);
        f
    }

    fn add_term(&mut self, a: Atom, coeff: i64) {
        match self.terms.entry(a) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                *e.get_mut() += coeff;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                if coeff != 0 {
                    e.insert(coeff);
                }
            }
        }
    }

    fn add_scaled(&mut self, other: &Affine, k: i64) {
        for (a, &c) in &other.terms {
            self.add_term(a.clone(), k * c);
        }
        self.constant += k * other.constant;
    }

    fn plus(&self, other: &Affine) -> Affine {
        let mut f = self.clone();
        f.add_scaled(other, 1);
        f
    }

    fn minus(&self, other: &Affine) -> Affine {
        let mut f = self.clone();
        f.add_scaled(other, -1);
        f
    }

    /// `-self - 1`: the exact value of a bitwise complement.
    fn complemented(&self) -> Affine {
        let mut f = Affine::default();
        f.add_scaled(self, -1);
        f.constant -= 1;
        f
    }

    fn delayed(&self, by: u32) -> Affine {
        if by == 0 {
            return self.clone();
        }
        let mut f = Affine::constant(self.constant);
        for (a, &c) in &self.terms {
            f.add_term(a.delayed(by), c);
        }
        f
    }

    /// Arithmetic right shift in normal form. A unit atom absorbs the
    /// shift (`(x >> a) >> b == x >> (a + b)` holds for floor shifts);
    /// anything else must stay a symbolic [`Atom::Shift`].
    fn shifted(&self, amount: u32) -> Affine {
        if amount == 0 {
            return self.clone();
        }
        if self.terms.is_empty() {
            return Affine::constant(self.constant >> amount);
        }
        if self.constant == 0 && self.terms.len() == 1 {
            let (a, &c) = self.terms.iter().next().expect("one term");
            if c == 1 {
                return Affine::atom(match a {
                    Atom::In { delay, shift } => Atom::In { delay: *delay, shift: shift + amount },
                    Atom::Shift { inner, amount: a0 } => {
                        Atom::Shift { inner: inner.clone(), amount: a0 + amount }
                    }
                });
            }
        }
        Affine::atom(Atom::Shift { inner: Box::new(self.clone()), amount })
    }

    fn eval(&self, xs: &[i64], t: usize) -> i128 {
        let mut acc = self.constant as i128;
        for (a, &c) in &self.terms {
            acc += (c as i128) * a.eval(xs, t);
        }
        acc
    }

    fn len(&self) -> usize {
        self.terms.len()
    }
}

/// Enumeration budget for nested-shift operand hulls; beyond it the
/// group falls back to (sound, looser) interval arithmetic.
const MAX_ENUM_SPAN: i128 = 1 << 21;

/// Worst-case range analysis over affine normal forms.
///
/// Plain interval arithmetic (what `rtl::range` does node-by-node) is
/// too loose here: the CSD digits of one tap are shifts *of the same
/// sample*, so `x>>4 - x>>6` can never reach the Minkowski bound
/// `max(x>>4) - min(x>>6)`. Losing that correlation overflows the
/// word-width bound on realistic filters even though the true range
/// fits — which is exactly why `rtl::range` saturates and the trimmer
/// clamps to the sign cell there.
///
/// This engine instead partitions an affine form into *independence
/// groups* — terms over distinct input samples genuinely vary
/// independently, while all terms over one sample (or one nested
/// pre-adder sum) are evaluated together by exhaustive enumeration of
/// that operand's value set. Group extremes then add. Splitting
/// correlated terms into separate groups only ever widens the result,
/// so any grouping is sound; the per-sample enumeration is exact.
struct RangeCtx {
    /// Input window extremes, pre-alignment.
    vlo: i64,
    vhi: i64,
    /// Left alignment of the input window inside the datapath word.
    align: u32,
    memo: HashMap<Affine, (i128, i128)>,
}

/// Independence-group key: one input sample, or one nested shifted sum.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum GroupKey {
    Delay(u32),
    Inner(Box<Affine>),
}

impl RangeCtx {
    fn new(input_bits: u32, width: u32) -> RangeCtx {
        RangeCtx {
            vlo: -(1i64 << (input_bits - 1)),
            vhi: (1i64 << (input_bits - 1)) - 1,
            align: width - input_bits,
            memo: HashMap::new(),
        }
    }

    /// Worst-case `[lo, hi]` of `f` over all input sequences.
    fn affine_range(&mut self, f: &Affine) -> (i128, i128) {
        let mut groups: BTreeMap<GroupKey, Affine> = BTreeMap::new();
        for (a, &c) in &f.terms {
            let key = match a {
                Atom::In { delay, .. } => GroupKey::Delay(*delay),
                Atom::Shift { inner, .. } => GroupKey::Inner(inner.clone()),
            };
            groups.entry(key).or_default().add_term(a.clone(), c);
        }
        let mut lo = f.constant as i128;
        let mut hi = lo;
        for (key, g) in groups {
            let (glo, ghi) = self.group_range(&key, &g);
            lo += glo;
            hi += ghi;
        }
        (lo, hi)
    }

    fn group_range(&mut self, key: &GroupKey, g: &Affine) -> (i128, i128) {
        if let Some(&r) = self.memo.get(g) {
            return r;
        }
        let r = match key {
            GroupKey::Delay(_) => {
                // Exact: enumerate the input window.
                let (mut lo, mut hi) = (i128::MAX, i128::MIN);
                for v in self.vlo..=self.vhi {
                    let word = v << self.align;
                    let mut acc = 0i128;
                    for (a, &c) in &g.terms {
                        if let Atom::In { shift, .. } = a {
                            acc += (c as i128) * ((word >> shift) as i128);
                        }
                    }
                    lo = lo.min(acc);
                    hi = hi.max(acc);
                }
                (lo, hi)
            }
            GroupKey::Inner(inner) => {
                let (ulo, uhi) = self.affine_range(inner);
                if uhi - ulo <= MAX_ENUM_SPAN
                    && i64::try_from(ulo).is_ok()
                    && i64::try_from(uhi).is_ok()
                {
                    // Exact over the operand hull (a superset of the
                    // reachable set, so still sound).
                    let (mut lo, mut hi) = (i128::MAX, i128::MIN);
                    for u in (ulo as i64)..=(uhi as i64) {
                        let mut acc = 0i128;
                        for (a, &c) in &g.terms {
                            if let Atom::Shift { amount, .. } = a {
                                acc += (c as i128) * ((u >> amount) as i128);
                            }
                        }
                        lo = lo.min(acc);
                        hi = hi.max(acc);
                    }
                    (lo, hi)
                } else {
                    // Interval fallback.
                    let (mut lo, mut hi) = (0i128, 0i128);
                    for (a, &c) in &g.terms {
                        if let Atom::Shift { amount, .. } = a {
                            let t1 = (c as i128) * (ulo >> amount);
                            let t2 = (c as i128) * (uhi >> amount);
                            lo += t1.min(t2);
                            hi += t1.max(t2);
                        }
                    }
                    (lo, hi)
                }
            }
        };
        self.memo.insert(g.clone(), r);
        r
    }
}

/// A live carry-save `(sum, carry)` pair: its *combined* ideal value.
/// Individual halves carry no affine meaning — only
/// `sum + carry (mod 2^w)` does.
struct Pair {
    ideal: Affine,
    /// Set once the pair has been delayed; later in-place corrections
    /// (`SetLsb`) would silently miss the already-derived copy.
    locked: bool,
}

/// Symbolic value of one netlist node.
#[derive(Clone)]
enum SymVal {
    /// An ordinary word whose value equals the affine form exactly
    /// (given the range obligations).
    Scalar(Affine),
    /// One half of a carry-save pair.
    Half { pair: usize, carry: bool },
}

struct Extraction {
    output: Affine,
    obligations: usize,
}

/// Folds the netlist into its affine normal form, emitting a range
/// obligation at every trimmed adder/subtractor. Errors describe the
/// first node that defeats the fold — an unsupported operand mix or an
/// obligation violation — and translate to `proved: false`.
fn extract(netlist: &Netlist, input_bits: u32) -> Result<Extraction, String> {
    let nodes = netlist.nodes();
    if netlist.output_ids().len() != 1 {
        return Err("equivalence checking expects exactly one output".into());
    }
    if netlist.input_ids().len() != 1 {
        return Err("equivalence checking expects exactly one input".into());
    }
    let mut ranges = RangeCtx::new(input_bits, netlist.width());

    // Operand fan-out, for the SetLsb in-place correction soundness check.
    let mut uses = vec![0usize; nodes.len()];
    for n in nodes {
        for op in n.kind.operands() {
            uses[op.index()] += 1;
        }
    }

    let mut vals: Vec<Option<SymVal>> = vec![None; nodes.len()];
    let mut pairs: Vec<Pair> = Vec::new();
    let mut pair_of_sum: HashMap<usize, usize> = HashMap::new();
    let mut delayed_pair: HashMap<usize, usize> = HashMap::new();
    let mut obligations = 0usize;
    let mut output: Option<Affine> = None;

    let fetch = |vals: &[Option<SymVal>], id: rtl::NodeId, at: usize| -> Result<SymVal, String> {
        vals[id.index()]
            .clone()
            .ok_or_else(|| format!("node {at} uses operand {} before it is defined", id.index()))
    };

    for (i, n) in nodes.iter().enumerate() {
        let val = match n.kind {
            NodeKind::Input => SymVal::Scalar(Affine::atom(Atom::In { delay: 0, shift: 0 })),
            NodeKind::Const { raw } => SymVal::Scalar(Affine::constant(raw)),
            NodeKind::Register { src } => match fetch(&vals, src, i)? {
                SymVal::Scalar(f) => SymVal::Scalar(f.delayed(1)),
                SymVal::Half { pair, carry } => {
                    let q = match delayed_pair.get(&pair) {
                        Some(&q) => q,
                        None => {
                            let ideal = pairs[pair].ideal.delayed(1);
                            pairs[pair].locked = true;
                            pairs.push(Pair { ideal, locked: false });
                            let q = pairs.len() - 1;
                            delayed_pair.insert(pair, q);
                            q
                        }
                    };
                    SymVal::Half { pair: q, carry }
                }
            },
            NodeKind::ShiftRight { src, amount } => match fetch(&vals, src, i)? {
                SymVal::Scalar(f) => SymVal::Scalar(f.shifted(amount)),
                SymVal::Half { .. } => {
                    return Err(format!("node {i}: shift of a carry-save half"));
                }
            },
            NodeKind::Not { src } => match fetch(&vals, src, i)? {
                SymVal::Scalar(f) => SymVal::Scalar(f.complemented()),
                SymVal::Half { .. } => {
                    return Err(format!("node {i}: complement of a carry-save half"));
                }
            },
            NodeKind::SetLsb { src } => match fetch(&vals, src, i)? {
                SymVal::Half { pair, carry: true }
                    if matches!(nodes[src.index()].kind, NodeKind::CsaCarry { .. })
                        && uses[src.index()] == 1
                        && !pairs[pair].locked =>
                {
                    // The carry word's LSB is structurally zero, so the
                    // tie-high adds exactly one to the pair. Correct the
                    // pair in place: its sum half keeps pointing here.
                    pairs[pair].ideal.constant += 1;
                    SymVal::Half { pair, carry: true }
                }
                _ => {
                    return Err(format!("node {i}: SetLsb outside the carry-correction idiom"));
                }
            },
            NodeKind::Add { a, b } => {
                match (fetch(&vals, a, i)?, fetch(&vals, b, i)?) {
                    (SymVal::Scalar(fa), SymVal::Scalar(fb)) => {
                        let f = fa.plus(&fb);
                        check_obligation(netlist, i, &f, &mut ranges, &mut obligations)?;
                        SymVal::Scalar(f)
                    }
                    (
                        SymVal::Half { pair: p1, carry: c1 },
                        SymVal::Half { pair: p2, carry: c2 },
                    ) if p1 == p2 && c1 != c2 => {
                        // Vector merge: the ripple adder resolves the pair
                        // to wrap(sum + carry) == the pair's ideal value.
                        let f = pairs[p1].ideal.clone();
                        check_obligation(netlist, i, &f, &mut ranges, &mut obligations)?;
                        SymVal::Scalar(f)
                    }
                    _ => return Err(format!("node {i}: unsupported adder operand mix")),
                }
            }
            NodeKind::Sub { a, b } => match (fetch(&vals, a, i)?, fetch(&vals, b, i)?) {
                (SymVal::Scalar(fa), SymVal::Scalar(fb)) => {
                    let f = fa.minus(&fb);
                    check_obligation(netlist, i, &f, &mut ranges, &mut obligations)?;
                    SymVal::Scalar(f)
                }
                _ => return Err(format!("node {i}: unsupported subtractor operand mix")),
            },
            NodeKind::CsaSum { a, b, c } => {
                let mut ideal = Affine::default();
                let mut halves: Vec<(usize, bool)> = Vec::new();
                for op in [a, b, c] {
                    match fetch(&vals, op, i)? {
                        SymVal::Scalar(f) => ideal.add_scaled(&f, 1),
                        SymVal::Half { pair, carry } => halves.push((pair, carry)),
                    }
                }
                match halves.as_slice() {
                    [] => {}
                    [(p1, c1), (p2, c2)] if p1 == p2 && c1 != c2 => {
                        let pair_ideal = pairs[*p1].ideal.clone();
                        ideal.add_scaled(&pair_ideal, 1);
                    }
                    _ => {
                        return Err(format!("node {i}: carry-save stage consumes a split pair"));
                    }
                }
                pairs.push(Pair { ideal, locked: false });
                pair_of_sum.insert(i, pairs.len() - 1);
                SymVal::Half { pair: pairs.len() - 1, carry: false }
            }
            NodeKind::CsaCarry { sum, .. } => match pair_of_sum.get(&sum.index()) {
                Some(&p) => SymVal::Half { pair: p, carry: true },
                None => return Err(format!("node {i}: carry without its sum sibling")),
            },
            NodeKind::Output { src } => match fetch(&vals, src, i)? {
                SymVal::Scalar(f) => {
                    output = Some(f.clone());
                    SymVal::Scalar(f)
                }
                SymVal::Half { .. } => {
                    return Err(format!("node {i}: unresolved carry-save pair at the output"));
                }
            },
            _ => return Err(format!("node {i}: unsupported node kind")),
        };
        vals[i] = Some(val);
    }

    Ok(Extraction { output: output.expect("one output"), obligations })
}

/// One trimmed-adder range obligation: the ideal value must fit the
/// trimmed cell span, otherwise the hardware word wraps and the affine
/// reading is invalid.
fn check_obligation(
    netlist: &Netlist,
    i: usize,
    f: &Affine,
    ranges: &mut RangeCtx,
    obligations: &mut usize,
) -> Result<(), String> {
    let top = netlist.msb_trim(netlist.node_id(i));
    let (lo, hi) = ranges.affine_range(f);
    let bound = 1i128 << top;
    if lo < -bound || hi >= bound {
        return Err(format!(
            "node {i}: worst-case value range [{lo}, {hi}] exceeds the trimmed sign cell \
             {top} (the adder can wrap; a statistical scaling policy that \
             under-provisions headroom fails here)"
        ));
    }
    *obligations += 1;
    Ok(())
}

/// Outcome of the SAT lemma pass.
#[derive(Default)]
struct Lemmas {
    proved: usize,
    stats: SolverStats,
    failure: Option<String>,
}

impl Lemmas {
    /// Miters `lhs` against `rhs` in a fresh solver and requires UNSAT.
    fn prove(&mut self, name: &str, build: impl FnOnce(&mut Circuit) -> (Vec<GLit>, Vec<GLit>)) {
        if self.failure.is_some() {
            return;
        }
        let mut circuit = Circuit::new();
        let mut solver = Solver::new();
        let (lhs, rhs) = build(&mut circuit);
        debug_assert_eq!(lhs.len(), rhs.len());
        let diffs: Vec<GLit> = lhs.iter().zip(&rhs).map(|(&l, &r)| circuit.xor(l, r)).collect();
        circuit.assert_any(&mut solver, &diffs);
        solver.set_conflict_budget(200_000);
        let result = solver.solve();
        self.accumulate(solver.stats());
        match result {
            SolveResult::Unsat => self.proved += 1,
            SolveResult::Sat => {
                self.failure = Some(format!("cell lemma refuted: {name}"));
            }
            SolveResult::Unknown => {
                self.failure = Some(format!("cell lemma exceeded its budget: {name}"));
            }
        }
    }

    fn accumulate(&mut self, s: SolverStats) {
        self.stats.conflicts += s.conflicts;
        self.stats.decisions += s.decisions;
        self.stats.propagations += s.propagations;
        self.stats.restarts += s.restarts;
        self.stats.learnts += s.learnts;
    }
}

fn fresh_word(circuit: &mut Circuit, w: usize) -> Vec<GLit> {
    (0..w).map(|_| circuit.input()).collect()
}

/// An independent trimmed adder formulation: mux-based sum cells and
/// 3-term majority carries — structurally disjoint from the xor-form
/// network `encode::ripple_word` emits, so the miter is not discharged
/// by hash-consing alone.
fn reference_sum(
    circuit: &mut Circuit,
    a: &[GLit],
    b: &[GLit],
    subtract: bool,
    top: usize,
) -> Vec<GLit> {
    let w = a.len();
    let mut out = vec![GLit::FALSE; w];
    let mut carry = if subtract { GLit::TRUE } else { GLit::FALSE };
    for bit in 0..=top {
        let av = a[bit];
        let bv = if subtract { b[bit].not() } else { b[bit] };
        let x = circuit.xor(av, bv);
        out[bit] = circuit.mux(carry, x.not(), x);
        if bit < top {
            carry = circuit.majority(av, bv, carry);
        }
    }
    for bit in top + 1..w {
        out[bit] = out[top];
    }
    out
}

/// Proves the word-level lemmas for every operator configuration the
/// netlist actually instantiates.
fn run_cell_lemmas(netlist: &Netlist) -> Lemmas {
    let w = netlist.width() as usize;
    let mut configs: BTreeSet<(bool, u32)> = BTreeSet::new();
    let mut has_csa = false;
    let mut has_setlsb = false;
    let mut has_not = false;
    for (i, n) in netlist.nodes().iter().enumerate() {
        match n.kind {
            NodeKind::Add { .. } => {
                configs.insert((false, netlist.msb_trim(netlist.node_id(i))));
            }
            NodeKind::Sub { .. } => {
                configs.insert((true, netlist.msb_trim(netlist.node_id(i))));
            }
            NodeKind::CsaSum { .. } => has_csa = true,
            NodeKind::SetLsb { .. } => has_setlsb = true,
            NodeKind::Not { .. } => has_not = true,
            _ => {}
        }
    }

    let mut lemmas = Lemmas::default();
    for (subtract, top) in configs {
        let kind = if subtract { "sub" } else { "add" };
        lemmas.prove(&format!("{kind} trimmed at cell {top}"), |c| {
            let a = fresh_word(c, w);
            let b = fresh_word(c, w);
            let lhs = ripple_word(c, &a, &b, subtract, top as usize);
            let rhs = reference_sum(c, &a, &b, subtract, top as usize);
            (lhs, rhs)
        });
    }
    if has_csa {
        // s + c == a + b + c (mod 2^w): merge the pair with a full-width
        // reference adder and compare against two chained additions.
        lemmas.prove("carry-save pair preserves the sum mod 2^w", |circ| {
            let a = fresh_word(circ, w);
            let b = fresh_word(circ, w);
            let c3 = fresh_word(circ, w);
            let (s, cy) = csa_words(circ, &a, &b, &c3);
            let lhs = reference_sum(circ, &s, &cy, false, w - 1);
            let t = reference_sum(circ, &a, &b, false, w - 1);
            let rhs = reference_sum(circ, &t, &c3, false, w - 1);
            (lhs, rhs)
        });
    }
    if has_setlsb {
        // Tying the LSB of an even word adds exactly one.
        lemmas.prove("SetLsb on an even word is +1", |circ| {
            let mut x = fresh_word(circ, w);
            x[0] = GLit::FALSE;
            let mut tied = x.clone();
            tied[0] = GLit::TRUE;
            let mut one = vec![GLit::FALSE; w];
            one[0] = GLit::TRUE;
            let rhs = reference_sum(circ, &x, &one, false, w - 1);
            (tied, rhs)
        });
    }
    if has_not {
        // x + !x == -1 (all ones): the complement is exactly -x - 1.
        lemmas.prove("complement satisfies x + !x == -1", |circ| {
            let x = fresh_word(circ, w);
            let nx: Vec<GLit> = x.iter().map(|l| l.not()).collect();
            let lhs = reference_sum(circ, &x, &nx, false, w - 1);
            (lhs, vec![GLit::TRUE; w])
        });
    }
    lemmas
}

/// Derives the behavioral model's normal form straight from the
/// quantized CSD coefficients — the netlist never touches this side.
fn spec_affine(design: &FilterDesign) -> Result<Affine, String> {
    let n = design.spec().taps;
    let q = design.quantized();
    let mut f = Affine::default();
    match design.architecture() {
        Architecture::RippleCarry | Architecture::CarrySave => {
            // Transposed form: tap k's product reaches the output through
            // k chain registers plus the output register.
            for (k, coef) in q.iter().enumerate() {
                for d in coef.fractional_digits() {
                    if d.power > 0 {
                        return Err(format!("digit power {} above unity", d.power));
                    }
                    let shift = (-d.power) as u32;
                    let sign = if d.negative { -1 } else { 1 };
                    f.add_term(Atom::In { delay: k as u32 + 1, shift }, sign);
                }
            }
        }
        Architecture::Symmetric => {
            // Folded form: half-weight pre-added sample pairs times the
            // doubled coefficient; one register (the output) on top of
            // the delay line.
            let pairs = n / 2;
            for (k, coef) in q.iter().enumerate().take(pairs) {
                let inner = Affine::atom(Atom::In { delay: k as u32 + 1, shift: 1 })
                    .plus(&Affine::atom(Atom::In { delay: (n - k) as u32, shift: 1 }));
                for d in coef.fractional_digits() {
                    let s = -d.power;
                    if s < 1 {
                        return Err(format!(
                            "pair digit shift {s} leaves no room for the half weight"
                        ));
                    }
                    let sign = if d.negative { -1 } else { 1 };
                    f.add_scaled(&inner.shifted(s as u32 - 1), sign);
                }
            }
            if n % 2 == 1 {
                // Middle tap: (x >> 1) >> (s - 1) == x >> s.
                let mid = pairs;
                for d in q[mid].fractional_digits() {
                    if d.power > 0 {
                        return Err(format!("digit power {} above unity", d.power));
                    }
                    let shift = (-d.power) as u32;
                    let sign = if d.negative { -1 } else { 1 };
                    f.add_term(Atom::In { delay: mid as u32 + 1, shift }, sign);
                }
            }
        }
        other => return Err(format!("unsupported architecture {other:?}")),
    }
    Ok(f)
}

/// Evaluates the affine model against the bit-sliced simulator on
/// deterministic pseudo-random aligned input sequences.
fn sim_cross_check(
    netlist: &Netlist,
    model: &Affine,
    input_bits: u32,
    taps: usize,
) -> Result<usize, String> {
    let align = netlist.width() - input_bits;
    let out = netlist.output_ids()[0];
    let steps = taps + 24;
    let mut checked = 0usize;
    for seed in [0x9e37_79b9_7f4a_7c15u64, 0x2545_f491_4f6c_dd1d] {
        let mut sim = BitSlicedSim::new(netlist);
        let mut state = seed;
        let mut xs: Vec<i64> = Vec::with_capacity(steps);
        for t in 0..steps {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let window = (state >> 16) & ((1u64 << input_bits) - 1);
            let word = netlist.format().sign_extend(window << align);
            xs.push(word);
            sim.step(word);
            let got = sim.lane_value(out, 0) as i128;
            let want = model.eval(&xs, t);
            if got != want {
                return Err(format!(
                    "simulation diverges from the behavioral model at step {t}: \
                     netlist {got}, model {want}"
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// The machine-checked equivalence certificate for one filter design.
#[derive(Clone, Debug)]
pub struct EquivReport {
    /// Design name from the spec.
    pub design: String,
    /// Accumulation architecture, for the record.
    pub architecture: String,
    /// `true` only when every certificate layer passed.
    pub proved: bool,
    /// Terms in the behavioral model's affine normal form.
    pub spec_terms: usize,
    /// Trimmed-adder range obligations discharged.
    pub range_obligations: usize,
    /// SAT cell lemmas proved UNSAT.
    pub lemmas_proved: usize,
    /// Simulation steps cross-checked against the affine model.
    pub sim_steps_checked: usize,
    /// First failing certificate layer, when not proved.
    pub failure: Option<String>,
    /// Accumulated CDCL statistics over all lemmas.
    pub stats: SolverStats,
}

/// Proves (or honestly refutes) that `design`'s synthesized netlist
/// computes its behavioral fixed-point model over the full aligned
/// input range. See the module docs for the certificate structure.
#[must_use]
pub fn check_equivalence(design: &FilterDesign) -> EquivReport {
    let netlist = design.netlist();
    let spec = design.spec();
    let mut report = EquivReport {
        design: spec.name.clone(),
        architecture: format!("{:?}", design.architecture()),
        proved: false,
        spec_terms: 0,
        range_obligations: 0,
        lemmas_proved: 0,
        sim_steps_checked: 0,
        failure: None,
        stats: SolverStats::default(),
    };

    let model = match spec_affine(design) {
        Ok(m) => m,
        Err(e) => {
            report.failure = Some(format!("behavioral model: {e}"));
            return report;
        }
    };
    report.spec_terms = model.len();

    let ext = match extract(netlist, spec.input_bits) {
        Ok(x) => x,
        Err(e) => {
            report.failure = Some(e);
            return report;
        }
    };
    report.range_obligations = ext.obligations;

    if ext.output != model {
        report.failure = Some(format!(
            "normal-form mismatch: the netlist folds to {} terms, the behavioral \
             model has {}",
            ext.output.len(),
            model.len()
        ));
        return report;
    }

    let lemmas = run_cell_lemmas(netlist);
    report.lemmas_proved = lemmas.proved;
    report.stats = lemmas.stats;
    if let Some(f) = lemmas.failure {
        report.failure = Some(f);
        return report;
    }

    match sim_cross_check(netlist, &model, spec.input_bits, spec.taps) {
        Ok(steps) => report.sim_steps_checked = steps,
        Err(e) => {
            report.failure = Some(e);
            return report;
        }
    }

    report.proved = true;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use filters::{designs, FilterDesign, ScalingPolicy};
    use rtl::NetlistBuilder;

    fn atom_in(delay: u32, shift: u32) -> Atom {
        Atom::In { delay, shift }
    }

    #[test]
    fn affine_normalization_rules() {
        // Unit atoms absorb shifts; shift-of-shift composes.
        let x = Affine::atom(atom_in(0, 0));
        assert_eq!(x.shifted(2), Affine::atom(atom_in(0, 2)));
        assert_eq!(x.shifted(2).shifted(3), Affine::atom(atom_in(0, 5)));

        // Multi-term sums stay symbolic and compose their shifts.
        let f = Affine::atom(atom_in(0, 1)).plus(&Affine::atom(atom_in(1, 1)));
        let s1 = f.shifted(2);
        assert_eq!(s1.len(), 1);
        assert_eq!(s1.shifted(3), f.shifted(5));

        // Delay distributes into nested shifts.
        assert_eq!(
            s1.delayed(2),
            Affine::atom(atom_in(2, 1)).plus(&Affine::atom(atom_in(3, 1))).shifted(2)
        );

        // Cancellation drops terms.
        assert_eq!(f.minus(&f), Affine::default());
    }

    #[test]
    fn affine_eval_matches_hand_computation() {
        // f = (x[t-1] >> 2) - (x[t] >> 1) - 3
        let mut f = Affine::constant(-3);
        f.add_term(atom_in(1, 2), 1);
        f.add_term(atom_in(0, 1), -1);
        let xs = [100i64, -7];
        // t = 0: the delayed atom falls before the first sample → 0.
        assert_eq!(f.eval(&xs, 0), -(100 >> 1) - 3);
        assert_eq!(f.eval(&xs, 1), (100 >> 2) - (-7 >> 1) - 3);
    }

    /// A hand-built carry-save chain with a negative product: checks
    /// pair tracking, the SetLsb correction, register delays of pairs,
    /// and the vector merge.
    #[test]
    fn extraction_folds_a_csa_chain() {
        let mut b = NetlistBuilder::new(16).unwrap();
        let x = b.input("x");
        let p1 = b.shift_right(x, 2);
        let zero = b.constant(0);
        let ds = b.register(p1);
        let dc = b.register(zero);
        let p2 = b.shift_right(x, 1);
        let inv = b.not_word(p2);
        let (s, c) = b.csa(ds, inv, dc, "tap.csa");
        let c = b.set_lsb(c);
        let rs = b.register(s);
        let rc = b.register(c);
        let merged = b.add(rs, rc);
        let out_reg = b.register(merged);
        b.output(out_reg, "y");
        let netlist = b.finish().unwrap();

        let ext = extract(&netlist, 12).unwrap();
        // Ideal: (x[t-3] >> 2) - (x[t-2] >> 1); the -1 of the complement
        // cancels against the SetLsb +1.
        let mut want = Affine::default();
        want.add_term(atom_in(3, 2), 1);
        want.add_term(atom_in(2, 1), -1);
        assert_eq!(ext.output, want);
        assert!(ext.obligations >= 1);

        // And a deliberately wrong model does not match.
        let mut wrong = want.clone();
        wrong.add_term(atom_in(1, 4), 1);
        assert_ne!(ext.output, wrong);
    }

    #[test]
    fn built_in_designs_prove_equivalent() {
        let designs: Vec<FilterDesign> = vec![
            designs::lowpass_mini().unwrap(),
            designs::lowpass_symmetric().unwrap(),
            designs::lowpass_carry_save().unwrap(),
        ];
        for d in &designs {
            let report = check_equivalence(d);
            assert!(
                report.proved,
                "{} ({}) failed: {:?}",
                report.design, report.architecture, report.failure
            );
            assert!(report.spec_terms > 0);
            assert!(report.range_obligations > 0);
            assert!(report.lemmas_proved > 0);
            assert!(report.sim_steps_checked > 0);
        }
    }

    #[test]
    fn paper_designs_prove_equivalent() {
        for d in designs::paper_designs().unwrap() {
            let report = check_equivalence(&d);
            assert!(report.proved, "{} failed: {:?}", report.design, report.failure);
        }
    }

    /// A statistical scaling policy that slashes headroom produces a
    /// netlist whose adders genuinely wrap; the checker must refuse to
    /// certify it rather than echo the design's own claimed ranges.
    #[test]
    fn reckless_statistical_scaling_is_refuted() {
        let spec = designs::lowpass_mini().unwrap().spec().clone();
        let design = FilterDesign::elaborate_full(
            spec,
            ScalingPolicy::Statistical { k_rms: 0.3 },
            Architecture::RippleCarry,
        )
        .unwrap();
        let report = check_equivalence(&design);
        assert!(!report.proved);
        let failure = report.failure.expect("failure recorded");
        assert!(failure.contains("exceeds the trimmed sign cell"), "got: {failure}");
    }
}
