//! Hash-consed boolean circuit with lazy Tseitin emission into a [`Solver`].
//!
//! Gates are two-input AND and XOR nodes over *signed edges* ([`GLit`]):
//! bit 0 of the packed representation is a complement flag, mirroring the
//! literal packing of the solver. Structural hashing plus constant folding
//! keeps shared cones (fault-free vs. faulty copies of a netlist) physically
//! shared — the miter only pays for the downstream fanout of the fault site.
//!
//! CNF is emitted lazily: a gate gets a solver variable (and its defining
//! Tseitin clauses) only when some constraint actually references it. The
//! emission walk is an explicit work stack because filter cones reach tens
//! of thousands of gates deep — native recursion would overflow.

use crate::solver::{Lit, Solver};
use std::collections::HashMap;

/// A signed edge into the gate graph: `gate_index << 1 | complement`.
///
/// Two reserved values encode the constants: [`GLit::FALSE`] and
/// [`GLit::TRUE`] (gate index 0 is the constant-false node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GLit(pub u32);

impl GLit {
    /// The constant-false edge.
    pub const FALSE: GLit = GLit(0);
    /// The constant-true edge.
    pub const TRUE: GLit = GLit(1);

    fn new(index: u32, complement: bool) -> Self {
        GLit(index << 1 | u32::from(complement))
    }

    fn index(self) -> u32 {
        self.0 >> 1
    }

    fn complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement of this edge.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        GLit(self.0 ^ 1)
    }

    /// True when this edge is one of the two constants.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.index() == 0
    }

    /// The boolean value, if this edge is constant.
    #[must_use]
    pub fn const_value(self) -> Option<bool> {
        self.is_const().then(|| self.complemented())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Gate {
    /// A free input variable.
    Input,
    /// Two-input AND of signed edges (operands stored sorted).
    And(GLit, GLit),
    /// Two-input XOR of signed edges (operands stored sorted, sign-normalized).
    Xor(GLit, GLit),
}

/// A hash-consed AND/XOR gate graph with lazy CNF emission.
#[derive(Clone, Default)]
pub struct Circuit {
    gates: Vec<Gate>,
    cons: HashMap<Gate, u32>,
    /// Solver literal for each emitted gate index (positive polarity).
    emitted: HashMap<u32, Lit>,
}

impl Circuit {
    /// An empty circuit (just the constant node).
    #[must_use]
    pub fn new() -> Self {
        Circuit {
            // Gate index 0 is the constant-false node; it is never emitted.
            gates: vec![Gate::Input],
            cons: HashMap::new(),
            emitted: HashMap::new(),
        }
    }

    /// Number of gates, excluding the constant node.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len() - 1
    }

    /// True when the circuit holds no gates beyond the constant node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocate a fresh primary input.
    pub fn input(&mut self) -> GLit {
        let idx = self.gates.len() as u32;
        self.gates.push(Gate::Input);
        GLit::new(idx, false)
    }

    /// AND of two edges, with constant folding and structural hashing.
    pub fn and(&mut self, a: GLit, b: GLit) -> GLit {
        // Constant and trivial cases.
        if a == GLit::FALSE || b == GLit::FALSE || a == b.not() {
            return GLit::FALSE;
        }
        if a == GLit::TRUE {
            return b;
        }
        if b == GLit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Gate::And(a, b))
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: GLit, b: GLit) -> GLit {
        self.and(a.not(), b.not()).not()
    }

    /// XOR of two edges, with constant folding and sign normalization
    /// (complements on operands are hoisted onto the output).
    pub fn xor(&mut self, a: GLit, b: GLit) -> GLit {
        if a == b {
            return GLit::FALSE;
        }
        if a == b.not() {
            return GLit::TRUE;
        }
        if a.is_const() {
            return if a == GLit::TRUE { b.not() } else { b };
        }
        if b.is_const() {
            return if b == GLit::TRUE { a.not() } else { a };
        }
        let out_sign = a.complemented() ^ b.complemented();
        let (a, b) = (GLit::new(a.index(), false), GLit::new(b.index(), false));
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let g = self.intern(Gate::Xor(a, b));
        if out_sign {
            g.not()
        } else {
            g
        }
    }

    /// Three-way majority (the full-adder carry function).
    pub fn majority(&mut self, a: GLit, b: GLit, c: GLit) -> GLit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// If-then-else: `cond ? t : e`.
    pub fn mux(&mut self, cond: GLit, t: GLit, e: GLit) -> GLit {
        let a = self.and(cond, t);
        let b = self.and(cond.not(), e);
        self.or(a, b)
    }

    fn intern(&mut self, gate: Gate) -> GLit {
        if let Some(&idx) = self.cons.get(&gate) {
            return GLit::new(idx, false);
        }
        let idx = self.gates.len() as u32;
        self.gates.push(gate);
        self.cons.insert(gate, idx);
        GLit::new(idx, false)
    }

    /// The solver literal for `edge`, emitting Tseitin clauses for its cone
    /// on first use. Constants must be handled by the caller — pass only
    /// non-constant edges (checked).
    pub fn lit(&mut self, solver: &mut Solver, edge: GLit) -> Lit {
        assert!(!edge.is_const(), "constant edges have no solver literal");
        // Iterative post-order emission: cones run ~20k gates deep.
        let mut stack: Vec<(u32, bool)> = vec![(edge.index(), false)];
        while let Some((idx, expanded)) = stack.pop() {
            if self.emitted.contains_key(&idx) {
                continue;
            }
            let gate = self.gates[idx as usize];
            if !expanded {
                stack.push((idx, true));
                match gate {
                    Gate::Input => {}
                    Gate::And(a, b) | Gate::Xor(a, b) => {
                        for op in [a, b] {
                            if !op.is_const() && !self.emitted.contains_key(&op.index()) {
                                stack.push((op.index(), false));
                            }
                        }
                    }
                }
                continue;
            }
            let out = Lit::pos(solver.new_var());
            match gate {
                Gate::Input => {}
                Gate::And(a, b) => {
                    let la = self.operand_lit(a);
                    let lb = self.operand_lit(b);
                    // out <-> a & b
                    solver.add_clause(&[out.negate(), la]);
                    solver.add_clause(&[out.negate(), lb]);
                    solver.add_clause(&[out, la.negate(), lb.negate()]);
                }
                Gate::Xor(a, b) => {
                    let la = self.operand_lit(a);
                    let lb = self.operand_lit(b);
                    // out <-> a ^ b
                    solver.add_clause(&[out.negate(), la, lb]);
                    solver.add_clause(&[out.negate(), la.negate(), lb.negate()]);
                    solver.add_clause(&[out, la.negate(), lb]);
                    solver.add_clause(&[out, la, lb.negate()]);
                }
            }
            self.emitted.insert(idx, out);
        }
        let base = self.emitted[&edge.index()];
        if edge.complemented() {
            base.negate()
        } else {
            base
        }
    }

    /// Literal for an operand edge that is already emitted (internal).
    fn operand_lit(&self, edge: GLit) -> Lit {
        debug_assert!(!edge.is_const());
        let base = self.emitted[&edge.index()];
        if edge.complemented() {
            base.negate()
        } else {
            base
        }
    }

    /// Assert that `edge` is true in every model (handles constants).
    /// Returns `false` if this makes the instance trivially unsatisfiable.
    pub fn assert_true(&mut self, solver: &mut Solver, edge: GLit) -> bool {
        match edge.const_value() {
            Some(true) => true,
            Some(false) => solver.add_clause(&[]),
            None => {
                let l = self.lit(solver, edge);
                solver.add_clause(&[l])
            }
        }
    }

    /// Assert that at least one of `edges` is true. Constant-true edges make
    /// the constraint vacuous; constant-false edges are dropped.
    pub fn assert_any(&mut self, solver: &mut Solver, edges: &[GLit]) -> bool {
        let mut lits = Vec::with_capacity(edges.len());
        for &e in edges {
            match e.const_value() {
                Some(true) => return true,
                Some(false) => {}
                None => lits.push(self.lit(solver, e)),
            }
        }
        solver.add_clause(&lits)
    }

    /// Evaluate `edge` under the solver's current SAT model.
    #[must_use]
    pub fn model_value(&self, solver: &Solver, edge: GLit) -> bool {
        if let Some(v) = edge.const_value() {
            return v;
        }
        // Unemitted gates are unconstrained; evaluate structurally from
        // emitted fringes so witnesses stay consistent.
        let base = match self.emitted.get(&edge.index()) {
            Some(&l) => solver.model_lit(l),
            None => self.eval_structural(solver, edge.index()),
        };
        base ^ edge.complemented()
    }

    fn eval_structural(&self, solver: &Solver, index: u32) -> bool {
        match self.gates[index as usize] {
            Gate::Input => false, // unconstrained input: any value works
            Gate::And(a, b) => self.model_value(solver, a) && self.model_value(solver, b),
            Gate::Xor(a, b) => self.model_value(solver, a) ^ self.model_value(solver, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn constant_folding() {
        let mut c = Circuit::new();
        let x = c.input();
        assert_eq!(c.and(x, GLit::FALSE), GLit::FALSE);
        assert_eq!(c.and(x, GLit::TRUE), x);
        assert_eq!(c.and(x, x.not()), GLit::FALSE);
        assert_eq!(c.xor(x, x), GLit::FALSE);
        assert_eq!(c.xor(x, x.not()), GLit::TRUE);
        assert_eq!(c.xor(x, GLit::FALSE), x);
        assert_eq!(c.xor(x, GLit::TRUE), x.not());
    }

    #[test]
    fn structural_hashing_shares_gates() {
        let mut c = Circuit::new();
        let x = c.input();
        let y = c.input();
        let a = c.and(x, y);
        let b = c.and(y, x);
        assert_eq!(a, b);
        let n = c.len();
        let _ = c.and(x, y);
        assert_eq!(c.len(), n);
        // XOR sign normalization: x ^ !y == !(x ^ y).
        let p = c.xor(x, y.not());
        let q = c.xor(x, y);
        assert_eq!(p, q.not());
    }

    #[test]
    fn tseitin_xor_and_chain_solves() {
        let mut c = Circuit::new();
        let mut s = Solver::new();
        let x = c.input();
        let y = c.input();
        let z = c.input();
        // f = (x & y) ^ z; assert f and !z -> x & y must hold.
        let xy = c.and(x, y);
        let f = c.xor(xy, z);
        assert!(c.assert_true(&mut s, f));
        assert!(c.assert_true(&mut s, z.not()));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(c.model_value(&s, x));
        assert!(c.model_value(&s, y));
        assert!(!c.model_value(&s, z));
    }

    #[test]
    fn shared_cone_miter_of_identical_functions_is_unsat() {
        let mut c = Circuit::new();
        let mut s = Solver::new();
        let x = c.input();
        let y = c.input();
        // Two structurally different forms of the same function:
        // x ^ y  vs  (x & !y) | (!x & y).
        let a = c.xor(x, y);
        let t1 = c.and(x, y.not());
        let t2 = c.and(x.not(), y);
        let b = c.or(t1, t2);
        let diff = c.xor(a, b);
        // diff folds to a real gate network; the miter must be UNSAT.
        assert!(c.assert_true(&mut s, diff) || diff == GLit::FALSE);
        if diff != GLit::FALSE {
            assert_eq!(s.solve(), SolveResult::Unsat);
        }
    }

    #[test]
    fn majority_matches_truth_table() {
        for bits in 0..8u32 {
            let mut c = Circuit::new();
            let mut s = Solver::new();
            let ins: Vec<GLit> = (0..3).map(|_| c.input()).collect();
            let m = c.majority(ins[0], ins[1], ins[2]);
            for (i, &l) in ins.iter().enumerate() {
                let want = bits >> i & 1 == 1;
                let edge = if want { l } else { l.not() };
                assert!(c.assert_true(&mut s, edge));
            }
            assert_eq!(s.solve(), SolveResult::Sat);
            let expect = bits.count_ones() >= 2;
            assert_eq!(c.model_value(&s, m), expect, "bits {bits:03b}");
        }
    }

    #[test]
    fn clone_preserves_emitted_literals() {
        let mut c = Circuit::new();
        let mut s = Solver::new();
        let x = c.input();
        let y = c.input();
        let f = c.and(x, y);
        let lf = c.lit(&mut s, f);
        let mut c2 = c.clone();
        let mut s2 = s.clone();
        // The clone reuses the same literal for the same edge.
        assert_eq!(c2.lit(&mut s2, f), lf);
        s2.add_clause(&[lf]);
        assert_eq!(s2.solve(), SolveResult::Sat);
        assert!(c2.model_value(&s2, x) && c2.model_value(&s2, y));
    }
}
