//! A compact CDCL SAT solver.
//!
//! The solver implements the standard conflict-driven clause-learning loop:
//! two-watched-literal unit propagation (with a cached *blocker* literal per
//! watch to skip most clause visits), first-UIP conflict analysis with
//! recursive clause minimization, VSIDS-style exponential variable activity
//! with phase saving, Luby-sequence restarts, and incremental solving under
//! assumptions. A conflict budget turns the decision procedure three-valued:
//! [`SolveResult::Unknown`] is returned when the budget is exhausted, so
//! callers never block on a pathological instance.
//!
//! Clauses live in a single flat `u32` arena rather than `Vec<Vec<Lit>>`;
//! this keeps propagation cache-friendly and makes [`Solver`] cheap to
//! `Clone` — the redundancy prover clones a fully-loaded base instance once
//! per fault instead of re-encoding the shared fault-free cone.

use std::fmt::Write as _;

/// A propositional literal: variable index shifted left once, LSB = sign.
///
/// `Lit(2 * v)` is the positive literal of variable `v`, `Lit(2 * v + 1)`
/// the negative one — the same packing the `rtl` crate uses for
/// complemented gate edges, so translation is a shift.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of variable `var`.
    #[must_use]
    pub fn pos(var: u32) -> Self {
        Lit(var << 1)
    }

    /// Negative literal of variable `var`.
    #[must_use]
    pub fn neg(var: u32) -> Self {
        Lit(var << 1 | 1)
    }

    /// The variable this literal mentions.
    #[must_use]
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// True when this is the negated polarity.
    #[must_use]
    pub fn sign(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement literal.
    #[must_use]
    pub fn negate(self) -> Self {
        Lit(self.0 ^ 1)
    }

    /// DIMACS integer form: 1-based, negative for negated literals.
    #[must_use]
    pub fn dimacs(self) -> i64 {
        let v = i64::from(self.var()) + 1;
        if self.sign() {
            -v
        } else {
            v
        }
    }
}

/// Three-valued outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A model satisfying all clauses (and assumptions) was found.
    Sat,
    /// The clause set is unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget ran out before a verdict was reached.
    Unknown,
}

/// Cumulative search statistics, reset never, monotone across `solve` calls.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Conflicts encountered (clause-learning events).
    pub conflicts: u64,
    /// Decision literals picked.
    pub decisions: u64,
    /// Literals enqueued by unit propagation.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently retained.
    pub learnts: u64,
}

/// Truth value of a variable in the current (partial) assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Value {
    True,
    False,
    Undef,
}

impl Value {
    fn from_bool(b: bool) -> Self {
        if b {
            Value::True
        } else {
            Value::False
        }
    }

    fn negate(self) -> Self {
        match self {
            Value::True => Value::False,
            Value::False => Value::True,
            Value::Undef => Value::Undef,
        }
    }
}

/// Reference to a clause: offset into the arena. `NO_REASON` marks decisions.
type ClauseRef = u32;
const NO_REASON: ClauseRef = u32::MAX;

/// One watcher entry: the clause and a cached blocker literal that, when
/// true, lets propagation skip loading the clause at all.
#[derive(Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Arena layout per clause: `[len, activity_bits, lit0, lit1, ...]`.
const HDR: usize = 2;

/// A compact CDCL solver over literals created with [`Solver::new_var`].
#[derive(Clone)]
pub struct Solver {
    num_vars: u32,
    arena: Vec<u32>,
    /// Offsets of original (problem) clauses, for the DIMACS dump.
    originals: Vec<ClauseRef>,
    /// Offsets of learnt clauses, for periodic reduction.
    learnts: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<Value>,
    /// Saved phase per variable; decisions re-use the last polarity.
    phases: Vec<bool>,
    levels: Vec<u32>,
    reasons: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    /// Binary-heap order index for VSIDS (lazy heap: simple max scan over
    /// a small candidate stack would be too slow; we keep a real heap).
    heap: Vec<u32>,
    heap_pos: Vec<u32>,
    /// Scratch marks for conflict analysis.
    seen: Vec<bool>,
    /// True once an unconditional (level-0) conflict has been derived.
    unsat: bool,
    stats: SolverStats,
    /// Conflict budget for the next `solve` call; `u64::MAX` = unbounded.
    budget: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty instance with no variables or clauses.
    #[must_use]
    pub fn new() -> Self {
        Solver {
            num_vars: 0,
            arena: Vec::new(),
            originals: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phases: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SolverStats::default(),
            budget: u64::MAX,
        }
    }

    /// Allocate a fresh variable and return its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.num_vars;
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assigns.push(Value::Undef);
        self.phases.push(false);
        self.levels.push(0);
        self.reasons.push(NO_REASON);
        self.activity.push(0.0);
        self.heap_pos.push(u32::MAX);
        self.seen.push(false);
        self.heap_insert(v);
        v
    }

    /// Number of variables allocated so far.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Cumulative search statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limit the next [`Solver::solve`] call to `conflicts` conflicts;
    /// exceeding the budget yields [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, conflicts: u64) {
        self.budget = conflicts;
    }

    /// Add a clause (a disjunction of literals). Returns `false` if the
    /// instance is already unsatisfiable at level 0.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack_to(0);
        if self.unsat {
            return false;
        }
        // Sort/dedup, drop false literals, detect tautologies.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        for &l in &c {
            debug_assert!(l.var() < self.num_vars, "literal references unknown var");
            if c.binary_search(&l.negate()).is_ok() {
                return true; // tautology
            }
            match self.value_lit(l) {
                Value::True => return true, // already satisfied at level 0
                Value::False => {}          // drop
                Value::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(out[0], NO_REASON);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.alloc_clause(&out, false);
                self.originals.push(cref);
                self.attach(cref);
                true
            }
        }
    }

    /// Solve with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_assuming(&[])
    }

    /// Solve under the given assumption literals. On [`SolveResult::Sat`]
    /// the model (including the assumptions) is readable via
    /// [`Solver::model_value`]. The solver state is reusable afterwards.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        let budget_limit = self.stats.conflicts.saturating_add(self.budget);
        let mut restart_idx: u64 = 0;
        let mut next_restart = self.stats.conflicts + 32 * luby(restart_idx);
        let mut max_learnts = (self.originals.len() as u64 / 3).max(2000);
        let result = 'outer: loop {
            if let Some(confl) = self.propagate() {
                // Conflict.
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    break 'outer SolveResult::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(confl);
                self.backtrack_to(backtrack_level);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let cref = self.alloc_clause(&learnt, true);
                    self.learnts.push(cref);
                    self.stats.learnts = self.learnts.len() as u64;
                    self.attach(cref);
                    self.bump_clause(cref);
                    self.enqueue(learnt[0], cref);
                }
                self.decay_activities();
                if self.stats.conflicts >= budget_limit {
                    break 'outer SolveResult::Unknown;
                }
                if self.stats.conflicts >= next_restart {
                    restart_idx += 1;
                    next_restart = self.stats.conflicts + 32 * luby(restart_idx);
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                }
                if self.learnts.len() as u64 > max_learnts {
                    self.reduce_learnts();
                    max_learnts += max_learnts / 10;
                }
            } else {
                // No conflict: place the next pending assumption as a
                // pseudo-decision (decision levels 1..=k mirror assumption
                // indices; already-implied assumptions get an empty level so
                // the alignment holds), then branch.
                let mut placed = false;
                let mut refuted = false;
                while self.decision_level() < assumptions.len() {
                    let a = assumptions[self.decision_level()];
                    match self.value_lit(a) {
                        Value::True => self.trail_lim.push(self.trail.len()),
                        Value::False => {
                            refuted = true;
                            break;
                        }
                        Value::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                            placed = true;
                            break;
                        }
                    }
                }
                if refuted {
                    break 'outer SolveResult::Unsat;
                }
                if placed {
                    continue;
                }
                match self.pick_branch() {
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, NO_REASON);
                    }
                    None => break 'outer SolveResult::Sat,
                }
            }
        };
        if result != SolveResult::Sat {
            self.backtrack_to(0);
        }
        self.budget = u64::MAX;
        result
    }

    /// Truth value of `var` in the most recent SAT model. Only meaningful
    /// directly after a `solve*` call returned [`SolveResult::Sat`].
    #[must_use]
    pub fn model_value(&self, var: u32) -> bool {
        matches!(self.assigns[var as usize], Value::True)
    }

    /// Truth value of a literal in the most recent SAT model.
    #[must_use]
    pub fn model_lit(&self, lit: Lit) -> bool {
        self.model_value(lit.var()) != lit.sign()
    }

    /// Serialize the original clause set in DIMACS CNF format, for
    /// debugging with external solvers.
    #[must_use]
    pub fn dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.originals.len());
        for &cref in &self.originals {
            let len = self.arena[cref as usize] as usize;
            let base = cref as usize + HDR;
            for i in 0..len {
                let _ = write!(out, "{} ", Lit(self.arena[base + i]).dimacs());
            }
            out.push_str("0\n");
        }
        out
    }

    // ----- internals ------------------------------------------------------

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn value_lit(&self, l: Lit) -> Value {
        let v = self.assigns[l.var() as usize];
        if l.sign() {
            v.negate()
        } else {
            v
        }
    }

    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        let cref = self.arena.len() as ClauseRef;
        self.arena.push(lits.len() as u32);
        self.arena.push(if learnt { f32::to_bits(0.0) } else { 0 });
        self.arena.extend(lits.iter().map(|l| l.0));
        cref
    }

    fn clause_lits(&self, cref: ClauseRef) -> &[u32] {
        let len = self.arena[cref as usize] as usize;
        let base = cref as usize + HDR;
        &self.arena[base..base + len]
    }

    fn attach(&mut self, cref: ClauseRef) {
        let base = cref as usize + HDR;
        let l0 = Lit(self.arena[base]);
        let l1 = Lit(self.arena[base + 1]);
        self.watches[l0.negate().0 as usize].push(Watcher { cref, blocker: l1 });
        self.watches[l1.negate().0 as usize].push(Watcher { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let base = cref as usize + HDR;
        let l0 = Lit(self.arena[base]);
        let l1 = Lit(self.arena[base + 1]);
        for l in [l0, l1] {
            let ws = &mut self.watches[l.negate().0 as usize];
            if let Some(pos) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(pos);
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value_lit(lit), Value::Undef);
        let v = lit.var() as usize;
        self.assigns[v] = Value::from_bool(!lit.sign());
        self.phases[v] = !lit.sign();
        self.levels[v] = self.decision_level() as u32;
        self.reasons[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            // Take the watcher list out to sidestep aliasing; entries we
            // keep are written back in place.
            let mut ws = std::mem::take(&mut self.watches[p.0 as usize]);
            let mut kept = 0;
            let mut conflict: Option<ClauseRef> = None;
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.value_lit(w.blocker) == Value::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.cref;
                let len = self.arena[cref as usize] as usize;
                let base = cref as usize + HDR;
                // Normalize so the false literal (negate of p) sits at slot 1.
                let not_p = p.negate();
                if Lit(self.arena[base]) == not_p {
                    self.arena.swap(base, base + 1);
                }
                debug_assert_eq!(Lit(self.arena[base + 1]), not_p);
                let first = Lit(self.arena[base]);
                if first != w.blocker && self.value_lit(first) == Value::True {
                    ws[kept] = Watcher { cref, blocker: first };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..len {
                    let lk = Lit(self.arena[base + k]);
                    if self.value_lit(lk) != Value::False {
                        self.arena.swap(base + 1, base + k);
                        self.watches[lk.negate().0 as usize].push(Watcher { cref, blocker: first });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                ws[kept] = Watcher { cref, blocker: first };
                kept += 1;
                if self.value_lit(first) == Value::False {
                    // Conflict: keep remaining watchers and bail.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, cref);
                }
            }
            ws.truncate(kept);
            self.watches[p.0 as usize] = ws;
            if conflict.is_some() {
                self.prop_head = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        loop {
            self.bump_clause(cref);
            let lits: Vec<Lit> = self.clause_lits(cref).iter().map(|&u| Lit(u)).collect();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var() as usize;
                if !self.seen[v] && self.levels[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.levels[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next literal on the trail marked `seen`.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var() as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = lit.negate();
                break;
            }
            cref = self.reasons[v];
            debug_assert_ne!(cref, NO_REASON);
            p = Some(lit);
        }
        // Local minimization: drop literals whose reason clause is entirely
        // covered by the remaining literals (self-subsuming resolution).
        let keep: Vec<bool> =
            learnt.iter().enumerate().map(|(i, &l)| i == 0 || !self.redundant(l)).collect();
        let mut minimized: Vec<Lit> =
            learnt.iter().zip(&keep).filter_map(|(&l, &k)| k.then_some(l)).collect();
        // Compute backtrack level = max level among non-asserting literals.
        let backtrack = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.levels[minimized[i].var() as usize]
                    > self.levels[minimized[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.levels[minimized[1].var() as usize] as usize
        };
        for l in &learnt {
            self.seen[l.var() as usize] = false;
        }
        (minimized, backtrack)
    }

    /// True when `l` is implied by the other literals of the learnt clause
    /// (single-step self-subsumption: its reason's literals are all seen or
    /// at level 0).
    fn redundant(&self, l: Lit) -> bool {
        let v = l.var() as usize;
        let r = self.reasons[v];
        if r == NO_REASON {
            return false;
        }
        self.clause_lits(r).iter().all(|&u| {
            let q = Lit(u);
            let qv = q.var() as usize;
            qv == v || self.seen[qv] || self.levels[qv] == 0
        })
    }

    fn backtrack_to(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v as usize] = Value::Undef;
            self.reasons[v as usize] = NO_REASON;
            self.heap_insert(v);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.prop_head = self.prop_head.min(bound);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v as usize] == Value::Undef {
                let phase = self.phases[v as usize];
                return Some(if phase { Lit::pos(v) } else { Lit::neg(v) });
            }
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v as usize] != u32::MAX {
            self.heap_sift_up(self.heap_pos[v as usize] as usize);
        }
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let slot = cref as usize + 1;
        let mut act = f32::from_bits(self.arena[slot]);
        act += self.cla_inc as f32;
        if act > 1e20 {
            for &lc in &self.learnts {
                let s = lc as usize + 1;
                self.arena[s] = f32::to_bits(f32::from_bits(self.arena[s]) * 1e-20);
            }
            self.cla_inc *= 1e-20;
            act = f32::from_bits(self.arena[slot]) + self.cla_inc as f32;
        }
        self.arena[slot] = f32::to_bits(act);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Drop the less-active half of the learnt clauses, keeping any that
    /// currently serve as a propagation reason. Detached clauses stay in the
    /// arena as garbage; our instances are short-lived so no compaction.
    fn reduce_learnts(&mut self) {
        use std::collections::HashSet;
        let locked: HashSet<ClauseRef> = self
            .trail
            .iter()
            .map(|l| self.reasons[l.var() as usize])
            .filter(|&r| r != NO_REASON)
            .collect();
        let mut order: Vec<ClauseRef> = self.learnts.clone();
        order.sort_by(|&a, &b| {
            let aa = f32::from_bits(self.arena[a as usize + 1]);
            let ab = f32::from_bits(self.arena[b as usize + 1]);
            aa.partial_cmp(&ab).unwrap_or(std::cmp::Ordering::Equal)
        });
        let doomed: HashSet<ClauseRef> =
            order.iter().take(order.len() / 2).copied().filter(|c| !locked.contains(c)).collect();
        for &cref in &doomed {
            self.detach(cref);
        }
        self.learnts.retain(|c| !doomed.contains(c));
        self.stats.learnts = self.learnts.len() as u64;
    }

    // ----- activity heap --------------------------------------------------

    fn heap_insert(&mut self, v: u32) {
        if self.heap_pos[v as usize] != u32::MAX {
            return;
        }
        self.heap_pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top as usize] = u32::MAX;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.heap_swap(i, parent);
            i = parent;
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_pos[self.heap[a] as usize] = a as u32;
        self.heap_pos[self.heap[b] as usize] = b as u32;
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::pos(v as u32 - 1)
        } else {
            Lit::neg((-v) as u32 - 1)
        }
    }

    fn solver_with_vars(n: u32) -> Solver {
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_value(0));
        assert!(s.model_value(1));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&[lit(1)]);
        assert!(!s.add_clause(&[lit(-1)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,j): pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = solver_with_vars(6);
        let p = |i: u32, j: u32| Lit::pos(i * 2 + j);
        for i in 0..3 {
            s.add_clause(&[p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[p(a, j).negate(), p(b, j).negate()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_incremental() {
        let mut s = solver_with_vars(3);
        // x1 -> x2, x2 -> x3
        s.add_clause(&[lit(-1), lit(2)]);
        s.add_clause(&[lit(-2), lit(3)]);
        assert_eq!(s.solve_assuming(&[lit(1), lit(-3)]), SolveResult::Unsat);
        // Same solver, different assumptions: still usable.
        assert_eq!(s.solve_assuming(&[lit(1)]), SolveResult::Sat);
        assert!(s.model_value(2));
        assert_eq!(s.solve_assuming(&[lit(-3)]), SolveResult::Sat);
        assert!(!s.model_value(0));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A moderately hard pigeonhole with a 1-conflict budget.
        let holes = 4u32;
        let pigeons = 5u32;
        let mut s = solver_with_vars(pigeons * holes);
        let p = |i: u32, j: u32| Lit::pos(i * holes + j);
        for i in 0..pigeons {
            let c: Vec<Lit> = (0..holes).map(|j| p(i, j)).collect();
            s.add_clause(&c);
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    s.add_clause(&[p(a, j).negate(), p(b, j).negate()]);
                }
            }
        }
        s.set_conflict_budget(1);
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Unbudgeted retry completes.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift for clause sampling.
        let mut state = 0x1234_5678_u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 8u32;
            let m = 3 + (round % 30) as usize + round as usize / 2;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (rnd() % u64::from(n)) as u32;
                    let sign = rnd() & 1 == 1;
                    c.push(if sign { Lit::neg(v) } else { Lit::pos(v) });
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'asg: for bits in 0..(1u32 << n) {
                for c in &clauses {
                    let ok = c.iter().any(|l| {
                        let val = bits >> l.var() & 1 == 1;
                        val != l.sign()
                    });
                    if !ok {
                        continue 'asg;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = solver_with_vars(n);
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve();
            let want = if brute_sat { SolveResult::Sat } else { SolveResult::Unsat };
            assert_eq!(got, want, "round {round}");
            if got == SolveResult::Sat {
                // The model must satisfy every clause.
                for c in &clauses {
                    assert!(c.iter().any(|&l| s.model_lit(l)));
                }
            }
        }
    }

    #[test]
    fn dimacs_dump_lists_original_clauses() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(-2)]);
        let d = s.dimacs();
        assert!(d.starts_with("p cnf 2 1"));
        assert!(d.contains("1 -2 0"));
    }

    #[test]
    fn cloned_solver_is_independent() {
        let mut s = solver_with_vars(2);
        s.add_clause(&[lit(1), lit(2)]);
        let mut t = s.clone();
        t.add_clause(&[lit(-1)]);
        t.add_clause(&[lit(-2)]);
        assert_eq!(t.solve(), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
