//! Per-fault redundancy proving: a miter between the fault-free and the
//! fault-injected unrolling of one netlist.
//!
//! For a feed-forward netlist with memory depth `D`, the output at any step
//! `t >= D` is a fixed function of the last `D + 1` input words — for the
//! faulty machine too, since stuck lines do not lengthen register chains.
//! A fault is therefore detectable if and only if some output differs from
//! the good machine at one of the unrolled frames `0..=D` (frames `0..D`
//! cover the reset transient, frame `D` covers all steady-state steps by
//! time invariance). UNSAT at every frame is a machine-checked proof of
//! redundancy; SAT yields an input-word witness which is replayed through
//! [`rtl::sim::BitSlicedSim`] before the verdict is trusted.
//!
//! Cost model: the good machine's cone is encoded **once** into a base
//! circuit/solver pair; each fault clones the pair and adds only the
//! fault's structural-fanout delta. Gates outside the fanout hash-cons to
//! the good machine's edges, so miter bits whose cones are untouched fold
//! to constant false and cost nothing.

use crate::circuit::Circuit;
use crate::encode::{FaultSpec, NetlistEncoder};
use crate::solver::{Lit, SolveResult, Solver, SolverStats};
use rtl::sim::{BitSlicedSim, CellFault};
use rtl::Netlist;

/// Lane used for fault injection during witness replay (lane 0 stays
/// fault-free as the reference).
const REPLAY_LANE: u32 = 1;

/// Outcome of proving a single fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultVerdict {
    /// UNSAT at every frame `0..=D`: no input sequence ever exposes the
    /// fault at an output. Machine-checked proof of redundancy.
    Redundant,
    /// SAT: `witness` is a sequence of input words (step 0 first) whose
    /// final step differs at an output — already confirmed by replaying
    /// through the bit-sliced simulator.
    Detectable {
        /// Input words, one per simulator step, detection at the last.
        witness: Vec<i64>,
    },
    /// The conflict budget ran out (or a witness failed to replay, which
    /// would be an encoder soundness bug) before a verdict was reached.
    Unknown,
}

/// Budget knobs for a proving pass.
#[derive(Clone, Copy, Debug)]
pub struct PruneConfig {
    /// Conflict budget per SAT query (each fault runs at most `D + 1`
    /// queries). Exhausting it yields [`FaultVerdict::Unknown`].
    pub max_conflicts: u64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig { max_conflicts: 20_000 }
    }
}

/// Aggregate result of [`prove_faults`] over a candidate set.
#[derive(Clone, Debug, Default)]
pub struct PruneOutcome {
    /// Per-candidate verdicts, in input order.
    pub verdicts: Vec<(FaultSpec, FaultVerdict)>,
    /// Number of candidates proven redundant.
    pub redundant: usize,
    /// Number of candidates proven detectable (witness confirmed).
    pub detectable: usize,
    /// Number of candidates left undecided by the budget.
    pub unknown: usize,
    /// SAT witnesses that replayed through the simulator as detections.
    /// Always equals `detectable`; a shortfall is a soundness bug.
    pub witnesses_confirmed: usize,
    /// Aggregated solver work across all queries.
    pub stats: SolverStats,
}

/// Incremental prover holding the shared good-machine encoding for one
/// netlist.
pub struct RedundancyProver<'n> {
    enc: NetlistEncoder<'n>,
    circuit: Circuit,
    solver: Solver,
    ready: bool,
    stats: SolverStats,
    witnesses_confirmed: usize,
}

impl<'n> RedundancyProver<'n> {
    /// Creates a prover for `netlist` whose input drives the top
    /// `input_bits` of the datapath (see [`NetlistEncoder::new`]).
    #[must_use]
    pub fn new(netlist: &'n Netlist, input_bits: u32) -> Self {
        RedundancyProver {
            enc: NetlistEncoder::new(netlist, input_bits),
            circuit: Circuit::new(),
            solver: Solver::new(),
            ready: false,
            stats: SolverStats::default(),
            witnesses_confirmed: 0,
        }
    }

    /// Memory depth of the encoded netlist.
    #[must_use]
    pub fn memory_depth(&self) -> u32 {
        self.enc.memory_depth()
    }

    /// Aggregated solver work across all `prove` calls so far.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of SAT witnesses confirmed by simulator replay so far.
    #[must_use]
    pub fn witnesses_confirmed(&self) -> usize {
        self.witnesses_confirmed
    }

    /// Builds and Tseitin-emits the good machine once, so per-fault clones
    /// share its clause database.
    fn prepare(&mut self) {
        if self.ready {
            return;
        }
        let d = self.enc.memory_depth() as usize;
        self.enc.ensure_frames(&mut self.circuit, d);
        for t in 0..=d {
            for out in self.enc.netlist().output_ids() {
                let row: Vec<_> = self.enc.good(t, out).to_vec();
                for e in row {
                    if !e.is_const() {
                        let _ = self.circuit.lit(&mut self.solver, e);
                    }
                }
            }
        }
        self.ready = true;
    }

    /// Proves one fault: `Redundant` (UNSAT at all frames), `Detectable`
    /// with a replay-confirmed witness, or `Unknown` if `max_conflicts`
    /// runs out.
    pub fn prove(&mut self, fault: &FaultSpec, max_conflicts: u64) -> FaultVerdict {
        self.prepare();
        let d = self.enc.memory_depth() as usize;
        let mut circuit = self.circuit.clone();
        let mut solver = self.solver.clone();
        let before = solver.stats();
        let faulty = self.enc.faulty_frames(&mut circuit, fault, d);

        // Frame D first: it decides steady-state detectability, and most
        // detectable faults are exposed there with a short search.
        let mut order: Vec<usize> = vec![d];
        order.extend(0..d);

        let mut verdict = FaultVerdict::Redundant;
        for t in order {
            let diffs = self.enc.output_diff(&mut circuit, t, &faulty);
            if diffs.iter().all(|e| e.const_value() == Some(false)) {
                continue; // hash-consing proved this frame identical
            }
            if diffs.iter().any(|e| e.const_value() == Some(true)) {
                // Outputs differ under every input: any model will do.
                solver.set_conflict_budget(max_conflicts);
                if solver.solve() != SolveResult::Sat {
                    verdict = FaultVerdict::Unknown;
                    break;
                }
                verdict = self.conclude_sat(&circuit, &solver, fault, t);
                break;
            }
            // Guard the miter clause with an activation literal so an
            // UNSAT frame can be retired without poisoning later queries.
            let act = Lit::pos(solver.new_var());
            let mut clause = vec![act.negate()];
            for &e in &diffs {
                if e.const_value().is_none() {
                    clause.push(circuit.lit(&mut solver, e));
                }
            }
            solver.add_clause(&clause);
            solver.set_conflict_budget(max_conflicts);
            match solver.solve_assuming(&[act]) {
                SolveResult::Sat => {
                    verdict = self.conclude_sat(&circuit, &solver, fault, t);
                    break;
                }
                SolveResult::Unsat => {
                    solver.add_clause(&[act.negate()]);
                }
                SolveResult::Unknown => {
                    verdict = FaultVerdict::Unknown;
                    break;
                }
            }
        }
        self.accumulate(&before, &solver.stats());
        verdict
    }

    /// Extracts the frame-`t` witness from a SAT model and replays it; a
    /// replay failure (encoder soundness bug) downgrades to `Unknown`.
    fn conclude_sat(
        &mut self,
        circuit: &Circuit,
        solver: &Solver,
        fault: &FaultSpec,
        t: usize,
    ) -> FaultVerdict {
        let witness: Vec<i64> =
            (0..=t).map(|f| self.enc.witness_word(circuit, solver, f)).collect();
        if replay_detects(self.enc.netlist(), fault, &witness) {
            self.witnesses_confirmed += 1;
            FaultVerdict::Detectable { witness }
        } else {
            FaultVerdict::Unknown
        }
    }

    fn accumulate(&mut self, before: &SolverStats, after: &SolverStats) {
        self.stats.conflicts += after.conflicts - before.conflicts;
        self.stats.decisions += after.decisions - before.decisions;
        self.stats.propagations += after.propagations - before.propagations;
        self.stats.restarts += after.restarts - before.restarts;
        self.stats.learnts += after.learnts - before.learnts;
    }
}

/// Replays `witness` through the bit-sliced simulator with `fault`
/// injected on a dedicated fault lane: true iff the final step's outputs differ
/// from the fault-free reference lane.
#[must_use]
pub fn replay_detects(netlist: &Netlist, fault: &FaultSpec, witness: &[i64]) -> bool {
    if witness.is_empty() {
        return false;
    }
    let mut sim = BitSlicedSim::new(netlist);
    sim.set_faults(
        fault.node,
        vec![CellFault { cell: fault.cell, fault: fault.fault, lanes: 1 << REPLAY_LANE }],
    );
    for &word in witness {
        sim.step(word);
    }
    sim.output_diff_lanes(0) & (1 << REPLAY_LANE) != 0
}

/// Proves every candidate fault and aggregates the verdicts.
#[must_use]
pub fn prove_faults(
    netlist: &Netlist,
    input_bits: u32,
    candidates: &[FaultSpec],
    config: &PruneConfig,
) -> PruneOutcome {
    let mut prover = RedundancyProver::new(netlist, input_bits);
    let mut out = PruneOutcome::default();
    for fault in candidates {
        let verdict = prover.prove(fault, config.max_conflicts);
        match &verdict {
            FaultVerdict::Redundant => out.redundant += 1,
            FaultVerdict::Detectable { .. } => out.detectable += 1,
            FaultVerdict::Unknown => out.unknown += 1,
        }
        out.verdicts.push((*fault, verdict));
    }
    out.witnesses_confirmed = prover.witnesses_confirmed();
    out.stats = prover.stats();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::fulladder::{FaFault, Line, ALL_LINES};
    use rtl::NetlistBuilder;

    /// `y = ((x + (x >> 2)) >> 1)` with one register: depth 1, small cone.
    fn small_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(6).unwrap();
        let x = b.input("x");
        let d = b.register(x);
        let s = b.shift_right(d, 2);
        let a = b.add_labeled(x, s, "acc");
        let sh = b.shift_right(a, 1);
        b.output(sh, "y");
        b.finish().unwrap()
    }

    /// Brute-force detectability over every aligned input sequence of
    /// length `depth + 1`, diff checked after every step.
    fn brute_force_detectable(netlist: &Netlist, fault: &FaultSpec, input_bits: u32) -> bool {
        let w = netlist.width();
        let align = w - input_bits;
        let words: Vec<i64> =
            (0..1u64 << input_bits).map(|raw| netlist.format().sign_extend(raw << align)).collect();
        let depth = {
            let enc = NetlistEncoder::new(netlist, input_bits);
            enc.memory_depth() as usize
        };
        let mut seq = vec![0usize; depth + 1];
        loop {
            let mut sim = BitSlicedSim::new(netlist);
            sim.set_faults(
                fault.node,
                vec![CellFault { cell: fault.cell, fault: fault.fault, lanes: 1 << 1 }],
            );
            for &k in &seq {
                sim.step(words[k]);
                if sim.output_diff_lanes(0) & (1 << 1) != 0 {
                    return true;
                }
            }
            // Odometer over the sequence space.
            let mut pos = 0;
            loop {
                if pos == seq.len() {
                    return false;
                }
                seq[pos] += 1;
                if seq[pos] < words.len() {
                    break;
                }
                seq[pos] = 0;
                pos += 1;
            }
        }
    }

    #[test]
    fn exhaustive_cross_check_on_small_cone() {
        let netlist = small_netlist();
        let node = netlist.find_label("acc").unwrap();
        let mut prover = RedundancyProver::new(&netlist, 6);
        let mut redundant = 0;
        let mut detectable = 0;
        for cell in [0u32, 2, 5] {
            for line in ALL_LINES {
                for stuck_one in [false, true] {
                    let f = FaultSpec { node, cell, fault: FaFault { line, stuck_one } };
                    let brute = brute_force_detectable(&netlist, &f, 6);
                    match prover.prove(&f, 100_000) {
                        FaultVerdict::Detectable { .. } => {
                            detectable += 1;
                            assert!(brute, "SAT said detectable, sim disagrees: {f:?}");
                        }
                        FaultVerdict::Redundant => {
                            redundant += 1;
                            assert!(!brute, "SAT said redundant, sim detects: {f:?}");
                        }
                        FaultVerdict::Unknown => panic!("budget exhausted on tiny cone: {f:?}"),
                    }
                }
            }
        }
        // The sweep must exercise both verdicts to mean anything.
        assert!(redundant > 0, "no redundant fault in sweep");
        assert!(detectable > 0, "no detectable fault in sweep");
        assert_eq!(prover.witnesses_confirmed(), detectable);
    }

    #[test]
    fn discarded_lsb_sum_fault_is_redundant() {
        // `y = (x + s) >> 1` discards bit 0 of the adder; a Sum-line fault
        // at cell 0 corrupts only that bit (the carry path is untouched).
        let netlist = small_netlist();
        let node = netlist.find_label("acc").unwrap();
        let mut prover = RedundancyProver::new(&netlist, 6);
        for stuck_one in [false, true] {
            let f = FaultSpec { node, cell: 0, fault: FaFault { line: Line::Sum, stuck_one } };
            assert_eq!(prover.prove(&f, 10_000), FaultVerdict::Redundant);
        }
    }

    #[test]
    fn carry_fault_at_lsb_is_detectable_with_confirmed_witness() {
        let netlist = small_netlist();
        let node = netlist.find_label("acc").unwrap();
        let mut prover = RedundancyProver::new(&netlist, 6);
        let f = FaultSpec { node, cell: 0, fault: FaFault { line: Line::Cout, stuck_one: true } };
        match prover.prove(&f, 100_000) {
            FaultVerdict::Detectable { witness } => {
                assert!(!witness.is_empty());
                assert!(replay_detects(&netlist, &f, &witness));
            }
            v => panic!("expected detectable, got {v:?}"),
        }
        assert_eq!(prover.witnesses_confirmed(), 1);
    }

    #[test]
    fn prove_faults_aggregates_verdicts() {
        let netlist = small_netlist();
        let node = netlist.find_label("acc").unwrap();
        let candidates = vec![
            FaultSpec { node, cell: 0, fault: FaFault { line: Line::Sum, stuck_one: true } },
            FaultSpec { node, cell: 0, fault: FaFault { line: Line::Cout, stuck_one: true } },
            FaultSpec { node, cell: 3, fault: FaFault { line: Line::AXor, stuck_one: false } },
        ];
        let out = prove_faults(&netlist, 6, &candidates, &PruneConfig::default());
        assert_eq!(out.verdicts.len(), 3);
        assert_eq!(out.redundant + out.detectable + out.unknown, 3);
        assert_eq!(out.redundant, 1, "discarded-LSB sum fault");
        assert_eq!(out.witnesses_confirmed, out.detectable);
        assert!(out.unknown == 0);
    }

    #[test]
    fn unknown_on_exhausted_budget() {
        // A zero-conflict budget cannot decide a non-trivial query.
        let netlist = small_netlist();
        let node = netlist.find_label("acc").unwrap();
        let mut prover = RedundancyProver::new(&netlist, 6);
        let f = FaultSpec { node, cell: 2, fault: FaFault { line: Line::Cout, stuck_one: true } };
        // Budget 0 either finds the answer by pure propagation or gives up;
        // both are acceptable, but the verdict must never be wrong.
        match prover.prove(&f, 0) {
            FaultVerdict::Unknown | FaultVerdict::Detectable { .. } => {}
            FaultVerdict::Redundant => panic!("cell-2 carry fault is detectable"),
        }
    }
}
