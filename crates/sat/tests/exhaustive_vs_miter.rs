//! Exhaustive ground truth for the per-fault miter: on cones small
//! enough to enumerate *every* aligned input sequence of length
//! `memory_depth + 1`, the brute-force detectability verdict and the
//! SAT verdict must agree exactly — `Detectable` iff some sequence
//! diverges the faulty machine, `Redundant` iff none does, and every
//! witness must replay through the bit-sliced simulator.
//!
//! The deterministic tests below always run, over LP-MINI-shaped
//! fixtures (tapped delay lines with shifts, adds and subs). The
//! randomized variant is gated behind the off-by-default `proptest`
//! feature so the workspace builds offline; see the workspace
//! `Cargo.toml` for how to re-enable it.

use bist_sat::{FaultSpec, FaultVerdict, PruneConfig, RedundancyProver};
use faultsim::FaultUniverse;
use rtl::range::{aligned_input_range, RangeAnalysis};
use rtl::sim::{BitSlicedSim, CellFault};
use rtl::{Netlist, NetlistBuilder, NodeId};

const WIDTH: u32 = 6;
const INPUT_BITS: u32 = 4;

#[derive(Debug, Clone)]
enum Op {
    Register(usize),
    ShiftRight(usize, u32),
    Add(usize, usize),
    Sub(usize, usize),
}

fn build(ops: &[Op]) -> Netlist {
    let mut b = NetlistBuilder::new(WIDTH).expect("width valid");
    let mut ids: Vec<NodeId> = vec![b.input("x")];
    for op in ops {
        let pick = |i: usize| ids[i % ids.len()];
        let id = match *op {
            Op::Register(s) => b.register(pick(s)),
            Op::ShiftRight(s, k) => b.shift_right(pick(s), k),
            Op::Add(a, c) => b.add(pick(a), pick(c)),
            Op::Sub(a, c) => b.sub(pick(a), pick(c)),
        };
        ids.push(id);
    }
    let last = *ids.last().expect("nonempty");
    b.output(last, "y");
    b.finish().expect("DAG by construction")
}

fn universe_of(n: &Netlist) -> FaultUniverse {
    let ranges = RangeAnalysis::analyze(n, aligned_input_range(INPUT_BITS, WIDTH));
    let reach = rtl::reachability::Reachability::analyze(n, INPUT_BITS);
    FaultUniverse::enumerate_pruned(n, &ranges, &reach)
}

/// Brute-force detectability: every aligned input sequence of length
/// `depth + 1` from reset, output diff checked after every step.
fn brute_force_detectable(netlist: &Netlist, fault: &FaultSpec, depth: usize) -> bool {
    let align = WIDTH - INPUT_BITS;
    let words: Vec<i64> =
        (0..1u64 << INPUT_BITS).map(|raw| netlist.format().sign_extend(raw << align)).collect();
    let mut seq = vec![0usize; depth + 1];
    loop {
        let mut sim = BitSlicedSim::new(netlist);
        sim.set_faults(
            fault.node,
            vec![CellFault { cell: fault.cell, fault: fault.fault, lanes: 1 << 1 }],
        );
        for &k in &seq {
            sim.step(words[k]);
            if sim.output_diff_lanes(0) & (1 << 1) != 0 {
                return true;
            }
        }
        let mut pos = 0;
        loop {
            if pos == seq.len() {
                return false;
            }
            seq[pos] += 1;
            if seq[pos] < words.len() {
                break;
            }
            seq[pos] = 0;
            pos += 1;
        }
    }
}

fn witness_replays(netlist: &Netlist, fault: &FaultSpec, witness: &[i64]) -> bool {
    let mut sim = BitSlicedSim::new(netlist);
    sim.set_faults(
        fault.node,
        vec![CellFault { cell: fault.cell, fault: fault.fault, lanes: 1 << 1 }],
    );
    let mut diff = false;
    for &w in witness {
        sim.step(w);
        diff = sim.output_diff_lanes(0) & (1 << 1) != 0;
    }
    diff
}

/// Proves every `stride`-th fault of the netlist's universe and checks
/// the verdict against exhaustive enumeration. Returns the number of
/// faults compared.
fn cross_check(netlist: &Netlist, stride: usize) -> usize {
    let universe = universe_of(netlist);
    let mut prover = RedundancyProver::new(netlist, INPUT_BITS);
    let depth = prover.memory_depth() as usize;
    let mut checked = 0usize;
    for id in universe.ids().step_by(stride.max(1)) {
        let site = universe.site(id);
        let fault = FaultSpec { node: site.node, cell: site.cell, fault: site.representative };
        let oracle = brute_force_detectable(netlist, &fault, depth);
        match prover.prove(&fault, PruneConfig::default().max_conflicts) {
            FaultVerdict::Detectable { witness } => {
                assert!(oracle, "miter witnessed fault {id:?} but enumeration finds no test");
                assert!(witness_replays(netlist, &fault, &witness), "witness fails replay");
            }
            FaultVerdict::Redundant => {
                assert!(!oracle, "miter proved fault {id:?} UNSAT but enumeration found a test");
            }
            FaultVerdict::Unknown => {
                panic!("cone-sized proof for fault {id:?} must not exhaust its budget")
            }
        }
        checked += 1;
    }
    checked
}

/// A two-tap accumulate: the LP-MINI shape in miniature.
fn two_tap() -> Netlist {
    build(&[
        Op::Register(0),
        Op::ShiftRight(0, 2),
        Op::ShiftRight(1, 1),
        Op::Add(2, 3),
        Op::Register(4),
        Op::Add(4, 5),
    ])
}

/// A fold-and-difference line, the symmetric-architecture shape.
fn fold_diff() -> Netlist {
    build(&[
        Op::Register(0),
        Op::Register(1),
        Op::Add(0, 2),
        Op::ShiftRight(3, 1),
        Op::Sub(3, 4),
        Op::Add(5, 1),
    ])
}

#[test]
fn miter_matches_exhaustive_enumeration_on_the_two_tap_cone() {
    let n = two_tap();
    let checked = cross_check(&n, 3);
    assert!(checked >= 20, "only {checked} faults compared");
}

#[test]
fn miter_matches_exhaustive_enumeration_on_the_fold_cone() {
    let n = fold_diff();
    let checked = cross_check(&n, 3);
    assert!(checked >= 20, "only {checked} faults compared");
}

#[cfg(feature = "proptest")]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn op_strategy(max_src: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..max_src).prop_map(Op::Register),
            (0..max_src, 0u32..4).prop_map(|(s, k)| Op::ShiftRight(s, k)),
            (0..max_src, 0..max_src).prop_map(|(a, b)| Op::Add(a, b)),
            (0..max_src, 0..max_src).prop_map(|(a, b)| Op::Sub(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn miter_matches_exhaustive_enumeration_on_random_cones(
            ops in proptest::collection::vec(op_strategy(8), 2..8),
        ) {
            let n = build(&ops);
            // Keep the enumeration tractable: depth grows with chained
            // registers, and 16^(d+1) sequences per fault add up.
            let depth = RedundancyProver::new(&n, INPUT_BITS).memory_depth();
            prop_assume!(depth <= 2);
            cross_check(&n, 5);
        }
    }
}
