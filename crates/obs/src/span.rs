//! RAII span timers.
//!
//! A [`Span`] measures the wall-clock extent of one pipeline phase:
//! created by [`Registry::span`] (or the [`span!`](crate::span!)
//! macro), it records a [`SpanRecord`] — and a sample in the
//! same-named duration histogram — when dropped.
//!
//! ```
//! use bist_obs::{span, Registry};
//!
//! let registry = Registry::new();
//! {
//!     let _guard = span!(registry, "stage{}", 0);
//!     // ... timed work ...
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.spans.len(), 1);
//! assert_eq!(snapshot.spans[0].name, "stage0");
//! ```

use crate::metrics::{Registry, SpanRecord};
use std::time::Instant;

/// An in-flight timed span; the measurement lands in the registry when
/// the guard drops.
#[derive(Debug)]
pub struct Span<'r> {
    registry: &'r Registry,
    name: String,
    started: Instant,
    finished: bool,
}

impl<'r> Span<'r> {
    pub(crate) fn begin(registry: &'r Registry, name: String) -> Span<'r> {
        Span { registry, name, started: Instant::now(), finished: false }
    }

    /// The span's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ends the span now and returns its duration in milliseconds
    /// (instead of waiting for the guard to drop).
    pub fn finish(mut self) -> f64 {
        let duration_us = self.record();
        self.finished = true;
        duration_us as f64 / 1000.0
    }

    fn record(&self) -> u64 {
        let start_us =
            self.started.duration_since(self.registry.start()).as_micros().min(u64::MAX as u128)
                as u64;
        let duration_us = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.registry.record_span(SpanRecord { name: self.name.clone(), start_us, duration_us });
        duration_us
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.record();
        }
    }
}

impl Registry {
    /// Starts a timed span; the measurement is recorded when the
    /// returned guard drops (or [`Span::finish`] is called).
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span::begin(self, name.into())
    }
}

/// Starts a [`Span`] on a registry, with optional `format!`-style name
/// interpolation: `span!(registry, "faultsim.stage{}", index)`.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:literal $(, $arg:expr)+ $(,)?) => {
        $registry.span(format!($name $(, $arg)+))
    };
    ($registry:expr, $name:expr $(,)?) => {
        $registry.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_span_records_duration_and_histogram() {
        let r = Registry::new();
        {
            let _g = r.span("phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = r.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].name, "phase");
        assert!(s.spans[0].duration_us >= 2000, "{:?}", s.spans[0]);
        assert_eq!(s.histograms["phase"].count, 1);
        assert!(s.span_millis("phase") >= 2.0);
    }

    #[test]
    fn finish_records_once() {
        let r = Registry::new();
        let g = r.span("once");
        let ms = g.finish();
        assert!(ms >= 0.0);
        assert_eq!(r.snapshot().spans.len(), 1);
    }

    #[test]
    fn spans_nest_and_order_by_completion() {
        let r = Registry::new();
        {
            let _outer = r.span("outer");
            let _inner = r.span("inner");
        }
        let names: Vec<String> = r.snapshot().spans.into_iter().map(|s| s.name).collect();
        // Inner drops first (reverse declaration order).
        assert_eq!(names, vec!["inner".to_string(), "outer".to_string()]);
    }

    #[test]
    fn macro_interpolates_names() {
        let r = Registry::new();
        {
            let _g = span!(r, "stage{}", 3);
            let _h = span!(r, "plain");
        }
        let s = r.snapshot();
        assert!(s.spans.iter().any(|rec| rec.name == "stage3"));
        assert!(s.spans.iter().any(|rec| rec.name == "plain"));
    }
}
