//! Structured static-analysis diagnostics.
//!
//! The lint layer (`crates/lint`) runs analysis passes over a
//! synthesized netlist and a campaign spec and reports findings as
//! [`Diagnostic`]s: a stable code (`L0xx` netlist, `L1xx` testability,
//! `L2xx` spectral compatibility, `L3xx` campaign spec, `L4xx`
//! response compaction/aliasing, `L5xx` top-off stage, `L6xx` SAT
//! proof stage cross-validation), a
//! [`Severity`], a [`Location`] naming the offending node, cell,
//! frequency bin, or spec field, and a one-line explanation. The types
//! live here — in the zero-dependency observability crate — so the
//! session layer can attach diagnostics to [`crate::RunArtifact`]s and
//! the daemon can ship them over its JSON wire protocol without either
//! depending on the analyzer itself.

use crate::json::JsonValue;
use std::fmt;

/// How serious a diagnostic is. Ordered: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a structural fact worth knowing, not a problem.
    Info,
    /// A likely coverage or configuration problem.
    Warn,
    /// A configuration the analyzer predicts will fail its goal.
    Error,
}

impl Severity {
    /// Lowercase wire name (`"info"`, `"warn"`, `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a wire name produced by [`Severity::name`].
    pub fn parse(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the design / spec a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The design (or generator/design pairing) as a whole.
    Design,
    /// A netlist node, optionally narrowed to one full-adder cell.
    Node {
        /// The node's debug label (falls back to `nNN` when unnamed).
        label: String,
        /// Bit position of the cell, when the finding is cell-precise.
        cell: Option<u32>,
    },
    /// A frequency bin of an `N`-bin spectrum (DC = bin 0).
    Bin {
        /// The offending bin index.
        bin: usize,
        /// Total bins in the spectrum the index refers to.
        bins: usize,
    },
    /// A field of the campaign spec (`"vectors"`, `"deadline_ms"`, ...).
    Field {
        /// The field name.
        name: String,
    },
}

impl Location {
    fn kind(&self) -> &'static str {
        match self {
            Location::Design => "design",
            Location::Node { .. } => "node",
            Location::Bin { .. } => "bin",
            Location::Field { .. } => "field",
        }
    }

    fn to_json(&self) -> JsonValue {
        let v = JsonValue::object().push("kind", self.kind());
        match self {
            Location::Design => v,
            Location::Node { label, cell } => {
                let v = v.push("label", label.as_str());
                match cell {
                    Some(c) => v.push("cell", *c),
                    None => v,
                }
            }
            Location::Bin { bin, bins } => v.push("bin", *bin).push("bins", *bins),
            Location::Field { name } => v.push("name", name.as_str()),
        }
    }

    fn from_json(v: &JsonValue) -> Option<Location> {
        let kind = v.get("kind")?.as_str()?;
        match kind {
            "design" => Some(Location::Design),
            "node" => Some(Location::Node {
                label: v.get("label")?.as_str()?.to_string(),
                cell: v.get("cell").and_then(|c| c.as_u64()).map(|c| c as u32),
            }),
            "bin" => Some(Location::Bin {
                bin: v.get("bin")?.as_u64()? as usize,
                bins: v.get("bins")?.as_u64()? as usize,
            }),
            "field" => Some(Location::Field { name: v.get("name")?.as_str()?.to_string() }),
            _ => None,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Design => f.write_str("design"),
            Location::Node { label, cell: None } => write!(f, "node {label}"),
            Location::Node { label, cell: Some(c) } => write!(f, "node {label} cell {c}"),
            Location::Bin { bin, bins } => write!(f, "bin {bin}/{bins}"),
            Location::Field { name } => write!(f, "field {name}"),
        }
    }
}

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"L201"`. Codes are append-only: a published
    /// code never changes meaning (see DESIGN.md §9 for the table).
    pub code: String,
    /// Severity class.
    pub severity: Severity,
    /// What the finding points at.
    pub location: Location,
    /// One-line human explanation (no trailing period, no newlines).
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        code: &str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic { code: code.to_string(), severity, location, message: message.into() }
    }

    /// Machine-readable JSON form (insertion-ordered, deterministic).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .push("code", self.code.as_str())
            .push("severity", self.severity.name())
            .push("location", self.location.to_json())
            .push("message", self.message.as_str())
    }

    /// Parses the form produced by [`Diagnostic::to_json`].
    pub fn from_json(v: &JsonValue) -> Option<Diagnostic> {
        Some(Diagnostic {
            code: v.get("code")?.as_str()?.to_string(),
            severity: Severity::parse(v.get("severity")?.as_str()?)?,
            location: Location::from_json(v.get("location")?)?,
            message: v.get("message")?.as_str()?.to_string(),
        })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.code, self.location, self.message)
    }
}

/// `(errors, warnings, infos)` tallies for a diagnostic list.
pub fn severity_counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => counts.0 += 1,
            Severity::Warn => counts.1 += 1,
            Severity::Info => counts.2 += 1,
        }
    }
    counts
}

/// Serializes a diagnostic list as a JSON array.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> JsonValue {
    JsonValue::Array(diags.iter().map(Diagnostic::to_json).collect())
}

/// Parses a JSON array produced by [`diagnostics_to_json`]. Returns
/// `None` if any element is malformed.
pub fn diagnostics_from_json(v: &JsonValue) -> Option<Vec<Diagnostic>> {
    v.as_array()?.iter().map(Diagnostic::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                "L201",
                Severity::Error,
                Location::Bin { bin: 3, bins: 512 },
                "spectral null overlaps passband",
            ),
            Diagnostic::new(
                "L101",
                Severity::Warn,
                Location::Node { label: "tap20.acc".into(), cell: Some(14) },
                "excess headroom",
            ),
            Diagnostic::new("L001", Severity::Info, Location::Design, "redundant sign bits"),
            Diagnostic::new(
                "L301",
                Severity::Warn,
                Location::Field { name: "vectors".into() },
                "degenerate vector count",
            ),
        ]
    }

    #[test]
    fn severity_is_ordered_and_named() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        for s in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::parse(s.name()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn diagnostics_round_trip_through_json() {
        let diags = sample();
        let json = diagnostics_to_json(&diags);
        let text = json.to_json();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(diagnostics_from_json(&parsed).unwrap(), diags);
    }

    #[test]
    fn display_is_single_line_and_readable() {
        let diags = sample();
        assert_eq!(diags[0].to_string(), "error[L201] bin 3/512: spectral null overlaps passband");
        assert_eq!(diags[1].to_string(), "warn[L101] node tap20.acc cell 14: excess headroom");
        assert_eq!(diags[2].to_string(), "info[L001] design: redundant sign bits");
        assert_eq!(diags[3].to_string(), "warn[L301] field vectors: degenerate vector count");
    }

    #[test]
    fn counts_tally_by_severity() {
        assert_eq!(severity_counts(&sample()), (1, 2, 1));
        assert_eq!(severity_counts(&[]), (0, 0, 0));
    }

    #[test]
    fn malformed_json_is_rejected() {
        let bad = JsonValue::parse(r#"[{"code":"L001","severity":"loud"}]"#).unwrap();
        assert_eq!(diagnostics_from_json(&bad), None);
        let not_array = JsonValue::parse(r#"{"code":"L001"}"#).unwrap();
        assert_eq!(diagnostics_from_json(&not_array), None);
    }
}
