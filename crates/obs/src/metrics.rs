//! The metric [`Registry`]: named atomic counters, gauges and
//! fixed-bucket histograms, plus the span log written by
//! [`crate::span::Span`] guards.
//!
//! A registry is cheap to create (one per `BistSession::run` is the
//! normal pattern) and safe to share across the fault simulator's
//! worker threads behind an `Arc`. Metric handles ([`Counter`],
//! [`Arc<Histogram>`]) are resolved once by name and then updated
//! lock-free; the name→handle maps are only locked on first
//! registration and at snapshot time.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter handle.
///
/// Clones share the same underlying atomic, so a handle can be hoisted
/// out of a hot loop and updated without touching the registry again.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One completed span: a named wall-clock interval relative to the
/// owning registry's creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's name (e.g. `session.fault_sim`).
    pub name: String,
    /// Start offset from registry creation, in microseconds.
    pub start_us: u64,
    /// Duration, in microseconds.
    pub duration_us: u64,
}

impl SpanRecord {
    /// Duration in milliseconds.
    pub fn millis(&self) -> f64 {
        self.duration_us as f64 / 1000.0
    }
}

/// The root of the observability layer: a thread-safe collection of
/// named counters, gauges, histograms and completed spans.
#[derive(Debug)]
pub struct Registry {
    start: Instant,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Registry {
    /// An empty registry; its creation instant is the zero point for
    /// span start offsets.
    pub fn new() -> Registry {
        Registry {
            start: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The registry's creation instant (span time zero).
    pub fn start(&self) -> Instant {
        self.start
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("registry lock");
        map.entry(name.to_string()).or_insert_with(|| Counter(Arc::new(AtomicU64::new(0)))).clone()
    }

    /// Sets the gauge named `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().expect("registry lock").insert(name.to_string(), value);
    }

    /// The histogram named `name`, created with the default duration
    /// buckets (milliseconds) on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &crate::hist::DURATION_MS_BOUNDS)
    }

    /// The histogram named `name`, created with the given bucket bounds
    /// on first use (an existing histogram keeps its original bounds).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry lock");
        map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(bounds))).clone()
    }

    /// Appends a completed span to the span log. Normally called by the
    /// [`crate::span::Span`] guard's `Drop`, not directly.
    pub fn record_span(&self, record: SpanRecord) {
        let hist = self.histogram(&record.name);
        hist.record(record.millis());
        self.spans.lock().expect("registry lock").push(record);
    }

    /// A point-in-time copy of every metric, suitable for JSON
    /// rendering or merging into another registry.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self.gauges.lock().expect("registry lock").clone(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            spans: self.spans.lock().expect("registry lock").clone(),
        }
    }

    /// Folds a snapshot into this registry: counters add, gauges
    /// overwrite, histograms merge (created with the incoming bounds if
    /// absent), spans append. Lets a per-run registry report into a
    /// long-lived campaign registry.
    pub fn absorb(&self, snapshot: &Snapshot) {
        for (name, value) in &snapshot.counters {
            self.counter(name).add(*value);
        }
        for (name, value) in &snapshot.gauges {
            self.set_gauge(name, *value);
        }
        for (name, incoming) in &snapshot.histograms {
            self.histogram_with(name, &incoming.bounds).merge_from(incoming);
        }
        self.spans.lock().expect("registry lock").extend(snapshot.spans.iter().cloned());
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data copy of a [`Registry`] at one instant. Every map is a
/// `BTreeMap`, so iteration — and therefore JSON output — is sorted
/// and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Renders the snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...},
    /// "spans": [...]}`.
    pub fn to_json(&self) -> JsonValue {
        let counters = self.counters.iter().fold(JsonValue::object(), |o, (k, v)| o.push(k, *v));
        let gauges = self.gauges.iter().fold(JsonValue::object(), |o, (k, v)| o.push(k, *v));
        let histograms = self.histograms.iter().fold(JsonValue::object(), |o, (k, h)| {
            o.push(
                k,
                JsonValue::object()
                    .push("count", h.count)
                    .push("sum", h.sum)
                    .push("mean", h.mean())
                    .push("min", if h.count == 0 { JsonValue::Null } else { h.min.into() })
                    .push("max", if h.count == 0 { JsonValue::Null } else { h.max.into() })
                    .push("bounds", h.bounds.clone())
                    .push("counts", h.counts.clone()),
            )
        });
        let spans = JsonValue::Array(
            self.spans
                .iter()
                .map(|s| {
                    JsonValue::object()
                        .push("name", s.name.as_str())
                        .push("start_us", s.start_us)
                        .push("duration_us", s.duration_us)
                })
                .collect(),
        );
        JsonValue::object()
            .push("counters", counters)
            .push("gauges", gauges)
            .push("histograms", histograms)
            .push("spans", spans)
    }

    /// Total duration in milliseconds of all spans named `name`.
    pub fn span_millis(&self, name: &str) -> f64 {
        self.spans.iter().filter(|s| s.name == name).map(SpanRecord::millis).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("faults.detected");
        let b = r.counter("faults.detected");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("faults.detected").get(), 3);
        assert_eq!(r.snapshot().counters["faults.detected"], 3);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.set_gauge("speedup", 1.5);
        r.set_gauge("speedup", 2.5);
        assert_eq!(r.snapshot().gauges["speedup"], 2.5);
    }

    #[test]
    fn histograms_keep_first_bounds() {
        let r = Registry::new();
        r.histogram_with("h", &[1.0, 2.0]).record(1.5);
        let again = r.histogram_with("h", &[99.0]);
        assert_eq!(again.bounds(), &[1.0, 2.0]);
        assert_eq!(r.snapshot().histograms["h"].count, 1);
    }

    #[test]
    fn absorb_merges_every_metric_kind() {
        let run = Registry::new();
        run.counter("shards").add(5);
        run.set_gauge("coverage", 0.97);
        run.histogram_with("stage_ms", &[10.0, 100.0]).record(50.0);
        run.record_span(SpanRecord { name: "sim".into(), start_us: 0, duration_us: 1000 });

        let campaign = Registry::new();
        campaign.counter("shards").add(1);
        campaign.histogram_with("stage_ms", &[10.0, 100.0]).record(5.0);
        campaign.absorb(&run.snapshot());

        let s = campaign.snapshot();
        assert_eq!(s.counters["shards"], 6);
        assert_eq!(s.gauges["coverage"], 0.97);
        let h = &s.histograms["stage_ms"];
        assert_eq!(h.count, 2, "5.0 and 50.0; the span's auto-histogram is separate");
        assert_eq!(h.counts, vec![1, 1, 0]);
        assert_eq!(h.min, 5.0);
        assert_eq!(h.max, 50.0);
        // The span arrived too (and its auto-histogram under its name).
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.span_millis("sim"), 1.0);
        assert!(s.histograms.contains_key("sim"));
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("zz").inc();
        r.counter("aa").inc();
        let json = r.snapshot().to_json().to_json();
        let aa = json.find("\"aa\"").unwrap();
        let zz = json.find("\"zz\"").unwrap();
        assert!(aa < zz, "{json}");
        assert_eq!(json, r.snapshot().to_json().to_json());
    }

    #[test]
    fn empty_histogram_serializes_null_extrema() {
        let r = Registry::new();
        let _ = r.histogram("empty");
        let json = r.snapshot().to_json().to_json();
        assert!(json.contains("\"min\":null"), "{json}");
    }
}
